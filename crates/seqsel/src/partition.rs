//! In-place partitioning primitives used by every selection algorithm.

use crate::ops::OpCount;

/// Partitions `data` into `[≤ pivot | > pivot]` and returns the split index
/// (the number of elements ≤ `pivot`).
///
/// This is the per-iteration scan of the paper's Algorithms 1 and 3
/// (Step 4: "Partition Lᵢ into ≤ MoM and > MoM to give indexᵢ").
pub fn partition_le<T: Copy + Ord>(data: &mut [T], pivot: T, ops: &mut OpCount) -> usize {
    let mut i = 0usize;
    let mut j = data.len();
    // Invariant: data[..i] <= pivot, data[j..] > pivot.
    loop {
        while i < j {
            ops.cmps += 1;
            if data[i] <= pivot {
                i += 1;
            } else {
                break;
            }
        }
        while i < j {
            ops.cmps += 1;
            if data[j - 1] > pivot {
                j -= 1;
            } else {
                break;
            }
        }
        if i >= j {
            return i;
        }
        data.swap(i, j - 1);
        ops.moves += 3;
        i += 1;
        j -= 1;
    }
}

/// Three-way partition into `[< lo | lo ≤ · ≤ hi | > hi]`, returning
/// `(a, b)` such that `data[..a] < lo`, `data[a..b]` is within the closed
/// range, and `data[b..] > hi`.
///
/// With `lo == hi` this is the classic Dutch-flag partition around one pivot
/// value (used by quickselect to be robust against duplicate keys); with
/// `lo < hi` it is Step 5 of the paper's fast randomized selection
/// ("Partition Lᵢ into < k₁, [k₁, k₂] and > k₂").
///
/// # Panics
/// Panics if `lo > hi`.
pub fn partition3<T: Copy + Ord>(
    data: &mut [T],
    lo: T,
    hi: T,
    ops: &mut OpCount,
) -> (usize, usize) {
    assert!(lo <= hi, "partition3 requires lo <= hi");
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    // Invariant: data[..lt] < lo, data[lt..i] in [lo, hi], data[gt..] > hi.
    while i < gt {
        ops.cmps += 1;
        if data[i] < lo {
            if lt != i {
                data.swap(lt, i);
                ops.moves += 3;
            }
            lt += 1;
            i += 1;
        } else {
            ops.cmps += 1;
            if data[i] > hi {
                gt -= 1;
                data.swap(i, gt);
                ops.moves += 3;
            } else {
                i += 1;
            }
        }
    }
    (lt, gt)
}

/// Insertion sort with measured costs; the base case of the selection
/// kernels (and the "sort directly once the problem is small" step of the
/// paper's sequential algorithms).
pub fn insertion_sort<T: Copy + Ord>(data: &mut [T], ops: &mut OpCount) {
    for i in 1..data.len() {
        let x = data[i];
        ops.moves += 1;
        let mut j = i;
        while j > 0 {
            ops.cmps += 1;
            if data[j - 1] > x {
                data[j] = data[j - 1];
                ops.moves += 1;
                j -= 1;
            } else {
                break;
            }
        }
        data[j] = x;
        ops.moves += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition_le(mut v: Vec<i64>, pivot: i64) {
        let orig = {
            let mut o = v.clone();
            o.sort_unstable();
            o
        };
        let mut ops = OpCount::new();
        let idx = partition_le(&mut v, pivot, &mut ops);
        assert!(v[..idx].iter().all(|&x| x <= pivot), "{v:?} idx={idx}");
        assert!(v[idx..].iter().all(|&x| x > pivot), "{v:?} idx={idx}");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "partition must permute, not alter");
        assert!(ops.cmps as usize >= v.len(), "every element is examined");
    }

    #[test]
    fn partition_le_basics() {
        check_partition_le(vec![5, 1, 9, 3, 7, 2, 8], 5);
        check_partition_le(vec![1, 2, 3], 0); // pivot below everything
        check_partition_le(vec![1, 2, 3], 10); // pivot above everything
        check_partition_le(vec![4, 4, 4, 4], 4); // all equal to pivot
        check_partition_le(vec![], 4);
        check_partition_le(vec![7], 7);
        check_partition_le(vec![7], 6);
    }

    #[test]
    fn partition3_three_zones() {
        let mut v = vec![9, 1, 5, 5, 7, 0, 5, 3, 8, 2];
        let mut ops = OpCount::new();
        let (a, b) = partition3(&mut v, 3, 5, &mut ops);
        assert!(v[..a].iter().all(|&x| x < 3), "{v:?}");
        assert!(v[a..b].iter().all(|&x| (3..=5).contains(&x)), "{v:?}");
        assert!(v[b..].iter().all(|&x| x > 5), "{v:?}");
        assert_eq!(a, 3); // 1, 0, 2
        assert_eq!(b - a, 4); // 5, 5, 5, 3
    }

    #[test]
    fn partition3_single_pivot_handles_duplicates() {
        let mut v = vec![2; 100];
        let mut ops = OpCount::new();
        let (a, b) = partition3(&mut v, 2, 2, &mut ops);
        assert_eq!((a, b), (0, 100));
    }

    #[test]
    fn partition3_empty_and_degenerate() {
        let mut v: Vec<u8> = vec![];
        let mut ops = OpCount::new();
        assert_eq!(partition3(&mut v, 1, 2, &mut ops), (0, 0));
        let mut v = vec![10u8];
        assert_eq!(partition3(&mut v, 1, 2, &mut ops), (0, 0));
        let mut v = vec![0u8];
        assert_eq!(partition3(&mut v, 1, 2, &mut ops), (1, 1));
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn partition3_rejects_inverted_range() {
        let mut v = vec![1, 2, 3];
        let mut ops = OpCount::new();
        let _ = partition3(&mut v, 5, 4, &mut ops);
    }

    #[test]
    fn insertion_sort_sorts_and_counts() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7];
        let mut ops = OpCount::new();
        insertion_sort(&mut v, &mut ops);
        assert_eq!(v, vec![1, 2, 3, 5, 7, 8, 9]);
        assert!(ops.cmps > 0 && ops.moves > 0);

        // Sorted input: n-1 comparisons, no shifting beyond bookkeeping.
        let mut v: Vec<u32> = (0..100).collect();
        let mut ops = OpCount::new();
        insertion_sort(&mut v, &mut ops);
        assert_eq!(ops.cmps, 99);
    }
}
