//! The persistent query engine as a service: one long-lived sharded session
//! absorbs ingest bursts, re-balances itself when a hot shard trips the
//! imbalance watermark, and answers large mixed query batches — exact
//! queries through one coalesced multi-select pass, toleranced quantiles
//! from the resident sketches.
//!
//! Everything is asserted against a sorted-vector oracle, so this example
//! doubles as an end-to-end check:
//!
//! ```text
//! cargo run --release --example engine_service
//! ```

use cgselect::{Answer, BackendKind, Engine, EngineConfig, Query};

fn main() {
    let p = 8;
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).imbalance_watermark(1.5).sketch_capacity(2048)).unwrap();
    assert_eq!(engine.backend_kind(), BackendKind::LocalSpmd);

    // ---- Ingest: a steady stream, tracked by a client-side oracle ------
    let mut oracle: Vec<u64> = Vec::new();
    let next = |i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 20;
    for burst in 0..4 {
        let items: Vec<u64> = (0..50_000u64).map(|i| next(burst * 50_000 + i)).collect();
        oracle.extend(&items);
        let rep = engine.ingest(items).unwrap();
        assert!(!rep.rebalanced, "round-robin ingest must stay balanced");
    }
    oracle.sort_unstable();
    let n = oracle.len() as u64;
    println!(
        "ingested {n} keys over {p} shards (sizes {:?}, max/mean {:.3})",
        engine.shard_sizes(),
        engine.imbalance_ratio()
    );

    // ---- One mixed batch of 120 queries, answered in one session ------
    let mut queries = Vec::new();
    for i in 0..60 {
        queries.push(Query::Rank(i * (n / 60) + i % 7)); // 60 rank queries
    }
    for i in 1..=40 {
        queries.push(Query::quantile(i as f64 / 41.0)); // 40 exact quantiles
    }
    for _ in 0..10 {
        queries.push(Query::Median); // 10 medians
    }
    for k in [1u64, 5, 25, 100, 500, 1000, 2500, 5000, 7500, 10_000] {
        queries.push(Query::TopK(k)); // 10 top-k queries
    }
    assert!(queries.len() >= 100, "the service demo batches at least 100 queries");

    let report = engine.execute(&queries).unwrap();
    let mut checked = 0;
    for (query, answer) in queries.iter().zip(&report.answers) {
        match (*query, answer) {
            (Query::Rank(k), Answer::Value(v)) => {
                assert_eq!(*v, oracle[k as usize], "rank {k}");
                checked += 1;
            }
            (Query::Quantile { q, .. }, Answer::Value(v)) => {
                let k = cgselect::quantile_rank(q, n);
                assert_eq!(*v, oracle[k as usize], "quantile {q}");
                checked += 1;
            }
            (Query::Median, Answer::Value(v)) => {
                assert_eq!(*v, oracle[(n as usize - 1) / 2], "median");
                checked += 1;
            }
            (Query::TopK(k), Answer::Top(vs)) => {
                assert_eq!(vs.as_slice(), &oracle[..k as usize], "top-{k}");
                checked += 1;
            }
            (q, a) => panic!("unexpected answer shape for {q:?}: {a:?}"),
        }
    }
    println!(
        "batch of {} queries ({checked} exact answers match the oracle): \
         {} coalesced ranks in ONE multi-select pass, {} collective ops/proc, \
         {:.4}s virtual makespan, {} messages",
        queries.len(),
        report.exact_ranks,
        report.collective_ops,
        report.makespan,
        report.comm.msgs_sent
    );

    // Batched vs one-at-a-time, on the same engine: the whole point.
    // (The singles use fresh ranks — repeats of the batch's ranks would be
    // answered from the bucket index's histogram for free, see below.)
    let solo_ranks: Vec<Query> = (0..16).map(|i| Query::Rank(i * (n / 16))).collect();
    let batched = engine.execute(&solo_ranks).unwrap();
    let mut single_ops = 0;
    for i in 0..16 {
        let fresh = Query::Rank(i * (n / 16) + 137);
        single_ops += engine.execute(&[fresh]).unwrap().collective_ops;
    }
    assert!(batched.collective_ops < single_ops);
    println!(
        "16 rank queries: {} collective ops batched vs {single_ops} executed one-by-one \
         ({:.1}x fewer)",
        batched.collective_ops,
        single_ops as f64 / batched.collective_ops as f64
    );

    // Re-running the same batch hits the resident bucket index: the first
    // pass refined the splitters around its answers, so every repeat is
    // answered from the cached histogram — zero scans, zero collectives.
    let repeat = engine.execute(&solo_ranks).unwrap();
    assert_eq!(repeat.answers, batched.answers);
    assert_eq!(repeat.histogram_answers, repeat.exact_ranks);
    println!(
        "the same 16 ranks again: {} collective ops, {} of {} answered from the \
         cached histogram (index health: {:?})",
        repeat.collective_ops,
        repeat.histogram_answers,
        repeat.exact_ranks,
        engine.index_health()
    );

    // ---- Approximate quantiles from the resident sketches --------------
    let tol = 0.02; // promise: rank error <= 2% of n
    let approx = engine
        .execute(&[Query::quantile_within(0.5, tol), Query::quantile_within(0.95, tol)])
        .unwrap();
    assert_eq!(approx.sketch_answers, 2, "the sketches must serve these");
    for answer in &approx.answers {
        let Answer::Approximate { value, target_rank, max_rank_error } = *answer else {
            panic!("expected an approximate answer, got {answer:?}");
        };
        // The value's TRUE rank, from the oracle.
        let true_rank = oracle.partition_point(|&x| x < value) as u64;
        let err = true_rank.abs_diff(target_rank);
        assert!(
            err <= max_rank_error,
            "sketch broke its promise: true rank {true_rank} vs target {target_rank} \
             (err {err} > bound {max_rank_error})"
        );
        println!(
            "approx quantile: value {value} at true rank {true_rank}, target {target_rank} \
             (err {err} <= promised {max_rank_error}) — answered from sketches, \
             {} msgs",
            approx.comm.msgs_sent
        );
    }

    // ---- A hot shard trips the watermark exactly once -------------------
    let before = engine.rebalances();
    assert_eq!(before, 0);
    let hot: Vec<u64> = (0..150_000u64).map(|i| next(1_000_000 + i)).collect();
    oracle.extend(&hot);
    oracle.sort_unstable();
    let rep = engine.ingest_pinned(0, hot).unwrap(); // everything lands on shard 0
    assert!(rep.rebalanced, "the pinned burst must trip the watermark");
    assert_eq!(engine.rebalances(), 1, "exactly one re-balance");
    println!(
        "hot-shard burst absorbed: exactly one re-balance, shard sizes now {:?} \
         (max/mean {:.3})",
        engine.shard_sizes(),
        engine.imbalance_ratio()
    );

    // And the engine still answers correctly over the merged population.
    let n = oracle.len() as u64;
    let after = engine
        .execute(&[Query::Median, Query::Rank(0), Query::Rank(n - 1), Query::TopK(3)])
        .unwrap();
    assert_eq!(after.answers[0], Answer::Value(oracle[(n as usize - 1) / 2]));
    assert_eq!(after.answers[1], Answer::Value(oracle[0]));
    assert_eq!(after.answers[2], Answer::Value(oracle[n as usize - 1]));
    assert_eq!(after.answers[3], Answer::Top(oracle[..3].to_vec()));

    // ---- Deletes keep everything coherent -------------------------------
    let victims: Vec<u64> = oracle.iter().copied().step_by(1000).take(50).collect();
    let removed = engine.delete(&victims).unwrap().elements;
    oracle.retain(|x| !victims.contains(x));
    assert_eq!(removed as usize + oracle.len(), n as usize);
    let n = oracle.len() as u64;
    let post = engine.execute(&[Query::Median]).unwrap();
    assert_eq!(post.answers[0], Answer::Value(oracle[(n as usize - 1) / 2]));
    println!("deleted {removed} elements; median still matches the oracle");

    println!(
        "service summary: {} batches executed against one persistent session, \
         {} resident keys, {} re-balance(s)",
        engine.batches(),
        engine.len(),
        engine.rebalances()
    );

    // ---- The same service on the message-passing backend ----------------
    // One config knob moves every shard onto its own worker thread, with all
    // commands and replies crossing channels as serialized byte frames (the
    // dress rehearsal for out-of-process shards). Answers AND the
    // collective-round budget must be identical to the in-process session.
    let mut reference: Engine<u64> = Engine::new(EngineConfig::new(p)).unwrap();
    let mut mp: Engine<u64> = Engine::new(EngineConfig::new(p).channel_mp()).unwrap();
    assert_eq!(mp.backend_kind(), BackendKind::ChannelMp);
    let sample: Vec<u64> = (0..40_000u64).map(|i| next(7_000_000 + i)).collect();
    reference.ingest(sample.clone()).unwrap();
    mp.ingest(sample).unwrap();
    let batch: Vec<Query> =
        (1..=20).map(|i| Query::quantile(i as f64 / 21.0)).chain([Query::TopK(5)]).collect();
    let a = reference.execute(&batch).unwrap();
    let b = mp.execute(&batch).unwrap();
    assert_eq!(a.answers, b.answers, "backends must agree on every answer");
    assert_eq!(
        a.collective_ops, b.collective_ops,
        "backends must agree on the collective-round budget"
    );
    println!(
        "channel-mp backend: {} queries answered identically to local-spmd \
         at the same {} collective ops/proc ({} shard worker threads, \
         serialized command frames)",
        batch.len(),
        b.collective_ops,
        mp.nprocs()
    );
}
