//! Property-test wall around the deterministic ε-sketch — the accuracy
//! contract behind the zero-collective serving rung.
//!
//! Three properties, each exercised across **all eight** paper workload
//! distributions per generated case, so every distribution sees the full
//! case budget (>= 10^4 cases per distribution across the suite):
//!
//! 1. **Accuracy**: for *every* rank `0..n`, `query_rank` returns an
//!    element whose true rank is within `rank_error_bound()` of the
//!    target, and `rank_of` estimates are within `count_error_bound()`
//!    of the sorted oracle — with the bounds exactly `0` while the
//!    sketch is still lossless (`n < k`, before the first compaction).
//! 2. **Merge closure**: `merge(a, b)` answers for the union multiset
//!    within the *merged* sketch's self-reported bound, regardless of
//!    how the stream was split.
//! 3. **Wire fidelity**: `to_bytes` → `from_bytes` is bit-identical,
//!    including mid-stream compactor parities, and the restored sketch
//!    continues the stream exactly like the original.

use cgselect::{generate, Distribution, EpsSketch};
use proptest::prelude::*;

const ALL_DISTRIBUTIONS: [Distribution; 8] = [
    Distribution::Random,
    Distribution::Sorted,
    Distribution::ReverseSorted,
    Distribution::FewDistinct(17),
    Distribution::Gaussian,
    Distribution::Zipf,
    Distribution::OrganPipe,
    Distribution::AllEqual,
];

/// One flat stream drawn from the paper's workload generator.
fn stream(dist: Distribution, n: usize, seed: u64) -> Vec<u64> {
    generate(dist, n, 4, seed).into_iter().flatten().collect()
}

fn oracle_rank(sorted: &[u64], v: u64, inclusive: bool) -> u64 {
    if inclusive {
        sorted.partition_point(|&x| x <= v) as u64
    } else {
        sorted.partition_point(|&x| x < v) as u64
    }
}

/// Distance from `target` to the nearest true rank of `v` (an element of
/// the data): duplicates occupy the rank interval `[lo, hi]`.
fn rank_distance(sorted: &[u64], v: u64, target: u64) -> u64 {
    let lo = oracle_rank(sorted, v, false);
    let hi = oracle_rank(sorted, v, true) - 1;
    if target < lo {
        lo - target
    } else {
        target.saturating_sub(hi)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4000))]

    /// Property 1: every rank query and every count probe lands within the
    /// sketch's self-reported bound, on every distribution.
    #[test]
    fn every_query_is_within_the_reported_bound(
        n in 16usize..257,
        k in 8usize..49,
        seed in any::<u64>(),
    ) {
        for dist in ALL_DISTRIBUTIONS {
            let data = stream(dist, n, seed);
            let mut sketch = EpsSketch::from_data(k, &data);
            prop_assert_eq!(sketch.population(), n as u64);

            let mut sorted = data;
            sorted.sort_unstable();
            let bound = sketch.rank_error_bound();
            if n < k {
                prop_assert_eq!(bound, 0, "{dist:?}: lossless sketches are exact");
            }
            prop_assert!(bound < n as u64, "{dist:?}: bound {bound} is vacuous for n={n}");
            for target in 0..n as u64 {
                let v = sketch.query_rank(target);
                let dist_to_truth = rank_distance(&sorted, v, target);
                prop_assert!(
                    dist_to_truth <= bound,
                    "{dist:?} n={n} k={k}: rank {target} -> {v} off by {dist_to_truth} > {bound}"
                );
            }

            // Count probes: resident values, the gaps beside them, and
            // points outside the value range.
            let cbound = sketch.count_error_bound();
            prop_assert!(cbound <= bound, "count bound may not exceed the rank bound");
            let probes = sorted
                .iter()
                .step_by(1 + n / 16)
                .flat_map(|&v| [v, v.saturating_sub(1), v + 1])
                .chain([0, u64::MAX]);
            for v in probes {
                for inclusive in [false, true] {
                    let est = sketch.rank_of(v, inclusive);
                    let truth = oracle_rank(&sorted, v, inclusive);
                    prop_assert!(
                        est.abs_diff(truth) <= cbound,
                        "{dist:?} n={n} k={k}: rank_of({v}, {inclusive}) = {est}, \
                         truth {truth}, bound {cbound}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4000))]

    /// Property 2: the error bound is closed under merge — a merged sketch
    /// answers for the union multiset within its own reported bound, for
    /// any split of the stream.
    #[test]
    fn merge_preserves_the_bound_for_any_split(
        n in 16usize..257,
        k in 8usize..49,
        split_num in 0u64..101,
        seed in any::<u64>(),
    ) {
        for dist in ALL_DISTRIBUTIONS {
            let data = stream(dist, n, seed);
            let cut = (n * split_num as usize) / 100;
            let mut a = EpsSketch::from_data(k, &data[..cut]);
            let b = EpsSketch::from_data(k, &data[cut..]);

            // Merging an empty sketch is the identity on state and bytes.
            let before = a.to_bytes();
            a.merge(&EpsSketch::new(k));
            prop_assert_eq!(a.to_bytes(), before, "merging empty must be identity");

            a.merge(&b);
            prop_assert_eq!(a.population(), n as u64);
            prop_assert!(
                a.count_error_bound() <= a.rank_error_bound(),
                "merged bounds stay ordered"
            );

            let mut sorted = data;
            sorted.sort_unstable();
            let bound = a.rank_error_bound();
            prop_assert!(bound < n as u64, "{dist:?}: merged bound {bound} vacuous for n={n}");
            for target in 0..n as u64 {
                let v = a.query_rank(target);
                let dist_to_truth = rank_distance(&sorted, v, target);
                prop_assert!(
                    dist_to_truth <= bound,
                    "{dist:?} n={n} k={k} cut={cut}: merged rank {target} -> {v} \
                     off by {dist_to_truth} > {bound}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2500))]

    /// Property 3: the wire encoding is a bit-identical snapshot of the
    /// full compactor state — including mid-stream parities — and the
    /// decoded sketch continues the stream exactly like the original.
    #[test]
    fn byte_roundtrip_is_bit_identical_mid_stream(
        n in 16usize..257,
        k in 8usize..49,
        pause_num in 0u64..101,
        seed in any::<u64>(),
    ) {
        for dist in ALL_DISTRIBUTIONS {
            let data = stream(dist, n, seed);
            let pause = (n * pause_num as usize) / 100;

            // Snapshot mid-stream, at an arbitrary pause point.
            let mut original = EpsSketch::from_data(k, &data[..pause]);
            let bytes = original.to_bytes();
            let mut restored: EpsSketch<u64> =
                EpsSketch::from_bytes(&bytes).expect("canonical bytes must decode");
            prop_assert_eq!(&restored, &original, "{dist:?}: decoded state must match");
            prop_assert_eq!(
                restored.to_bytes(),
                bytes.clone(),
                "{dist:?}: re-encoding must be stable"
            );
            prop_assert_eq!(restored.capacity(), k);
            prop_assert_eq!(restored.population(), pause as u64);

            // Both copies finish the stream and stay bit-identical: the
            // snapshot captured the compaction parities, not just values.
            for &x in &data[pause..] {
                original.offer(x);
                restored.offer(x);
            }
            prop_assert_eq!(&restored, &original, "{dist:?}: continuation must not diverge");
            prop_assert_eq!(
                restored.to_bytes(),
                original.to_bytes(),
                "{dist:?}: continued encodings must match byte for byte"
            );

            // Truncation anywhere is rejected, not misparsed.
            if !bytes.is_empty() {
                let cut = bytes.len() - 1 - (seed as usize % bytes.len());
                prop_assert!(
                    EpsSketch::<u64>::from_bytes(&bytes[..cut]).is_none(),
                    "{dist:?}: truncated encodings must be rejected"
                );
            }
        }
    }
}
