//! Persistent SPMD sessions: the machine's worker threads stay alive
//! between `run` calls, so per-processor state (data shards, RNG streams,
//! the virtual clock itself) survives across an unbounded stream of
//! programs.
//!
//! [`crate::Machine::run`] is one-shot: it spawns `p` threads, runs one SPMD
//! program, and tears everything down — the right shape for the paper's
//! select-once experiments, and the wrong shape for a long-lived query
//! engine, where data must remain resident on the processors while many
//! queries are served against it. A [`Session`] keeps the `p` virtual
//! processors alive; each carries its [`Proc`] (clock, tag epochs, comm
//! counters all continue monotonically) and a typed [`ShardStore`] in which
//! SPMD programs can leave state for their successors.
//!
//! ```
//! use cgselect_runtime::Machine;
//!
//! let mut session = Machine::new(4).session();
//! // First program: park a shard of data on every processor.
//! session
//!     .run(|proc, store| {
//!         store.insert::<Vec<u64>>((0..10u64).map(|i| i * 4 + proc.rank() as u64).collect());
//!     })
//!     .unwrap();
//! // Later program, same threads: query the resident shards collectively.
//! let sums = session
//!     .run(|proc, store| {
//!         let mine: u64 = store.get::<Vec<u64>>().unwrap().iter().sum();
//!         proc.combine(mine, |a, b| a + b)
//!     })
//!     .unwrap();
//! assert_eq!(sums, vec![(0..40u64).sum(); 4]);
//! ```

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::envelope::Envelope;
use crate::machine::{Machine, RunError};
use crate::model::MachineModel;
use crate::process::Proc;

/// Typed per-processor storage that outlives individual [`Session::run`]
/// calls: one slot per Rust type, keyed by `TypeId`.
///
/// SPMD programs use it to leave state for later programs — a query engine
/// parks its data shard (and auxiliary sketches) here once and then serves
/// every subsequent query against it without redistribution.
#[derive(Default)]
pub struct ShardStore {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl ShardStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value`, returning the previously stored value of that type.
    pub fn insert<T: Any + Send>(&mut self, value: T) -> Option<T> {
        self.slots
            .insert(TypeId::of::<T>(), Box::new(value))
            .map(|old| *old.downcast::<T>().expect("slot keyed by TypeId"))
    }

    /// Shared reference to the stored `T`, if present.
    pub fn get<T: Any + Send>(&self) -> Option<&T> {
        self.slots
            .get(&TypeId::of::<T>())
            .map(|b| b.downcast_ref::<T>().expect("slot keyed by TypeId"))
    }

    /// Mutable reference to the stored `T`, if present.
    pub fn get_mut<T: Any + Send>(&mut self) -> Option<&mut T> {
        self.slots
            .get_mut(&TypeId::of::<T>())
            .map(|b| b.downcast_mut::<T>().expect("slot keyed by TypeId"))
    }

    /// Mutable reference to the stored `T`, inserting `init()` first if the
    /// slot is empty.
    pub fn get_or_insert_with<T: Any + Send>(&mut self, init: impl FnOnce() -> T) -> &mut T {
        self.slots
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<T>()
            .expect("slot keyed by TypeId")
    }

    /// Removes and returns the stored `T`.
    pub fn remove<T: Any + Send>(&mut self) -> Option<T> {
        self.slots
            .remove(&TypeId::of::<T>())
            .map(|b| *b.downcast::<T>().expect("slot keyed by TypeId"))
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A type-erased SPMD program plus the channel its result goes back on.
type Job = Arc<dyn Fn(&mut Proc, &mut ShardStore) -> Box<dyn Any + Send> + Send + Sync>;

enum Command {
    Run(Job),
    Exit,
}

struct Worker {
    commands: Sender<Command>,
    results: Receiver<Result<Box<dyn Any + Send>, RunError>>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent `p`-processor machine: worker threads (and their virtual
/// clocks, tag epochs and [`ShardStore`]s) survive between [`Session::run`]
/// calls. Obtain one from [`Machine::session`].
///
/// Failure semantics: if any processor panics (or ends a program with
/// unconsumed messages / open phases), the session is **poisoned** — the
/// failing program's error is returned and every subsequent `run` fails
/// fast with [`RunError::SessionPoisoned`], because surviving workers may
/// hold inconsistent state. This mirrors mutex poisoning: a long-lived
/// engine should treat it as fatal and rebuild.
pub struct Session {
    p: usize,
    model: MachineModel,
    workers: Vec<Worker>,
    poisoned: bool,
}

/// A [`Session`] is `Send`: it can be handed off whole — resident shards,
/// live worker threads and all — to another owner thread, which is how the
/// engine's async frontend moves a populated session onto its dedicated
/// batcher thread. This assertion makes the guarantee a compile-time
/// contract so a future field cannot silently revoke it.
const _: () = {
    const fn assert_send<S: Send>() {}
    assert_send::<Session>();
};

impl Machine {
    /// Starts a persistent session with this machine's shape: the `p`
    /// worker threads stay alive until the session is dropped.
    pub fn session(&self) -> Session {
        Session::start(self.nprocs(), self.model(), self.timeout())
    }
}

impl Session {
    /// Starts a session with `p` processors and the default (CM-5) model.
    pub fn new(p: usize) -> Self {
        Self::start(p, MachineModel::default(), Duration::from_secs(30))
    }

    /// Starts a session with an explicit cost model.
    pub fn with_model(p: usize, model: MachineModel) -> Self {
        Self::start(p, model, Duration::from_secs(30))
    }

    fn start(p: usize, model: MachineModel, timeout: Duration) -> Self {
        assert!(p >= 1, "a session needs at least one processor");
        let mut data_txs = Vec::with_capacity(p);
        let mut data_rxs = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Envelope>();
            data_txs.push(tx);
            data_rxs.push(rx);
        }
        let workers = data_rxs
            .into_iter()
            .enumerate()
            .map(|(rank, data_rx)| {
                let (cmd_tx, cmd_rx) = unbounded::<Command>();
                let (res_tx, res_rx) = unbounded::<Result<Box<dyn Any + Send>, RunError>>();
                let peers = data_txs.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("cgselect-session-p{rank}"))
                    .spawn(move || {
                        worker_loop(rank, p, model, peers, data_rx, timeout, cmd_rx, res_tx)
                    })
                    .expect("failed to spawn session worker thread");
                Worker { commands: cmd_tx, results: res_rx, handle: Some(handle) }
            })
            .collect();
        Session { p, model, workers, poisoned: false }
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.p
    }

    /// The session's cost model.
    pub fn model(&self) -> MachineModel {
        self.model
    }

    /// True once a program has failed in this session.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Runs one SPMD program on the persistent processors and returns the
    /// per-rank results in rank order.
    ///
    /// Unlike [`Machine::run`], the closure also receives the processor's
    /// [`ShardStore`], whose contents persist to the next `run`. The same
    /// end-of-program protocol checks apply (final barrier, no unconsumed
    /// messages, balanced phase timers); a failure poisons the session.
    pub fn run<F, R>(&mut self, f: F) -> Result<Vec<R>, RunError>
    where
        F: Fn(&mut Proc, &mut ShardStore) -> R + Send + Sync + 'static,
        R: Send + 'static,
    {
        if self.poisoned {
            return Err(RunError::SessionPoisoned);
        }
        let job: Job = Arc::new(move |proc, store| Box::new(f(proc, store)) as Box<dyn Any + Send>);
        for w in &self.workers {
            if w.commands.send(Command::Run(job.clone())).is_err() {
                self.poisoned = true;
                return Err(RunError::SessionPoisoned);
            }
        }
        let mut out = Vec::with_capacity(self.p);
        let mut primary_err: Option<RunError> = None;
        let mut secondary_err: Option<RunError> = None;
        for w in &self.workers {
            match w.results.recv() {
                Ok(Ok(boxed)) => match boxed.downcast::<R>() {
                    Ok(v) => out.push(*v),
                    Err(_) => unreachable!("job result type fixed by the closure"),
                },
                Ok(Err(e)) => {
                    if e.is_secondary() {
                        secondary_err.get_or_insert(e);
                    } else {
                        primary_err.get_or_insert(e);
                    }
                }
                Err(_) => {
                    // Worker thread died without replying.
                    primary_err.get_or_insert(RunError::SessionPoisoned);
                }
            }
        }
        match primary_err.or(secondary_err) {
            Some(e) => {
                self.poisoned = true;
                Err(e)
            }
            None => Ok(out),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.commands.send(Command::Exit);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    rank: usize,
    p: usize,
    model: MachineModel,
    peers: Vec<Sender<Envelope>>,
    data_rx: Receiver<Envelope>,
    timeout: Duration,
    commands: Receiver<Command>,
    results: Sender<Result<Box<dyn Any + Send>, RunError>>,
) {
    let mut proc = Proc::new(rank, p, model, peers, data_rx, timeout);
    let mut store = ShardStore::new();
    while let Ok(cmd) = commands.recv() {
        let job = match cmd {
            Command::Run(job) => job,
            Command::Exit => break,
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let out = job(&mut proc, &mut store);
            // End-of-program protocol check, as in `Machine::run`: everyone
            // synchronizes, then no messages may remain anywhere and all
            // phase timers must be closed.
            proc.finish_program().map(|()| out)
        }));
        let reply = match outcome {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(protocol_err)) => Err(protocol_err),
            Err(payload) => Err(RunError::ProcPanicked {
                rank,
                message: crate::machine::panic_message(payload),
            }),
        };
        let failed = reply.is_err();
        if results.send(reply).is_err() || failed {
            // Session dropped mid-run, or this program failed: this worker's
            // Proc state can no longer be trusted — stop serving.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order_across_runs() {
        let mut s = Session::with_model(5, MachineModel::free());
        for round in 0..4u64 {
            let out = s.run(move |proc, _| proc.rank() as u64 * 10 + round).unwrap();
            assert_eq!(out, (0..5).map(|r| r as u64 * 10 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn store_persists_between_runs() {
        let mut s = Session::with_model(3, MachineModel::free());
        s.run(|proc, store| {
            store.insert::<Vec<u64>>(vec![proc.rank() as u64; 4]);
        })
        .unwrap();
        let lens = s
            .run(|_, store| {
                let v = store.get_mut::<Vec<u64>>().unwrap();
                v.push(99);
                v.len()
            })
            .unwrap();
        assert_eq!(lens, vec![5, 5, 5]);
        let sums: Vec<u64> =
            s.run(|_, store| store.get::<Vec<u64>>().unwrap().iter().sum()).unwrap();
        assert_eq!(sums, vec![99, 4 + 99, 8 + 99]);
    }

    #[test]
    fn collectives_work_across_runs_and_clock_is_monotone() {
        let mut s = Session::with_model(4, MachineModel::cm5());
        let t1 = s.run(|proc, _| {
            proc.combine(1u64, |a, b| a + b);
            proc.now()
        });
        let t2 = s.run(|proc, _| {
            let sum = proc.combine(proc.rank() as u64, |a, b| a + b);
            assert_eq!(sum, 6);
            proc.now()
        });
        let (t1, t2) = (t1.unwrap(), t2.unwrap());
        for (a, b) in t1.iter().zip(&t2) {
            assert!(b > a, "virtual clock must keep advancing across runs");
        }
    }

    #[test]
    fn point_to_point_state_is_clean_between_runs() {
        let mut s = Session::with_model(2, MachineModel::free());
        for round in 0..3u64 {
            s.run(move |proc, _| {
                if proc.rank() == 0 {
                    proc.send(1, round, round * 7);
                } else {
                    let v: u64 = proc.recv(0, round);
                    assert_eq!(v, round * 7);
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn comm_stats_accumulate_monotonically() {
        let mut s = Session::with_model(4, MachineModel::free());
        let before = s.run(|proc, _| proc.comm_stats()).unwrap();
        let after = s
            .run(|proc, _| {
                proc.combine(1u64, |a, b| a + b);
                proc.comm_stats()
            })
            .unwrap();
        for (b, a) in before.iter().zip(&after) {
            let d = a.since(b);
            assert!(d.collective_ops >= 2, "combine = reduce + broadcast, got {d:?}");
        }
    }

    #[test]
    fn panic_poisons_the_session() {
        // Short timeout so peers waiting on the dead rank fail fast.
        let mut s = Session::start(3, MachineModel::free(), Duration::from_millis(200));
        let err = s
            .run(|proc, _| {
                if proc.rank() == 1 {
                    panic!("engine shard fault");
                }
                proc.barrier();
            })
            .unwrap_err();
        match err {
            RunError::ProcPanicked { rank: 1, message } => {
                assert!(message.contains("engine shard fault"), "{message}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(s.is_poisoned());
        let err = s.run(|_, _| ()).unwrap_err();
        assert_eq!(err, RunError::SessionPoisoned);
    }

    #[test]
    fn leftover_messages_poison_the_session() {
        let mut s = Session::with_model(2, MachineModel::free());
        let err = s
            .run(|proc, _| {
                if proc.rank() == 0 {
                    proc.send(1, 7, 42u32); // never received
                }
            })
            .unwrap_err();
        match err {
            RunError::PendingMessages { rank: 1, .. } => {}
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(s.is_poisoned());
    }

    #[test]
    fn session_matches_machine_semantics() {
        let machine = Machine::with_model(4, MachineModel::cm5());
        let one_shot = machine.run(|proc| proc.scan(proc.rank() as u64 + 1, |a, b| a + b)).unwrap();
        let mut s = machine.session();
        let persistent = s.run(|proc, _| proc.scan(proc.rank() as u64 + 1, |a, b| a + b)).unwrap();
        assert_eq!(one_shot, persistent);
    }

    #[test]
    fn session_hand_off_to_another_thread_keeps_state_and_clocks() {
        // The async-frontend pattern: populate a session on one thread,
        // move it (shards resident) to a dedicated worker thread, keep
        // serving there, then hand it back.
        let mut s = Session::with_model(3, MachineModel::cm5());
        s.run(|proc, store| {
            store.insert::<Vec<u64>>(vec![proc.rank() as u64 * 100; 8]);
        })
        .unwrap();
        let t0 = s.run(|proc, _| proc.now()).unwrap();
        let handle = std::thread::spawn(move || {
            let sums: Vec<u64> =
                s.run(|_, store| store.get::<Vec<u64>>().unwrap().iter().sum()).unwrap();
            assert_eq!(sums, vec![0, 800, 1600]);
            s
        });
        let mut s = handle.join().unwrap();
        // Back on the original thread: shards and the virtual clocks
        // survived both hand-offs.
        let t1 = s.run(|proc, _| proc.now()).unwrap();
        for (a, b) in t0.iter().zip(&t1) {
            assert!(b > a, "clock must keep advancing across thread hand-offs");
        }
        let lens = s.run(|_, store| store.get::<Vec<u64>>().unwrap().len()).unwrap();
        assert_eq!(lens, vec![8, 8, 8]);
    }

    #[test]
    fn many_runs_do_not_leak_or_wedge() {
        let mut s = Session::with_model(4, MachineModel::free());
        for i in 0..200u64 {
            let out = s.run(move |proc, _| proc.combine(i, |a, b| a.max(b))).unwrap();
            assert_eq!(out, vec![i; 4]);
        }
    }
}
