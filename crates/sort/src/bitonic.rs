//! Hypercube bitonic sort with compare-split blocks.

use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::OpCount;

use crate::local_sort_counted;

/// Sorts the distributed data on a power-of-two machine with the classic
/// `log²p`-round hypercube bitonic sort; each "comparator" is a
/// compare-split: partners exchange whole blocks, merge, and keep the low /
/// high half.
///
/// Local sizes may differ (the fast-randomized sample does); blocks are
/// padded to the global maximum with an explicit pad flag — never with a
/// sentinel *value*, so inputs containing `T::MAX` sort correctly — and the
/// pads are stripped at the end. Consequently the output sizes may differ
/// from the input sizes; concatenating the returned runs in rank order
/// yields the sorted sequence, which is all the selection algorithm needs.
///
/// # Panics
/// Panics if `p` is not a power of two.
pub fn bitonic_sort<T: Key>(proc: &mut Proc, data: Vec<T>) -> Vec<T> {
    let p = proc.nprocs();
    assert!(p.is_power_of_two(), "bitonic sort requires power-of-two p, got {p}");
    let rank = proc.rank();

    // Pad every block to the same length with (true, _) pads, which order
    // after every real (false, v) element.
    let nmax = proc.combine(data.len() as u64, |a, b| a.max(b)) as usize;
    let mut block: Vec<(bool, T)> = data.into_iter().map(|v| (false, v)).collect();
    proc.charge_ops(block.len() as u64);
    block.resize(nmax, (true, T::MAX_SENTINEL));

    let mut ops = OpCount::new();
    local_sort_counted(&mut block, &mut ops);
    proc.charge_ops(ops.total());

    if p > 1 {
        let d = p.trailing_zeros();
        let tag = proc.fresh_tag();
        let mut round = 0u64;
        for stage in 0..d {
            for step in (0..=stage).rev() {
                let partner = rank ^ (1usize << step);
                let ascending = rank & (1usize << (stage + 1)) == 0;
                let i_am_low = rank & (1usize << step) == 0;
                let keep_low = ascending == i_am_low;

                proc.send_vec_tagged(partner, tag | round, block.clone());
                let other: Vec<(bool, T)> = proc.recv_vec_tagged(partner, tag | round);
                round += 1;

                // Charge each merge as it happens so the virtual clock
                // interleaves compute and communication faithfully.
                let mut ops = OpCount::new();
                block = compare_split(&block, &other, keep_low, nmax, &mut ops);
                proc.charge_ops(ops.total());
            }
        }
    }

    block.into_iter().filter(|(pad, _)| !pad).map(|(_, v)| v).collect()
}

/// Merges two sorted blocks of length `nmax` and keeps the low or high half.
fn compare_split<T: Copy + Ord>(
    mine: &[(bool, T)],
    other: &[(bool, T)],
    keep_low: bool,
    nmax: usize,
    ops: &mut OpCount,
) -> Vec<(bool, T)> {
    debug_assert_eq!(mine.len(), nmax);
    debug_assert_eq!(other.len(), nmax);
    let mut out = Vec::with_capacity(nmax);
    if keep_low {
        let (mut i, mut j) = (0usize, 0usize);
        while out.len() < nmax {
            ops.cmps += 1;
            ops.moves += 1;
            if j >= nmax || (i < nmax && mine[i] <= other[j]) {
                out.push(mine[i]);
                i += 1;
            } else {
                out.push(other[j]);
                j += 1;
            }
        }
    } else {
        let (mut i, mut j) = (nmax, nmax);
        while out.len() < nmax {
            ops.cmps += 1;
            ops.moves += 1;
            if j == 0 || (i > 0 && mine[i - 1] > other[j - 1]) {
                out.push(mine[i - 1]);
                i -= 1;
            } else {
                out.push(other[j - 1]);
                j -= 1;
            }
        }
        out.reverse();
        ops.moves += nmax as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel};
    use cgselect_seqsel::KernelRng;

    fn check(parts: Vec<Vec<u64>>) {
        let p = parts.len();
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mine = parts[proc.rank()].clone();
                bitonic_sort(proc, mine)
            })
            .unwrap();
        let flat: Vec<u64> = out.iter().flatten().copied().collect();
        let mut want: Vec<u64> = parts.into_iter().flatten().collect();
        want.sort_unstable();
        assert_eq!(flat, want);
    }

    #[test]
    fn sorts_equal_blocks() {
        let mut rng = KernelRng::new(2);
        for p in [1usize, 2, 4, 8, 16] {
            let parts: Vec<Vec<u64>> =
                (0..p).map(|_| (0..64).map(|_| rng.next_u64() % 1000).collect()).collect();
            check(parts);
        }
    }

    #[test]
    fn sorts_unequal_blocks_via_padding() {
        let mut rng = KernelRng::new(3);
        let sizes = [13usize, 0, 40, 7];
        let parts: Vec<Vec<u64>> =
            sizes.iter().map(|&s| (0..s).map(|_| rng.next_u64() % 100).collect()).collect();
        check(parts);
    }

    #[test]
    fn max_value_is_not_confused_with_padding() {
        let parts: Vec<Vec<u64>> = vec![vec![u64::MAX, 5], vec![u64::MAX, 1]];
        check(parts);
    }

    #[test]
    fn sorts_duplicates_and_sorted_runs() {
        check(vec![vec![7; 32], vec![7; 10], vec![3; 20], vec![9; 1]]);
        let parts: Vec<Vec<u64>> = (0..8).map(|i| (i * 10..(i + 1) * 10).collect()).collect();
        check(parts);
    }

    #[test]
    fn rejects_non_power_of_two() {
        let err =
            Machine::new(3).run(|proc| bitonic_sort(proc, vec![proc.rank() as u64])).unwrap_err();
        assert!(format!("{err}").contains("power-of-two"), "{err}");
    }
}
