//! Strong- and weak-scaling study on the virtual CM-5.
//!
//! Strong scaling: fixed n = 2M, growing p — how far does each algorithm
//! scale before collective latency eats the gains? Weak scaling: fixed
//! n/p = 64k per processor — does time stay flat as the machine grows?
//!
//! Run with: `cargo run --release --example scaling_study`

use cgselect::{
    median_on_machine, Algorithm, Balancer, Distribution, MachineModel, SelectionConfig,
};

fn time(algo: Algorithm, n: usize, p: usize) -> f64 {
    let parts = cgselect::generate(Distribution::Random, n, p, 21);
    let bal =
        if algo == Algorithm::MedianOfMedians { Balancer::GlobalExchange } else { Balancer::None };
    let cfg = SelectionConfig::with_seed(22).balancer(bal);
    median_on_machine(p, MachineModel::cm5(), &parts, algo, &cfg).expect("run failed").makespan()
}

fn main() {
    let procs = [2usize, 4, 8, 16, 32, 64, 128];

    println!("=== strong scaling: n = 2M, virtual CM-5 seconds ===");
    println!(
        "{:>5} | {:>12} | {:>12} | {:>12} | {:>12}",
        "p", "MoM", "Bucket", "Randomized", "FastRand"
    );
    let mut base: Option<[f64; 4]> = None;
    for &p in &procs {
        let row: Vec<f64> = Algorithm::ALL.iter().map(|&a| time(a, 1 << 21, p)).collect();
        println!(
            "{p:>5} | {:>11.4}s | {:>11.4}s | {:>11.4}s | {:>11.4}s",
            row[0], row[1], row[2], row[3]
        );
        if base.is_none() {
            base = Some([row[0], row[1], row[2], row[3]]);
        }
    }
    if let Some(b) = base {
        let last: Vec<f64> =
            Algorithm::ALL.iter().map(|&a| time(a, 1 << 21, procs[procs.len() - 1])).collect();
        println!("\nspeedup p=2 -> p=128:");
        for (i, algo) in Algorithm::ALL.iter().enumerate() {
            println!("  {:>18}: {:.1}x", algo.name(), b[i] / last[i]);
        }
    }

    println!("\n=== weak scaling: n/p = 64k per processor ===");
    println!("{:>5} | {:>9} | {:>12} | {:>12}", "p", "n", "Randomized", "FastRand");
    for &p in &procs {
        let n = p * 64 * 1024;
        let r = time(Algorithm::Randomized, n, p);
        let f = time(Algorithm::FastRandomized, n, p);
        println!("{p:>5} | {:>9} | {:>11.4}s | {:>11.4}s", n, r, f);
    }
    println!(
        "\nWeak-scaling times grow only with the O((τ+μ)·log p·iters) collective\n\
         terms — the per-processor scan work is constant by construction."
    );
}
