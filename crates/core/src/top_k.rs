//! Distributed top-k extraction: the k smallest elements, left distributed.
//!
//! A natural companion to selection (and a common reason users reach for
//! it): find the k-th smallest element with any of the paper's algorithms,
//! then keep exactly the k smallest elements *in place* on their owning
//! processors — no global sort, no gather of the data.

use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::{partition3, OpCount};

use crate::{parallel_select, Algorithm, SelectionConfig, SelectionOutcome};

/// Reduces this processor's `data` to its share of the k smallest elements
/// of the distributed multiset (the shares together are exactly k
/// elements; ties at the threshold value are broken by processor rank).
///
/// Returns the local share and the instrumentation of the underlying
/// selection.
///
/// ```
/// use cgselect_core::{top_k_on_machine, Algorithm, SelectionConfig};
/// use cgselect_runtime::MachineModel;
///
/// let parts: Vec<Vec<u64>> = vec![vec![50, 10], vec![40, 20, 30]];
/// let shares = top_k_on_machine(
///     2,
///     MachineModel::free(),
///     &parts,
///     3,
///     Algorithm::Randomized,
///     &SelectionConfig::default(),
/// )
/// .unwrap();
/// let mut kept: Vec<u64> = shares.into_iter().flatten().collect();
/// kept.sort_unstable();
/// assert_eq!(kept, vec![10, 20, 30]);
/// ```
///
/// # Panics
/// Panics if the distributed set is empty or `k` exceeds its total size
/// (`k == total` is allowed and keeps everything).
pub fn parallel_top_k<T: Key>(
    proc: &mut Proc,
    data: Vec<T>,
    k: u64,
    algorithm: Algorithm,
    cfg: &SelectionConfig,
) -> (Vec<T>, Option<SelectionOutcome<T>>) {
    let total = proc.combine(data.len() as u64, |a, b| a + b);
    assert!(total > 0, "top-k of an empty distributed set");
    assert!(k <= total, "k = {k} exceeds the {total} available elements");
    if k == 0 {
        return (Vec::new(), None);
    }
    if k == total {
        return (data, None);
    }

    // The k-th smallest element (0-based rank k-1) is the threshold.
    // parallel_select consumes its input, so partition a kept copy; the
    // copy cost is charged.
    proc.charge_ops(data.len() as u64);
    let outcome = parallel_select(proc, data.clone(), k - 1, algorithm, cfg);
    let threshold = outcome.value;

    let mut data = data;
    let mut ops = OpCount::new();
    let (lt, eq) = partition3(&mut data, threshold, threshold, &mut ops);
    proc.charge_ops(ops.total());

    // Everything strictly below the threshold is in; the remaining quota
    // is filled from the threshold's equality class in rank order.
    let local = (lt as u64, (eq - lt) as u64);
    let (c_lt, _c_eq) = proc.combine(local, |a, b| (a.0 + b.0, a.1 + b.1));
    debug_assert!(c_lt < k, "threshold rank k-1 implies fewer than k strictly-smaller");
    let quota = k - c_lt;
    let eq_before = proc.exclusive_prefix_sum((eq - lt) as u64);
    let my_eq_take = quota.saturating_sub(eq_before).min((eq - lt) as u64) as usize;

    data.truncate(lt + my_eq_take);
    (data, Some(outcome))
}

/// Whole-machine convenience for [`parallel_top_k`]: returns the per-rank
/// shares of the k smallest elements.
pub fn top_k_on_machine<T: Key>(
    p: usize,
    model: cgselect_runtime::MachineModel,
    parts: &[Vec<T>],
    k: u64,
    algorithm: Algorithm,
    cfg: &SelectionConfig,
) -> Result<Vec<Vec<T>>, cgselect_runtime::RunError> {
    assert_eq!(parts.len(), p, "need exactly one data vector per processor");
    cgselect_runtime::Machine::with_model(p, model)
        .run(|proc| parallel_top_k(proc, parts[proc.rank()].clone(), k, algorithm, cfg).0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::MachineModel;

    fn cfg() -> SelectionConfig {
        SelectionConfig { min_sequential: 32, ..SelectionConfig::with_seed(3) }
    }

    fn check(parts: Vec<Vec<u64>>, k: u64) {
        let p = parts.len();
        let shares =
            top_k_on_machine(p, MachineModel::free(), &parts, k, Algorithm::Randomized, &cfg())
                .unwrap();
        let mut got: Vec<u64> = shares.iter().flatten().copied().collect();
        got.sort_unstable();
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        all.truncate(k as usize);
        assert_eq!(got, all, "k={k}");
        // Each share must be a sub-multiset of its owner's original data.
        for (share, orig) in shares.iter().zip(&parts) {
            for v in share {
                assert!(orig.contains(v));
            }
        }
    }

    #[test]
    fn extracts_k_smallest() {
        let parts: Vec<Vec<u64>> =
            vec![vec![50, 10, 90, 30], vec![20, 80, 60], vec![70, 40, 0, 100]];
        for k in [0u64, 1, 3, 5, 7, 11] {
            check(parts.clone(), k);
        }
    }

    #[test]
    fn duplicates_at_the_threshold() {
        // Many copies of the threshold value: exactly k must survive.
        let parts: Vec<Vec<u64>> = vec![vec![5; 10], vec![5; 10], vec![1, 2, 5, 5, 9]];
        for k in [1u64, 2, 3, 12, 20] {
            check(parts.clone(), k);
        }
    }

    #[test]
    fn k_equals_total_keeps_everything() {
        let parts: Vec<Vec<u64>> = vec![vec![3, 1], vec![2]];
        check(parts, 3);
    }

    #[test]
    fn large_scale_with_all_algorithms() {
        let p = 4;
        let parts: Vec<Vec<u64>> = (0..p)
            .map(|r| {
                (0..2000).map(|i| ((i * p + r) as u64).wrapping_mul(2654435761) % 100_000).collect()
            })
            .collect();
        for algo in Algorithm::ALL {
            let shares =
                top_k_on_machine(p, MachineModel::free(), &parts, 500, algo, &cfg()).unwrap();
            let total: usize = shares.iter().map(Vec::len).sum();
            assert_eq!(total, 500, "algo {algo:?}");
            let max_kept = shares.iter().flatten().max().unwrap();
            let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert!(*max_kept <= all[499]);
        }
    }

    #[test]
    fn k_too_large_fails_collectively() {
        let parts: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let err =
            top_k_on_machine(2, MachineModel::free(), &parts, 3, Algorithm::Randomized, &cfg())
                .unwrap_err();
        assert!(format!("{err}").contains("exceeds"), "{err}");
    }
}
