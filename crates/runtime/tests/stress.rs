//! Runtime stress and semantics tests beyond the per-module unit tests:
//! larger machines, message storms, tag-space isolation, and virtual-time
//! causality.

use std::time::Duration;

use cgselect_runtime::{Machine, MachineModel};

#[test]
fn collectives_compose_on_a_large_machine() {
    // p = 64 exercises deep binomial trees and the dissemination barrier.
    let p = 64;
    let out = Machine::with_model(p, MachineModel::free())
        .run(|proc| {
            let sum = proc.combine(1u64, |a, b| a + b);
            let prefix = proc.exclusive_prefix_sum(proc.rank() as u64);
            let all = proc.all_gather(proc.rank() as u32);
            proc.barrier();
            (sum, prefix, all.len())
        })
        .unwrap();
    for (rank, (sum, prefix, len)) in out.into_iter().enumerate() {
        assert_eq!(sum, 64);
        assert_eq!(prefix, (rank * rank.saturating_sub(1) / 2) as u64, "rank={rank}");
        assert_eq!(len, 64);
    }
}

#[test]
fn point_to_point_message_storm() {
    // Every processor sends 100 tagged messages to every other processor;
    // receivers drain them in a scrambled order. Exercises the stash.
    let p = 6;
    Machine::new(p)
        .run(|proc| {
            let me = proc.rank();
            let n = proc.nprocs();
            for dst in 0..n {
                if dst == me {
                    continue;
                }
                for m in 0..100u64 {
                    proc.send(dst, m, (me as u64) << 32 | m);
                }
            }
            for src in 0..n {
                if src == me {
                    continue;
                }
                // Drain highest tag first to force stashing.
                for m in (0..100u64).rev() {
                    let v: u64 = proc.recv(src, m);
                    assert_eq!(v, (src as u64) << 32 | m);
                }
            }
        })
        .unwrap();
}

#[test]
fn user_tags_do_not_collide_with_collectives() {
    // Interleave user messaging with collectives; epoch-scoped internal
    // tags must keep them apart.
    Machine::new(4)
        .run(|proc| {
            let me = proc.rank();
            let next = (me + 1) % 4;
            let prev = (me + 3) % 4;
            proc.send(next, 5, me as u64);
            let s1 = proc.combine(1u64, |a, b| a + b);
            let from_prev: u64 = proc.recv(prev, 5);
            assert_eq!(from_prev, prev as u64);
            let s2 = proc.combine(10u64, |a, b| a + b);
            assert_eq!((s1, s2), (4, 40));
        })
        .unwrap();
}

#[test]
fn fresh_tags_are_spmd_consistent() {
    Machine::new(3)
        .run(|proc| {
            let t1 = proc.fresh_tag();
            let t2 = proc.fresh_tag();
            assert_ne!(t1, t2);
            // Everyone drew the same tags in the same order.
            let all1 = proc.all_gather(t1);
            let all2 = proc.all_gather(t2);
            assert!(all1.iter().all(|&t| t == t1));
            assert!(all2.iter().all(|&t| t == t2));
            // Tagged messaging round-trip on a fresh tag.
            let next = (proc.rank() + 1) % proc.nprocs();
            let prev = (proc.rank() + proc.nprocs() - 1) % proc.nprocs();
            proc.send_vec_tagged(next, t1, vec![proc.rank() as u8]);
            let got: Vec<u8> = proc.recv_vec_tagged(prev, t1);
            assert_eq!(got, vec![prev as u8]);
        })
        .unwrap();
}

#[test]
fn virtual_time_respects_causality_chains() {
    // A token passes around the ring; each hop must strictly advance the
    // virtual clock by at least tau.
    let p = 5;
    let model = MachineModel::cm5();
    let out = Machine::with_model(p, model)
        .run(|proc| {
            let me = proc.rank();
            let mut stamps = Vec::new();
            if me == 0 {
                proc.send(1, 1, 0u8);
                let _: u8 = proc.recv(p - 1, 1);
                stamps.push(proc.now());
            } else {
                let _: u8 = proc.recv(me - 1, 1);
                stamps.push(proc.now());
                proc.send((me + 1) % p, 1, 0u8);
            }
            stamps[0]
        })
        .unwrap();
    // Arrival times strictly increase along the ring.
    for w in out[1..].windows(2) {
        assert!(w[1] > w[0] + model.tau / 2.0, "ring times must increase: {out:?}");
    }
    // Rank 0's completion is the latest.
    assert!(out[0] > out[p - 1]);
}

#[test]
fn zero_byte_messages_cost_only_tau() {
    let model = MachineModel::new(7.0, 100.0, 0.0);
    let out = Machine::with_model(2, model)
        .run(|proc| {
            if proc.rank() == 0 {
                proc.send_vec(1, 1, Vec::<u64>::new());
            } else {
                let v: Vec<u64> = proc.recv_vec(0, 1);
                assert!(v.is_empty());
            }
            proc.now()
        })
        .unwrap();
    assert_eq!(out[0], 7.0); // tau only, no per-byte term
    assert_eq!(out[1], 7.0);
}

#[test]
fn many_small_machines_in_sequence() {
    // Machines are cheap to create and tear down; loop a few dozen.
    for i in 0..40 {
        let p = 1 + i % 5;
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| proc.combine(proc.rank(), |a, b| a.max(b)))
            .unwrap();
        assert_eq!(out, vec![p - 1; p]);
    }
}

#[test]
fn recv_timeout_is_configurable() {
    let start = std::time::Instant::now();
    let err = Machine::new(2)
        .recv_timeout(Duration::from_millis(50))
        .run(|proc| {
            if proc.rank() == 0 {
                let _: u8 = proc.recv(1, 9);
            }
        })
        .unwrap_err();
    assert!(format!("{err}").contains("timed out"));
    assert!(start.elapsed() < Duration::from_secs(5));
}

#[test]
fn reduce_to_every_root_works() {
    let p = 5;
    for root in 0..p {
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| proc.reduce(root, proc.rank() as u64 + 1, |a, b| a + b))
            .unwrap();
        for (rank, r) in out.into_iter().enumerate() {
            if rank == root {
                assert_eq!(r, Some(15));
            } else {
                assert_eq!(r, None);
            }
        }
    }
}

#[test]
fn phase_times_survive_heavy_nesting() {
    let out = Machine::with_model(1, MachineModel::new(0.0, 0.0, 1.0))
        .run(|proc| {
            for _ in 0..100 {
                proc.phase_begin("outer");
                proc.charge_ops(1);
                proc.phase_begin("inner");
                proc.charge_ops(2);
                proc.phase_end("inner");
                proc.phase_end("outer");
            }
            (proc.phase_time("outer"), proc.phase_time("inner"))
        })
        .unwrap();
    assert_eq!(out[0], (300.0, 200.0));
}
