//! # cgselect — practical parallel selection for coarse-grained machines
//!
//! A complete, from-scratch reproduction of *Al-Furaih, Aluru, Goil, Ranka —
//! "Practical Algorithms for Selection on Coarse-Grained Parallel
//! Computers"* (IPPS 1996), packaged as a reusable Rust library.
//!
//! Given `n` keys distributed over `p` processors and a rank `k`, the
//! library finds the element of rank `k` (e.g. the median) with any of the
//! paper's four parallel algorithms, optionally re-balancing data between
//! iterations with any of the paper's load balancing strategies.
//!
//! The "machine" is this repository's own SPMD runtime: `p` virtual
//! processors (OS threads) connected by a virtual crossbar, with all of the
//! paper's communication primitives and a deterministic two-level
//! `(τ, μ, t_op)` cost model whose CM-5 preset reproduces the shape of the
//! paper's measurements. Real wall-clock benchmarks are provided as well
//! (criterion, in `crates/bench`).
//!
//! ## Layered crates
//!
//! | Re-exported module | Crate | Contents |
//! |---|---|---|
//! | [`runtime`] | `cgselect-runtime` | SPMD machine, collectives, cost model, persistent sessions |
//! | [`seqsel`] | `cgselect-seqsel` | sequential kernels (BFPRT, quickselect, Floyd–Rivest, buckets) |
//! | [`sort`] | `cgselect-sort` | sample sort / bitonic sort substrate |
//! | [`balance`] | `cgselect-balance` | the four load balancers |
//! | [`core`] | `cgselect-core` | the four parallel selection algorithms |
//! | [`engine`] | `cgselect-engine` | persistent sharded query engine (batched ranks/quantiles) |
//! | [`workloads`] | `cgselect-workloads` | reproducible experiment inputs |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Serving queries instead of running one selection
//!
//! For the one-shot paper experiments use [`select_on_machine`]; to keep
//! data resident across many queries use the [`Engine`]. Its typed v2
//! surface ([`Engine::run`]) covers both directions — rank → element and
//! the inverse element → rank / range → count — with per-answer
//! provenance; the original [`Query`] enum keeps working through the
//! [`Engine::execute`] compatibility shim:
//!
//! ```
//! use cgselect::{Answer, Bounds, Engine, EngineConfig, Query, Request};
//!
//! let mut engine: Engine<u64> = Engine::new(EngineConfig::new(4)).unwrap();
//! engine.ingest((0..10_000u64).rev().collect()).unwrap();
//! let report = engine
//!     .execute(&[Query::Median, Query::quantile(0.99), Query::TopK(3)])
//!     .unwrap();
//! assert_eq!(report.answers[0], Answer::Value(4_999));
//! assert_eq!(report.answers[2], Answer::Top(vec![0, 1, 2]));
//!
//! // v2: inverse queries with provenance and accuracy contracts.
//! let run = engine
//!     .run(&[
//!         Request::rank_of(2_500),
//!         Request::count_between(Bounds::closed(1_000, 1_999)),
//!     ])
//!     .unwrap();
//! assert_eq!(run.outcomes[0].response.count(), Some(2_500));
//! assert_eq!(run.outcomes[1].response.count(), Some(1_000));
//! ```
//!
//! For concurrent clients, hand the engine to the async frontend: each
//! client submits single queries and awaits a [`Ticket`], while the
//! batcher thread coalesces everything arriving within the micro-batch
//! window into one collective pass:
//!
//! ```
//! use cgselect::{Answer, Engine, EngineConfig, FrontendConfig, Query};
//!
//! let mut engine: Engine<u64> = Engine::new(EngineConfig::new(4)).unwrap();
//! engine.ingest((0..10_000u64).rev().collect()).unwrap();
//! let queue = engine.into_frontend(FrontendConfig::new());
//! let t1 = queue.submit(Query::Median).unwrap();
//! let t2 = queue.submit(Query::TopK(2)).unwrap();
//! assert_eq!(t1.wait(), Ok(Answer::Value(4_999)));
//! assert_eq!(t2.wait(), Ok(Answer::Top(vec![0, 1])));
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use cgselect::{median_on_machine, Algorithm, MachineModel, SelectionConfig};
//!
//! // 8 virtual processors, 10_000 keys each.
//! let parts: Vec<Vec<u64>> = (0..8)
//!     .map(|r| (0..10_000u64).map(|i| i * 8 + r).collect())
//!     .collect();
//! let sel = median_on_machine(
//!     8,
//!     MachineModel::cm5(),
//!     &parts,
//!     Algorithm::FastRandomized,
//!     &SelectionConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(sel.value, 39_999); // median of 0..80_000
//! println!("virtual time: {:.4}s over {} iterations", sel.makespan(), sel.iterations());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The SPMD runtime (machine, processors, collectives, cost model).
pub use cgselect_runtime as runtime;

/// Sequential selection kernels with measured operation counts.
pub use cgselect_seqsel as seqsel;

/// Parallel sorting substrate (PSRS, bitonic, distributed rank lookup).
pub use cgselect_sort as sort;

/// Load balancing strategies (paper §4).
pub use cgselect_balance as balance;

/// The parallel selection algorithms (paper §3).
pub use cgselect_core as core;

/// The persistent sharded selection/quantile query engine.
pub use cgselect_engine as engine;

/// Experiment input generators.
pub use cgselect_workloads as workloads;

pub use cgselect_balance::{BalanceReport, Balancer};
pub use cgselect_core::{
    median_on_machine, multi_select_on_machine, parallel_median, parallel_multi_select,
    parallel_select, parallel_top_k, parallel_weighted_median, parallel_weighted_select,
    select_on_machine, top_k_on_machine, Algorithm, LocalKernel, MachineSelection, SampleSortAlgo,
    SelectionConfig, SelectionOutcome, Weighted,
};
pub use cgselect_engine::{
    measure_rounds, quantile_rank, Accuracy, Answer, AsyncError, BackendChoice, BackendError,
    BackendKind, BatchReport, BatchSpan, Bounds, ChannelMp, ChannelMpTuning, CostAttribution,
    Engine, EngineConfig, EngineError, EpsSketch, ExecBackend, ExecutionMode, Fault, Freshness,
    FrontendConfig, FrontendStats, IndexHealth, LocalSpmd, MetricsRegistry, MetricsSnapshot,
    MutationReport, MutationTicket, Outcome, OutcomeTicket, Phase, PhaseOps, PhaseSpan,
    PhaseSummary, Query, QueryKind, QueryTicket, RankSet, RecoveryReport, RefreshPolicy, Request,
    RequestSpan, Response, RoundsMeasurement, RunReport, Served, SloAccumulator, SloPolicy,
    SloReport, SocketMp, SocketMpTuning, StandingHandle, StandingTicket, StandingUpdate,
    SubmissionQueue, SubmitError, SubscriptionId, Ticket, TraceId,
};
pub use cgselect_runtime::{
    CommStats, Key, Machine, MachineModel, OrdF64, Proc, RunError, Session, ShardStore,
};
pub use cgselect_seqsel::{median_rank, rank_from_one_based};
pub use cgselect_workloads::{generate, generate_with_layout, Distribution, Layout, Stats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trip() {
        let parts = generate(Distribution::Random, 4000, 4, 1);
        let sel = select_on_machine(
            4,
            MachineModel::cm5(),
            &parts,
            2000,
            Algorithm::Randomized,
            &SelectionConfig::default(),
        )
        .unwrap();
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(sel.value, all[2000]);
    }
}
