//! The persistent engine's two amortization experiments.
//!
//! **Experiment 1 — batching** (the PR-2 claim, `results/engine.{csv,txt}`):
//! for batches of R rank queries over the same resident data, one coalesced
//! multi-select pass vs R single-query calls, on the baseline (index-free)
//! engine — in collective rounds, virtual seconds (CM-5 model), and host
//! wall-clock. Round accounting comes from `cgselect_engine::measure_rounds`,
//! the same helper `tests/engine.rs` asserts on.
//!
//! **Experiment 2 — the resident bucket index**
//! (`results/engine_indexed.{csv,txt}`): the indexed engine vs the PR-2
//! batched baseline on two workloads — fresh distinct-rank batches
//! (localization pays) and a repeated-quantile stream (the histogram fast
//! path pays) — reporting collective ops/query, virtual makespan, wall
//! clock, and histogram hit counts. The indexed exact path clones nothing:
//! the multi-select runs over candidate buckets borrowed in place, so the
//! baseline's per-batch full-shard copy + scan is simply absent.
//!
//! Pass `--quick` for a reduced grid. Pass `--check` to exit non-zero
//! unless the indexed engine uses no more collective ops/query than the
//! baseline on both workloads *and* at least 2× fewer on the
//! repeated-quantile workload — the CI perf-smoke regression guard.

use std::time::Instant;

use cgselect_bench::chart::{markdown_table, write_csv, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_engine::{
    measure_rounds, BackendChoice, ChannelMpTuning, Engine, EngineConfig, ExecutionMode,
    IndexHealth, Query,
};
use cgselect_workloads::{generate, Distribution};

fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// One mode × workload measurement of experiment 2.
struct Run {
    workload: &'static str,
    mode: &'static str,
    batches: usize,
    queries: usize,
    collective_ops: u64,
    makespan: f64,
    wall: f64,
    health: IndexHealth,
}

impl Run {
    fn ops_per_query(&self) -> f64 {
        self.collective_ops as f64 / self.queries as f64
    }
}

fn drive(
    workload: &'static str,
    mode: &'static str,
    index_buckets: usize,
    backend: BackendChoice,
    data: &[u64],
    p: usize,
    batches: &[Vec<Query>],
) -> Run {
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).index_buckets(index_buckets).backend(backend))
            .expect("engine start");
    engine.ingest(data.to_vec()).expect("ingest");
    let wall0 = Instant::now();
    let mut collective_ops = 0u64;
    let mut makespan = 0.0f64;
    let mut queries = 0usize;
    for batch in batches {
        let report = engine.execute(batch).expect("execute");
        collective_ops += report.collective_ops;
        makespan += report.makespan;
        queries += batch.len();
    }
    Run {
        workload,
        mode,
        batches: batches.len(),
        queries,
        collective_ops,
        makespan,
        wall: wall0.elapsed().as_secs_f64(),
        health: engine.index_health(),
    }
}

/// Experiment 1: batched vs per-query on the baseline engine.
fn batching_experiment(quick: bool, dir: &std::path::Path) {
    let p = 8;
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let batch_sizes: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64, 256] };

    let data: Vec<u64> = generate(Distribution::Random, n, p, 7).into_iter().flatten().collect();
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).index_buckets(0)).expect("engine start");
    engine.ingest(data).expect("ingest");
    let total = engine.len();

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &r in batch_sizes {
        let queries: Vec<Query> = (0..r)
            .map(|i| Query::Rank((i as u64 * (total - 1)) / r.max(2) as u64 + i as u64 % 3))
            .collect();

        let wall0 = Instant::now();
        let batched =
            measure_rounds(&mut engine, &queries, ExecutionMode::Batched).expect("batched execute");
        let batched_wall = wall0.elapsed().as_secs_f64();

        let wall0 = Instant::now();
        let single =
            measure_rounds(&mut engine, &queries, ExecutionMode::PerQuery).expect("single execute");
        let single_wall = wall0.elapsed().as_secs_f64();

        rows.push(format!(
            "{n},{p},{r},{},{},{:.6},{:.6},{},{},{:.6},{:.6}",
            batched.collective_ops,
            single.collective_ops,
            batched.makespan,
            single.makespan,
            batched.msgs_sent,
            single.msgs_sent,
            batched_wall,
            single_wall
        ));
        table.push(vec![
            r.to_string(),
            batched.collective_ops.to_string(),
            single.collective_ops.to_string(),
            format!("{:.1}x", single.collective_ops as f64 / batched.collective_ops as f64),
            format!("{:.2}", batched.rounds_per_query()),
            format!("{:.2}", single.rounds_per_query()),
            format!("{:.4}", batched.makespan),
            format!("{:.4}", single.makespan),
            format!("{:.1}x", single.makespan / batched.makespan.max(1e-12)),
        ]);
        println!(
            "R={r:>4}: collective ops {:>6} batched vs {:>7} single ({:.1}x, \
             {:.2} vs {:.2} rounds/query); virtual {:.4}s vs {:.4}s; wall {:.3}s vs {:.3}s",
            batched.collective_ops,
            single.collective_ops,
            single.collective_ops as f64 / batched.collective_ops as f64,
            batched.rounds_per_query(),
            single.rounds_per_query(),
            batched.makespan,
            single.makespan,
            batched_wall,
            single_wall
        );
    }

    let out = format!(
        "Batched vs per-query execution on the persistent engine (baseline, index off)\n\
         (n = {n}, p = {p}, random resident data; virtual times under the CM-5 model)\n\n{}\n\
         One multi-select pass resolves a whole batch in O(log n + R) pivot\n\
         rounds; R single-rank calls pay O(R log n). The ratio grows with R.\n",
        markdown_table(
            &[
                "R",
                "coll. ops (batch)",
                "coll. ops (single)",
                "ops ratio",
                "rounds/query (batch)",
                "rounds/query (single)",
                "virtual s (batch)",
                "virtual s (single)",
                "time ratio"
            ],
            &table
        )
    );
    write_csv(
        &dir.join("engine.csv"),
        "n,p,batch,collective_ops_batched,collective_ops_single,makespan_batched,\
         makespan_single,msgs_batched,msgs_single,wall_batched,wall_single",
        &rows,
    );
    write_text(&dir.join("engine.txt"), &out);
    print!("{out}");
}

/// Experiment 2: resident bucket index vs the batched baseline.
fn index_experiment(quick: bool, dir: &std::path::Path) -> bool {
    let p = 8;
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let data: Vec<u64> = generate(Distribution::Random, n, p, 11).into_iter().flatten().collect();
    let total = data.len() as u64;

    // Workload A: fresh distinct ranks every batch (no repeats to cache).
    let distinct_batches: Vec<Vec<Query>> = (0..8u64)
        .map(|b| (0..32u64).map(|i| Query::Rank((i * total / 32 + b * 97 + i) % total)).collect())
        .collect();
    // Workload B: the same quantile set, batch after batch (a dashboard).
    let quantiles: Vec<Query> = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .into_iter()
        .map(Query::quantile)
        .chain([Query::Median])
        .collect();
    let repeated_batches: Vec<Vec<Query>> = (0..16).map(|_| quantiles.clone()).collect();

    let local = BackendChoice::LocalSpmd;
    let mp = || BackendChoice::ChannelMp(ChannelMpTuning::default());
    let runs = vec![
        drive("distinct-ranks", "baseline", 0, local.clone(), &data, p, &distinct_batches),
        drive("distinct-ranks", "indexed", 64, local.clone(), &data, p, &distinct_batches),
        drive("distinct-ranks", "indexed-mp", 64, mp(), &data, p, &distinct_batches),
        drive("repeated-quantiles", "baseline", 0, local.clone(), &data, p, &repeated_batches),
        drive("repeated-quantiles", "indexed", 64, local, &data, p, &repeated_batches),
        drive("repeated-quantiles", "indexed-mp", 64, mp(), &data, p, &repeated_batches),
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for run in &runs {
        rows.push(format!(
            "{},{},{n},{p},{},{},{},{:.4},{:.6},{:.6},{},{},{}",
            run.workload,
            run.mode,
            run.batches,
            run.queries,
            run.collective_ops,
            run.ops_per_query(),
            run.makespan,
            run.wall,
            run.health.histogram_hits,
            run.health.rebuilds,
            run.health.buckets,
        ));
        table.push(vec![
            run.workload.to_string(),
            run.mode.to_string(),
            run.queries.to_string(),
            run.collective_ops.to_string(),
            format!("{:.2}", run.ops_per_query()),
            format!("{:.5}", run.makespan),
            format!("{:.3}", run.wall),
            run.health.histogram_hits.to_string(),
        ]);
        println!(
            "{:>18} | {:>8}: {:>6} coll. ops over {} queries ({:.2}/query); \
             virtual {:.5}s; wall {:.3}s; histogram hits {}",
            run.workload,
            run.mode,
            run.collective_ops,
            run.queries,
            run.ops_per_query(),
            run.makespan,
            run.wall,
            run.health.histogram_hits
        );
    }

    let find = |w: &str, m: &str| {
        runs.iter().find(|r| r.workload == w && r.mode == m).expect("run recorded")
    };
    let ratio = |w: &str| {
        find(w, "baseline").ops_per_query() / find(w, "indexed").ops_per_query().max(1e-12)
    };
    let out = format!(
        "Resident bucket index vs the batched baseline\n\
         (n = {n}, p = {p}, random resident data; virtual times under the CM-5 model;\n\
         indexed-mp = the same indexed engine on the message-passing ChannelMp backend)\n\n{}\n\
         Localization against the cached per-bucket histogram confines each\n\
         rank to a candidate-bucket window (borrowed in place — the baseline's\n\
         per-batch full-shard clone does not exist on the indexed path), and\n\
         answer-refined splitters turn repeated quantiles into histogram-only\n\
         lookups. Collective-ops ratios: distinct-ranks {:.1}x, \n\
         repeated-quantiles {:.1}x.\n",
        markdown_table(
            &[
                "workload",
                "mode",
                "queries",
                "coll. ops",
                "ops/query",
                "virtual s",
                "wall s",
                "histogram hits"
            ],
            &table
        ),
        ratio("distinct-ranks"),
        ratio("repeated-quantiles"),
    );
    write_csv(
        &dir.join("engine_indexed.csv"),
        "workload,mode,n,p,batches,queries,collective_ops,ops_per_query,makespan,wall_s,\
         histogram_hits,index_rebuilds,buckets",
        &rows,
    );
    write_text(&dir.join("engine_indexed.txt"), &out);
    print!("{out}");

    // The regression guard CI asserts on.
    let mut ok = true;
    for w in ["distinct-ranks", "repeated-quantiles"] {
        if ratio(w) < 1.0 {
            eprintln!("PERF REGRESSION: indexed ops/query exceeds baseline on {w}");
            ok = false;
        }
        // Backend-neutrality guard: the message-passing backend must pay
        // exactly the collective-round budget of the in-process session on
        // the engine_indexed workload — a drift means a backend diverged
        // from the shared per-shard ops.
        let (spmd, chan) = (find(w, "indexed"), find(w, "indexed-mp"));
        if spmd.collective_ops != chan.collective_ops {
            eprintln!(
                "BACKEND REGRESSION: ChannelMp used {} collective ops on {w}, \
                 LocalSpmd used {}",
                chan.collective_ops, spmd.collective_ops
            );
            ok = false;
        }
    }
    if ratio("repeated-quantiles") < 2.0 {
        eprintln!(
            "PERF REGRESSION: repeated-quantile ops/query ratio {:.2} < 2.0",
            ratio("repeated-quantiles")
        );
        ok = false;
    }
    ok
}

fn main() {
    let quick = quick_mode();
    let dir = results_dir();
    batching_experiment(quick, &dir);
    let ok = index_experiment(quick, &dir);
    println!("engine -> {}/engine.{{csv,txt}} + engine_indexed.{{csv,txt}}", dir.display());
    if check_mode() && !ok {
        std::process::exit(1);
    }
    if check_mode() {
        println!(
            "perf smoke: indexed engine within bounds (distinct <= baseline, repeated >= 2x) \
             and ChannelMp collective-round counts equal LocalSpmd's"
        );
    }
}
