//! Uniform reservoir sampling — retained for the metrics registry's
//! self-served latency percentiles.
//!
//! The serving ladder no longer uses reservoirs (the deterministic
//! [`super::EpsSketch`] replaced that rung), so this is the minimal
//! surface [`crate::obs::MetricsRegistry`] needs: a bounded uniform sample
//! (Vitter's Algorithm R, deterministic in the seed) plus the weighted
//! rank estimator its percentile queries run through.

use cgselect_runtime::Key;
use cgselect_seqsel::KernelRng;

/// A uniform reservoir sample of an observed stream.
#[derive(Clone, Debug)]
pub struct ReservoirSketch<T> {
    capacity: usize,
    seen: u64,
    samples: Vec<T>,
    rng: KernelRng,
}

impl<T: Key> ReservoirSketch<T> {
    /// An empty sketch holding at most `capacity` samples; the RNG stream
    /// is derived from `seed`, so equal streams sample reproducibly.
    pub fn new(capacity: usize, seed: u64) -> Self {
        ReservoirSketch {
            capacity,
            seen: 0,
            samples: Vec::with_capacity(capacity.min(1024)),
            rng: KernelRng::new(seed ^ 0x5EE7_C4A1_0000_0001),
        }
    }

    /// Offers one observed element (Algorithm R).
    pub fn offer(&mut self, x: T) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(x);
        } else if self.capacity > 0 {
            let j = self.rng.below(self.seen);
            if (j as usize) < self.capacity {
                self.samples[j as usize] = x;
            }
        }
    }

    /// The current samples (unordered).
    pub fn samples(&self) -> &[T] {
        &self.samples
    }

    /// How many elements this sketch has observed.
    pub fn population(&self) -> u64 {
        self.seen
    }
}

/// Estimates the element of 0-based global rank `target` from
/// `(samples, population)` pairs, weighting each sample by `nᵢ/mᵢ`.
///
/// # Panics
/// Panics if every sample set is empty.
pub fn estimate_rank<T: Key>(shards: &[(Vec<T>, u64)], target: u64) -> T {
    let mut weighted: Vec<(T, f64)> = Vec::new();
    for (samples, n) in shards {
        if samples.is_empty() {
            continue;
        }
        let w = *n as f64 / samples.len() as f64;
        weighted.extend(samples.iter().map(|&x| (x, w)));
    }
    assert!(!weighted.is_empty(), "rank estimate over empty sketches");
    weighted.sort_unstable_by_key(|&(x, _)| x);
    // The element whose cumulative weight first covers the target rank
    // (+1: ranks are 0-based, cumulative weights are counts).
    let target = target as f64 + 1.0;
    let mut cum = 0.0;
    for &(x, w) in &weighted {
        cum += w;
        if cum >= target {
            return x;
        }
    }
    weighted.last().expect("nonempty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_capacity_is_lossless() {
        let mut s = ReservoirSketch::new(16, 7);
        for x in 0..10u64 {
            s.offer(x);
        }
        assert_eq!(s.population(), 10);
        let mut got = s.samples().to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn above_capacity_keeps_capacity_samples() {
        let mut s = ReservoirSketch::new(8, 3);
        for x in 0..1000u64 {
            s.offer(x);
        }
        assert_eq!(s.samples().len(), 8);
        assert_eq!(s.population(), 1000);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Offer 0..2000 into a 100-slot reservoir many times; the mean of
        // the kept samples must approach the stream mean.
        let mut grand_total = 0.0;
        let reps = 40;
        for seed in 0..reps {
            let mut s = ReservoirSketch::new(100, seed);
            for x in 0..2000u64 {
                s.offer(x);
            }
            grand_total += s.samples().iter().sum::<u64>() as f64 / s.samples().len() as f64;
        }
        let mean = grand_total / reps as f64;
        assert!((mean - 999.5).abs() < 60.0, "reservoir mean {mean:.1} far from stream mean 999.5");
    }

    #[test]
    fn estimate_is_exact_on_lossless_samples() {
        // Two sample sets, both complete: estimates must equal the oracle.
        let a: Vec<u64> = (0..50).map(|i| i * 2).collect(); // evens
        let b: Vec<u64> = (0..50).map(|i| i * 2 + 1).collect(); // odds
        let shards = vec![(a.clone(), 50u64), (b.clone(), 50u64)];
        let mut all: Vec<u64> = a.into_iter().chain(b).collect();
        all.sort_unstable();
        for target in [0u64, 1, 49, 50, 98, 99] {
            assert_eq!(estimate_rank(&shards, target), all[target as usize], "rank {target}");
        }
    }
}
