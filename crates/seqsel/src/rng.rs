//! A tiny, deterministic, platform-independent PRNG for the kernels.

/// xorshift64* generator.
///
/// The randomized *parallel* algorithms require every processor to draw an
/// **identical** random stream from a shared seed (paper §3.3: "All
/// processors use the same random number generator with the same seed").
/// Depending on an external crate's generator would tie reproducibility to
/// its version; this 10-line generator is deterministic forever.
#[derive(Clone, Debug)]
pub struct KernelRng {
    state: u64,
}

impl KernelRng {
    /// Creates a generator from a seed (any value; zero is remapped).
    pub fn new(seed: u64) -> Self {
        // xorshift must not start at 0; splitmix the seed once to decorrelate
        // small consecutive seeds as well.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: if z == 0 { 0x1234_5678_9ABC_DEF1 } else { z } }
    }

    /// Derives an independent stream for `stream_id` (e.g. one per
    /// processor rank) from the same master seed.
    pub fn derive(seed: u64, stream_id: u64) -> Self {
        Self::new(seed ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// The raw generator state — with [`KernelRng::from_state`], lets a
    /// checkpoint or shard migration resume a stream mid-flight.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a state captured by [`KernelRng::state`],
    /// continuing the exact stream (unlike [`KernelRng::new`], which mixes
    /// its argument as a fresh seed).
    pub fn from_state(state: u64) -> Self {
        // xorshift state must never be 0; a captured state can't be 0 either,
        // but guard against hand-rolled values.
        Self { state: if state == 0 { 0x1234_5678_9ABC_DEF1 } else { state } }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)` (Lemire's multiply-shift; the bias for
    /// `n ≪ 2^64` is far below anything observable here).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "KernelRng::below(0)");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = KernelRng::new(42);
        let mut b = KernelRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = KernelRng::new(1);
        let mut b = KernelRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_streams_differ() {
        let mut a = KernelRng::derive(7, 0);
        let mut b = KernelRng::derive(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = KernelRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = KernelRng::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = KernelRng::new(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }
}
