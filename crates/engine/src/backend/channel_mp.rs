//! The message-passing backend: one long-lived worker thread per shard,
//! commands and replies as serialized byte frames.
//!
//! [`ChannelMp`] is the dress rehearsal for out-of-process/remote shards.
//! Unlike [`super::LocalSpmd`], where the host ships shared closures into a
//! [`cgselect_runtime::Session`], here the host holds **no shard state and
//! no code pointer into the workers**: every verb is encoded as a byte
//! frame (`super::wire`), sent down a per-worker channel, decoded by the
//! worker, executed against its owned `super::ops::Shard`, and answered
//! with another byte frame. Only the per-batch pivot *seed* crosses the
//! wire per execute; the rest of the selection tuning is deployment
//! configuration every worker received at spawn. Shard-to-shard
//! collectives ride the same in-process [`cgselect_runtime::Proc`] fabric
//! as `LocalSpmd` (obtained via [`cgselect_runtime::Machine::procs`]),
//! which is precisely what keeps collective-round counts identical across
//! backends; swapping that fabric for a socket transport is the ROADMAP
//! follow-up.
//!
//! Failure semantics mirror session poisoning, surfaced as typed
//! [`BackendError`]s: a worker that panics mid-program reports the panic in
//! its reply frame (its peers fail shortly after with receive timeouts,
//! triaged as secondary fallout); a worker that never replies within
//! [`ChannelMpTuning::reply_timeout`] is reported as
//! [`BackendError::WorkerUnresponsive`]. Either way the backend is
//! poisoned and every later call fails fast with
//! [`BackendError::Poisoned`]. [`Fault`] injection exists so the
//! conformance harness can force each of these paths deterministically.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::Duration;

use cgselect_balance::Balancer;
use cgselect_core::SelectionConfig;
use cgselect_runtime::{panic_message, Key, Machine, Proc, RunError};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::index::BucketStats;
use crate::EngineConfig;

use super::ops::{self, Shard};
use super::wire::{Reader, Writer};
use super::{BackendError, BackendKind, BatchPlan, ExecBackend, ShardBatchOutcome, ShardDeletion};

// Command frame tags (host -> worker).
const CMD_EXIT: u8 = 0;
const CMD_INGEST: u8 = 1;
const CMD_DELETE: u8 = 2;
const CMD_REBALANCE: u8 = 3;
const CMD_BUILD_INDEX: u8 = 4;
const CMD_MERGE_DELTA: u8 = 5;
const CMD_EXECUTE: u8 = 6;

// Reply frame status bytes (worker -> host).
const REPLY_OK: u8 = 0;
const REPLY_PANICKED: u8 = 1;
const REPLY_PENDING_MESSAGES: u8 = 2;
const REPLY_UNBALANCED_PHASES: u8 = 3;

/// Tuning (and test instrumentation) of the [`ChannelMp`] backend.
#[derive(Clone, Debug)]
pub struct ChannelMpTuning {
    /// How long the host waits for each worker's reply frame before
    /// declaring it [`BackendError::WorkerUnresponsive`] and poisoning the
    /// backend. Keep comfortably **above** `proc_timeout`: when a worker
    /// dies mid-collective its surviving peers only report (as secondary
    /// timeout panics) after `proc_timeout` has elapsed, and those reports
    /// must reach the host before its own reply deadline fires or typed
    /// root causes degrade to spurious `WorkerUnresponsive`.
    pub reply_timeout: Duration,
    /// The workers' collective receive timeout (how long a shard blocked in
    /// a collective waits for a dead peer before failing itself).
    pub proc_timeout: Duration,
    /// Injected faults, for exercising the failure paths deterministically.
    pub faults: Vec<Fault>,
}

impl Default for ChannelMpTuning {
    fn default() -> Self {
        ChannelMpTuning {
            // 2x the collective timeout: headroom for peers' timeout
            // reports to arrive before the host declares silence.
            reply_timeout: Duration::from_secs(60),
            proc_timeout: Duration::from_secs(30),
            faults: Vec::new(),
        }
    }
}

impl ChannelMpTuning {
    /// Defaults: 60 s reply timeout, 30 s collective timeout, no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style reply-timeout choice.
    pub fn reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Builder-style collective-timeout choice.
    pub fn proc_timeout(mut self, timeout: Duration) -> Self {
        self.proc_timeout = timeout;
        self
    }

    /// Builder-style fault injection.
    pub fn fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// An injected fault, for pinning down [`ChannelMp`]'s typed-error and
/// poisoning behavior in tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Worker `rank` panics *mid-batch* while serving its `nth`
    /// batch-execute command (0-based): it enters the batch's opening
    /// barrier, then dies, leaving its peers mid-collective.
    PanicOnExecute {
        /// The faulty worker.
        rank: usize,
        /// Which of its execute commands triggers the panic.
        nth: u64,
    },
    /// Worker `rank` executes its `nth` batch-execute command to completion
    /// but its reply frame is lost (never sent).
    DropReplyOnExecute {
        /// The faulty worker.
        rank: usize,
        /// Which of its execute commands loses its reply.
        nth: u64,
    },
    /// Worker `rank` sleeps `delay` before serving every command — a
    /// straggling shard. Must be well below both timeouts; the program
    /// still completes correctly, just later.
    SlowShard {
        /// The slow worker.
        rank: usize,
        /// Extra latency per command.
        delay: Duration,
    },
}

/// Everything a worker needs at spawn besides its `Proc`: deployment
/// configuration, moved (not serialized) into the thread exactly as argv
/// and config files reach a remote shard process out of band.
struct WorkerInit {
    rank: usize,
    sketch_capacity: usize,
    selection: SelectionConfig,
    balancer: Balancer,
    faults: Vec<Fault>,
}

struct WorkerLink {
    cmd: Sender<Vec<u8>>,
    reply: Receiver<Vec<u8>>,
    handle: Option<JoinHandle<()>>,
}

/// The message-passing execution backend (see the [module docs](self)).
pub struct ChannelMp<T: Key> {
    workers: Vec<WorkerLink>,
    reply_timeout: Duration,
    poisoned: bool,
    _marker: PhantomData<fn(T)>,
}

impl<T: Key> ChannelMp<T> {
    /// Spawns the per-shard worker threads with empty shards resident.
    pub(crate) fn start(cfg: &EngineConfig, tuning: ChannelMpTuning) -> Self {
        let machine = Machine::with_model(cfg.nprocs, cfg.model).recv_timeout(tuning.proc_timeout);
        let workers = machine
            .procs()
            .into_iter()
            .enumerate()
            .map(|(rank, proc)| {
                let (cmd_tx, cmd_rx) = unbounded::<Vec<u8>>();
                let (reply_tx, reply_rx) = unbounded::<Vec<u8>>();
                let init = WorkerInit {
                    rank,
                    sketch_capacity: cfg.sketch_capacity,
                    selection: cfg.selection.clone(),
                    balancer: cfg.balancer,
                    faults: tuning.faults.clone(),
                };
                let handle = std::thread::Builder::new()
                    .name(format!("cgselect-mp-shard{rank}"))
                    .spawn(move || worker_loop::<T>(proc, init, cmd_rx, reply_tx))
                    .expect("failed to spawn channel-mp shard worker");
                WorkerLink { cmd: cmd_tx, reply: reply_rx, handle: Some(handle) }
            })
            .collect();
        ChannelMp {
            workers,
            reply_timeout: tuning.reply_timeout,
            poisoned: false,
            _marker: PhantomData,
        }
    }

    /// Sends one frame per worker and collects one reply payload per
    /// worker, applying the session-style root-cause triage and poisoning
    /// on any failure.
    fn round_trip(&mut self, frames: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, BackendError> {
        if self.poisoned {
            return Err(BackendError::Poisoned);
        }
        debug_assert_eq!(frames.len(), self.workers.len());
        for (rank, (w, frame)) in self.workers.iter().zip(frames).enumerate() {
            if w.cmd.send(frame).is_err() {
                self.poisoned = true;
                return Err(BackendError::WorkerUnresponsive { rank });
            }
        }
        let mut payloads = Vec::with_capacity(self.workers.len());
        let mut failures: Vec<BackendError> = Vec::new();
        for (rank, w) in self.workers.iter().enumerate() {
            match w.reply.recv_timeout(self.reply_timeout) {
                Ok(frame) => match decode_reply_status(rank, frame) {
                    Ok(payload) => payloads.push(payload),
                    Err(e) => failures.push(e),
                },
                // Timeout or disconnect: the reply was lost or the worker
                // died without reporting.
                Err(_) => failures.push(BackendError::WorkerUnresponsive { rank }),
            }
        }
        if failures.is_empty() {
            return Ok(payloads);
        }
        self.poisoned = true;
        Err(triage(failures))
    }

    /// The same serialized frame for every worker.
    fn broadcast_frames(&self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let p = self.workers.len();
        let mut frames = Vec::with_capacity(p);
        for _ in 1..p {
            frames.push(frame.clone());
        }
        frames.push(frame);
        frames
    }
}

/// Root-cause triage over all failed ranks of one round trip: a failure a
/// worker *reported* (panic, protocol violation) beats a silent rank —
/// silence is usually fallout of someone else's death racing the reply
/// deadline, and must never mask the reported root cause no matter which
/// rank the host happened to poll first. Within the reported failures,
/// non-secondary beats timeout/disconnect fallout; a silent rank beats
/// pure secondary fallout (a dropped reply can itself be the root cause).
fn triage(failures: Vec<BackendError>) -> BackendError {
    debug_assert!(!failures.is_empty());
    let reported = failures
        .iter()
        .find(|e| !e.is_secondary() && !matches!(e, BackendError::WorkerUnresponsive { .. }));
    let unresponsive =
        failures.iter().find(|e| matches!(e, BackendError::WorkerUnresponsive { .. }));
    reported.or(unresponsive).or_else(|| failures.first()).cloned().expect("failures is non-empty")
}

/// Splits a reply frame into its ok-payload or typed error.
fn decode_reply_status(rank: usize, frame: Vec<u8>) -> Result<Vec<u8>, BackendError> {
    match frame.first().copied() {
        Some(REPLY_OK) => Ok(frame),
        Some(REPLY_PANICKED) => {
            let mut r = Reader::new(&frame);
            let message = r.str();
            r.finish();
            Err(BackendError::WorkerPanicked { rank, message })
        }
        Some(REPLY_PENDING_MESSAGES) => {
            let mut r = Reader::new(&frame);
            let detail = r.str();
            r.finish();
            Err(BackendError::Runtime(RunError::PendingMessages { rank, detail }))
        }
        Some(REPLY_UNBALANCED_PHASES) => {
            Err(BackendError::Runtime(RunError::UnbalancedPhases { rank }))
        }
        other => Err(BackendError::WorkerPanicked {
            rank,
            message: format!("malformed reply frame (status {other:?})"),
        }),
    }
}

impl<T: Key> ExecBackend<T> for ChannelMp<T> {
    fn nprocs(&self) -> usize {
        self.workers.len()
    }

    fn kind(&self) -> BackendKind {
        BackendKind::ChannelMp
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn ingest(&mut self, chunks: Vec<Vec<T>>) -> Result<Vec<u64>, BackendError> {
        assert_eq!(chunks.len(), self.workers.len(), "one ingest chunk per shard");
        let frames = chunks
            .into_iter()
            .map(|chunk| {
                let mut w = Writer::new(CMD_INGEST);
                w.keys(&chunk);
                w.into_frame()
            })
            .collect();
        let payloads = self.round_trip(frames)?;
        Ok(payloads
            .iter()
            .map(|frame| {
                let mut r = Reader::new(frame);
                let size = r.u64();
                r.finish();
                size
            })
            .collect())
    }

    fn delete(&mut self, values: Vec<T>) -> Result<Vec<ShardDeletion>, BackendError> {
        let mut w = Writer::new(CMD_DELETE);
        w.keys(&values);
        let payloads = self.round_trip(self.broadcast_frames(w.into_frame()))?;
        Ok(payloads
            .iter()
            .map(|frame| {
                let mut r = Reader::new(frame);
                let remaining = r.u64();
                let removed = r.u64s();
                r.finish();
                ShardDeletion { remaining, removed }
            })
            .collect())
    }

    fn rebalance(&mut self) -> Result<Vec<u64>, BackendError> {
        let payloads =
            self.round_trip(self.broadcast_frames(Writer::new(CMD_REBALANCE).into_frame()))?;
        Ok(payloads
            .iter()
            .map(|frame| {
                let mut r = Reader::new(frame);
                let size = r.u64();
                r.finish();
                size
            })
            .collect())
    }

    fn build_index(&mut self, buckets: usize) -> Result<Vec<BucketStats<T>>, BackendError> {
        let mut w = Writer::new(CMD_BUILD_INDEX);
        w.usize(buckets);
        let payloads = self.round_trip(self.broadcast_frames(w.into_frame()))?;
        Ok(payloads
            .iter()
            .map(|frame| {
                let mut r = Reader::new(frame);
                let stats = r.bucket_stats::<T>();
                r.finish();
                stats
            })
            .collect())
    }

    fn merge_delta(&mut self) -> Result<Vec<BucketStats<T>>, BackendError> {
        let payloads =
            self.round_trip(self.broadcast_frames(Writer::new(CMD_MERGE_DELTA).into_frame()))?;
        Ok(payloads
            .iter()
            .map(|frame| {
                let mut r = Reader::new(frame);
                let stats = r.bucket_stats::<T>();
                r.finish();
                stats
            })
            .collect())
    }

    fn execute(&mut self, plan: &BatchPlan<T>) -> Result<Vec<ShardBatchOutcome<T>>, BackendError> {
        let payloads = self.round_trip(self.broadcast_frames(encode_execute(plan)))?;
        Ok(payloads
            .iter()
            .map(|frame| {
                let mut r = Reader::new(frame);
                let exact_len = r.usize();
                let exact = (0..exact_len).map(|_| r.opt_key::<T>()).collect();
                let refines_len = r.usize();
                let refines = (0..refines_len).map(|_| r.bucket_stats::<T>()).collect();
                let probe_counts = r.u64s();
                let sketch_values = r.keys::<T>();
                let sketch_ranks = r.u64s();
                let phase_ops =
                    super::PhaseOps { probes: r.u64(), exact: r.u64(), sketch: r.u64() };
                let comm = r.comm_stats();
                let elapsed = r.f64();
                let spans = r.phase_spans();
                r.finish();
                ShardBatchOutcome {
                    exact,
                    refines,
                    probe_counts,
                    sketch_values,
                    sketch_ranks,
                    phase_ops,
                    comm,
                    elapsed,
                    spans,
                }
            })
            .collect())
    }
}

impl<T: Key> Drop for ChannelMp<T> {
    fn drop(&mut self) {
        // Join-on-drop, mirroring `Session`: tell every worker to exit and
        // wait for it, so dropping an engine never leaks shard threads.
        for w in &self.workers {
            let _ = w.cmd.send(vec![CMD_EXIT]);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// Serializes one batch plan. Only the per-batch pivot seed crosses the
/// wire; workers rebuild the full `SelectionConfig` from their deployment
/// copy. The coalesced rank set rides as runs and the value probes as
/// `(key, inclusive)` pairs.
fn encode_execute<T: Key>(plan: &BatchPlan<T>) -> Vec<u8> {
    let mut w = Writer::new(CMD_EXECUTE);
    w.u64(plan.selection.seed);
    w.bool(plan.use_index);
    w.u64(plan.full_total);
    w.u64(plan.delta_total);
    w.rank_set(&plan.exact_ranks);
    w.probes(&plan.value_probes);
    w.u64s(&plan.sketch_targets);
    w.probes(&plan.sketch_probes);
    w.usize(plan.groups.len());
    for g in plan.groups.iter() {
        w.group(g);
    }
    w.trace_context(&plan.trace);
    w.into_frame()
}

fn decode_execute<T: Key>(r: &mut Reader<'_>, base: &SelectionConfig) -> BatchPlan<T> {
    let mut selection = base.clone();
    selection.seed = r.u64();
    let use_index = r.bool();
    let full_total = r.u64();
    let delta_total = r.u64();
    let exact_ranks = r.rank_set();
    let value_probes = r.probes::<T>();
    let sketch_targets = r.u64s();
    let sketch_probes = r.probes::<T>();
    let group_count = r.usize();
    let groups = (0..group_count).map(|_| r.group()).collect();
    let trace = r.trace_context();
    BatchPlan {
        groups: std::sync::Arc::new(groups),
        exact_ranks: std::sync::Arc::new(exact_ranks),
        value_probes: std::sync::Arc::new(value_probes),
        sketch_targets: std::sync::Arc::new(sketch_targets),
        sketch_probes: std::sync::Arc::new(sketch_probes),
        selection,
        use_index,
        full_total,
        delta_total,
        trace,
    }
}

/// The shard worker's command loop: decode, execute against the owned
/// shard, run the end-of-program protocol, reply. A panic (injected or
/// real) or protocol violation is reported in the reply frame and ends the
/// loop, exactly as a `Session` worker stops serving after a failure.
fn worker_loop<T: Key>(
    mut proc: Proc,
    init: WorkerInit,
    commands: Receiver<Vec<u8>>,
    replies: Sender<Vec<u8>>,
) {
    let rank = init.rank;
    let mut shard: Shard<T> = ops::init_shard(rank, init.sketch_capacity, init.selection.seed);
    let slow_delay = init.faults.iter().find_map(|f| match f {
        Fault::SlowShard { rank: r, delay } if *r == rank => Some(*delay),
        _ => None,
    });
    let mut executes_served = 0u64;
    while let Ok(frame) = commands.recv() {
        if frame.first() == Some(&CMD_EXIT) {
            break;
        }
        if let Some(delay) = slow_delay {
            std::thread::sleep(delay);
        }
        let (panic_now, drop_reply) = if frame.first() == Some(&CMD_EXECUTE) {
            let nth = executes_served;
            executes_served += 1;
            (
                init.faults.iter().any(|f| {
                    matches!(f, Fault::PanicOnExecute { rank: r, nth: n } if *r == rank && *n == nth)
                }),
                init.faults.iter().any(|f| {
                    matches!(f, Fault::DropReplyOnExecute { rank: r, nth: n } if *r == rank && *n == nth)
                }),
            )
        } else {
            (false, false)
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_command::<T>(&mut proc, &mut shard, &init, &frame, panic_now)
        }));
        let reply = match outcome {
            Ok(Ok(payload)) => payload,
            Ok(Err(protocol_err)) => encode_protocol_error(&protocol_err),
            Err(payload) => {
                let mut w = Writer::new(REPLY_PANICKED);
                w.str(&panic_message(payload));
                w.into_frame()
            }
        };
        let failed = reply.first() != Some(&REPLY_OK);
        if drop_reply && !failed {
            // Simulate a lost reply frame: the program ran, the host never
            // hears about it. Keep serving (the host will poison itself).
            continue;
        }
        if replies.send(reply).is_err() || failed {
            // Host gone mid-run, or this program failed: this worker's Proc
            // state can no longer be trusted — stop serving.
            break;
        }
    }
}

fn run_command<T: Key>(
    proc: &mut Proc,
    shard: &mut Shard<T>,
    init: &WorkerInit,
    frame: &[u8],
    panic_now: bool,
) -> Result<Vec<u8>, RunError> {
    let mut r = Reader::new(frame);
    let mut w = Writer::new(REPLY_OK);
    match frame.first().copied() {
        Some(CMD_INGEST) => {
            let items = r.keys::<T>();
            r.finish();
            w.u64(ops::ingest_shard(proc, shard, items));
        }
        Some(CMD_DELETE) => {
            let values = r.keys::<T>();
            r.finish();
            let d = ops::delete_shard(proc, shard, &values);
            w.u64(d.remaining);
            w.u64s(&d.removed);
        }
        Some(CMD_REBALANCE) => {
            r.finish();
            w.u64(ops::rebalance_shard(proc, shard, init.balancer));
        }
        Some(CMD_BUILD_INDEX) => {
            let buckets = r.usize();
            r.finish();
            w.bucket_stats(&ops::build_index_shard(proc, shard, buckets));
        }
        Some(CMD_MERGE_DELTA) => {
            r.finish();
            w.bucket_stats(&ops::merge_delta_shard(proc, shard));
        }
        Some(CMD_EXECUTE) => {
            let plan = decode_execute::<T>(&mut r, &init.selection);
            r.finish();
            if panic_now {
                // Mid-batch: enter the batch's opening barrier (so the
                // peers are committed to the collective pass), then die.
                proc.barrier();
                panic!("injected fault: shard worker {} panicked mid-batch", init.rank);
            }
            let o = ops::execute_shard(proc, shard, &plan);
            w.usize(o.exact.len());
            for v in &o.exact {
                w.opt_key(*v);
            }
            w.usize(o.refines.len());
            for stats in &o.refines {
                w.bucket_stats(stats);
            }
            w.u64s(&o.probe_counts);
            w.keys(&o.sketch_values);
            w.u64s(&o.sketch_ranks);
            w.u64(o.phase_ops.probes);
            w.u64(o.phase_ops.exact);
            w.u64(o.phase_ops.sketch);
            w.comm_stats(&o.comm);
            w.f64(o.elapsed);
            w.phase_spans(&o.spans);
        }
        other => panic!("unknown command tag {other:?}"),
    }
    proc.finish_program()?;
    Ok(w.into_frame())
}

fn encode_protocol_error(err: &RunError) -> Vec<u8> {
    match err {
        RunError::PendingMessages { detail, .. } => {
            let mut w = Writer::new(REPLY_PENDING_MESSAGES);
            w.str(detail);
            w.into_frame()
        }
        RunError::UnbalancedPhases { .. } => Writer::new(REPLY_UNBALANCED_PHASES).into_frame(),
        // finish_program only produces the two protocol variants above.
        other => {
            let mut w = Writer::new(REPLY_PANICKED);
            w.str(&format!("unexpected protocol error: {other}"));
            w.into_frame()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panicked(rank: usize, message: &str) -> BackendError {
        BackendError::WorkerPanicked { rank, message: message.into() }
    }

    #[test]
    fn triage_prefers_reported_root_cause_over_silence() {
        // The regression shape: a lower rank's reply misses the deadline
        // (silence) while a higher rank's genuine panic sits queued — the
        // panic must win regardless of the host's rank-order polling.
        let err = triage(vec![
            BackendError::WorkerUnresponsive { rank: 0 },
            panicked(1, "proc 1 timed out after 30s waiting for (src=2, tag=0x1)"),
            panicked(2, "injected fault: shard worker 2 panicked mid-batch"),
        ]);
        assert_eq!(err, panicked(2, "injected fault: shard worker 2 panicked mid-batch"));
    }

    #[test]
    fn triage_prefers_silence_over_pure_secondary_fallout() {
        // Only timeout fallout + a silent rank: the dropped reply is the
        // best root-cause candidate available.
        let err = triage(vec![
            panicked(0, "proc 0 timed out after 1s waiting for (src=2, tag=0x1)"),
            BackendError::WorkerUnresponsive { rank: 2 },
        ]);
        assert_eq!(err, BackendError::WorkerUnresponsive { rank: 2 });
    }

    #[test]
    fn triage_falls_back_to_secondary_fallout() {
        let secondary = panicked(1, "all senders disconnected");
        assert_eq!(triage(vec![secondary.clone()]), secondary);
    }

    #[test]
    fn triage_prefers_protocol_errors_over_silence() {
        let protocol =
            BackendError::Runtime(RunError::PendingMessages { rank: 1, detail: "x".into() });
        let err = triage(vec![BackendError::WorkerUnresponsive { rank: 0 }, protocol.clone()]);
        assert_eq!(err, protocol);
    }

    #[test]
    fn default_tuning_gives_reply_deadline_headroom() {
        // Peers report a dead rank only after proc_timeout; the host's
        // reply deadline must sit beyond that or root causes degrade to
        // WorkerUnresponsive.
        let t = ChannelMpTuning::default();
        assert!(t.reply_timeout >= t.proc_timeout + t.proc_timeout / 2);
    }
}
