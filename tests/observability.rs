//! End-to-end observability: request-scoped spans, the metrics registry,
//! and SLO reports, exercised through the public facade on both backends.
//!
//! The contract under test: an observing engine attaches a [`BatchSpan`]
//! to every `RunReport` that links each `Outcome` back to the shard-side
//! phases that served it; the metrics registry computes its own latency
//! percentiles with the engine's quantile machinery; and the SLO
//! accumulator folds run reports into the line the bench bins emit into
//! `results/` for the CI gate.

use std::time::Duration;

use cgselect::{
    Answer, BackendChoice, Bounds, ChannelMpTuning, Engine, EngineConfig, FrontendConfig,
    MachineModel, Phase, Query, Request, Served, SloAccumulator, SloPolicy, TraceId,
};

fn cfg(p: usize, backend: BackendChoice) -> EngineConfig {
    EngineConfig::new(p)
        .model(MachineModel::free())
        .index_buckets(16)
        .delta_threshold(0.03)
        .backend(backend)
        .observe(true)
}

fn backends() -> [BackendChoice; 2] {
    [BackendChoice::LocalSpmd, BackendChoice::ChannelMp(ChannelMpTuning::default())]
}

fn data(n: u64) -> Vec<u64> {
    (0..n).map(|i| i.wrapping_mul(48271) % 99_991).collect()
}

fn mixed_requests() -> Vec<Request<u64>> {
    vec![
        Query::Median.to_request(),
        Query::quantile(0.9).to_request(),
        Query::Rank(12).to_request(),
        Request::rank_of(40_000),
        Request::count_between(Bounds::closed(5_000, 25_000)),
        Query::TopK(4).to_request(),
    ]
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

#[test]
fn span_links_every_outcome_to_its_phases_on_both_backends() {
    for backend in backends() {
        let mut engine: Engine<u64> = Engine::new(cfg(4, backend)).unwrap();
        engine.ingest(data(6000)).unwrap();
        engine.execute(&[Query::Median]).unwrap(); // builds the index

        let requests: Vec<Request<u64>> = mixed_requests()
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.traced(TraceId(500 + i as u64)))
            .collect();
        let report = engine.run(&requests).unwrap();
        let span = report.span.as_ref().expect("observing engines attach a span");
        let kind = engine.backend_kind();

        // One request span per outcome, linked by the stamped trace ID and
        // carrying the query-kind label.
        assert_eq!(span.requests.len(), report.outcomes.len(), "{kind}");
        for (i, (rs, req)) in span.requests.iter().zip(&requests).enumerate() {
            assert_eq!(Some(rs.trace), req.trace, "{kind}: span {i} lost its trace ID");
            assert_eq!(rs.kind, req.kind.label(), "{kind}");
            assert_eq!(rs.served, report.outcomes[i].served, "{kind}");
        }

        // Host-served requests touch no shard phases; backend-served ones
        // name the phases that did the work, in canonical order.
        for rs in &span.requests {
            match rs.served {
                Served::Histogram => assert!(rs.phases.is_empty(), "{kind}: {rs:?}"),
                _ => assert!(!rs.phases.is_empty(), "{kind}: {rs:?}"),
            }
            let canon: Vec<Phase> =
                Phase::ALL.into_iter().filter(|p| rs.phases.contains(p)).collect();
            assert_eq!(rs.phases, canon, "{kind}: phases must follow Phase::ALL order");
        }

        // The shard-side phase summaries cover the batch and carry the
        // collective rounds the batch actually spent.
        assert!(!span.phases.is_empty(), "{kind}: backend work must produce phase summaries");
        let span_ops: u64 = span.phases.iter().map(|p| p.collective_ops).sum();
        assert_eq!(span_ops, report.collective_ops, "{kind}: spans must account for every round");

        // The rendered tree names every request and phase.
        let rendered = span.render();
        for rs in &span.requests {
            assert!(rendered.contains(&format!("{}", rs.trace)), "{kind}:\n{rendered}");
            assert!(rendered.contains(rs.kind), "{kind}:\n{rendered}");
        }
        for ps in &span.phases {
            assert!(rendered.contains(ps.phase.as_str()), "{kind}:\n{rendered}");
        }
    }
}

#[test]
fn unstamped_requests_get_engine_assigned_trace_ids() {
    let mut engine: Engine<u64> = Engine::new(cfg(3, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest(data(2000)).unwrap();
    let report = engine.run(&mixed_requests()).unwrap();
    let span = report.span.unwrap();
    let mut ids: Vec<u64> = span.requests.iter().map(|r| r.trace.0).collect();
    let unique = {
        let mut v = ids.clone();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    assert_eq!(unique, ids.len(), "every request must get a distinct trace ID: {ids:?}");
    ids.sort_unstable();
    assert!(ids[0] > 0, "trace IDs start at 1");
}

#[test]
fn disabled_observability_attaches_no_span() {
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(3).model(MachineModel::free())).unwrap();
    engine.ingest(data(2000)).unwrap();
    let report = engine.run(&mixed_requests()).unwrap();
    assert!(report.span.is_none(), "observe is off by default");
    assert!(engine.metrics().is_none());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

#[test]
fn metrics_snapshot_tracks_batches_and_serves_latency_percentiles() {
    let mut engine: Engine<u64> = Engine::new(cfg(4, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest(data(6000)).unwrap();
    let batches = 8u64;
    for _ in 0..batches {
        engine.run(&mixed_requests()).unwrap();
    }
    let metrics = engine.metrics().expect("observing engines expose a registry");
    let snap = metrics.snapshot();

    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing counter {name}:\n{}", snap.to_text()))
            .1
    };
    assert_eq!(counter("batches_total"), batches);
    assert_eq!(counter("requests_total"), batches * mixed_requests().len() as u64);
    assert!(counter("collective_ops_total") > 0);
    let served: u64 = ["served_histogram", "served_sketch", "served_index", "served_scan"]
        .iter()
        .map(|n| snap.counters.iter().find(|(m, _)| m == n).map_or(0, |(_, v)| *v))
        .sum();
    assert_eq!(served, counter("requests_total"), "every request lands in a served_* bucket");

    // The latency tracks are served by the engine's own reservoir +
    // rank-estimation machinery and must be ordered like percentiles.
    for name in ["batch_wall", "batch_virtual"] {
        let lat = snap
            .latencies
            .iter()
            .find(|l| l.name == name)
            .unwrap_or_else(|| panic!("missing latency {name}:\n{}", snap.to_text()));
        assert_eq!(lat.count, batches);
        assert!(lat.p50 <= lat.p95 && lat.p95 <= lat.p99, "{name}: {lat:?}");
    }

    // Both exporters carry the same names.
    let text = snap.to_text();
    let json = snap.to_json();
    for name in ["batches_total", "batch_occupancy", "batch_wall", "delta_occupancy"] {
        assert!(text.contains(name), "text export missing {name}:\n{text}");
        assert!(json.contains(name), "json export missing {name}:\n{json}");
    }
}

#[test]
fn frontend_stamps_traces_and_records_request_wall_latency() {
    let mut engine: Engine<u64> = Engine::new(cfg(3, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest(data(3000)).unwrap();
    let metrics = engine.metrics().unwrap();
    let queue = engine.into_frontend(FrontendConfig::new().window(Duration::from_millis(1)));
    let median = {
        let mut v = data(3000);
        v.sort_unstable();
        v[(v.len() - 1) / 2]
    };
    let tickets: Vec<_> = (0..6).map(|_| queue.submit(Query::Median).unwrap()).collect();
    for t in tickets {
        assert_eq!(t.wait().unwrap(), Answer::Value(median));
    }
    queue.shutdown().unwrap();
    let snap = metrics.snapshot();
    let lat = snap
        .latencies
        .iter()
        .find(|l| l.name == "request_wall")
        .unwrap_or_else(|| panic!("missing request_wall:\n{}", snap.to_text()));
    assert_eq!(lat.count, 6, "every answered query must record an end-to-end latency");
    assert!(snap.gauges.iter().any(|(n, _)| *n == "queue_depth"), "{}", snap.to_text());
}

// ---------------------------------------------------------------------------
// SLO reports
// ---------------------------------------------------------------------------

#[test]
fn slo_accumulator_folds_runs_into_the_ci_gated_line() {
    let mut engine: Engine<u64> = Engine::new(cfg(4, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest(data(6000)).unwrap();
    engine.execute(&[Query::Median]).unwrap();

    let mut acc = SloAccumulator::new();
    for _ in 0..4 {
        let report = engine.run(&mixed_requests()).unwrap();
        acc.observe(&report);
    }
    let slo = acc.report();
    assert_eq!(slo.queries, 4 * mixed_requests().len() as u64);
    assert!(slo.host_served_fraction > 0.0 && slo.host_served_fraction <= 1.0);
    assert_eq!(slo.max_rank_error, 0, "exact serving paths must report zero rank error");

    let line = slo.render_line();
    assert!(line.starts_with("slo queries="), "{line}");
    for field in ["host_served=", "sketch_served=", "max_rank_error=", "rounds_per_query="] {
        assert!(line.contains(field), "{line}");
    }

    // A permissive policy passes; an impossible one names every violation.
    let permissive = SloPolicy {
        min_host_served_fraction: 0.0,
        min_sketch_served_fraction: 0.0,
        max_rank_error: u64::MAX,
        max_rounds_per_query: f64::INFINITY,
    };
    assert!(permissive.evaluate(&slo).is_empty(), "{slo:?}");
    let strict = SloPolicy {
        min_host_served_fraction: 1.1,
        min_sketch_served_fraction: 1.1,
        max_rank_error: 0,
        max_rounds_per_query: 0.0,
    };
    let violations = strict.evaluate(&slo);
    assert!(!violations.is_empty(), "an impossible policy must flag violations");
}
