//! Source-to-sink transfer scheduling shared by the prefix-based balancers.

use cgselect_runtime::{Key, Proc};

use crate::BalanceReport;

/// One planned transfer: `amount` elements from processor `src` to `snk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Transfer {
    pub src: usize,
    pub snk: usize,
    pub amount: u64,
}

/// Matches source excesses against sink deficits in the given orders.
///
/// Every unit of excess is assigned a slot number; sources and sinks each
/// cover contiguous slot intervals (this is what the paper computes with
/// prefix sums and binary searches in Algorithms 5 and 7); overlapping
/// intervals become transfers. The two-pointer sweep below produces the
/// identical schedule on every processor, because it runs on the globally
/// concatenated counts.
///
/// `sources` and `sinks` are `(rank, amount)` lists with positive amounts;
/// their total amounts must match.
pub(crate) fn transfer_schedule(sources: &[(usize, u64)], sinks: &[(usize, u64)]) -> Vec<Transfer> {
    debug_assert_eq!(
        sources.iter().map(|(_, a)| a).sum::<u64>(),
        sinks.iter().map(|(_, a)| a).sum::<u64>(),
        "total excess must equal total deficit"
    );
    let mut out = Vec::new();
    let mut si = 0usize;
    let mut ti = 0usize;
    let mut src_left = sources.first().map(|&(_, a)| a).unwrap_or(0);
    let mut snk_left = sinks.first().map(|&(_, a)| a).unwrap_or(0);
    while si < sources.len() && ti < sinks.len() {
        let amount = src_left.min(snk_left);
        if amount > 0 {
            out.push(Transfer { src: sources[si].0, snk: sinks[ti].0, amount });
        }
        src_left -= amount;
        snk_left -= amount;
        if src_left == 0 {
            si += 1;
            if si < sources.len() {
                src_left = sources[si].1;
            }
        }
        if snk_left == 0 {
            ti += 1;
            if ti < sinks.len() {
                snk_left = sinks[ti].1;
            }
        }
    }
    out
}

/// Executes a transfer schedule on this processor: sends peel elements off
/// the tail of `data`; receives append. Sources never receive and sinks
/// never send, so issuing all sends before all receives cannot deadlock.
pub(crate) fn execute_transfers<T: Key>(
    proc: &mut Proc,
    data: &mut Vec<T>,
    schedule: &[Transfer],
    tag: u64,
) -> BalanceReport {
    let me = proc.rank();
    let mut report = BalanceReport::default();
    for t in schedule.iter().filter(|t| t.src == me) {
        let keep = data.len() - t.amount as usize;
        let payload = data.split_off(keep);
        proc.charge_ops(t.amount); // local copy out of the buffer
        proc.send_vec_tagged(t.snk, tag, payload);
        report.elements_sent += t.amount;
        report.messages_sent += 1;
    }
    for t in schedule.iter().filter(|t| t.snk == me) {
        let payload: Vec<T> = proc.recv_vec_tagged(t.src, tag);
        debug_assert_eq!(payload.len() as u64, t.amount);
        proc.charge_ops(t.amount); // local copy into the buffer
        data.extend(payload);
        report.elements_recv += t.amount;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_one_to_one() {
        let s = transfer_schedule(&[(0, 5)], &[(3, 5)]);
        assert_eq!(s, vec![Transfer { src: 0, snk: 3, amount: 5 }]);
    }

    #[test]
    fn splits_across_sinks() {
        let s = transfer_schedule(&[(1, 10)], &[(2, 4), (5, 6)]);
        assert_eq!(
            s,
            vec![Transfer { src: 1, snk: 2, amount: 4 }, Transfer { src: 1, snk: 5, amount: 6 },]
        );
    }

    #[test]
    fn splits_across_sources() {
        let s = transfer_schedule(&[(0, 3), (4, 7)], &[(9, 10)]);
        assert_eq!(
            s,
            vec![Transfer { src: 0, snk: 9, amount: 3 }, Transfer { src: 4, snk: 9, amount: 7 },]
        );
    }

    #[test]
    fn interleaved_intervals() {
        let s = transfer_schedule(&[(0, 4), (1, 4)], &[(2, 3), (3, 3), (4, 2)]);
        let total: u64 = s.iter().map(|t| t.amount).sum();
        assert_eq!(total, 8);
        // Per-source and per-sink sums must match the inputs.
        let sum_for = |rank: usize, by_src: bool| -> u64 {
            s.iter()
                .filter(|t| if by_src { t.src == rank } else { t.snk == rank })
                .map(|t| t.amount)
                .sum()
        };
        assert_eq!(sum_for(0, true), 4);
        assert_eq!(sum_for(1, true), 4);
        assert_eq!(sum_for(2, false), 3);
        assert_eq!(sum_for(3, false), 3);
        assert_eq!(sum_for(4, false), 2);
    }

    #[test]
    fn empty_schedule() {
        assert!(transfer_schedule(&[], &[]).is_empty());
    }
}
