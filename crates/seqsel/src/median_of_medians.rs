//! Deterministic BFPRT selection (Blum–Floyd–Pratt–Rivest–Tarjan), the
//! sequential kernel of the paper's Algorithm 1.

use crate::ops::OpCount;
use crate::partition::{insertion_sort, partition3};

const SMALL: usize = 40;

/// Returns the element of 0-based rank `k` in `data` in worst-case `O(n)`.
///
/// Classic medians-of-groups-of-5: each group is insertion-sorted, the group
/// medians are compacted to a prefix, their median is found recursively and
/// used as the partition pivot, which guarantees that at least ~30% of the
/// window is discarded per round. The constant factor is substantially
/// larger than quickselect's — the paper's measurements (its central
/// "randomized beats deterministic by an order of magnitude" claim) hinge on
/// exactly this, which is why the kernels report measured operation counts.
///
/// The slice is permuted. Comparisons and moves are accumulated into `ops`.
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn median_of_medians_select<T: Copy + Ord>(data: &mut [T], k: usize, ops: &mut OpCount) -> T {
    assert!(k < data.len(), "rank {k} out of range for {} elements", data.len());
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        let n = hi - lo;
        if n <= SMALL {
            insertion_sort(&mut data[lo..hi], ops);
            return data[k];
        }

        // Medians of groups of 5, compacted to the front of the window.
        let mut m = 0usize;
        let mut g = lo;
        while g < hi {
            let end = (g + 5).min(hi);
            insertion_sort(&mut data[g..end], ops);
            let med = g + (end - g - 1) / 2;
            data.swap(lo + m, med);
            ops.moves += 3;
            m += 1;
            g = end;
        }

        // Median of the medians prefix, found recursively.
        let pivot = median_of_medians_select(&mut data[lo..lo + m], (m - 1) / 2, ops);

        let (a, b) = partition3(&mut data[lo..hi], pivot, pivot, ops);
        let (a, b) = (lo + a, lo + b);
        if k < a {
            hi = a;
        } else if k < b {
            return pivot;
        } else {
            lo = b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickselect;
    use crate::rng::KernelRng;

    fn oracle(mut v: Vec<i64>, k: usize) -> i64 {
        v.sort_unstable();
        v[k]
    }

    #[test]
    fn selects_every_rank_small() {
        let base = vec![3i64, 3, 3, 1, 2, 9, -5, 0, 7, 7, 7, 7, 4];
        for k in 0..base.len() {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            assert_eq!(
                median_of_medians_select(&mut v, k, &mut ops),
                oracle(base.clone(), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_larger_inputs() {
        let mut rng = KernelRng::new(5);
        for n in [41usize, 100, 1000, 20_000] {
            let base: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 1000) as i64).collect();
            for k in [0, n / 3, n / 2, n - 1] {
                let mut v = base.clone();
                let mut ops = OpCount::new();
                assert_eq!(
                    median_of_medians_select(&mut v, k, &mut ops),
                    oracle(base.clone(), k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn worst_case_is_linear() {
        // Sorted input, the adversarial case for naive quickselect: BFPRT
        // must stay linear. Assert the op count is bounded by c*n.
        let n = 1 << 16;
        let base: Vec<i64> = (0..n).collect();
        let mut v = base.clone();
        let mut ops = OpCount::new();
        let _ = median_of_medians_select(&mut v, (n / 2) as usize, &mut ops);
        assert!(ops.total() < 80 * n as u64, "BFPRT did {} ops on n={n}", ops.total());
    }

    #[test]
    fn deterministic_constant_exceeds_quickselect() {
        // The crux of the paper's headline result: on the same random input,
        // BFPRT performs several times more work than quickselect.
        let mut rng = KernelRng::new(17);
        let n = 1 << 16;
        let base: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();

        let mut det_ops = OpCount::new();
        let mut v = base.clone();
        let det = median_of_medians_select(&mut v, n / 2, &mut det_ops);

        let mut rnd_ops = OpCount::new();
        let mut v = base.clone();
        let rnd = quickselect(&mut v, n / 2, &mut rng, &mut rnd_ops);

        assert_eq!(det, rnd);
        let ratio = det_ops.total() as f64 / rnd_ops.total() as f64;
        assert!(ratio > 2.0, "expected BFPRT to cost well over 2x quickselect, got {ratio:.2}x");
    }

    #[test]
    fn all_equal_input() {
        let mut v = vec![5u8; 1000];
        let mut ops = OpCount::new();
        assert_eq!(median_of_medians_select(&mut v, 500, &mut ops), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut v = vec![1];
        let mut ops = OpCount::new();
        let _ = median_of_medians_select(&mut v, 1, &mut ops);
    }
}
