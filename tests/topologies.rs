//! Distance-aware cost models: correctness is topology-independent, and
//! wormhole-scale hop costs stay close to the paper's crossbar model
//! (the quantitative version of the paper's §2.1 argument).

use cgselect::runtime::Topology;
use cgselect::{Algorithm, Distribution, MachineModel, SelectionConfig};

fn run(model: MachineModel) -> (u64, f64) {
    let p = 16;
    let n = 1 << 16;
    let parts = cgselect::generate(Distribution::Random, n, p, 51);
    let sel = cgselect::select_on_machine(
        p,
        model,
        &parts,
        (n / 2) as u64,
        Algorithm::FastRandomized,
        &SelectionConfig::with_seed(52),
    )
    .unwrap();
    (sel.value, sel.makespan())
}

#[test]
fn value_is_identical_under_every_topology() {
    let base = MachineModel::cm5();
    let (v0, _) = run(base);
    for topo in [Topology::Hypercube, Topology::Mesh2D] {
        for hop in [base.tau / 50.0, base.tau] {
            let (v, _) = run(base.with_topology(topo, hop));
            assert_eq!(v, v0, "{topo:?} hop={hop}");
        }
    }
}

#[test]
fn wormhole_hops_barely_move_the_clock() {
    let base = MachineModel::cm5();
    let (_, t_crossbar) = run(base);
    for topo in [Topology::Hypercube, Topology::Mesh2D] {
        let (_, t) = run(base.with_topology(topo, base.tau / 50.0));
        let excess = (t - t_crossbar) / t_crossbar;
        assert!(
            excess < 0.10,
            "{topo:?} with wormhole hops should stay within 10% of crossbar, got {:+.1}%",
            excess * 100.0
        );
    }
}

#[test]
fn store_and_forward_mesh_costs_visibly_more() {
    let base = MachineModel::cm5();
    let (_, t_crossbar) = run(base);
    let (_, t_mesh) = run(base.with_topology(Topology::Mesh2D, base.tau));
    assert!(
        t_mesh > t_crossbar * 1.05,
        "store-and-forward mesh should be visibly slower: {t_mesh:.4} vs {t_crossbar:.4}"
    );
}

#[test]
fn virtual_time_still_deterministic_with_topology() {
    let model = MachineModel::cm5().with_topology(Topology::Hypercube, 2e-6);
    let (_, a) = run(model);
    let (_, b) = run(model);
    assert_eq!(a.to_bits(), b.to_bits());
}
