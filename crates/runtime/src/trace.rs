//! Event tracing: a per-processor log of communication and phase events
//! with virtual timestamps, for debugging SPMD programs and inspecting
//! where a parallel algorithm's time goes.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! per processor with [`crate::Proc::trace_enable`]. Collect each
//! processor's [`Trace`] as part of the SPMD closure's return value and
//! render a combined timeline with [`render_timeline`].

/// One traced event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the event completed (seconds).
    pub at: f64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The kinds of events the runtime records.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEventKind {
    /// A point-to-point send finished (local completion).
    Send {
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: u64,
        /// Modeled payload bytes.
        bytes: u64,
    },
    /// A receive completed.
    Recv {
        /// Source rank.
        from: usize,
        /// Message tag.
        tag: u64,
        /// Modeled payload bytes.
        bytes: u64,
    },
    /// A named phase opened.
    PhaseBegin(&'static str),
    /// A named phase closed.
    PhaseEnd(&'static str),
    /// A local computation charge.
    Compute {
        /// Elementary operations charged.
        ops: u64,
    },
}

/// A processor's event log.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Rank that produced the log.
    pub rank: usize,
    /// Events in the order they occurred.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events of a given coarse class, for assertions in tests.
    pub fn count_sends(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TraceEventKind::Send { .. })).count()
    }

    /// Number of receive events.
    pub fn count_recvs(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, TraceEventKind::Recv { .. })).count()
    }

    /// Total bytes sent according to the log.
    pub fn bytes_sent(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Send { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum()
    }
}

/// Renders the traces of all processors as a merged, time-ordered textual
/// timeline (one line per event), suitable for eyeballing communication
/// structure:
///
/// ```text
///     12.3µs  P0 -> P2  tag=0x8000…  16B
///     14.1µs  P2 <- P0  tag=0x8000…  16B
/// ```
pub fn render_timeline(traces: &[Trace]) -> String {
    let mut lines: Vec<(f64, String)> = Vec::new();
    for t in traces {
        for e in &t.events {
            let desc = match &e.kind {
                TraceEventKind::Send { to, tag, bytes } => {
                    format!("P{} -> P{to}  tag={tag:#x}  {bytes}B", t.rank)
                }
                TraceEventKind::Recv { from, tag, bytes } => {
                    format!("P{} <- P{from}  tag={tag:#x}  {bytes}B", t.rank)
                }
                TraceEventKind::PhaseBegin(l) => format!("P{} phase {l} {{", t.rank),
                TraceEventKind::PhaseEnd(l) => format!("P{} }} phase {l}", t.rank),
                TraceEventKind::Compute { ops } => format!("P{} compute {ops} ops", t.rank),
            };
            lines.push((e.at, desc));
        }
    }
    lines.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = String::new();
    for (at, desc) in lines {
        out.push_str(&format!("{:>12.3}µs  {desc}\n", at * 1e6));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, MachineModel};

    #[test]
    fn traces_record_communication() {
        let traces = Machine::with_model(2, MachineModel::cm5())
            .run(|proc| {
                proc.trace_enable();
                if proc.rank() == 0 {
                    proc.send_vec(1, 3, vec![1u8, 2, 3]);
                } else {
                    let _: Vec<u8> = proc.recv_vec(0, 3);
                }
                proc.phase_begin("work");
                proc.charge_ops(10);
                proc.phase_end("work");
                proc.take_trace()
            })
            .unwrap();
        assert_eq!(traces[0].count_sends(), 1);
        assert_eq!(traces[0].bytes_sent(), 3);
        assert_eq!(traces[1].count_recvs(), 1);
        // Phases and compute recorded on both.
        for t in &traces {
            assert!(t.events.iter().any(|e| e.kind == TraceEventKind::PhaseBegin("work")));
            assert!(t.events.iter().any(|e| matches!(e.kind, TraceEventKind::Compute { ops: 10 })));
        }
    }

    #[test]
    fn timeline_renders_in_time_order() {
        let traces = Machine::with_model(3, MachineModel::cm5())
            .run(|proc| {
                proc.trace_enable();
                let v = (proc.rank() == 0).then_some(7u64);
                proc.broadcast(0, v);
                proc.take_trace()
            })
            .unwrap();
        let timeline = render_timeline(&traces);
        assert!(timeline.contains("->"));
        assert!(timeline.contains("<-"));
        // Times are non-decreasing down the page.
        let times: Vec<f64> = timeline
            .lines()
            .map(|l| l.trim().split("µs").next().unwrap().trim().parse::<f64>().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{timeline}");
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let traces = Machine::new(2)
            .run(|proc| {
                if proc.rank() == 0 {
                    proc.send(1, 1, 5u8);
                } else {
                    let _: u8 = proc.recv(0, 1);
                }
                proc.take_trace()
            })
            .unwrap();
        assert!(traces.iter().all(|t| t.events.is_empty()));
    }
}
