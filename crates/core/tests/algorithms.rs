//! Cross-algorithm correctness: every algorithm × every balancer × a zoo of
//! input layouts must agree with the sort-based oracle.

use cgselect_core::{
    median_on_machine, select_on_machine, Algorithm, Balancer, LocalKernel, SampleSortAlgo,
    SelectionConfig,
};
use cgselect_runtime::MachineModel;
use cgselect_seqsel::KernelRng;

fn oracle(parts: &[Vec<u64>], k: u64) -> u64 {
    let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
    all.sort_unstable();
    all[k as usize]
}

/// A small config so tests exercise several parallel iterations even on
/// modest inputs (default min_sequential=1024 would short-circuit them).
fn test_cfg(seed: u64) -> SelectionConfig {
    SelectionConfig { min_sequential: 32, ..SelectionConfig::with_seed(seed) }
}

fn layouts(p: usize, n: usize, seed: u64) -> Vec<(&'static str, Vec<Vec<u64>>)> {
    let mut rng = KernelRng::new(seed);
    let chunk = n / p;
    let mut out = Vec::new();

    // Random per-processor data (the paper's "random" input).
    let random: Vec<Vec<u64>> =
        (0..p).map(|_| (0..chunk).map(|_| rng.next_u64() % 100_000).collect()).collect();
    out.push(("random", random));

    // Globally sorted, blocked (the paper's worst case): proc i holds
    // i*n/p .. (i+1)*n/p - 1.
    let sorted: Vec<Vec<u64>> =
        (0..p).map(|i| ((i * chunk) as u64..((i + 1) * chunk) as u64).collect()).collect();
    out.push(("sorted", sorted));

    // Reverse-sorted blocks.
    let rev: Vec<Vec<u64>> =
        (0..p).map(|i| ((i * chunk) as u64..((i + 1) * chunk) as u64).rev().collect()).collect();
    out.push(("reverse", rev));

    // Heavy duplicates: only 4 distinct values.
    let dup: Vec<Vec<u64>> =
        (0..p).map(|_| (0..chunk).map(|_| rng.next_u64() % 4).collect()).collect();
    out.push(("duplicates", dup));

    // All equal.
    out.push(("all-equal", (0..p).map(|_| vec![7u64; chunk]).collect()));

    // Wildly imbalanced: everything on the last processor.
    let mut hoard: Vec<Vec<u64>> = vec![Vec::new(); p];
    hoard[p - 1] = (0..n as u64).map(|i| i * 17 % 10_007).collect();
    out.push(("hoarded", hoard));

    out
}

#[test]
fn all_algorithms_match_oracle_on_all_layouts() {
    let p = 4;
    let n = 600;
    for (name, parts) in layouts(p, n, 1) {
        let total: usize = parts.iter().map(Vec::len).sum();
        for algo in Algorithm::ALL {
            for k in [0u64, (total / 3) as u64, (total / 2) as u64, (total - 1) as u64] {
                let got =
                    select_on_machine(p, MachineModel::free(), &parts, k, algo, &test_cfg(42))
                        .unwrap();
                assert_eq!(got.value, oracle(&parts, k), "layout={name} algo={algo:?} k={k}");
            }
        }
    }
}

#[test]
fn all_balancers_with_randomized_algorithms() {
    let p = 4;
    let parts = layouts(p, 400, 2);
    for (name, parts) in parts {
        let total: usize = parts.iter().map(Vec::len).sum();
        let k = (total / 2) as u64;
        for algo in [Algorithm::Randomized, Algorithm::FastRandomized, Algorithm::MedianOfMedians] {
            for bal in [
                Balancer::None,
                Balancer::Omlb,
                Balancer::ModOmlb,
                Balancer::DimExchange,
                Balancer::GlobalExchange,
            ] {
                let cfg = test_cfg(3).balancer(bal);
                let got =
                    select_on_machine(p, MachineModel::free(), &parts, k, algo, &cfg).unwrap();
                assert_eq!(
                    got.value,
                    oracle(&parts, k),
                    "layout={name} algo={algo:?} balancer={bal:?}"
                );
            }
        }
    }
}

#[test]
fn non_power_of_two_machines() {
    for p in [1usize, 3, 5, 7] {
        let parts = layouts(p, 60 * p, 4);
        for (name, parts) in parts {
            let total: usize = parts.iter().map(Vec::len).sum();
            let k = (total * 2 / 3) as u64;
            // Bitonic sample sort requires power-of-two p; PSRS (default)
            // must work everywhere.
            for algo in Algorithm::ALL {
                let got = select_on_machine(p, MachineModel::free(), &parts, k, algo, &test_cfg(5))
                    .unwrap();
                assert_eq!(got.value, oracle(&parts, k), "p={p} layout={name} algo={algo:?}");
            }
        }
    }
}

#[test]
fn sample_sort_backends_agree() {
    let p = 8;
    let (_, parts) = layouts(p, 1600, 6).remove(0);
    let k = 800;
    let want = oracle(&parts, k);
    for ss in [SampleSortAlgo::Psrs, SampleSortAlgo::Bitonic, SampleSortAlgo::GatherSort] {
        let cfg = test_cfg(7).sample_sort(ss);
        let got =
            select_on_machine(p, MachineModel::free(), &parts, k, Algorithm::FastRandomized, &cfg)
                .unwrap();
        assert_eq!(got.value, want, "sample_sort={ss:?}");
    }
}

#[test]
fn hybrid_kernel_override_still_correct() {
    let p = 4;
    let (_, parts) = layouts(p, 800, 8).remove(0);
    let k = 123;
    for algo in [Algorithm::MedianOfMedians, Algorithm::BucketBased] {
        let cfg = test_cfg(9).kernel(LocalKernel::Randomized);
        let got = select_on_machine(p, MachineModel::free(), &parts, k, algo, &cfg).unwrap();
        assert_eq!(got.value, oracle(&parts, k), "hybrid {algo:?}");
    }
}

#[test]
fn median_convenience_matches_paper_definition() {
    let p = 3;
    let parts: Vec<Vec<u64>> = vec![vec![5, 1], vec![9, 3], vec![7]];
    // Sorted: 1 3 5 7 9; N=5, 1-based rank ceil(5/2)=3 -> value 5.
    let got =
        median_on_machine(p, MachineModel::free(), &parts, Algorithm::Randomized, &test_cfg(1))
            .unwrap();
    assert_eq!(got.value, 5);

    let parts: Vec<Vec<u64>> = vec![vec![4, 2], vec![8, 6], vec![]];
    // Sorted: 2 4 6 8; N=4, 1-based rank 2 -> value 4.
    let got =
        median_on_machine(p, MachineModel::free(), &parts, Algorithm::Randomized, &test_cfg(1))
            .unwrap();
    assert_eq!(got.value, 4);
}

#[test]
fn extreme_ranks_and_tiny_inputs() {
    let parts: Vec<Vec<u64>> = vec![vec![10], vec![], vec![30, 20]];
    for algo in Algorithm::ALL {
        for (k, want) in [(0u64, 10u64), (1, 20), (2, 30)] {
            let got =
                select_on_machine(3, MachineModel::free(), &parts, k, algo, &test_cfg(11)).unwrap();
            assert_eq!(got.value, want, "algo={algo:?} k={k}");
        }
    }
}

#[test]
fn value_identical_on_every_processor() {
    let p = 5;
    let (_, parts) = layouts(p, 500, 12).remove(0);
    let got = select_on_machine(
        p,
        MachineModel::free(),
        &parts,
        77,
        Algorithm::FastRandomized,
        &test_cfg(13),
    )
    .unwrap();
    for o in &got.per_proc {
        assert_eq!(o.value, got.value);
    }
}

#[test]
fn rank_out_of_range_fails_collectively() {
    let parts: Vec<Vec<u64>> = vec![vec![1], vec![2]];
    let err =
        select_on_machine(2, MachineModel::free(), &parts, 2, Algorithm::Randomized, &test_cfg(1))
            .unwrap_err();
    assert!(format!("{err}").contains("out of range"), "{err}");
}

#[test]
fn empty_distributed_set_fails() {
    let parts: Vec<Vec<u64>> = vec![vec![], vec![]];
    let err =
        select_on_machine(2, MachineModel::free(), &parts, 0, Algorithm::Randomized, &test_cfg(1))
            .unwrap_err();
    assert!(format!("{err}").contains("empty"), "{err}");
}

#[test]
fn instrumentation_is_coherent() {
    let p = 4;
    let (_, parts) = layouts(p, 2000, 14).remove(0);
    let cfg = SelectionConfig {
        min_sequential: 64,
        balancer: Balancer::GlobalExchange,
        ..SelectionConfig::with_seed(15)
    };
    let got =
        select_on_machine(p, MachineModel::cm5(), &parts, 1000, Algorithm::FastRandomized, &cfg)
            .unwrap();
    assert!(got.iterations() >= 1);
    for o in &got.per_proc {
        assert!(o.total_seconds > 0.0);
        assert!(o.lb_seconds >= 0.0 && o.lb_seconds <= o.total_seconds);
        assert!(o.sort_seconds > 0.0, "fast randomized must sort samples");
        assert!(o.sort_seconds <= o.total_seconds);
        assert!(o.finish_seconds > 0.0);
        assert!(o.ops > 0);
        assert!(o.comm.msgs_sent > 0);
    }
    // Load balancing with GlobalExchange on imbalance-producing runs should
    // at least have recorded phase time.
    assert!(got.lb_makespan() > 0.0);
}

#[test]
fn deterministic_given_seed() {
    let p = 4;
    let (_, parts) = layouts(p, 1200, 16).remove(0);
    let cfg = test_cfg(99);
    let run = || {
        select_on_machine(p, MachineModel::cm5(), &parts, 600, Algorithm::FastRandomized, &cfg)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.value, b.value);
    assert_eq!(a.iterations(), b.iterations());
    for (x, y) in a.per_proc.iter().zip(&b.per_proc) {
        assert_eq!(x.total_seconds, y.total_seconds, "virtual time must be reproducible");
        assert_eq!(x.ops, y.ops);
        assert_eq!(x.comm, y.comm);
    }
}

#[test]
fn fast_randomized_converges_in_few_iterations() {
    // O(log log n) iterations: for n = 2^20 that is ~4-5; allow 10.
    let p = 8;
    let n = 1 << 17;
    let mut rng = KernelRng::new(21);
    let parts: Vec<Vec<u64>> =
        (0..p).map(|_| (0..n / p).map(|_| rng.next_u64()).collect()).collect();
    let got = select_on_machine(
        p,
        MachineModel::free(),
        &parts,
        (n / 2) as u64,
        Algorithm::FastRandomized,
        &SelectionConfig::with_seed(22),
    )
    .unwrap();
    assert!(
        got.iterations() <= 10,
        "fast randomized took {} iterations on n={n}",
        got.iterations()
    );
    assert_eq!(got.value, oracle(&parts, (n / 2) as u64));
}

#[test]
fn randomized_iterations_logarithmic() {
    let p = 8;
    let n = 1 << 17;
    let mut rng = KernelRng::new(23);
    let parts: Vec<Vec<u64>> =
        (0..p).map(|_| (0..n / p).map(|_| rng.next_u64()).collect()).collect();
    let got = select_on_machine(
        p,
        MachineModel::free(),
        &parts,
        (n / 2) as u64,
        Algorithm::Randomized,
        &SelectionConfig::with_seed(24),
    )
    .unwrap();
    // Expected ~ 1.4 log2(n/p^2) ≈ 15; generous cap at 60.
    assert!(
        (2..=60).contains(&got.iterations()),
        "randomized took {} iterations",
        got.iterations()
    );
}
