//! Branchless, autovectorizable inner loops for the wall-clock hot paths.
//!
//! The two per-element hot loops of the whole system are *prefix counting*
//! (`count_below`: how many elements fall at or below a probe value) and
//! *bound partitioning* (`partition_bound`: split a slice into admitted /
//! rejected halves, the inner step of [`crate::partition_by_bounds`]). The
//! original loops are scalar and branchy — every element costs a
//! data-dependent branch, which on shuffled keys means a pipeline flush
//! about every other element.
//!
//! Every kernel here is a drop-in replacement obeying one contract:
//! **identical outputs, identical [`OpCount`] charges, identical output
//! permutation** — only the wall-clock time changes. The measured-cost
//! model that the conformance and round-parity suites pin (answers,
//! collective rounds, charged ops) is bit-for-bit untouched, while the loop
//! bodies are restructured so LLVM can emit SIMD for primitive keys
//! (`u32`/`u64`/`i64`): predicated sums instead of branches for counting,
//! and a count + branchless-compress + pair-swap scheme instead of the
//! branchy two-pointer walk for partitioning.
//!
//! The scalar originals are kept as `*_reference` functions. They serve two
//! purposes: the differential tests (proptest plus exhaustive small-pattern
//! sweeps) pin every kernel to its reference, and the `wallclock` bench bin
//! measures both sides to report the speedup (`BENCH_wall.json`). The
//! [`set_scalar_reference_mode`] switch routes the shared entry points
//! ([`crate::partition_by_bounds`], the engine's probe counting, the
//! multi-select finisher) through the reference loops, which is how the
//! end-to-end benchmark reproduces the pre-kernel baseline inside one
//! binary.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::ops::OpCount;
use crate::splitters::SepBound;

/// When set, the shared entry points that normally dispatch to the kernels
/// run the scalar `*_reference` loops instead (and the multi-select
/// finisher sorts instead of running Floyd–Rivest).
static SCALAR_REFERENCE: AtomicBool = AtomicBool::new(false);

/// Routes every kernel call site through the scalar reference loops
/// (`true`) or the branchless kernels (`false`, the default).
///
/// This is a process-global differential-testing and benchmarking switch:
/// the `wallclock` bench measures both settings in one run to report the
/// kernel speedup, and the equivalence tests use it to pin the two paths to
/// identical answers, charges and permutations. It is not a tuning knob —
/// production code should leave it off.
pub fn set_scalar_reference_mode(on: bool) {
    SCALAR_REFERENCE.store(on, Ordering::Relaxed);
}

/// Current state of the [`set_scalar_reference_mode`] switch.
pub fn scalar_reference_mode() -> bool {
    SCALAR_REFERENCE.load(Ordering::Relaxed)
}

/// Chunk width of the predicated-sum loops: small enough that a chunk's
/// partial sums live in registers, large enough that LLVM unrolls each
/// chunk into full-width SIMD lanes.
const LANES: usize = 64;

#[inline]
fn count_le_raw<T: Copy + Ord>(data: &[T], value: T) -> u64 {
    let mut total = 0u64;
    for chunk in data.chunks(LANES) {
        let mut acc = 0u32;
        for &x in chunk {
            acc += u32::from(x <= value);
        }
        total += u64::from(acc);
    }
    total
}

#[inline]
fn count_lt_raw<T: Copy + Ord>(data: &[T], value: T) -> u64 {
    let mut total = 0u64;
    for chunk in data.chunks(LANES) {
        let mut acc = 0u32;
        for &x in chunk {
            acc += u32::from(x < value);
        }
        total += u64::from(acc);
    }
    total
}

/// Number of elements the bound admits, without charging — the shared
/// counting pass of the kernels below.
#[inline]
fn count_admitted_raw<T: Copy + Ord>(data: &[T], bound: SepBound<T>) -> u64 {
    if bound.inclusive {
        count_le_raw(data, bound.value)
    } else {
        count_lt_raw(data, bound.value)
    }
}

/// Branchless prefix count: how many elements are `<= value` (inclusive) or
/// `< value` (exclusive). Charges one comparison per element, exactly like
/// [`count_below_reference`]; the loop body is a predicated sum that LLVM
/// autovectorizes for primitive keys.
pub fn count_below_kernel<T: Copy + Ord>(
    data: &[T],
    value: T,
    inclusive: bool,
    cmps: &mut u64,
) -> u64 {
    *cmps += data.len() as u64;
    if inclusive {
        count_le_raw(data, value)
    } else {
        count_lt_raw(data, value)
    }
}

/// The scalar prefix-count loop the engine's probe phase originally ran:
/// a filtered iterator with the inclusivity branch inside the predicate.
/// Kept as the differential-test reference and the wall-clock baseline.
pub fn count_below_reference<T: Copy + Ord>(
    data: &[T],
    value: T,
    inclusive: bool,
    cmps: &mut u64,
) -> u64 {
    *cmps += data.len() as u64;
    data.iter().filter(|&&x| if inclusive { x <= value } else { x < value }).count() as u64
}

/// The original two-pointer bound partition (scan from both ends, swap the
/// first misplaced pair, repeat): `[admitted | rejected]`, returning the
/// number of admitted elements. Same scan discipline and measured costs as
/// [`crate::partition_le`]. Kept as the differential-test reference and the
/// wall-clock baseline for [`partition_bound_kernel`].
pub fn partition_bound_reference<T: Copy + Ord>(
    data: &mut [T],
    bound: SepBound<T>,
    ops: &mut OpCount,
) -> usize {
    let mut i = 0usize;
    let mut j = data.len();
    loop {
        while i < j {
            ops.cmps += 1;
            if bound.admits(&data[i]) {
                i += 1;
            } else {
                break;
            }
        }
        while i < j {
            ops.cmps += 1;
            if !bound.admits(&data[j - 1]) {
                j -= 1;
            } else {
                break;
            }
        }
        if i >= j {
            return i;
        }
        data.swap(i, j - 1);
        ops.moves += 3;
        i += 1;
        j -= 1;
    }
}

/// Block width of the partition kernel's compress loops: the offset
/// buffers live on the stack and stay L1-resident, and every swap's
/// partners come from blocks scanned moments earlier, so the data is still
/// in cache when it is moved.
const BLOCK: usize = 128;

/// Branchless bound partition: identical permutation and identical
/// [`OpCount`] charges as [`partition_bound_reference`], restructured in
/// the style of a block partition (Edelkamp & Weiß's BlockQuicksort) so
/// the hot loops carry no data-dependent branches.
///
/// 1. A predicated-sum pass computes the admitted count `a` (SIMD) — the
///    exact spot where the reference's two pointers meet.
/// 2. Fixed-size blocks are scanned from both ends toward that cut, each
///    block compressing its misplaced positions (rejected in `[0, a)`,
///    admitted in `[a, n)`) into a stack buffer with a branch-free guarded
///    index write.
/// 3. Buffered positions are swapped pairwise as soon as both sides hold
///    some, replaying the reference walk's exact pairing: the k-th
///    smallest misplaced-low position with the k-th *largest*
///    misplaced-high position.
///
/// Knowing `a` up front is what makes the easy version of the block scheme
/// correct here: blocks never cross the cut, so every buffered position is
/// genuinely misplaced, both sides buffer exactly the same total, and no
/// leftover-cleanup pass (which would perturb the permutation) exists.
///
/// The reference's data-dependent comparison count has a closed form the
/// kernel charges directly: every position is tested once, plus one
/// double-test of position `a` iff the backward pointer has to walk through
/// a rejected run to meet the stuck forward pointer (`a < a_S`, where `a_S`
/// is the smallest admitted position at or above `a`; `n` when no swap
/// happens). The `exhaustive_patterns_match_reference` test proves the form
/// against the reference over every admit/reject pattern up to n = 12.
pub fn partition_bound_kernel<T: Copy + Ord>(
    data: &mut [T],
    bound: SepBound<T>,
    ops: &mut OpCount,
) -> usize {
    let n = data.len();
    let a = count_admitted_raw(data, bound) as usize;
    // Misplaced positions buffered per block; writes stay in-bounds because
    // a block never holds more than BLOCK misplaced elements.
    let mut offs_l = [0usize; BLOCK];
    let mut offs_r = [0usize; BLOCK];
    let (mut num_l, mut num_r) = (0usize, 0usize);
    let (mut start_l, mut start_r) = (0usize, 0usize);
    let mut lb = 0usize; // next unscanned low-side position
    let mut rb = n; // high side is scanned downward from rb - 1
    let mut s = 0u64;
    let mut a_s = n; // smallest admitted position at or above `a` so far
    loop {
        while num_l == 0 && lb < a {
            let size = BLOCK.min(a - lb);
            for k in 0..size {
                offs_l[num_l] = lb + k;
                num_l += usize::from(!bound.admits(&data[lb + k]));
            }
            lb += size;
            start_l = 0;
        }
        if num_l == 0 {
            break; // low side fully scanned and fully paired: done
        }
        while num_r == 0 && rb > a {
            let size = BLOCK.min(rb - a);
            for k in 0..size {
                offs_r[num_r] = rb - 1 - k;
                num_r += usize::from(bound.admits(&data[rb - 1 - k]));
            }
            rb -= size;
            start_r = 0;
        }
        debug_assert!(num_r > 0, "misplaced counts must pair up");
        let pairs = num_l.min(num_r);
        for k in 0..pairs {
            data.swap(offs_l[start_l + k], offs_r[start_r + k]);
        }
        start_l += pairs;
        start_r += pairs;
        num_l -= pairs;
        num_r -= pairs;
        // The high side is scanned in descending order, so the last swap of
        // this round touched the smallest admitted-high position yet seen.
        a_s = offs_r[start_r - 1];
        s += pairs as u64;
    }
    ops.cmps += n as u64 + u64::from(a < a_s);
    ops.moves += 3 * s;
    a
}

/// Three-way partition with the exact permutation and charges of
/// [`crate::partition3`], restructured so both comparisons of an element
/// are computed up front as flags (one setcc each) instead of a dependent
/// branch chain. The swap decisions still branch — the Dutch-flag
/// permutation is inherently sequential, and multi-select pivot choices
/// depend on physical element order, so this loop must reproduce it
/// move-for-move. Charges replicate the reference's short-circuit counting:
/// one comparison when `x < lo`, two otherwise.
pub fn partition3_kernel<T: Copy + Ord>(
    data: &mut [T],
    lo: T,
    hi: T,
    ops: &mut OpCount,
) -> (usize, usize) {
    assert!(lo <= hi, "partition3 requires lo <= hi");
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = data.len();
    // Invariant: data[..lt] < lo, data[lt..i] in [lo, hi], data[gt..] > hi.
    while i < gt {
        let x = data[i];
        let is_lt = x < lo;
        let is_gt = x > hi;
        ops.cmps += 2 - u64::from(is_lt);
        if is_lt {
            if lt != i {
                data.swap(lt, i);
                ops.moves += 3;
            }
            lt += 1;
            i += 1;
        } else if is_gt {
            gt -= 1;
            data.swap(i, gt);
            ops.moves += 3;
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition3;
    use crate::rng::KernelRng;

    fn check_partition_pair<T: Copy + Ord + std::fmt::Debug>(data: &[T], bound: SepBound<T>) {
        let mut a = data.to_vec();
        let mut b = data.to_vec();
        let mut ops_a = OpCount::new();
        let mut ops_b = OpCount::new();
        let cut_a = partition_bound_reference(&mut a, bound, &mut ops_a);
        let cut_b = partition_bound_kernel(&mut b, bound, &mut ops_b);
        assert_eq!(cut_a, cut_b, "cut for {data:?} by {bound:?}");
        assert_eq!(a, b, "permutation for {data:?} by {bound:?}");
        assert_eq!(ops_a, ops_b, "charges for {data:?} by {bound:?}");
    }

    #[test]
    fn exhaustive_patterns_match_reference() {
        // Every admit/reject pattern up to n = 12: elements are 0 (admitted)
        // or 1 (rejected) against the bound `x <= 0`. This is exhaustive
        // over the partition's decision space — the walk only observes the
        // admit bit — so it proves the closed-form charge in the kernel.
        for n in 0..=12usize {
            for pattern in 0u32..(1 << n) {
                let data: Vec<u64> = (0..n).map(|i| u64::from(pattern >> i & 1)).collect();
                check_partition_pair(&data, SepBound::le(0u64));
            }
        }
    }

    #[test]
    fn random_and_adversarial_inputs_match_reference() {
        let mut rng = KernelRng::new(97);
        for len in [0usize, 1, 2, 3, 7, 64, 65, 1000] {
            let random: Vec<u64> = (0..len).map(|_| rng.next_u64() % 50).collect();
            let sorted: Vec<u64> = (0..len as u64).collect();
            let reverse: Vec<u64> = (0..len as u64).rev().collect();
            let equal: Vec<u64> = vec![7; len];
            for data in [&random, &sorted, &reverse, &equal] {
                for v in [0u64, 7, 25, 49, 1000] {
                    check_partition_pair(data, SepBound::le(v));
                    check_partition_pair(data, SepBound::lt(v));
                }
            }
        }
    }

    #[test]
    fn count_kernel_matches_reference_across_key_types() {
        let mut rng = KernelRng::new(11);
        macro_rules! check_type {
            ($t:ty, $conv:expr) => {
                for len in [0usize, 1, 63, 64, 65, 513] {
                    let data: Vec<$t> = (0..len).map(|_| $conv(rng.next_u64())).collect();
                    for &v in data.iter().take(5).chain([&$conv(0), &$conv(u64::MAX)]) {
                        for inclusive in [false, true] {
                            let mut c_ref = 0u64;
                            let mut c_ker = 0u64;
                            assert_eq!(
                                count_below_reference(&data, v, inclusive, &mut c_ref),
                                count_below_kernel(&data, v, inclusive, &mut c_ker),
                            );
                            assert_eq!(c_ref, c_ker);
                        }
                    }
                }
            };
        }
        check_type!(u64, |x| x);
        check_type!(u32, |x| x as u32);
        check_type!(i64, |x| x as i64);
    }

    #[test]
    fn partition3_kernel_matches_partition3() {
        let mut rng = KernelRng::new(31);
        for len in [0usize, 1, 2, 17, 256] {
            for _ in 0..8 {
                let data: Vec<i64> = (0..len).map(|_| (rng.next_u64() % 21) as i64 - 10).collect();
                for (lo, hi) in [(-3i64, 4), (0, 0), (-10, 10), (5, 5)] {
                    let mut a = data.clone();
                    let mut b = data.clone();
                    let mut ops_a = OpCount::new();
                    let mut ops_b = OpCount::new();
                    let ra = partition3(&mut a, lo, hi, &mut ops_a);
                    let rb = partition3_kernel(&mut b, lo, hi, &mut ops_b);
                    assert_eq!(ra, rb);
                    assert_eq!(a, b, "permutation must match for {data:?} [{lo}, {hi}]");
                    assert_eq!(ops_a, ops_b, "charges must match for {data:?} [{lo}, {hi}]");
                }
            }
        }
    }

    #[test]
    fn reference_mode_switch_round_trips() {
        assert!(!scalar_reference_mode());
        set_scalar_reference_mode(true);
        assert!(scalar_reference_mode());
        set_scalar_reference_mode(false);
        assert!(!scalar_reference_mode());
    }
}
