//! End-to-end observability: request-scoped spans, a metrics registry, and
//! SLO evaluation.
//!
//! Telemetry elsewhere in the stack is *fragmented by construction* —
//! `runtime::trace` logs per-processor events, [`CommStats`] counts one
//! processor's traffic, `FrontendStats` counts queue behavior, and
//! [`crate::CostAttribution`] divides a batch's cost — but nothing stitches
//! one request's journey from admission to the shard phases that served it.
//! This module is that stitching layer:
//!
//! * **Spans** — every [`crate::Request`] carries an optional [`TraceId`]
//!   (stamped at frontend admission, or assigned by [`crate::Engine::run`]);
//!   the batch's [`TraceContext`] rides the `BatchPlan` — and, for the
//!   message-passing backend, the wire frames — so per-shard [`PhaseSpan`]s
//!   measured inside backend execution attach back to the requests. The
//!   assembled [`BatchSpan`] in [`crate::RunReport::span`] links each
//!   outcome to the phases that produced it.
//! * **Metrics** — [`MetricsRegistry`] holds counters, gauges, fixed-bucket
//!   histograms and latency tracks; latency percentiles are computed by the
//!   engine's *own* sketch/quantile machinery — the registry dogfoods the
//!   same reservoir + rank-estimation code that answers quantile queries.
//!   The standing-query subsystem reports through the same registry: a
//!   `standing_active` gauge, `standing_refresh` / `standing_zero_collective`
//!   counters, and a `refresh_wall` latency track alongside `batch_wall`.
//! * **SLO** — [`SloAccumulator`] folds [`crate::RunReport`]s into the
//!   ROADMAP's service-level line (host-served fraction, max rank error,
//!   rounds per query), which [`SloPolicy`] turns into pass/fail for the
//!   bench `--check` gate.
//!
//! Everything here is **off by default and zero-cost when disabled**: with
//! `EngineConfig::observe(false)` (the default) the engine takes one branch
//! per batch and records nothing.

mod metrics;
mod slo;

pub use metrics::{HistogramSnapshot, LatencySummary, MetricsRegistry, MetricsSnapshot};
pub use slo::{SloAccumulator, SloPolicy, SloReport};

use crate::request::Served;
use cgselect_runtime::CommStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// The shard-side execution phases a batch moves through, in pipeline
/// order — the span tree's leaf labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Vectorized `count_below` resolution of the batch's value probes.
    Probes,
    /// Exact rank resolution (indexed candidate windows or full scan).
    Exact,
    /// Sketch gathering and rank estimation for tolerance-carrying queries.
    Sketch,
}

impl Phase {
    /// All phases in pipeline order — aligned with the engine's per-request
    /// attribution slots (`[probes, exact, sketch]`).
    pub const ALL: [Phase; 3] = [Phase::Probes, Phase::Exact, Phase::Sketch];

    /// Stable lower-case label (also the `Proc::phase_begin` label the
    /// backends use, so `runtime::trace::aggregate_phases` output lines up).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Probes => "probes",
            Phase::Exact => "exact",
            Phase::Sketch => "sketch",
        }
    }

    /// Wire encoding of the phase.
    pub fn as_u8(self) -> u8 {
        match self {
            Phase::Probes => 0,
            Phase::Exact => 1,
            Phase::Sketch => 2,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8); `None` for an unknown byte.
    pub fn from_u8(b: u8) -> Option<Phase> {
        match b {
            0 => Some(Phase::Probes),
            1 => Some(Phase::Exact),
            2 => Some(Phase::Sketch),
            _ => None,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Process-global trace-ID source: unique across engines and frontends in
/// one process, so concurrently running sessions never collide.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A request-scoped trace identifier, stamped at admission.
///
/// IDs are unique within the process, not across restarts; span *structure*
/// (phases, counts) is what conformance compares, never the IDs themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Draws the next process-unique ID.
    pub fn next() -> TraceId {
        TraceId(NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The batch-level trace context that flows from the planner into backend
/// execution — and, for `ChannelMp`, across the wire inside the execute
/// command frame. Its presence is also the shard-side "observability on"
/// signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The engine's batch sequence number.
    pub batch: u64,
    /// Trace ID of the batch's first request (the span tree's root).
    pub root: TraceId,
}

/// One shard's measurement of one execution phase: inclusive virtual time
/// plus the communication delta, taken from snapshots around the phase.
///
/// Deterministic for a given batch and machine model, which is what lets the
/// conformance suite demand *equality* across backends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSpan {
    /// Which phase.
    pub phase: Phase,
    /// Inclusive virtual seconds the shard spent inside the phase.
    pub time: f64,
    /// Communication this shard moved during the phase.
    pub comm: CommStats,
}

/// One phase aggregated across every shard of a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSummary {
    /// Which phase.
    pub phase: Phase,
    /// Makespan of the phase: the maximum inclusive virtual time any shard
    /// spent inside it.
    pub time: f64,
    /// Collective operations the phase started, per processor (rank 0's
    /// count — identical on every rank by SPMD discipline).
    pub collective_ops: u64,
    /// Communication the phase moved, summed over all shards.
    pub comm: CommStats,
}

/// One request's node in the span tree: identity, what served it, and which
/// shard-side phases it participated in.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestSpan {
    /// The request's trace ID.
    pub trace: TraceId,
    /// Stable label of the request's [`crate::QueryKind`].
    pub kind: &'static str,
    /// Which subsystem produced the answer.
    pub served: Served,
    /// The backend phases this request contributed work to — empty for
    /// host-served (histogram) answers that never left the host.
    pub phases: Vec<Phase>,
    /// The request's attributed share of the batch's collective ops
    /// (mirrors [`crate::CostAttribution::collective_ops`]).
    pub collective_ops: f64,
}

/// The span tree of one executed batch: per-request nodes tied to per-phase
/// aggregates, returned in [`crate::RunReport::span`] when observability is
/// on.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSpan {
    /// The engine's batch sequence number.
    pub batch: u64,
    /// Trace ID of the first request (the root carried in the wire frames).
    pub root: TraceId,
    /// One node per request, aligned with `RunReport::outcomes`.
    pub requests: Vec<RequestSpan>,
    /// Per-phase aggregates across all shards; empty when the whole batch
    /// was served host-side and the backend never ran.
    pub phases: Vec<PhaseSummary>,
}

impl BatchSpan {
    /// Renders the span tree as indented text, one line per request:
    ///
    /// ```text
    /// batch 3 root=t17 (2 phases)
    ///   phase probes: 12.4µs, 8 collective ops
    ///   phase exact: 2381.0µs, 168 collective ops
    ///   t17 quantile served=index phases=probes,exact ops=12.5
    ///   t18 median served=histogram phases= ops=0.0
    /// ```
    pub fn render(&self) -> String {
        let mut out =
            format!("batch {} root={} ({} phases)\n", self.batch, self.root, self.phases.len());
        for p in &self.phases {
            out.push_str(&format!(
                "  phase {}: {:.1}µs, {} collective ops\n",
                p.phase,
                p.time * 1e6,
                p.collective_ops
            ));
        }
        for r in &self.requests {
            let phases: Vec<&str> = r.phases.iter().map(|p| p.as_str()).collect();
            out.push_str(&format!(
                "  {} {} served={} phases={} ops={:.1}\n",
                r.trace,
                r.kind,
                r.served,
                phases.join(","),
                r.collective_ops
            ));
        }
        out
    }
}

/// Folds per-shard phase spans into per-phase batch aggregates: time is the
/// max across shards (the phase's makespan), communication is summed, and
/// the per-processor collective count is read off rank 0's delta.
pub(crate) fn summarize_phases(shards: &[Vec<PhaseSpan>]) -> Vec<PhaseSummary> {
    let Some(rank0) = shards.first() else { return Vec::new() };
    let mut out = Vec::with_capacity(rank0.len());
    for (i, span0) in rank0.iter().enumerate() {
        let mut time = 0.0f64;
        let mut comm = CommStats::default();
        for shard in shards {
            let s = &shard[i];
            debug_assert_eq!(s.phase, span0.phase, "shards disagree on phase order");
            time = time.max(s.time);
            comm = comm.merged(&s.comm);
        }
        out.push(PhaseSummary {
            phase: span0.phase,
            time,
            collective_ops: span0.comm.collective_ops,
            comm,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_ordered() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert!(b > a);
        assert_eq!(format!("{a}"), format!("t{}", a.0));
    }

    #[test]
    fn phase_wire_encoding_roundtrips() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_u8(p.as_u8()), Some(p));
        }
        assert_eq!(Phase::from_u8(7), None);
    }

    #[test]
    fn phase_summaries_max_time_and_sum_comm() {
        let mk = |time, ops, bytes| PhaseSpan {
            phase: Phase::Exact,
            time,
            comm: CommStats { collective_ops: ops, bytes_sent: bytes, ..CommStats::default() },
        };
        let shards = vec![vec![mk(2.0, 5, 100)], vec![mk(3.0, 5, 40)]];
        let agg = summarize_phases(&shards);
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].phase, Phase::Exact);
        assert_eq!(agg[0].time, 3.0);
        assert_eq!(agg[0].collective_ops, 5, "per-processor count from rank 0");
        assert_eq!(agg[0].comm.bytes_sent, 140, "traffic summed across shards");
        assert!(summarize_phases(&[]).is_empty());
    }

    #[test]
    fn span_render_lists_phases_and_requests() {
        let span = BatchSpan {
            batch: 3,
            root: TraceId(17),
            requests: vec![RequestSpan {
                trace: TraceId(17),
                kind: "quantile",
                served: Served::Index,
                phases: vec![Phase::Probes, Phase::Exact],
                collective_ops: 12.5,
            }],
            phases: vec![PhaseSummary {
                phase: Phase::Probes,
                time: 1.0e-6,
                collective_ops: 8,
                comm: CommStats::default(),
            }],
        };
        let text = span.render();
        assert!(text.contains("batch 3 root=t17"), "{text}");
        assert!(text.contains("phase probes: 1.0µs, 8 collective ops"), "{text}");
        assert!(text.contains("t17 quantile served=index phases=probes,exact ops=12.5"), "{text}");
    }
}
