//! The SPMD machine: spawns `p` virtual processors and joins their results.

use std::time::Duration;

use crossbeam::channel::unbounded;

use crate::envelope::Envelope;
use crate::model::MachineModel;
use crate::process::Proc;

/// A coarse-grained parallel machine with `p` virtual processors.
///
/// [`Machine::run`] executes one SPMD program: the closure is invoked once
/// per processor (each on its own OS thread) with a [`Proc`] handle, and the
/// per-processor return values are collected in rank order.
///
/// ```
/// use cgselect_runtime::Machine;
/// let ranks = Machine::new(3).run(|p| p.rank()).unwrap();
/// assert_eq!(ranks, vec![0, 1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    p: usize,
    model: MachineModel,
    recv_timeout: Duration,
}

/// Error raised when an SPMD program fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A virtual processor panicked; carries the rank and panic message of
    /// the first failing rank.
    ProcPanicked {
        /// Rank of the panicking processor.
        rank: usize,
        /// Panic payload rendered as a string.
        message: String,
    },
    /// The SPMD program completed but left unconsumed messages behind,
    /// which indicates mismatched communication.
    PendingMessages {
        /// Rank holding the messages.
        rank: usize,
        /// Human-readable summary of the leftover envelopes.
        detail: String,
    },
    /// The SPMD program completed with phase timers still open.
    UnbalancedPhases {
        /// Rank with the open phase.
        rank: usize,
    },
    /// The persistent [`crate::Session`] refused to run because an earlier
    /// program in it failed, leaving worker state untrustworthy.
    SessionPoisoned,
    /// A frame crossing a process boundary failed to decode (truncated,
    /// version-mismatched, or corrupt) — raised by out-of-process execution
    /// backends instead of aborting on a half-written frame.
    WireProtocol {
        /// Rank (worker) whose frame failed to decode.
        rank: usize,
        /// Human-readable description of the decode failure.
        detail: String,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::ProcPanicked { rank, message } => {
                write!(f, "virtual processor {rank} panicked: {message}")
            }
            RunError::PendingMessages { rank, detail } => {
                write!(f, "processor {rank} finished with unconsumed messages: {detail}")
            }
            RunError::UnbalancedPhases { rank } => {
                write!(f, "processor {rank} finished with an unclosed phase timer")
            }
            RunError::SessionPoisoned => {
                write!(f, "session poisoned by an earlier failed program")
            }
            RunError::WireProtocol { rank, detail } => {
                write!(f, "worker {rank} wire protocol error: {detail}")
            }
        }
    }
}

impl std::error::Error for RunError {}

impl Machine {
    /// Creates a machine with `p` processors and the default (CM-5) model.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        Self::with_model(p, MachineModel::default())
    }

    /// Creates a machine with `p` processors and an explicit cost model.
    pub fn with_model(p: usize, model: MachineModel) -> Self {
        assert!(p >= 1, "a machine needs at least one processor");
        Machine { p, model, recv_timeout: Duration::from_secs(30) }
    }

    /// Overrides the receive timeout used to diagnose deadlocks (default 30s).
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout;
        self
    }

    /// Number of processors.
    pub fn nprocs(&self) -> usize {
        self.p
    }

    /// The configured receive timeout (shared with sessions started from
    /// this machine).
    pub(crate) fn timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// The machine's cost model.
    pub fn model(&self) -> MachineModel {
        self.model
    }

    /// Runs one SPMD program and returns the per-rank results in rank order.
    ///
    /// After the user closure returns, the runtime executes a final barrier
    /// and verifies that no processor holds unconsumed messages and that all
    /// phase timers are closed — turning protocol bugs into hard errors
    /// instead of silent corruption of the next run.
    pub fn run<F, R>(&self, f: F) -> Result<Vec<R>, RunError>
    where
        F: Fn(&mut Proc) -> R + Send + Sync,
        R: Send,
    {
        let p = self.p;
        let results: Vec<Result<R, RunError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .procs()
                .into_iter()
                .map(|mut proc| {
                    let f = &f;
                    scope.spawn(move || {
                        let out = f(&mut proc);
                        // End-of-run protocol check: everyone synchronizes,
                        // then no messages may remain anywhere.
                        proc.finish_program().map(|()| out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(r) => r,
                    Err(payload) => {
                        Err(RunError::ProcPanicked { rank, message: panic_message(payload) })
                    }
                })
                .collect()
        });

        let mut out = Vec::with_capacity(p);
        let mut primary_err = None;
        let mut secondary_err = None;
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    // When one processor panics, its peers typically fail
                    // afterwards with timeouts or disconnects while waiting
                    // for it. Report the root cause, not the fallout.
                    if e.is_secondary() {
                        if secondary_err.is_none() {
                            secondary_err = Some(e);
                        }
                    } else if primary_err.is_none() {
                        primary_err = Some(e);
                    }
                }
            }
        }
        match primary_err.or(secondary_err) {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

impl RunError {
    /// True for failures that are usually *consequences* of another
    /// processor's failure (timeouts and disconnects raised by the runtime
    /// itself). [`Machine::run`] and [`crate::Session`] use it to report
    /// root causes instead of fallout; external execution backends that
    /// collect per-worker failures themselves should apply the same
    /// triage.
    pub fn is_secondary(&self) -> bool {
        match self {
            RunError::ProcPanicked { message, .. } => {
                message.contains("timed out after")
                    || message.contains("all senders disconnected")
                    || message.contains("receiver hung up")
            }
            _ => false,
        }
    }
}

impl Machine {
    /// Builds the `p` connected [`Proc`] handles of this machine without
    /// running anything: the virtual crossbar is wired up and each handle
    /// can be moved onto a caller-owned worker thread.
    ///
    /// This is the constructor for execution backends that manage their own
    /// long-lived workers — [`crate::Session`] spawns and owns its threads
    /// for you, whereas a message-passing engine backend wants to own each
    /// shard's thread and command loop itself. The handles must be driven
    /// together (collectives block until every rank participates), every
    /// program a backend runs over them must end with
    /// [`Proc::finish_program`], and the backend must gate program
    /// boundaries — collect every rank's result before issuing the next
    /// program, as `Session` does through its result channels — or a fast
    /// rank's next-program messages race the slow ranks' end-of-program
    /// checks.
    pub fn procs(&self) -> Vec<Proc> {
        let mut txs = Vec::with_capacity(self.p);
        let mut rxs = Vec::with_capacity(self.p);
        for _ in 0..self.p {
            let (tx, rx) = unbounded::<Envelope>();
            txs.push(tx);
            rxs.push(rx);
        }
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| {
                Proc::new(rank, self.p, self.model, txs.clone(), rx, self.recv_timeout)
            })
            .collect()
    }

    /// Builds the [`Proc`] handle for one rank of this machine over an
    /// out-of-process transport: the caller supplies a
    /// [`crate::fabric::FabricLink`] carrying encoded frames between the
    /// peers (e.g. Unix-domain sockets between shard worker processes),
    /// and the runtime layers its virtual clock, `(src, tag)` matching and
    /// collectives on top.
    ///
    /// Each of the machine's `p` ranks must be constructed exactly once
    /// (typically one per process) against links that are wired to each
    /// other; the SPMD discipline and the per-program
    /// [`Proc::finish_program`] protocol are the same as for
    /// [`Machine::procs`]. Because modeled message sizes are computed before
    /// encoding, a program run over a fabric produces bit-identical virtual
    /// times and collective counts to the same program run in process.
    ///
    /// # Panics
    /// Panics if `rank >= p`.
    pub fn fabric_proc(&self, rank: usize, link: Box<dyn crate::fabric::FabricLink>) -> Proc {
        assert!(rank < self.p, "fabric rank {rank} out of range (p = {})", self.p);
        Proc::new_fabric(rank, self.p, self.model, link, self.recv_timeout)
    }

    /// Runs an SPMD program where each processor starts from its slice of
    /// pre-distributed input data — the common pattern of every experiment
    /// in this repository (`parts[rank]` is cloned into rank's closure).
    ///
    /// # Panics
    /// Panics if `parts.len() != p`.
    pub fn run_distributed<T, F, R>(&self, parts: &[Vec<T>], f: F) -> Result<Vec<R>, RunError>
    where
        T: Clone + Send + Sync,
        F: Fn(&mut Proc, Vec<T>) -> R + Send + Sync,
        R: Send,
    {
        assert_eq!(parts.len(), self.p, "need exactly one input vector per processor");
        self.run(|proc| f(proc, parts[proc.rank()].clone()))
    }
}

/// Renders a caught panic payload (`&str` or `String`) as a message
/// string, for reporting a worker's death. Shared by [`Machine::run`], the
/// [`crate::Session`] worker loop, and external execution backends that
/// `catch_unwind` their own workers.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = Machine::new(5).run(|p| p.rank() * 10).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_proc_machine_works() {
        let out = Machine::new(1).run(|p| (p.rank(), p.nprocs())).unwrap();
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_rejected() {
        let _ = Machine::new(0);
    }

    #[test]
    fn panic_is_reported_with_rank() {
        let err = Machine::new(3)
            .recv_timeout(Duration::from_millis(200))
            .run(|p| {
                if p.rank() == 1 {
                    panic!("boom at rank one");
                }
                p.rank()
            })
            .unwrap_err();
        match err {
            RunError::ProcPanicked { rank: 1, message } => {
                assert!(message.contains("boom at rank one"), "message: {message}")
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn leftover_messages_are_detected() {
        let err = Machine::new(2)
            .run(|p| {
                if p.rank() == 0 {
                    p.send(1, 7, 42u32); // never received
                }
            })
            .unwrap_err();
        match err {
            RunError::PendingMessages { rank: 1, detail } => {
                assert!(detail.contains("tag=0x7"), "detail: {detail}")
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn unbalanced_phase_is_detected() {
        let err = Machine::new(1)
            .run(|p| {
                p.phase_begin("oops");
            })
            .unwrap_err();
        assert_eq!(err, RunError::UnbalancedPhases { rank: 0 });
    }

    #[test]
    fn run_distributed_hands_out_slices() {
        let parts: Vec<Vec<u32>> = vec![vec![1, 2], vec![3], vec![]];
        let out = Machine::new(3)
            .run_distributed(&parts, |proc, mine| (proc.rank(), mine.len()))
            .unwrap();
        assert_eq!(out, vec![(0, 2), (1, 1), (2, 0)]);
    }

    #[test]
    #[should_panic(expected = "one input vector per processor")]
    fn run_distributed_checks_shape() {
        let parts: Vec<Vec<u32>> = vec![vec![1]];
        let _ = Machine::new(2).run_distributed(&parts, |_, v| v.len());
    }

    #[test]
    fn ping_pong_and_virtual_time() {
        let model = MachineModel::new(10.0, 1.0, 0.0); // tau=10s, mu=1 s/byte
        let times = Machine::with_model(2, model)
            .run(|p| {
                if p.rank() == 0 {
                    p.send(1, 1, 5u64); // 8 bytes: sender pays 10 + 8 = 18
                    let v: u64 = p.recv(1, 2);
                    assert_eq!(v, 6);
                } else {
                    let v: u64 = p.recv(0, 1);
                    assert_eq!(v, 5);
                    p.send(0, 2, v + 1);
                }
                p.now()
            })
            .unwrap();
        // rank1: recv completes at max(0, 0+18)+8 = 26; reply send -> 26+18 = 44
        assert_eq!(times[1], 44.0);
        // rank0: send -> 18; reply sent_at=26 arrives 26+18=44; +copy 8 = 52
        assert_eq!(times[0], 52.0);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        Machine::new(2)
            .run(|p| {
                if p.rank() == 0 {
                    p.send(1, 10, 1u8);
                    p.send(1, 20, 2u8);
                } else {
                    // Receive in the opposite order of sending.
                    let b: u8 = p.recv(0, 20);
                    let a: u8 = p.recv(0, 10);
                    assert_eq!((a, b), (1, 2));
                }
            })
            .unwrap();
    }

    #[test]
    fn timeout_diagnostic_mentions_peer() {
        let err = Machine::new(2)
            .recv_timeout(Duration::from_millis(100))
            .run(|p| {
                if p.rank() == 0 {
                    let _: u8 = p.recv(1, 99); // never sent
                }
            })
            .unwrap_err();
        match err {
            RunError::ProcPanicked { rank: 0, message } => {
                assert!(message.contains("timed out"), "message: {message}");
                assert!(message.contains("tag=0x63"), "message: {message}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn type_mismatch_panics_with_expected_type() {
        let err = Machine::new(2)
            .recv_timeout(Duration::from_millis(200))
            .run(|p| {
                if p.rank() == 0 {
                    p.send(1, 3, 1u32);
                } else {
                    let _: u64 = p.recv(0, 3);
                }
            })
            .unwrap_err();
        match err {
            RunError::ProcPanicked { rank: 1, message } => {
                assert!(message.contains("unexpected payload type"), "{message}");
                assert!(message.contains("u64"), "{message}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn vec_messages_model_element_bytes() {
        let model = MachineModel::new(0.0, 1.0, 0.0);
        let out = Machine::with_model(2, model)
            .run(|p| {
                if p.rank() == 0 {
                    p.send_vec(1, 1, vec![1u32, 2, 3]); // 12 bytes
                    p.now()
                } else {
                    let v: Vec<u32> = p.recv_vec(0, 1);
                    assert_eq!(v, vec![1, 2, 3]);
                    p.now()
                }
            })
            .unwrap();
        assert_eq!(out[0], 12.0); // sender: mu * 12
        assert_eq!(out[1], 24.0); // receiver: arrival 12 + copy 12
    }

    #[test]
    fn charge_ops_advances_clock() {
        let model = MachineModel::new(0.0, 0.0, 2.0);
        let out = Machine::with_model(1, model)
            .run(|p| {
                p.charge_ops(5);
                (p.now(), p.ops_charged())
            })
            .unwrap();
        assert_eq!(out[0], (10.0, 5));
    }

    #[test]
    fn procs_fabric_runs_collectives_on_caller_owned_threads() {
        // The external-backend pattern: take the wired-up Proc handles, move
        // each onto its own long-lived worker thread, and run a stream of
        // programs against them. The host must gate program boundaries
        // (collect every worker's reply before issuing the next command) —
        // that is what makes the per-program `finish_program` protocol
        // check race-free, exactly as `Session` gates via its result
        // channels.
        let machine = Machine::with_model(4, MachineModel::free());
        let mut links = Vec::new();
        let handles: Vec<_> = machine
            .procs()
            .into_iter()
            .map(|mut proc| {
                let (cmd_tx, cmd_rx) = unbounded::<u64>();
                let (res_tx, res_rx) = unbounded::<u64>();
                links.push((cmd_tx, res_rx));
                std::thread::spawn(move || {
                    while let Ok(round) = cmd_rx.recv() {
                        let s = proc.combine(proc.rank() as u64 + round, |a, b| a + b);
                        proc.finish_program().unwrap();
                        res_tx.send(s).unwrap();
                    }
                    proc.comm_stats().collective_ops
                })
            })
            .collect();
        for round in 0..3u64 {
            for (tx, _) in &links {
                tx.send(round).unwrap();
            }
            let sums: Vec<u64> = links.iter().map(|(_, rx)| rx.recv().unwrap()).collect();
            assert_eq!(sums, vec![6 + 4 * round; 4], "round {round}");
        }
        drop(links); // disconnect: workers exit their command loops
        let ops: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // SPMD discipline: every rank counts the same collectives.
        assert!(ops[0] > 0);
        assert_eq!(ops, vec![ops[0]; 4]);
    }

    #[test]
    fn comm_stats_count_messages() {
        let stats = Machine::new(2)
            .run(|p| {
                if p.rank() == 0 {
                    p.send(1, 1, 0u64);
                    p.send_vec(1, 2, vec![0u8; 100]);
                } else {
                    let _: u64 = p.recv(0, 1);
                    let _: Vec<u8> = p.recv_vec(0, 2);
                }
                p.comm_stats()
            })
            .unwrap();
        // Snapshots are taken before the end-of-run barrier, so they are exact.
        assert_eq!(stats[0].msgs_sent, 2);
        assert_eq!(stats[0].bytes_sent, 108);
        assert_eq!(stats[1].msgs_recv, 2);
        assert_eq!(stats[1].bytes_recv, 108);
    }
}
