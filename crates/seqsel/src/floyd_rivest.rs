//! Floyd–Rivest SELECT (Algorithm 489) — the randomized sequential selection
//! the paper cites as [12] (Floyd & Rivest, CACM 1975).

use crate::ops::OpCount;

/// Window size below which plain partitioning proceeds without sampling
/// (the constant from the original publication).
const SAMPLING_CUTOFF: isize = 600;

/// Returns the element of 0-based rank `k` in `data` in expected `O(n)` time
/// with `n + min(k, n−k) + o(n)` expected comparisons — the fastest known
/// practical selection on random data.
///
/// The implementation is a faithful port of Algorithm 489: for large
/// windows it first recursively selects within a small sampled sub-window to
/// obtain an excellent pivot, then partitions. The slice is permuted;
/// comparisons and moves are accumulated into `ops`.
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn floyd_rivest_select<T: Copy + Ord>(data: &mut [T], k: usize, ops: &mut OpCount) -> T {
    assert!(k < data.len(), "rank {k} out of range for {} elements", data.len());
    fr(data, 0, data.len() as isize - 1, k as isize, ops);
    data[k]
}

fn fr<T: Copy + Ord>(a: &mut [T], mut left: isize, mut right: isize, k: isize, ops: &mut OpCount) {
    while right > left {
        if right - left > SAMPLING_CUTOFF {
            // Sample-based window narrowing: pick bounds so that the element
            // of rank k lies within [new_left, new_right] w.h.p., then find
            // it there first — it becomes the partition pivot below.
            let n = (right - left + 1) as f64;
            let i = (k - left + 1) as f64;
            let z = n.ln();
            let s = 0.5 * (2.0 * z / 3.0).exp();
            let sd = 0.5 * (z * s * (n - s) / n).sqrt() * if i < n / 2.0 { -1.0 } else { 1.0 };
            let new_left = left.max((k as f64 - i * s / n + sd).floor() as isize);
            let new_right = right.min((k as f64 + (n - i) * s / n + sd).floor() as isize);
            fr(a, new_left, new_right, k, ops);
        }

        // Partition a[left..=right] around t = a[k] (classic two-pointer
        // scheme with sentinels, per the original algorithm).
        let t = a[k as usize];
        let mut i = left;
        let mut j = right;
        a.swap(left as usize, k as usize);
        ops.moves += 3;
        ops.cmps += 1;
        if a[right as usize] > t {
            a.swap(right as usize, left as usize);
            ops.moves += 3;
        }
        while i < j {
            a.swap(i as usize, j as usize);
            ops.moves += 3;
            i += 1;
            j -= 1;
            loop {
                ops.cmps += 1;
                if a[i as usize] < t {
                    i += 1;
                } else {
                    break;
                }
            }
            loop {
                ops.cmps += 1;
                if a[j as usize] > t {
                    j -= 1;
                } else {
                    break;
                }
            }
        }
        ops.cmps += 1;
        if a[left as usize] == t {
            a.swap(left as usize, j as usize);
            ops.moves += 3;
        } else {
            j += 1;
            a.swap(j as usize, right as usize);
            ops.moves += 3;
        }
        if j <= k {
            left = j + 1;
        }
        if k <= j {
            right = j - 1;
        }
    }
}

/// Selects every 0-based rank in ascending `ranks` with one pass of
/// successive Floyd–Rivest selects over shrinking suffixes.
///
/// Each `floyd_rivest_select(&mut data[base..], k - base, …)` call leaves
/// `data[base..k] ≤ data[k] ≤ data[k+1..]`, so the next (larger) rank only
/// has to search the suffix past the previous answer. For the small handful
/// of ranks a multi-select *finisher* window carries, this does far less
/// work than sorting the window — expected `O(n + Σ gap)` comparisons
/// instead of `O(n log n)` — which is exactly the dual-heap observation:
/// the final rounds' windows are cheap to finish locally.
///
/// Returns the selected values, one per rank, in the order given.
///
/// # Panics
/// Panics if `ranks` is not ascending or any rank is out of range.
pub fn floyd_rivest_multi_select<T: Copy + Ord>(
    data: &mut [T],
    ranks: &[usize],
    ops: &mut OpCount,
) -> Vec<T> {
    assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "ranks must be ascending");
    let mut out = Vec::with_capacity(ranks.len());
    let mut base = 0usize;
    let mut prev: Option<usize> = None;
    for &k in ranks {
        if prev == Some(k) {
            out.push(data[k]);
            continue;
        }
        let _ = floyd_rivest_select(&mut data[base..], k - base, ops);
        out.push(data[k]);
        prev = Some(k);
        base = k + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::KernelRng;

    fn oracle(mut v: Vec<i64>, k: usize) -> i64 {
        v.sort_unstable();
        v[k]
    }

    #[test]
    fn selects_every_rank_small() {
        let base = vec![4i64, -1, 4, 9, 0, 3, 3, 12, -7, 5];
        for k in 0..base.len() {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            assert_eq!(floyd_rivest_select(&mut v, k, &mut ops), oracle(base.clone(), k), "k={k}");
        }
    }

    #[test]
    fn exercises_the_sampling_path() {
        // n must exceed 600 for the sampling branch to run.
        let mut rng = KernelRng::new(23);
        let base: Vec<i64> = (0..100_000).map(|_| rng.next_u64() as i64).collect();
        for k in [0, 17, 50_000, 99_999] {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            assert_eq!(floyd_rivest_select(&mut v, k, &mut ops), oracle(base.clone(), k), "k={k}");
        }
    }

    #[test]
    fn duplicates_heavy_input() {
        let mut rng = KernelRng::new(31);
        let base: Vec<i64> = (0..20_000).map(|_| (rng.next_u64() % 5) as i64).collect();
        for k in [0, 10_000, 19_999] {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            assert_eq!(floyd_rivest_select(&mut v, k, &mut ops), oracle(base.clone(), k), "k={k}");
        }
    }

    #[test]
    fn sorted_input_large() {
        let base: Vec<i64> = (0..50_000).collect();
        let mut v = base.clone();
        let mut ops = OpCount::new();
        assert_eq!(floyd_rivest_select(&mut v, 12_345, &mut ops), 12_345);
    }

    #[test]
    fn comparison_count_near_information_bound() {
        // Floyd–Rivest's selling point: ~1.5n comparisons for the median on
        // random data. Allow up to 4n to keep the test robust.
        let mut rng = KernelRng::new(47);
        let n = 1 << 17;
        let mut v: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut ops = OpCount::new();
        let _ = floyd_rivest_select(&mut v, (n / 2) as usize, &mut ops);
        assert!(ops.cmps < 4 * n, "Floyd–Rivest did {} cmps on n={n}", ops.cmps);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut v = vec![1, 2];
        let mut ops = OpCount::new();
        let _ = floyd_rivest_select(&mut v, 2, &mut ops);
    }

    #[test]
    fn multi_select_matches_sorted_oracle() {
        let mut rng = KernelRng::new(77);
        for n in [1usize, 2, 10, 1000, 5000] {
            let base: Vec<i64> = (0..n).map(|_| (rng.next_u64() % 97) as i64).collect();
            let mut sorted = base.clone();
            sorted.sort_unstable();
            for ranks in [
                vec![0],
                vec![n - 1],
                vec![0, n / 2, n - 1],
                vec![n / 4, n / 4, n / 2],
                (0..n.min(8)).collect::<Vec<_>>(),
            ] {
                let mut v = base.clone();
                let mut ops = OpCount::new();
                let got = floyd_rivest_multi_select(&mut v, &ranks, &mut ops);
                let want: Vec<i64> = ranks.iter().map(|&k| sorted[k]).collect();
                assert_eq!(got, want, "n={n} ranks={ranks:?}");
            }
        }
    }

    #[test]
    fn multi_select_beats_sorting_on_sparse_ranks() {
        // The finisher's rationale: a few ranks out of a large window cost
        // roughly linear work, not the window's full sort.
        let mut rng = KernelRng::new(53);
        let n = 1usize << 14;
        let base: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut v = base.clone();
        let mut ops = OpCount::new();
        let _ = floyd_rivest_multi_select(&mut v, &[n / 8, n / 2, 7 * n / 8], &mut ops);
        let sort_floor = (n as u64) * (n as u64).ilog2() as u64;
        assert!(
            ops.total() < sort_floor,
            "multi-select did {} ops, sorting would need ~{sort_floor} cmps",
            ops.total()
        );
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn multi_select_rejects_unsorted_ranks() {
        let mut v = vec![3, 1, 2];
        let mut ops = OpCount::new();
        let _ = floyd_rivest_multi_select(&mut v, &[2, 0], &mut ops);
    }
}
