//! Dimension exchange load balancing (Algorithm 6; Cybenko 1989).

use cgselect_runtime::{Key, Proc};

use crate::BalanceReport;

/// Dimension exchange: `⌈log₂ p⌉` rounds; in round `j`, processors whose
/// ids differ in bit `j` exchange their counts and the fuller one ships the
/// excess above `⌈(nᵢ + nₗ)/2⌉` to its partner.
///
/// On a power-of-two machine this is the paper's hypercube algorithm: after
/// round `j`, every aligned block of `2^(j+1)` processors holds equal counts
/// (±1), and after all rounds the global imbalance is at most `⌈log₂ p⌉`.
/// On non-power-of-two machines the partnerless processors sit rounds out,
/// which weakens the bound; the prefix-based balancers are exact for any
/// `p`. Worst-case cost `O(τ log p + μ·n_max·log p)`, but as the paper
/// observes, far less moves in practice.
pub fn dimension_exchange<T: Key>(proc: &mut Proc, data: &mut Vec<T>) -> BalanceReport {
    let p = proc.nprocs();
    let rank = proc.rank();
    let mut report = BalanceReport::default();
    if p == 1 {
        return report;
    }
    let tag = proc.fresh_tag();
    let ndims = usize::BITS - (p - 1).leading_zeros();
    for j in 0..ndims {
        let partner = rank ^ (1usize << j);
        if partner >= p {
            continue;
        }
        let count_tag = tag | (2 * j) as u64;
        let data_tag = tag | (2 * j + 1) as u64;
        proc.send_tagged(partner, count_tag, data.len() as u64);
        let nl: u64 = proc.recv_tagged(partner, count_tag);
        let ni = data.len() as u64;
        let navg = (ni + nl).div_ceil(2);
        if ni > navg {
            let amt = (ni - navg) as usize;
            let payload = data.split_off(data.len() - amt);
            proc.charge_ops(amt as u64);
            proc.send_vec_tagged(partner, data_tag, payload);
            report.elements_sent += amt as u64;
            report.messages_sent += 1;
        } else if nl > navg {
            let part: Vec<T> = proc.recv_vec_tagged(partner, data_tag);
            proc.charge_ops(part.len() as u64);
            report.elements_recv += part.len() as u64;
            data.extend(part);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel};

    fn run(parts: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        let p = parts.len();
        Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut mine = parts[proc.rank()].clone();
                dimension_exchange(proc, &mut mine);
                mine
            })
            .unwrap()
    }

    fn same_multiset(parts: &[Vec<u64>], out: &[Vec<u64>]) -> bool {
        let mut a: Vec<u64> = parts.iter().flatten().copied().collect();
        let mut b: Vec<u64> = out.iter().flatten().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    #[test]
    fn power_of_two_bounds_spread_by_log_p() {
        for p in [2usize, 4, 8, 16, 32] {
            // All data on processor 0 — the worst case.
            let mut parts = vec![Vec::new(); p];
            parts[0] = (0..1000u64).collect();
            let out = run(parts.clone());
            assert!(same_multiset(&parts, &out), "p={p}");
            let sizes: Vec<usize> = out.iter().map(Vec::len).collect();
            let (mn, mx) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            let log_p = (p as f64).log2().ceil() as usize;
            assert!(
                mx - mn <= log_p,
                "p={p}: spread {} exceeds log p = {log_p} ({sizes:?})",
                mx - mn
            );
        }
    }

    #[test]
    fn exact_when_counts_divide_evenly() {
        // 8 procs, 64 elements on proc 0: powers of two all the way down.
        let mut parts = vec![Vec::new(); 8];
        parts[0] = (0..64u64).collect();
        let out = run(parts);
        assert!(
            out.iter().all(|v| v.len() == 8),
            "{:?}",
            out.iter().map(Vec::len).collect::<Vec<_>>()
        );
    }

    #[test]
    fn already_balanced_moves_nothing() {
        let parts: Vec<Vec<u64>> = (0..8).map(|i| vec![i; 10]).collect();
        let p = parts.len();
        let reports = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut mine = parts[proc.rank()].clone();
                dimension_exchange(proc, &mut mine)
            })
            .unwrap();
        assert!(reports.iter().all(|r| r.elements_sent == 0 && r.elements_recv == 0));
    }

    #[test]
    fn non_power_of_two_preserves_multiset() {
        for p in [3usize, 5, 6, 7, 12] {
            let mut parts = vec![Vec::new(); p];
            parts[p - 1] = (0..500u64).collect();
            let out = run(parts.clone());
            assert!(same_multiset(&parts, &out), "p={p}");
            // Balance is weaker off powers of two, but the lone hoarder
            // must have shed a majority of its load.
            assert!(out[p - 1].len() < 400, "p={p}: processor still holds {}", out[p - 1].len());
        }
    }

    #[test]
    fn single_processor_noop() {
        let out = run(vec![(0..5).collect()]);
        assert_eq!(out[0], (0..5).collect::<Vec<_>>());
    }
}
