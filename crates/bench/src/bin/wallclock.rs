//! Wall-clock hot-path benchmark: the branchless kernels vs the scalar
//! reference loops they replaced, measured as **host wall time** — the one
//! axis the kernels are allowed to move.
//!
//! Two layers, both run in kernel mode and in scalar-reference mode (the
//! in-binary pre-PR baseline, toggled with
//! `cgselect_seqsel::set_scalar_reference_mode`):
//!
//! * **Microbenches** — `count_below` over `u64`/`u32`/`i64` and
//!   `partition_by_bounds` (64 splitters), per-element hot loops timed in
//!   isolation at n = 2^20 (2^18 under `--quick`).
//! * **End-to-end** — a probe-heavy batched request stream (ranks,
//!   rank-of-value probes, range counts) on the index-free engine at
//!   n = 2^20, on both `LocalSpmd` and `ChannelMp`, query-phase wall time
//!   only. Answers from the two modes are compared on the fly: a kernel
//!   that changes an answer fails the run outright.
//!
//! Outputs `results/engine_wall.{csv,txt}` plus machine-readable
//! `BENCH_wall.json` at the workspace root. Pass `--check` to gate:
//! absolute speedup floors (count_below u64 and partition >= 1.5x, e2e
//! LocalSpmd >= 1.1x) and, when a committed `BENCH_wall.json` exists from
//! a previous run, no speedup ratio may fall below 75% of its committed
//! value — the noise-tolerant CI wall-time regression guard. Ratios (not
//! absolute times) are gated so the guard is portable across machines.

use std::time::Instant;

use cgselect_bench::chart::{markdown_table, write_csv, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_engine::{
    BackendChoice, Bounds, ChannelMpTuning, Engine, EngineConfig, Request, Response,
};
use cgselect_seqsel::{
    count_below_kernel, count_below_reference, partition_by_bounds, set_scalar_reference_mode,
    OpCount, SepBound,
};
use cgselect_workloads::{generate, Distribution};

fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// Wall seconds of the best (minimum) of `reps` runs of `f` — minimum, not
/// mean, because scheduler noise only ever adds time.
fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// One named speedup measurement: the scalar-reference wall over the
/// kernel wall for the same work.
struct Measure {
    key: &'static str,
    reference_s: f64,
    kernel_s: f64,
}

impl Measure {
    fn speedup(&self) -> f64 {
        self.reference_s / self.kernel_s.max(1e-12)
    }
}

/// `count_below` microbench for one key type: `iters` scans over `n`
/// elements, reference loop vs branchless kernel.
fn micro_count<T: Copy + Ord + From<u16>>(
    key: &'static str,
    reps: usize,
    iters: usize,
    raw: &[u64],
) -> Measure {
    let data: Vec<T> = raw.iter().map(|&x| T::from((x % 60_000) as u16)).collect();
    let value = T::from(30_000u16);
    let time = |kernel: bool| {
        best_of(reps, || {
            let mut cmps = 0u64;
            let mut acc = 0u64;
            let wall0 = Instant::now();
            for i in 0..iters {
                let inclusive = i % 2 == 0;
                acc += if kernel {
                    count_below_kernel(&data, value, inclusive, &mut cmps)
                } else {
                    count_below_reference(&data, value, inclusive, &mut cmps)
                };
            }
            let wall = wall0.elapsed().as_secs_f64();
            std::hint::black_box((acc, cmps));
            wall / iters as f64
        })
    };
    Measure { key, reference_s: time(false), kernel_s: time(true) }
}

/// `partition_by_bounds` microbench: 64 splitters over `n` elements,
/// scalar two-pointer reference vs the branchless block-partition kernel.
/// The clone feeding each run is excluded from the timed region.
fn micro_partition(reps: usize, raw: &[u64]) -> Measure {
    // Bounds spanning the generator's value range (uniform in [0, 2^63)),
    // so every recursion level splits its segment near the middle — the
    // worst case for the reference walk's branch predictor.
    let bounds: Vec<SepBound<u64>> =
        (1..=64u64).map(|i| SepBound::le((u64::MAX >> 1) / 65 * i)).collect();
    let time = |reference: bool| {
        best_of(reps, || {
            let mut scratch = raw.to_vec();
            let mut ops = OpCount::new();
            set_scalar_reference_mode(reference);
            let wall0 = Instant::now();
            let offsets = partition_by_bounds(&mut scratch, &bounds, &mut ops);
            let wall = wall0.elapsed().as_secs_f64();
            set_scalar_reference_mode(false);
            std::hint::black_box((offsets, ops));
            wall
        })
    };
    Measure { key: "micro.partition_by_bounds.u64", reference_s: time(true), kernel_s: time(false) }
}

/// The probe-heavy e2e batches: every batch mixes exact ranks (the
/// multi-select partition path) with rank-of-value probes and range counts
/// (the per-shard count-scan path).
fn e2e_batches(data: &[u64], batches: u64) -> Vec<Vec<Request<u64>>> {
    let total = data.len() as u64;
    (0..batches)
        .map(|b| {
            (0..8u64)
                .flat_map(|i| {
                    let rank = (i * total / 8 + b * 131 + i) % total;
                    let v = data[((b * 7919 + i * 104_729) as usize) % data.len()] ^ 1;
                    vec![
                        Request::rank(rank),
                        Request::rank_of(v),
                        Request::rank_of(v.wrapping_mul(3) % (4 * total)),
                        Request::count_between(Bounds::closed(v, v.saturating_add(total))),
                    ]
                })
                .collect()
        })
        .collect()
}

/// Query-phase wall seconds (ingest excluded) of the batch stream on a
/// fresh index-free engine, plus the answers for cross-mode conformance.
fn e2e_run(
    backend: BackendChoice,
    data: &[u64],
    p: usize,
    batches: &[Vec<Request<u64>>],
) -> (f64, Vec<Response<u64>>) {
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).index_buckets(0).backend(backend)).expect("engine start");
    engine.ingest(data.to_vec()).expect("ingest");
    let wall0 = Instant::now();
    let mut answers = Vec::new();
    for batch in batches {
        let report = engine.run(batch).expect("run");
        answers.extend(report.outcomes.into_iter().map(|o| o.response));
    }
    (wall0.elapsed().as_secs_f64(), answers)
}

/// E2e measurement on one backend: best-of-`reps` wall per mode, with the
/// two modes' answers required to be identical.
fn e2e(
    key: &'static str,
    backend: impl Fn() -> BackendChoice,
    data: &[u64],
    p: usize,
    batches: &[Vec<Request<u64>>],
    reps: usize,
) -> Measure {
    let mut walls = [f64::INFINITY; 2];
    let mut answers: [Option<Vec<Response<u64>>>; 2] = [None, None];
    for _ in 0..reps {
        for (slot, reference) in [(0usize, false), (1usize, true)] {
            set_scalar_reference_mode(reference);
            let (wall, ans) = e2e_run(backend(), data, p, batches);
            set_scalar_reference_mode(false);
            walls[slot] = walls[slot].min(wall);
            match &answers[slot] {
                None => answers[slot] = Some(ans),
                Some(prev) => assert_eq!(prev, &ans, "{key}: answers drifted between reps"),
            }
        }
    }
    assert_eq!(
        answers[0], answers[1],
        "{key}: kernel and scalar-reference answers must be identical"
    );
    Measure { key, reference_s: walls[1], kernel_s: walls[0] }
}

/// Reads the flat `"metrics"` map out of a committed `BENCH_wall.json`
/// (the format [`write_json`] emits): one `"key": value` pair per line.
fn read_baseline(path: &std::path::Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((key, value)) = rest.split_once("\": ") else { continue };
        if let Ok(v) = value.parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

/// Hand-written flat JSON (no serde in the workspace): header fields plus
/// one `"key": value` metric per line, parseable by [`read_baseline`].
fn write_json(path: &std::path::Path, n: usize, quick: bool, measures: &[Measure]) {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"wallclock\",\n");
    body.push_str(&format!("  \"n\": {n},\n"));
    body.push_str(&format!("  \"quick\": {quick},\n"));
    body.push_str("  \"metrics\": {\n");
    for (i, m) in measures.iter().enumerate() {
        let comma = if i + 1 == measures.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{}.reference_s\": {:.6},\n    \"{}.kernel_s\": {:.6},\n    \
             \"{}.speedup\": {:.4}{comma}\n",
            m.key,
            m.reference_s,
            m.key,
            m.kernel_s,
            m.key,
            m.speedup()
        ));
    }
    body.push_str("  }\n}\n");
    std::fs::write(path, body).expect("write BENCH_wall.json");
}

fn main() {
    let quick = quick_mode();
    let dir = results_dir();
    let json_path = dir.join("..").join("BENCH_wall.json");
    let baseline = read_baseline(&json_path);

    let n: usize = if quick { 1 << 18 } else { 1 << 20 };
    let reps = if quick { 3 } else { 5 };
    let p = 8;
    let raw: Vec<u64> = generate(Distribution::Random, n, p, 23).into_iter().flatten().collect();

    // Microbenches: the per-element hot loops in isolation.
    let iters = if quick { 8 } else { 16 };
    let mut measures = vec![
        micro_count::<u64>("micro.count_below.u64", reps, iters, &raw),
        micro_count::<u32>("micro.count_below.u32", reps, iters, &raw),
        micro_count::<i64>("micro.count_below.i64", reps, iters, &raw),
        micro_partition(reps, &raw),
    ];

    // End-to-end: the probe-heavy batched stream, query-phase wall only.
    let batches = e2e_batches(&raw, if quick { 3 } else { 6 });
    let e2e_reps = if quick { 2 } else { 3 };
    measures.push(e2e(
        "e2e.local_spmd.batched",
        || BackendChoice::LocalSpmd,
        &raw,
        p,
        &batches,
        e2e_reps,
    ));
    measures.push(e2e(
        "e2e.channel_mp.batched",
        || BackendChoice::ChannelMp(ChannelMpTuning::default()),
        &raw,
        p,
        &batches,
        e2e_reps,
    ));

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for m in &measures {
        println!(
            "{:<32} reference {:>9.4}s  kernel {:>9.4}s  speedup {:.2}x",
            m.key,
            m.reference_s,
            m.kernel_s,
            m.speedup()
        );
        rows.push(format!(
            "{},{n},{:.6},{:.6},{:.4}",
            m.key,
            m.reference_s,
            m.kernel_s,
            m.speedup()
        ));
        table.push(vec![
            m.key.to_string(),
            format!("{:.4}", m.reference_s),
            format!("{:.4}", m.kernel_s),
            format!("{:.2}x", m.speedup()),
        ]);
    }

    let out = format!(
        "Wall-clock hot paths: branchless kernels vs the scalar reference loops\n\
         (n = {n}, p = {p}, random data; times are host wall seconds, best of {reps};\n\
         e2e = probe-heavy batched requests on the index-free engine, query phase only;\n\
         the reference column is the pre-kernel scalar baseline, toggled in-binary)\n\n{}\n\
         The kernels charge bit-identical measured ops and return bit-identical\n\
         answers (asserted during this run) — wall time is the only axis moved.\n",
        markdown_table(&["measurement", "reference s", "kernel s", "speedup"], &table)
    );
    write_csv(&dir.join("engine_wall.csv"), "measurement,n,reference_s,kernel_s,speedup", &rows);
    write_text(&dir.join("engine_wall.txt"), &out);
    print!("{out}");

    write_json(&json_path, n, quick, &measures);
    println!("wallclock -> {}/engine_wall.{{csv,txt}} + BENCH_wall.json", dir.display());

    if check_mode() {
        let mut ok = true;
        let find = |key: &str| measures.iter().find(|m| m.key == key).expect("measured");
        // Absolute, machine-portable floors.
        for (key, floor) in [
            ("micro.count_below.u64", 1.5),
            ("micro.partition_by_bounds.u64", 1.5),
            ("e2e.local_spmd.batched", 1.1),
        ] {
            let s = find(key).speedup();
            if s < floor {
                eprintln!("WALL REGRESSION: {key} speedup {s:.2}x below floor {floor:.1}x");
                ok = false;
            }
        }
        // Relative guard vs the committed baseline: a kernel may not lose
        // more than 25% of its committed speedup (noise tolerance). Only
        // same-size runs are comparable — speedups shift with the working
        // set, so a `--quick` run is never judged against a full baseline.
        let same_n = baseline.iter().any(|(k, v)| k == "n" && *v == n as f64);
        if !same_n && !baseline.is_empty() {
            println!("perf smoke: no committed baseline at n = {n}; floors only");
        }
        for (key, committed) in baseline.iter().filter(|_| same_n) {
            let Some(key) = key.strip_suffix(".speedup") else { continue };
            let Some(m) = measures.iter().find(|m| m.key == key) else { continue };
            if m.speedup() < 0.75 * committed {
                eprintln!(
                    "WALL REGRESSION: {key} speedup {:.2}x fell below 75% of committed {committed:.2}x",
                    m.speedup()
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "perf smoke: kernel speedup floors held (count_below >= 1.5x, partition >= 1.5x, \
             e2e >= 1.1x) and no speedup fell below 75% of the committed baseline"
        );
    }
}
