//! Machinery shared by all four selection algorithms: the iterative
//! narrowing state, the three-way counting step, and the sequential finish.

use cgselect_runtime::{Key, Proc, PHASE_FINISH};
use cgselect_seqsel::{partition3, partition_le, select_with, KernelRng, LocalKernel, OpCount};

/// Global narrowing state carried across iterations: `n` elements remain in
/// play and the target has 0-based rank `k` among them.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Narrow {
    pub n: u64,
    pub k: u64,
}

/// Outcome of one three-way narrowing decision.
pub(crate) enum Step {
    /// Keep the `< pivot` zone (local prefix of length `.0`).
    Low(usize),
    /// The target equals the pivot: selection is done.
    Done,
    /// Keep the `> hi` zone (local suffix starting at `.0`).
    High(usize),
    /// Keep the middle `[lo, hi]` zone (local `[a, b)`), used by fast
    /// randomized selection.
    Mid(usize, usize),
}

impl Narrow {
    /// Decides which zone survives given the global three-zone counts
    /// `(c_lt, c_eq_or_mid, c_gt)` and this processor's local zone bounds
    /// `(a, b)` (as returned by `partition3`). Updates `n`/`k` accordingly.
    ///
    /// For the single-pivot algorithms the middle zone is the pivot's
    /// equality class, so landing in it means the pivot *is* the answer —
    /// the degenerate-duplicate livelock of a two-way `≤`/`>` split (keep
    /// "everything ≤ max" forever) cannot occur.
    pub fn decide_eq(&mut self, counts: (u64, u64, u64), a: usize, b: usize) -> Step {
        let (c_lt, c_eq, _c_gt) = counts;
        debug_assert!(self.k < self.n);
        if self.k < c_lt {
            self.n = c_lt;
            Step::Low(a)
        } else if self.k < c_lt + c_eq {
            Step::Done
        } else {
            self.k -= c_lt + c_eq;
            self.n -= c_lt + c_eq;
            Step::High(b)
        }
    }

    /// Bracket decision for fast randomized selection: the middle zone is
    /// `[k₁, k₂]`, kept when the target's rank falls inside it. Returns
    /// `(step, successful)` where `successful` is false when the target
    /// fell outside the bracket (the paper's "unsuccessful iteration" —
    /// the far side is still discarded, per the paper's modification).
    pub fn decide_bracket(&mut self, counts: (u64, u64, u64), a: usize, b: usize) -> (Step, bool) {
        let (c_less, c_mid, c_high) = counts;
        debug_assert!(self.k < self.n);
        if self.k < c_less {
            self.n = c_less;
            (Step::Low(a), false)
        } else if self.k < c_less + c_mid {
            self.k -= c_less;
            self.n = c_mid;
            (Step::Mid(a, b), true)
        } else {
            self.k -= c_less + c_mid;
            self.n = c_high;
            debug_assert_eq!(self.n, c_high);
            (Step::High(b), false)
        }
    }
}

/// Applies a [`Step`] to the physical local vector, charging the element
/// moves that the shrink actually performs (a front drain shifts the
/// surviving suffix).
pub(crate) fn apply_step<T: Key>(proc: &mut Proc, data: &mut Vec<T>, step: &Step) {
    match *step {
        Step::Low(a) => data.truncate(a),
        Step::High(b) => {
            data.drain(..b);
            proc.charge_ops(data.len() as u64);
        }
        Step::Mid(a, b) => {
            data.truncate(b);
            data.drain(..a);
            proc.charge_ops(data.len() as u64);
        }
        Step::Done => {}
    }
}

/// The paper's Steps 4–6 for the single-pivot algorithms (1 and 3): a
/// two-way `≤ pivot` partition of the local window, one Combine of the
/// global count, and the rank/window update — exactly the pseudo-code's
/// cheap per-iteration scan.
///
/// A two-way split alone can livelock on duplicate-heavy data (pivot =
/// maximum of the remaining set ⇒ "keep ≤" retains everything); when that
/// degenerate round is detected the function re-partitions three-way to
/// isolate the pivot's equality class, which either answers the query
/// outright or strictly shrinks the set. Returns `Some(pivot)` when the
/// target's rank falls in the pivot's equality class.
pub(crate) fn two_way_narrow<T: Key>(
    proc: &mut Proc,
    data: &mut Vec<T>,
    nr: &mut Narrow,
    pivot: T,
) -> Option<T> {
    let mut ops = OpCount::new();
    let idx = partition_le(data, pivot, &mut ops);
    proc.charge_ops(ops.total());
    let count = proc.combine(idx as u64, |a, b| a + b);
    debug_assert!(count >= 1, "the pivot itself always lands in the <= zone");
    if nr.k < count {
        if count == nr.n {
            // Degenerate: pivot >= every remaining element.
            let mut ops = OpCount::new();
            let (a, b) = partition3(data, pivot, pivot, &mut ops);
            proc.charge_ops(ops.total());
            let counts = combine_zone_counts(proc, a, b, data.len());
            let step = nr.decide_eq(counts, a, b);
            if matches!(step, Step::Done) {
                return Some(pivot);
            }
            apply_step(proc, data, &step);
        } else {
            data.truncate(idx);
            nr.n = count;
        }
    } else {
        data.drain(..idx);
        proc.charge_ops(data.len() as u64);
        nr.k -= count;
        nr.n -= count;
    }
    None
}

/// The epilogue every algorithm shares (its Steps "Gather / sequential
/// selection on P0 / Broadcast"): gather the survivors, solve sequentially
/// with the configured kernel, publish the answer.
pub(crate) fn finish<T: Key>(
    proc: &mut Proc,
    local: Vec<T>,
    k: u64,
    kernel: LocalKernel,
    rng: &mut KernelRng,
) -> T {
    proc.phase_begin(PHASE_FINISH);
    let gathered = proc.gather_flat(0, local);
    let result = gathered.map(|mut all| {
        assert!(
            (k as usize) < all.len(),
            "finish: rank {k} out of range for {} surviving elements (internal invariant)",
            all.len()
        );
        let mut ops = OpCount::new();
        let v = select_with(kernel, &mut all, k as usize, rng, &mut ops);
        proc.charge_ops(ops.total());
        v
    });
    let v = proc.broadcast(0, result);
    proc.phase_end(PHASE_FINISH);
    v
}

/// Combines local `(a, b, rest)` zone sizes into global zone counts with a
/// single Combine of a 3-tuple (one collective, as in the paper's Step 5/6
/// pair — we fuse the two Combines into one message of three counters).
pub(crate) fn combine_zone_counts(
    proc: &mut Proc,
    a: usize,
    b: usize,
    len: usize,
) -> (u64, u64, u64) {
    let local = (a as u64, (b - a) as u64, (len - b) as u64);
    proc.combine(local, |x, y| (x.0 + y.0, x.1 + y.1, x.2 + y.2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_eq_narrows_correctly() {
        // 10 lt, 3 eq, 7 gt; target rank 11 is inside the eq class.
        let mut nr = Narrow { n: 20, k: 11 };
        assert!(matches!(nr.decide_eq((10, 3, 7), 4, 6), Step::Done));

        let mut nr = Narrow { n: 20, k: 4 };
        assert!(matches!(nr.decide_eq((10, 3, 7), 4, 6), Step::Low(4)));
        assert_eq!((nr.n, nr.k), (10, 4));

        let mut nr = Narrow { n: 20, k: 15 };
        assert!(matches!(nr.decide_eq((10, 3, 7), 4, 6), Step::High(6)));
        assert_eq!((nr.n, nr.k), (7, 2));
    }

    #[test]
    fn decide_bracket_marks_unsuccessful() {
        let mut nr = Narrow { n: 100, k: 3 };
        let (step, ok) = nr.decide_bracket((10, 50, 40), 1, 6);
        assert!(matches!(step, Step::Low(1)));
        assert!(!ok);
        assert_eq!((nr.n, nr.k), (10, 3));

        let mut nr = Narrow { n: 100, k: 30 };
        let (step, ok) = nr.decide_bracket((10, 50, 40), 1, 6);
        assert!(matches!(step, Step::Mid(1, 6)));
        assert!(ok);
        assert_eq!((nr.n, nr.k), (50, 20));

        let mut nr = Narrow { n: 100, k: 99 };
        let (step, ok) = nr.decide_bracket((10, 50, 40), 1, 6);
        assert!(matches!(step, Step::High(6)));
        assert!(!ok);
        assert_eq!((nr.n, nr.k), (40, 39));
    }
}
