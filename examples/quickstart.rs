//! Quickstart: find the median of 1M keys spread over 8 virtual processors.
//!
//! Run with: `cargo run --release --example quickstart`

use cgselect::{median_on_machine, Algorithm, Distribution, MachineModel, SelectionConfig};

fn main() {
    let p = 8;
    let n = 1 << 20; // 1M keys

    // The paper's "random" input: n/p uniformly random keys per processor.
    let parts = cgselect::generate(Distribution::Random, n, p, 42);

    println!("Finding the median of {n} keys on a {p}-processor CM-5-like machine\n");

    for algo in Algorithm::ALL {
        let cfg = SelectionConfig::default();
        let sel = median_on_machine(p, MachineModel::cm5(), &parts, algo, &cfg)
            .expect("selection run failed");
        println!(
            "{:>18}: median = {:>20}  virtual time = {:>8.4}s  iterations = {:>2}",
            algo.name(),
            sel.value,
            sel.makespan(),
            sel.iterations(),
        );
    }

    // Verify against a plain sort.
    let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
    all.sort_unstable();
    println!("\nsort-based oracle: median = {}", all[(n - 1) / 2]);
    println!(
        "\nNote how both randomized algorithms beat both deterministic ones by\n\
         roughly an order of magnitude — the paper's headline result."
    );
}
