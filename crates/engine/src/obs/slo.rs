//! SLO accounting: folding [`RunReport`]s into the ROADMAP's service-level
//! line and gating it in CI.
//!
//! The north-star SLO is stated per batch — "95% of this batch served
//! host-side, max rank error ε·n" — plus the batching economy axis, rounds
//! per query. [`SloAccumulator`] observes every batch a workload runs,
//! [`SloReport::render_line`] emits the stable one-line format the bench
//! bins write into `results/`, and [`SloPolicy::evaluate`] turns a report
//! into the violation list the `--check` gate fails CI on.

use crate::request::{RunReport, Served};

/// The service-level numbers of one observed workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloReport {
    /// Total queries observed.
    pub queries: u64,
    /// Fraction of queries served host-side with zero collectives — from
    /// the cached histogram or the deterministic ε-sketch. `1.0` for an
    /// empty report.
    pub host_served_fraction: f64,
    /// Fraction of queries served under an accuracy contract from the
    /// host-global ε-sketch specifically ([`Served::Sketch`]); a subset of
    /// `host_served_fraction`. `0.0` for an empty report.
    pub sketch_served_fraction: f64,
    /// Worst guaranteed absolute error bound any answer carried.
    pub max_rank_error: u64,
    /// Collective rounds per query (per-processor counts), the batching
    /// economy axis.
    pub rounds_per_query: f64,
}

impl SloReport {
    /// The stable one-line format bench bins write into `results/`:
    ///
    /// ```text
    /// slo queries=400 host_served=0.9525 sketch_served=0.8100 max_rank_error=12 rounds_per_query=0.8875
    /// ```
    ///
    /// `sketch_served` is the "served host-side under contract" clause:
    /// the fraction answered from the deterministic ε-sketch, whose
    /// guaranteed error feeds `max_rank_error`.
    pub fn render_line(&self) -> String {
        format!(
            "slo queries={} host_served={:.4} sketch_served={:.4} max_rank_error={} \
             rounds_per_query={:.4}",
            self.queries,
            self.host_served_fraction,
            self.sketch_served_fraction,
            self.max_rank_error,
            self.rounds_per_query
        )
    }
}

/// Folds executed batches into an [`SloReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SloAccumulator {
    queries: u64,
    host_served: u64,
    sketch_served: u64,
    max_rank_error: u64,
    collective_ops: u64,
}

impl SloAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one executed batch.
    pub fn observe<T>(&mut self, report: &RunReport<T>) {
        for outcome in &report.outcomes {
            self.queries += 1;
            // Histogram hits and ε-sketch answers both resolve on the host
            // with zero collectives; the sketch rung is additionally
            // tracked on its own as the "served under contract" clause.
            if matches!(outcome.served, Served::Histogram | Served::Sketch) {
                self.host_served += 1;
            }
            if outcome.served == Served::Sketch {
                self.sketch_served += 1;
            }
            self.max_rank_error = self.max_rank_error.max(outcome.response.max_error());
        }
        self.collective_ops += report.collective_ops;
    }

    /// The service-level numbers of everything observed so far.
    pub fn report(&self) -> SloReport {
        SloReport {
            queries: self.queries,
            host_served_fraction: if self.queries == 0 {
                1.0
            } else {
                self.host_served as f64 / self.queries as f64
            },
            sketch_served_fraction: if self.queries == 0 {
                0.0
            } else {
                self.sketch_served as f64 / self.queries as f64
            },
            max_rank_error: self.max_rank_error,
            rounds_per_query: if self.queries == 0 {
                0.0
            } else {
                self.collective_ops as f64 / self.queries as f64
            },
        }
    }
}

/// Thresholds an [`SloReport`] must meet — the CI contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloPolicy {
    /// At least this fraction of queries must be served host-side.
    pub min_host_served_fraction: f64,
    /// At least this fraction of queries must be served under contract
    /// from the ε-sketch (0.0 when the workload has no tolerant queries).
    pub min_sketch_served_fraction: f64,
    /// No answer may carry a guaranteed error bound above this.
    pub max_rank_error: u64,
    /// At most this many collective rounds per query.
    pub max_rounds_per_query: f64,
}

impl SloPolicy {
    /// Checks a report against the thresholds; the returned violations are
    /// empty on pass, human-readable on fail (one line per broken clause).
    pub fn evaluate(&self, report: &SloReport) -> Vec<String> {
        let mut violations = Vec::new();
        if report.host_served_fraction < self.min_host_served_fraction {
            violations.push(format!(
                "host_served {:.4} below SLO floor {:.4}",
                report.host_served_fraction, self.min_host_served_fraction
            ));
        }
        if report.sketch_served_fraction < self.min_sketch_served_fraction {
            violations.push(format!(
                "sketch_served {:.4} below SLO floor {:.4}",
                report.sketch_served_fraction, self.min_sketch_served_fraction
            ));
        }
        if report.max_rank_error > self.max_rank_error {
            violations.push(format!(
                "max_rank_error {} above SLO ceiling {}",
                report.max_rank_error, self.max_rank_error
            ));
        }
        if report.rounds_per_query > self.max_rounds_per_query {
            violations.push(format!(
                "rounds_per_query {:.4} above SLO ceiling {:.4}",
                report.rounds_per_query, self.max_rounds_per_query
            ));
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{CostAttribution, Outcome, Response};

    fn report_with(outcomes: Vec<Outcome<u64>>, collective_ops: u64) -> RunReport<u64> {
        RunReport {
            outcomes,
            comm: cgselect_runtime::CommStats::default(),
            collective_ops,
            makespan: 0.0,
            exact_ranks: 0,
            sketch_answers: 0,
            histogram_answers: 0,
            value_probes: 0,
            delta_occupancy: 0.0,
            scan_threads: 1,
            span: None,
        }
    }

    fn outcome(served: Served, max_error: u64) -> Outcome<u64> {
        Outcome {
            response: Response::Count { count: 1, max_error },
            served,
            cost: CostAttribution::default(),
            freshness: crate::Freshness::default(),
        }
    }

    #[test]
    fn accumulator_folds_batches_into_the_slo_line() {
        let mut acc = SloAccumulator::new();
        acc.observe(&report_with(
            vec![outcome(Served::Histogram, 3), outcome(Served::Index, 0)],
            10,
        ));
        // An ε-sketch answer counts as host-served AND under contract.
        acc.observe(&report_with(vec![outcome(Served::Sketch, 7)], 2));
        let r = acc.report();
        assert_eq!(r.queries, 3);
        assert!((r.host_served_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.sketch_served_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_rank_error, 7);
        assert_eq!(r.rounds_per_query, 4.0);
        assert_eq!(
            r.render_line(),
            "slo queries=3 host_served=0.6667 sketch_served=0.3333 max_rank_error=7 \
             rounds_per_query=4.0000"
        );
    }

    #[test]
    fn empty_accumulator_is_vacuously_healthy() {
        let r = SloAccumulator::new().report();
        assert_eq!(r.queries, 0);
        assert_eq!(r.host_served_fraction, 1.0);
        assert_eq!(r.sketch_served_fraction, 0.0);
        assert_eq!(r.rounds_per_query, 0.0);
    }

    #[test]
    fn policy_reports_each_broken_clause() {
        let policy = SloPolicy {
            min_host_served_fraction: 0.9,
            min_sketch_served_fraction: 0.5,
            max_rank_error: 5,
            max_rounds_per_query: 2.0,
        };
        let healthy = SloReport {
            queries: 100,
            host_served_fraction: 0.95,
            sketch_served_fraction: 0.8,
            max_rank_error: 5,
            rounds_per_query: 1.5,
        };
        assert!(policy.evaluate(&healthy).is_empty());
        let sick = SloReport {
            queries: 100,
            host_served_fraction: 0.5,
            sketch_served_fraction: 0.1,
            max_rank_error: 9,
            rounds_per_query: 8.0,
        };
        let violations = policy.evaluate(&sick);
        assert_eq!(violations.len(), 4, "{violations:?}");
        assert!(violations[0].contains("host_served"), "{violations:?}");
        assert!(violations[1].contains("sketch_served"), "{violations:?}");
    }
}
