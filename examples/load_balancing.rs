//! The four load balancers on a pathologically imbalanced layout.
//!
//! Reproduces the flavor of the paper's §4: the same imbalance, four
//! redistribution strategies, with message and element-movement costs.
//!
//! Run with: `cargo run --release --example load_balancing`

use cgselect::{
    balance::{rebalance, Balancer},
    Distribution, Layout, Machine, MachineModel,
};

fn main() {
    let p = 8;
    let n = 1 << 16;

    for layout in [Layout::Hoarded, Layout::Staircase] {
        println!("=== initial layout: {layout:?}, n = {n}, p = {p} ===");
        let parts = cgselect::generate_with_layout(Distribution::Random, layout, n, p, 3);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        println!("before: {sizes:?}");

        for bal in [Balancer::None].into_iter().chain(Balancer::ALL_ACTIVE) {
            let results = Machine::with_model(p, MachineModel::cm5())
                .run(|proc| {
                    let mut mine = parts[proc.rank()].clone();
                    let rep = rebalance(bal, proc, &mut mine);
                    (mine.len(), rep)
                })
                .expect("balancing run failed");

            let after: Vec<usize> = results.iter().map(|(len, _)| *len).collect();
            let msgs: u64 = results.iter().map(|(_, r)| r.messages_sent).sum();
            let moved: u64 = results.iter().map(|(_, r)| r.elements_sent).sum();
            let time = results.iter().map(|(_, r)| r.seconds).fold(0.0, f64::max);
            println!(
                "{:>28} ({}): after={:?}  msgs={:>3}  moved={:>6}  time={:>9.5}s",
                bal.name(),
                bal.label(),
                after,
                msgs,
                moved,
                time,
            );
        }
        println!();
    }

    println!(
        "Order-maintaining / modified / global exchange balance exactly;\n\
         dimension exchange balances to within log2(p); global exchange\n\
         needs the fewest messages on concentrated imbalance."
    );
}
