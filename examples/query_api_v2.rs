//! Query API v2 tour: typed requests, inverse queries, accuracy
//! contracts, provenance and per-query cost attribution.
//!
//! ```text
//! cargo run --release --example query_api_v2
//! ```
//!
//! The scenario: a latency-monitoring service keeps 2 million samples
//! resident and serves three families of questions —
//!
//! 1. *forward* — "what is p99?" (rank → element),
//! 2. *inverse* — "what fraction of requests beat our 250 µs SLO?"
//!    (element → rank: the CDF at a value), and
//! 3. *range* — "how many samples landed in the 100–200 µs bucket?"
//!
//! all through one typed surface, with every answer reporting which
//! subsystem produced it (histogram / sketch / index / scan) and its
//! share of the batch's collective work.

use cgselect::{Accuracy, Bounds, Engine, EngineConfig, Query, Request, Served};

fn main() {
    let p = 8;
    let n: u64 = 2_000_000;
    println!("== Query API v2 tour: {n} resident samples on {p} shards ==\n");

    let mut engine: Engine<u64> = Engine::new(EngineConfig::new(p)).unwrap();
    // Synthetic latency samples, microseconds, heavy right tail.
    let data: Vec<u64> = (0..n)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 44;
            50 + x % 400 + if x % 97 == 0 { x % 9000 } else { 0 }
        })
        .collect();
    engine.ingest(data).unwrap();

    // -- One mixed batch: ranks, CDF probes and range counts together.
    let slo = 250u64;
    let report = engine
        .run(&[
            Request::median(),
            Request::<u64>::quantiles([0.9, 0.99, 0.999]),
            Request::rank_of(slo),
            Request::count_between(Bounds::closed(100, 200)),
            Request::max(),
        ])
        .unwrap();
    let labels = ["median", "p90/p99/p99.9", &format!("rank_of({slo}us)"), "in 100..=200us", "max"];
    for (label, o) in labels.iter().zip(&report.outcomes) {
        println!(
            "{label:>16}: {:<40} served={:<9} cost={:.2} collective ops",
            format!("{:?}", o.response),
            o.served.to_string(),
            o.cost.collective_ops
        );
    }
    let below = report.outcomes[2].response.count().unwrap();
    println!(
        "\n  {:.2}% of requests beat the {slo}us SLO; batch paid {} collective ops total\n",
        100.0 * below as f64 / n as f64,
        report.collective_ops
    );

    // -- Steady state: repeat the same probes — answer refinement has
    // carved equality-class buckets, so the histogram alone serves them.
    let hot = engine.run(&[Request::median(), Request::rank_of(slo).histogram_ok()]).unwrap();
    println!("repeat of the same probes:");
    for o in &hot.outcomes {
        assert_eq!(o.served, Served::Histogram);
        println!("  {:?} served={} (zero scans, zero collectives)", o.response, o.served);
    }
    assert_eq!(hot.collective_ops, 0);

    // -- Accuracy contracts: the sketches serve a 2%-tolerance CDF probe
    // without touching the full data (a 1% contract would be tighter than
    // the resident sketches' bound, falling back to exact — contracts are
    // floors, not obligations to be sloppy).
    let sketchy = engine.run(&[Request::rank_of(170).within_rank(0.02)]).unwrap();
    let o = &sketchy.outcomes[0];
    assert_eq!(o.served, Served::Sketch);
    println!(
        "\nwithin_rank(0.02): {:?} served={} (contract {:?})",
        o.response,
        o.served,
        Accuracy::WithinRank(0.02)
    );

    // -- The v1 surface still works, byte-for-byte, through the shim.
    let v1 = engine.execute(&[Query::Median, Query::TopK(3)]).unwrap();
    println!("\nv1 compat: median={:?}, top3={:?}", v1.answers[0], v1.answers[1]);

    // -- The async frontend's one-admission bulk submission.
    let queue = engine.into_frontend(cgselect::FrontendConfig::new());
    let tickets = queue
        .submit_many(vec![Request::rank_of(300), Request::count_between(Bounds::above(1000))])
        .unwrap();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    println!(
        "\nsubmit_many: rank_of(300)={:?}, tail(>1000us)={:?}",
        outcomes[0].response.count().unwrap(),
        outcomes[1].response.count().unwrap()
    );
    drop(queue);
    println!("\nDone.");
}
