//! # cgselect-core — parallel selection on coarse-grained machines
//!
//! The primary contribution of *Al-Furaih, Aluru, Goil, Ranka — "Practical
//! Algorithms for Selection on Coarse-Grained Parallel Computers"* (IPPS
//! 1996): given `n` elements distributed over `p` processors and a rank
//! `k`, find the element of rank `k`. Four algorithms are implemented, all
//! iterative — each round estimates a pivot, partitions every processor's
//! remaining elements against it, and discards the zone that cannot contain
//! the target, until at most `p²` elements survive and are solved
//! sequentially:
//!
//! | Algorithm | Pivot rule | Iterations | Needs load balance? |
//! |---|---|---|---|
//! | [`Algorithm::MedianOfMedians`] | median of local medians | `O(log n)` | yes (Step 7) |
//! | [`Algorithm::BucketBased`] | *weighted* median of local medians over `log p` preprocessed buckets | `O(log n)` | no |
//! | [`Algorithm::Randomized`] | shared-seed uniform random element | expected `O(log n)` | optional |
//! | [`Algorithm::FastRandomized`] | sampled bracket `[k₁, k₂]` around the target | `O(log log n)` w.h.p. | optional |
//!
//! The paper's CM-5 evaluation (reproduced in this repository's benchmark
//! harness) finds the randomized algorithms an order of magnitude faster
//! than the deterministic ones, and fast-randomized + load balancing the
//! most robust choice across input distributions.
//!
//! ## Quick example
//!
//! ```
//! use cgselect_core::{parallel_median, Algorithm, SelectionConfig};
//! use cgselect_runtime::{Machine, MachineModel};
//!
//! let machine = Machine::with_model(4, MachineModel::cm5());
//! let cfg = SelectionConfig::default();
//! let outs = machine
//!     .run(|proc| {
//!         // Each processor holds 1000 locally generated values.
//!         let base = proc.rank() as u64 * 1000;
//!         let mine: Vec<u64> = (base..base + 1000).collect();
//!         parallel_median(proc, mine, Algorithm::Randomized, &cfg).value
//!     })
//!     .unwrap();
//! assert_eq!(outs, vec![1999; 4]); // rank ⌈4000/2⌉ (1-based) = 0-based 1999
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bucket;
mod common;
mod config;
mod driver;
mod fast_randomized;
mod median_of_medians;
mod multi;
mod outcome;
mod randomized;
mod top_k;
mod weighted;

pub use config::SelectionConfig;
pub use driver::{median_on_machine, parallel_median, parallel_select, select_on_machine};
pub use multi::{
    multi_select_on_machine, parallel_multi_select, parallel_multi_select_in,
    parallel_multi_select_windows, RankedWindow,
};
pub use outcome::{MachineSelection, SelectionOutcome};
pub use top_k::{parallel_top_k, top_k_on_machine};
pub use weighted::{parallel_weighted_median, parallel_weighted_select, Weighted};

// Re-exported so downstream users configure everything from one crate.
pub use cgselect_balance::{BalanceReport, Balancer};
pub use cgselect_seqsel::LocalKernel;
pub use cgselect_sort::SampleSortAlgo;

/// The four parallel selection algorithms of the paper (§3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1: deterministic median-of-medians.
    MedianOfMedians,
    /// Algorithm 2: deterministic bucket-based selection.
    BucketBased,
    /// Algorithm 3: randomized selection.
    Randomized,
    /// Algorithm 4: fast randomized selection.
    FastRandomized,
}

impl Algorithm {
    /// All four, in the paper's order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::MedianOfMedians,
        Algorithm::BucketBased,
        Algorithm::Randomized,
        Algorithm::FastRandomized,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::MedianOfMedians => "Median of Medians",
            Algorithm::BucketBased => "Bucket Based",
            Algorithm::Randomized => "Randomized",
            Algorithm::FastRandomized => "Fast Randomized",
        }
    }

    /// True for the two deterministic algorithms.
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Algorithm::MedianOfMedians | Algorithm::BucketBased)
    }
}

/// Internal per-algorithm result, before the driver attaches timing.
pub(crate) struct AlgoResult<T> {
    pub value: T,
    pub iterations: u32,
    pub unsuccessful: u32,
    pub balance: BalanceReport,
    /// Global n at the start of each iteration.
    pub survivors: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::ALL.len(), 4);
        assert!(Algorithm::MedianOfMedians.is_deterministic());
        assert!(Algorithm::BucketBased.is_deterministic());
        assert!(!Algorithm::Randomized.is_deterministic());
        assert!(!Algorithm::FastRandomized.is_deterministic());
        let names: Vec<_> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
