//! Multi-rank selection: several order statistics in one pass.
//!
//! An extension beyond the paper: applications often need a whole set of
//! quantiles (p50/p90/p99/…) of the same distributed data. Running the
//! single-rank algorithm per quantile rescans the data `R` times; this
//! module partitions the data around shared random pivots and routes each
//! requested rank into its segment, so the expected total work is
//! `O((n/p)·(1 + log R))` plus the collective terms — the classic
//! multi-select recursion, parallelized with the paper's machinery
//! (shared-seed pivots, owner broadcast, Combine counts).

use cgselect_runtime::{Key, Proc, PHASE_FINISH};
use cgselect_seqsel::{partition3, KernelRng, OpCount};

use crate::SelectionConfig;

/// One pending segment of the multi-select recursion. Segments are pushed
/// and popped in an order determined solely by global counts, so every
/// processor processes the identical sequence (SPMD-safe).
struct Segment<T> {
    data: Vec<T>,
    n: u64,
    /// (rank within this segment, index into the output vector)
    ranks: Vec<(u64, usize)>,
}

/// Selects the elements at several global ranks of the distributed
/// multiset in one collective pass.
///
/// `ranks` may be in any order; the returned vector is aligned with it
/// (`result[i]` is the element of rank `ranks[i]`). Duplicated ranks are
/// allowed. Load balancing is not applied (segments shrink quickly and
/// the recursion re-partitions them anyway).
///
/// ```
/// use cgselect_core::{multi_select_on_machine, SelectionConfig};
/// use cgselect_runtime::MachineModel;
///
/// let parts: Vec<Vec<u64>> = vec![vec![30, 10], vec![20, 40, 0]];
/// let quartiles = multi_select_on_machine(
///     2,
///     MachineModel::free(),
///     &parts,
///     &[0, 2, 4],
///     &SelectionConfig::default(),
/// )
/// .unwrap();
/// assert_eq!(quartiles, vec![0, 20, 40]);
/// ```
///
/// # Panics
/// Panics if the distributed set is empty or any rank is out of range
/// (collectively — every processor fails identically).
pub fn parallel_multi_select<T: Key>(
    proc: &mut Proc,
    data: Vec<T>,
    ranks: &[u64],
    cfg: &SelectionConfig,
) -> Vec<T> {
    cfg.validate();
    let p = proc.nprocs();
    let n0 = proc.combine(data.len() as u64, |a, b| a + b);
    assert!(n0 > 0, "multi-select on an empty distributed set");
    for &r in ranks {
        assert!(r < n0, "rank {r} out of range for {n0} elements");
    }
    if ranks.is_empty() {
        return Vec::new();
    }

    let threshold = cfg.threshold(p);
    let mut shared_rng = KernelRng::new(cfg.seed ^ 0x6D75_6C74); // "mult"
    let mut out: Vec<Option<T>> = vec![None; ranks.len()];

    let mut sorted_ranks: Vec<(u64, usize)> =
        ranks.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
    sorted_ranks.sort_unstable();

    let mut stack = vec![Segment { data, n: n0, ranks: sorted_ranks }];
    let mut rounds = 0u32;
    while let Some(seg) = stack.pop() {
        rounds += 1;
        assert!(
            rounds <= cfg.max_iters,
            "multi-select exceeded {} rounds (likely a bug)",
            cfg.max_iters
        );
        if seg.ranks.is_empty() {
            continue;
        }
        if seg.n <= threshold {
            solve_segment_sequentially(proc, seg, &mut out);
            continue;
        }

        // Shared pivot draw (identical stream on every processor), owner
        // broadcast, three-way partition — as in the randomized algorithm,
        // but both sides survive, each carrying its share of the ranks.
        let idx = shared_rng.below(seg.n);
        let len = seg.data.len() as u64;
        let before = proc.exclusive_prefix_sum(len);
        let mine = (before <= idx && idx < before + len).then(|| seg.data[(idx - before) as usize]);
        let pivot: T = proc.bcast_from_owner(mine);

        let mut data = seg.data;
        let mut ops = OpCount::new();
        let (a, b) = partition3(&mut data, pivot, pivot, &mut ops);
        proc.charge_ops(ops.total());
        let local = (a as u64, (b - a) as u64);
        let (c_lt, c_eq) = proc.combine(local, |x, y| (x.0 + y.0, x.1 + y.1));

        let mut left_ranks = Vec::new();
        let mut right_ranks = Vec::new();
        for (r, i) in seg.ranks {
            if r < c_lt {
                left_ranks.push((r, i));
            } else if r < c_lt + c_eq {
                out[i] = Some(pivot);
            } else {
                right_ranks.push((r - c_lt - c_eq, i));
            }
        }

        let right_data = data.split_off(b);
        data.truncate(a);
        proc.charge_ops((data.len() + right_data.len()) as u64);
        // Deterministic processing order: left segment next (depth-first,
        // ascending ranks).
        stack.push(Segment { data: right_data, n: seg.n - c_lt - c_eq, ranks: right_ranks });
        stack.push(Segment { data, n: c_lt, ranks: left_ranks });
    }

    out.into_iter().map(|v| v.expect("every requested rank must have been resolved")).collect()
}

/// Gathers a small segment on P0, sorts it once, reads off all of the
/// segment's ranks, and broadcasts the answers.
fn solve_segment_sequentially<T: Key>(proc: &mut Proc, seg: Segment<T>, out: &mut [Option<T>]) {
    proc.phase_begin(PHASE_FINISH);
    let gathered = proc.gather_flat(0, seg.data);
    let answers: Option<Vec<T>> = gathered.map(|mut all| {
        debug_assert_eq!(all.len() as u64, seg.n);
        let mut cmps = 0u64;
        all.sort_unstable_by(|a, b| {
            cmps += 1;
            a.cmp(b)
        });
        proc.charge_ops(cmps + all.len() as u64);
        seg.ranks.iter().map(|&(r, _)| all[r as usize]).collect()
    });
    let answers = proc.broadcast(0, answers);
    proc.phase_end(PHASE_FINISH);
    for ((_, i), v) in seg.ranks.iter().zip(answers) {
        out[*i] = Some(v);
    }
}

/// Whole-machine convenience for [`parallel_multi_select`].
pub fn multi_select_on_machine<T: Key>(
    p: usize,
    model: cgselect_runtime::MachineModel,
    parts: &[Vec<T>],
    ranks: &[u64],
    cfg: &SelectionConfig,
) -> Result<Vec<T>, cgselect_runtime::RunError> {
    assert_eq!(parts.len(), p, "need exactly one data vector per processor");
    let outs = cgselect_runtime::Machine::with_model(p, model)
        .run(|proc| parallel_multi_select(proc, parts[proc.rank()].clone(), ranks, cfg))?;
    Ok(outs.into_iter().next().expect("p >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::MachineModel;

    fn oracle(parts: &[Vec<u64>], ranks: &[u64]) -> Vec<u64> {
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        ranks.iter().map(|&r| all[r as usize]).collect()
    }

    fn cfg() -> SelectionConfig {
        SelectionConfig { min_sequential: 32, ..SelectionConfig::with_seed(5) }
    }

    #[test]
    fn selects_multiple_ranks() {
        let p = 4;
        let parts: Vec<Vec<u64>> =
            (0..p).map(|r| (0..200).map(|i| (i * p + r) as u64 * 7 % 1000).collect()).collect();
        let ranks = [0u64, 100, 400, 799];
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn unsorted_and_duplicate_rank_requests() {
        let p = 3;
        let parts: Vec<Vec<u64>> =
            (0..p).map(|r| (0..100).map(|i| (i + r) as u64).collect()).collect();
        let ranks = [250u64, 0, 250, 42, 299];
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn heavy_duplicates() {
        let p = 4;
        let parts: Vec<Vec<u64>> = (0..p).map(|_| [1u64, 2, 2, 2, 3].repeat(40)).collect();
        let n: usize = parts.iter().map(Vec::len).sum();
        let ranks: Vec<u64> = (0..10).map(|i| (i * n / 10) as u64).collect();
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn empty_rank_list() {
        let parts: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let got = multi_select_on_machine(2, MachineModel::free(), &parts, &[], &cfg()).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn matches_single_select() {
        let p = 4;
        let parts = (0..p)
            .map(|r| (0..300).map(|i| ((i * 37 + r * 11) % 500) as u64).collect())
            .collect::<Vec<_>>();
        let k = 600;
        let multi = multi_select_on_machine(p, MachineModel::free(), &parts, &[k], &cfg()).unwrap();
        let single = crate::select_on_machine(
            p,
            MachineModel::free(),
            &parts,
            k,
            crate::Algorithm::Randomized,
            &cfg(),
        )
        .unwrap();
        assert_eq!(multi[0], single.value);
    }

    #[test]
    fn many_ranks_at_scale() {
        let p = 8;
        let n = 80_000usize;
        let parts: Vec<Vec<u64>> = (0..p)
            .map(|r| {
                (0..n / p)
                    .map(|i| ((i * p + r) as u64).wrapping_mul(0x9E3779B9) % 1_000_000)
                    .collect()
            })
            .collect();
        let ranks: Vec<u64> = (1..20).map(|i| (i * n / 20) as u64).collect();
        let got = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
        assert_eq!(got, oracle(&parts, &ranks));
    }

    #[test]
    fn out_of_range_rank_fails() {
        let parts: Vec<Vec<u64>> = vec![vec![1], vec![2]];
        let err =
            multi_select_on_machine(2, MachineModel::free(), &parts, &[5], &cfg()).unwrap_err();
        assert!(format!("{err}").contains("out of range"));
    }
}
