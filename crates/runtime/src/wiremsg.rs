//! Wire encoding for message payloads: the [`WireMsg`] trait.
//!
//! The in-process transports move payloads as `Box<dyn Any>` — zero copies,
//! zero encoding. An out-of-process fabric (shard workers as real child
//! processes, messages over sockets) needs every payload to cross a byte
//! boundary instead. `WireMsg` is that contract: a canonical little-endian
//! encoding with a fallible decoder, implemented for every payload shape the
//! collectives and the selection algorithms put on the fabric — scalars,
//! tuples up to arity 4, `Option<T>` and `Vec<T>` compositions thereof.
//!
//! Two properties matter:
//!
//! * **Transport invariance of virtual time.** Modeled message sizes are
//!   computed from `size_of::<T>()` *before* encoding (see
//!   [`crate::Proc::send`]), so the wire layout here never perturbs the
//!   virtual clock — a program run over sockets charges exactly the bytes an
//!   in-process run charges.
//! * **Fallible decode.** A half-written frame from a dying peer must surface
//!   as a typed error the runtime can report, never as an abort of the
//!   receiving process.

use crate::key::OrdF64;

/// Error produced when decoding a wire payload fails (truncated frame,
/// invalid discriminant, trailing garbage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMsgError {
    /// Human-readable description of the decode failure.
    pub detail: String,
}

impl WireMsgError {
    /// Builds an error from a human-readable description.
    pub fn new(detail: impl Into<String>) -> Self {
        WireMsgError { detail: detail.into() }
    }
}

impl std::fmt::Display for WireMsgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire payload decode failed: {}", self.detail)
    }
}

impl std::error::Error for WireMsgError {}

/// Cursor over a received byte frame, handing out slices with typed
/// truncation errors instead of panics.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or a truncation error.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireMsgError> {
        let end = self.pos.checked_add(n).ok_or_else(|| WireMsgError::new("length overflow"))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| {
            WireMsgError::new(format!(
                "truncated: wanted {n} bytes at offset {}, frame holds {}",
                self.pos,
                self.buf.len()
            ))
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A payload that can ride an out-of-process fabric: canonical little-endian
/// encoding plus a fallible decoder. See the module docs for the role this
/// plays; [`crate::Key`] requires it, so every element type is automatically
/// wire-capable.
pub trait WireMsg: Send + Sized + 'static {
    /// Appends this value's canonical encoding to `out`.
    fn wire_encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the reader, consuming exactly the bytes
    /// [`wire_encode`](WireMsg::wire_encode) produced.
    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError>;
}

/// Decodes a complete frame: one value, no trailing bytes.
pub fn decode_frame<T: WireMsg>(buf: &[u8]) -> Result<T, WireMsgError> {
    let mut r = WireReader::new(buf);
    let v = T::wire_decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireMsgError::new(format!("{} trailing bytes after payload", r.remaining())));
    }
    Ok(v)
}

/// Encodes one value as a standalone frame.
pub fn encode_frame<T: WireMsg>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.wire_encode(&mut out);
    out
}

macro_rules! impl_wiremsg_int {
    ($($t:ty),*) => {
        $(impl WireMsg for $t {
            fn wire_encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
                let bytes = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("length checked by take")))
            }
        })*
    };
}

impl_wiremsg_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

// usize/isize travel as 8 bytes regardless of host width, so frames are
// portable across mixed-width fleets.
impl WireMsg for usize {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        let v = u64::wire_decode(r)?;
        usize::try_from(v).map_err(|_| WireMsgError::new(format!("usize value {v} overflows host")))
    }
}

impl WireMsg for isize {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as i64).to_le_bytes());
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        let v = i64::wire_decode(r)?;
        isize::try_from(v).map_err(|_| WireMsgError::new(format!("isize value {v} overflows host")))
    }
}

impl WireMsg for () {
    fn wire_encode(&self, _out: &mut Vec<u8>) {}

    fn wire_decode(_r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        Ok(())
    }
}

impl WireMsg for bool {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        match u8::wire_decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireMsgError::new(format!("invalid bool byte {b:#x}"))),
        }
    }
}

// Bit-pattern encoding: round-trips every float exactly, NaN payloads and
// signed zeros included.
impl WireMsg for f64 {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        Ok(f64::from_bits(u64::wire_decode(r)?))
    }
}

impl WireMsg for OrdF64 {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        Ok(OrdF64(f64::wire_decode(r)?))
    }
}

impl<T: WireMsg> WireMsg for Option<T> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_encode(out);
            }
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        match u8::wire_decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::wire_decode(r)?)),
            b => Err(WireMsgError::new(format!("invalid Option discriminant {b:#x}"))),
        }
    }
}

impl<T: WireMsg> WireMsg for Vec<T> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).wire_encode(out);
        for v in self {
            v.wire_encode(out);
        }
    }

    fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
        let len = usize::wire_decode(r)?;
        // A corrupt length must not drive allocation; let growth follow the
        // actual decoded elements (truncation errors out naturally).
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::wire_decode(r)?);
        }
        Ok(out)
    }
}

macro_rules! impl_wiremsg_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: WireMsg),+> WireMsg for ($($name,)+) {
            fn wire_encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.wire_encode(out);)+
            }

            fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireMsgError> {
                Ok(($($name::wire_decode(r)?,)+))
            }
        }
    };
}

impl_wiremsg_tuple!(A: 0, B: 1);
impl_wiremsg_tuple!(A: 0, B: 1, C: 2);
impl_wiremsg_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireMsg + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode_frame(&v);
        assert_eq!(decode_frame::<T>(&buf).unwrap(), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-7i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(());
        round_trip(1.5f64);
    }

    #[test]
    fn compositions_round_trip() {
        round_trip(Some(42u64));
        round_trip(None::<u64>);
        round_trip(vec![1u32, 2, 3]);
        round_trip(vec![vec![1u8], vec![], vec![2, 3]]);
        round_trip((7usize, 9u64));
        round_trip((1u64, 2u64, 3u64));
        round_trip((1u64, 2u64, 3u64, 4u64));
        round_trip(vec![(Some(3u64), 1u64), (None, 0)]);
        round_trip(vec![(true, 5i32), (false, -5)]);
    }

    #[test]
    fn ordf64_bit_patterns_survive() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NAN] {
            let buf = encode_frame(&OrdF64(v));
            let back = decode_frame::<OrdF64>(&buf).unwrap();
            assert_eq!(back.0.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let buf = encode_frame(&vec![1u64, 2, 3]);
        let err = decode_frame::<Vec<u64>>(&buf[..buf.len() - 3]).unwrap_err();
        assert!(err.detail.contains("truncated"), "{err}");
    }

    #[test]
    fn trailing_bytes_are_a_typed_error() {
        let mut buf = encode_frame(&7u64);
        buf.push(0xFF);
        let err = decode_frame::<u64>(&buf).unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
    }

    #[test]
    fn invalid_discriminants_are_typed_errors() {
        assert!(decode_frame::<bool>(&[2]).is_err());
        assert!(decode_frame::<Option<u8>>(&[9, 0]).is_err());
    }

    #[test]
    fn empty_unit_vec_cannot_allocate_unbounded() {
        // Vec<()> elements are zero bytes on the wire; a hostile length must
        // not drive a huge allocation. Decode succeeds (nothing to truncate)
        // but is bounded by actual pushes.
        let buf = encode_frame(&vec![(); 10]);
        assert_eq!(decode_frame::<Vec<()>>(&buf).unwrap().len(), 10);
    }
}
