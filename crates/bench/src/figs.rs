//! One function per table/figure of the paper's evaluation (§5).

use cgselect_core::median_on_machine;
use cgselect_core::{Algorithm, Balancer, LocalKernel, SelectionConfig};
use cgselect_runtime::MachineModel;
use cgselect_workloads::{generate, Distribution};

use crate::chart::{ascii_chart, markdown_table, write_csv, write_text, Series};
use crate::experiment::{paper_procs, paper_sizes, run_point, Spec};
use crate::results_dir;

const K128: usize = 128 * 1024;
const K512: usize = 512 * 1024;
const M2: usize = 2 * 1024 * 1024;

fn fmt_s(x: f64) -> String {
    format!("{x:.4}")
}

/// The balancer the paper pairs with each algorithm in Figure 1:
/// median-of-medians requires balancing (global exchange); the rest run
/// without.
fn fig1_balancer(algo: Algorithm) -> Balancer {
    if algo == Algorithm::MedianOfMedians {
        Balancer::GlobalExchange
    } else {
        Balancer::None
    }
}

/// Figure 1: performance of the four selection algorithms on random data,
/// n ∈ {128k, 512k, 2M}, p ∈ {2..128}; plus the randomized-only zoom
/// panels the paper prints alongside.
pub fn fig1(quick: bool) {
    let dir = results_dir();
    let sizes = paper_sizes(&[K128, K512, M2], quick);
    let procs = paper_procs(quick);
    let mut rows = Vec::new();
    let mut report = String::new();

    for &n in &sizes {
        let mut series: Vec<Series> = Vec::new();
        for algo in Algorithm::ALL {
            let mut pts = Vec::new();
            for &p in &procs {
                let mut spec = Spec::paper(algo, fig1_balancer(algo), Distribution::Random, n, p);
                if quick {
                    spec = spec.quick();
                }
                let m = run_point(&spec);
                pts.push((p as f64, m.seconds.mean));
                rows.push(format!(
                    "{n},{p},{},{},{},{},{},{},{:.1}",
                    algo.name().replace(' ', "-"),
                    "random",
                    fig1_balancer(algo).label(),
                    fmt_s(m.seconds.mean),
                    fmt_s(m.seconds.min),
                    fmt_s(m.seconds.max),
                    m.iterations
                ));
                println!(
                    "fig1 n={n} p={p} {:<18} {:.4}s ({} iters)",
                    algo.name(),
                    m.seconds.mean,
                    m.iterations as u64
                );
            }
            series.push(Series { label: algo.name().to_string(), points: pts });
        }
        report.push_str(&ascii_chart(
            &format!("Figure 1 — all algorithms, random data, n = {n}"),
            "processors",
            "seconds",
            &series,
        ));
        report.push('\n');
        // Zoom panel: randomized algorithms only (the paper's right column).
        let zoom: Vec<Series> = series.drain(..).skip(2).collect();
        report.push_str(&ascii_chart(
            &format!("Figure 1 (zoom) — randomized algorithms, random data, n = {n}"),
            "processors",
            "seconds",
            &zoom,
        ));
        report.push('\n');
    }

    write_csv(
        &dir.join("fig1.csv"),
        "n,p,algorithm,dist,balancer,seconds_mean,seconds_min,seconds_max,iterations",
        &rows,
    );
    write_text(&dir.join("fig1.txt"), &report);
    println!("fig1 -> {}/fig1.{{csv,txt}}", dir.display());
}

/// Figures 2 and 3 share this shape: one randomized algorithm × the four
/// balancing strategies (N / mod-O / D / G) × {random, sorted} × n ∈
/// {512k, 2M}.
fn lb_figure(algo: Algorithm, figname: &str, quick: bool) {
    let dir = results_dir();
    let sizes = paper_sizes(&[K512, M2], quick);
    let procs = paper_procs(quick);
    let strategies =
        [Balancer::None, Balancer::ModOmlb, Balancer::DimExchange, Balancer::GlobalExchange];
    let mut rows = Vec::new();
    let mut report = String::new();

    for dist in [Distribution::Random, Distribution::Sorted] {
        for &n in &sizes {
            let mut series = Vec::new();
            for bal in strategies {
                let mut pts = Vec::new();
                for &p in &procs {
                    let mut spec = Spec::paper(algo, bal, dist, n, p);
                    if quick {
                        spec = spec.quick();
                    }
                    let m = run_point(&spec);
                    pts.push((p as f64, m.seconds.mean));
                    rows.push(format!(
                        "{n},{p},{},{},{},{},{}",
                        algo.name().replace(' ', "-"),
                        dist.name(),
                        bal.label(),
                        fmt_s(m.seconds.mean),
                        fmt_s(m.lb_seconds.mean)
                    ));
                    println!(
                        "{figname} n={n} p={p} {} {:<28} {:.4}s (lb {:.4}s)",
                        dist.name(),
                        bal.name(),
                        m.seconds.mean,
                        m.lb_seconds.mean
                    );
                }
                series.push(Series { label: bal.name().to_string(), points: pts });
            }
            report.push_str(&ascii_chart(
                &format!("{} — {} data, n = {n}", figname.to_uppercase(), dist.name()),
                "processors",
                "seconds",
                &series,
            ));
            report.push('\n');
        }
    }
    write_csv(
        &dir.join(format!("{figname}.csv")),
        "n,p,algorithm,dist,balancer,seconds_mean,lb_seconds_mean",
        &rows,
    );
    write_text(&dir.join(format!("{figname}.txt")), &report);
    println!("{figname} -> {}/{figname}.{{csv,txt}}", dir.display());
}

/// Figure 2: randomized selection with the different balancing strategies.
pub fn fig2(quick: bool) {
    lb_figure(Algorithm::Randomized, "fig2", quick);
}

/// Figure 3: fast randomized selection with the different strategies.
pub fn fig3(quick: bool) {
    lb_figure(Algorithm::FastRandomized, "fig3", quick);
}

/// Figure 4: the two randomized algorithms on sorted data with the best
/// balancing strategy for each — none for randomized, modified OMLB for
/// fast randomized.
pub fn fig4(quick: bool) {
    let dir = results_dir();
    let sizes = paper_sizes(&[K512, M2], quick);
    let procs = paper_procs(quick);
    let mut rows = Vec::new();
    let mut report = String::new();

    for &n in &sizes {
        let mut series = Vec::new();
        for (algo, bal) in [
            (Algorithm::Randomized, Balancer::None),
            (Algorithm::FastRandomized, Balancer::ModOmlb),
        ] {
            let mut pts = Vec::new();
            for &p in &procs {
                let mut spec = Spec::paper(algo, bal, Distribution::Sorted, n, p);
                if quick {
                    spec = spec.quick();
                }
                let m = run_point(&spec);
                pts.push((p as f64, m.seconds.mean));
                rows.push(format!(
                    "{n},{p},{},{},{}",
                    algo.name().replace(' ', "-"),
                    bal.label(),
                    fmt_s(m.seconds.mean)
                ));
                println!("fig4 n={n} p={p} {:<18} {:.4}s", algo.name(), m.seconds.mean);
            }
            series
                .push(Series { label: format!("{} ({})", algo.name(), bal.label()), points: pts });
        }
        report.push_str(&ascii_chart(
            &format!("Figure 4 — sorted data, best balancers, n = {n}"),
            "processors",
            "seconds",
            &series,
        ));
        report.push('\n');
    }
    write_csv(&dir.join("fig4.csv"), "n,p,algorithm,balancer,seconds_mean", &rows);
    write_text(&dir.join("fig4.txt"), &report);
    println!("fig4 -> {}/fig4.{{csv,txt}}", dir.display());
}

/// Figures 5 and 6 share this shape: one algorithm at n = 2M, total time
/// with the load-balancing share, for N/O/D/G across p ∈ {4..128} on both
/// input types (the paper draws these as stacked bars).
fn lb_breakdown(algo: Algorithm, figname: &str, quick: bool) {
    let dir = results_dir();
    let n = if quick { K128 } else { M2 };
    let procs: Vec<usize> = if quick { vec![4, 16, 64] } else { vec![4, 8, 16, 32, 64, 128] };
    let strategies =
        [Balancer::None, Balancer::ModOmlb, Balancer::DimExchange, Balancer::GlobalExchange];
    let mut rows = Vec::new();
    let mut report = String::new();

    for dist in [Distribution::Random, Distribution::Sorted] {
        let mut table_rows = Vec::new();
        for &p in &procs {
            for bal in strategies {
                let mut spec = Spec::paper(algo, bal, dist, n, p);
                if quick {
                    spec = spec.quick();
                }
                let m = run_point(&spec);
                rows.push(format!(
                    "{n},{p},{},{},{},{},{}",
                    algo.name().replace(' ', "-"),
                    dist.name(),
                    bal.label(),
                    fmt_s(m.seconds.mean),
                    fmt_s(m.lb_seconds.mean)
                ));
                table_rows.push(vec![
                    p.to_string(),
                    bal.label().to_string(),
                    fmt_s(m.seconds.mean),
                    fmt_s(m.lb_seconds.mean),
                    format!("{:.0}%", 100.0 * m.lb_seconds.mean / m.seconds.mean.max(1e-12)),
                ]);
                println!(
                    "{figname} {} p={p} {:<3} total={:.4}s lb={:.4}s",
                    dist.name(),
                    bal.label(),
                    m.seconds.mean,
                    m.lb_seconds.mean
                );
            }
        }
        report.push_str(&format!(
            "{} — {} data, n = {n}: total vs load-balancing time\n\n{}\n",
            figname.to_uppercase(),
            dist.name(),
            markdown_table(&["p", "strategy", "total (s)", "lb (s)", "lb share"], &table_rows)
        ));
    }
    write_csv(
        &dir.join(format!("{figname}.csv")),
        "n,p,algorithm,dist,balancer,seconds_mean,lb_seconds_mean",
        &rows,
    );
    write_text(&dir.join(format!("{figname}.txt")), &report);
    println!("{figname} -> {}/{figname}.{{csv,txt}}", dir.display());
}

/// Figure 5: randomized selection's load-balancing time breakdown.
pub fn fig5(quick: bool) {
    lb_breakdown(Algorithm::Randomized, "fig5", quick);
}

/// Figure 6: fast randomized selection's load-balancing time breakdown.
pub fn fig6(quick: bool) {
    lb_breakdown(Algorithm::FastRandomized, "fig6", quick);
}

/// Table 1: the paper's expected running times (load-balanced, excluding
/// balancing cost), printed alongside measured iteration counts that back
/// the `log n` / `log log n` terms.
pub fn table1(quick: bool) {
    let dir = results_dir();
    let mut out = String::new();
    out.push_str("Table 1 — expected running times (paper) and measured iteration counts\n\n");
    out.push_str(&markdown_table(
        &["Selection Algorithm", "Expected run-time (paper)"],
        &[
            vec!["Median of Medians".into(), "O(n/p + τ log p log n + μ p log n)".into()],
            vec!["Bucket-based".into(), "— (no load balancing; see Table 2)".into()],
            vec!["Randomized".into(), "O(n/p + (τ + μ) log p log n)".into()],
            vec!["Fast randomized".into(), "O(n/p + (τ + μ) log p log log n)".into()],
        ],
    ));
    out.push('\n');

    // Measured iteration counts vs n: randomized should grow ~ log n,
    // fast randomized ~ log log n (i.e. barely).
    let p = 16;
    let sizes: &[usize] =
        if quick { &[1 << 16, 1 << 18] } else { &[1 << 16, 1 << 18, 1 << 20, 1 << 22] };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &n in sizes {
        let mut row = vec![format!("{n}")];
        for algo in Algorithm::ALL {
            let spec = Spec::paper(algo, fig1_balancer(algo), Distribution::Random, n, p).quick();
            let m = run_point(&spec);
            row.push(format!("{:.1}", m.iterations));
            csv.push(format!(
                "{n},{p},{},{:.1},{:.1}",
                algo.name().replace(' ', "-"),
                m.iterations,
                m.unsuccessful
            ));
        }
        rows.push(row);
    }
    out.push_str("Measured parallel iterations (p = 16, random data):\n\n");
    out.push_str(&markdown_table(
        &["n", "Median of Medians", "Bucket Based", "Randomized", "Fast Randomized"],
        &rows,
    ));
    out.push_str(
        "\nThe deterministic and plain-randomized counts grow by ~2 per 4x in n\n\
         (Θ(log n)); fast randomized stays nearly flat (Θ(log log n)).\n",
    );

    write_csv(&dir.join("table1.csv"), "n,p,algorithm,iterations,unsuccessful", &csv);
    write_text(&dir.join("table1.txt"), &out);
    print!("{out}");
    println!("table1 -> {}/table1.{{csv,txt}}", dir.display());
}

/// Table 2: the paper's worst-case running times (no load balancing),
/// printed alongside sorted-input measurements (the near-worst case).
pub fn table2(quick: bool) {
    let dir = results_dir();
    let mut out = String::new();
    out.push_str("Table 2 — worst-case running times (paper), no load balancing\n\n");
    out.push_str(&markdown_table(
        &["Selection Algorithm", "Worst-case run-time (paper)"],
        &[
            vec!["Median of Medians".into(), "O((n/p) log n + τ log p log n + μ p log n)".into()],
            vec![
                "Bucket-based".into(),
                "O((n/p)(log log p + log n / log p) + τ log p log n + μ p log n)".into(),
            ],
            vec!["Randomized".into(), "O((n/p) log n + (τ + μ) log p log n)".into()],
            vec!["Fast randomized".into(), "O((n/p) log log n + (τ + μ) log p log log n)".into()],
        ],
    ));
    out.push('\n');

    // Sorted input (near-worst case), all algorithms without balancing.
    let n = if quick { K128 } else { K512 };
    let procs: Vec<usize> = if quick { vec![8] } else { vec![8, 32] };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &p in &procs {
        for algo in Algorithm::ALL {
            let spec = Spec::paper(algo, Balancer::None, Distribution::Sorted, n, p);
            let m = run_point(&spec);
            rows.push(vec![
                p.to_string(),
                algo.name().into(),
                fmt_s(m.seconds.mean),
                format!("{:.0}", m.iterations),
                format!("{:.2e}", m.total_ops),
            ]);
            csv.push(format!(
                "{n},{p},{},{},{:.0},{:.0}",
                algo.name().replace(' ', "-"),
                fmt_s(m.seconds.mean),
                m.iterations,
                m.total_ops
            ));
        }
    }
    out.push_str(&format!(
        "Measured on sorted input (no balancing), n = {n}:\n\n{}",
        markdown_table(&["p", "algorithm", "seconds", "iterations", "total ops"], &rows)
    ));
    out.push_str(
        "\nWithout balancing, sorted input keeps n_max(j) ≈ n/p for ~log p\n\
         iterations (half the processors lose everything each round), which\n\
         is exactly the (n/p)·log-factor of the worst-case bounds; the\n\
         bucket-based algorithm's per-iteration work stays sub-linear in the\n\
         window as the bounds predict.\n",
    );
    write_csv(&dir.join("table2.csv"), "n,p,algorithm,seconds,iterations,total_ops", &csv);
    write_text(&dir.join("table2.txt"), &out);
    print!("{out}");
    println!("table2 -> {}/table2.{{csv,txt}}", dir.display());
}

/// §5's hybrid experiment: the deterministic parallel algorithms with
/// their sequential kernels swapped for randomized ones land between the
/// pure deterministic and pure randomized algorithms.
pub fn hybrid(quick: bool) {
    let dir = results_dir();
    let n = if quick { K128 } else { M2 };
    let p = 32;
    let parts = generate(Distribution::Random, n, p, 77);
    let model = MachineModel::cm5();

    let time = |algo: Algorithm, kernel: Option<LocalKernel>, bal: Balancer| -> f64 {
        let mut cfg = SelectionConfig::with_seed(78).balancer(bal);
        cfg.local_kernel = kernel;
        median_on_machine(p, model, &parts, algo, &cfg).unwrap().makespan()
    };

    let mom_det = time(Algorithm::MedianOfMedians, None, Balancer::GlobalExchange);
    let mom_hyb =
        time(Algorithm::MedianOfMedians, Some(LocalKernel::Randomized), Balancer::GlobalExchange);
    let bkt_det = time(Algorithm::BucketBased, None, Balancer::None);
    let bkt_hyb = time(Algorithm::BucketBased, Some(LocalKernel::Randomized), Balancer::None);
    let rnd = time(Algorithm::Randomized, None, Balancer::None);

    let rows = vec![
        vec!["Median of Medians (deterministic kernels)".to_string(), fmt_s(mom_det)],
        vec!["Median of Medians (hybrid: randomized kernels)".to_string(), fmt_s(mom_hyb)],
        vec!["Bucket Based (deterministic kernels)".to_string(), fmt_s(bkt_det)],
        vec!["Bucket Based (hybrid: randomized kernels)".to_string(), fmt_s(bkt_hyb)],
        vec!["Randomized (reference)".to_string(), fmt_s(rnd)],
    ];
    let mut out = format!(
        "Hybrid experiment (paper §5), n = {n}, p = {p}, random data\n\n{}",
        markdown_table(&["configuration", "seconds"], &rows)
    );
    out.push_str(
        "\nExpected (paper): each hybrid lands between its deterministic\n\
         original and the fully randomized algorithm — the deterministic\n\
         slowdown comes from both the sequential kernels and the parallel\n\
         structure, with the kernels dominating at large n.\n",
    );
    write_text(&dir.join("hybrid.txt"), &out);
    write_csv(
        &dir.join("hybrid.csv"),
        "configuration,seconds",
        &rows.iter().map(|r| format!("{},{}", r[0].replace(',', ";"), r[1])).collect::<Vec<_>>(),
    );
    print!("{out}");
    assert!(mom_hyb <= mom_det, "hybrid MoM should not be slower than deterministic MoM");
    println!("hybrid -> {}/hybrid.{{csv,txt}}", dir.display());
}

/// §5's headline claims, measured and compared against the paper's
/// reported factors.
pub fn headline(quick: bool) {
    let dir = results_dir();
    let n = if quick { K512 } else { M2 };
    let p = 32;
    let model = MachineModel::cm5();

    let measure = |algo: Algorithm, bal: Balancer, dist: Distribution| -> f64 {
        let mut spec = Spec::paper(algo, bal, dist, n, p);
        if quick {
            spec = spec.quick();
        }
        spec.model = model;
        run_point(&spec).seconds.mean
    };

    let mom = measure(Algorithm::MedianOfMedians, Balancer::GlobalExchange, Distribution::Random);
    let bkt = measure(Algorithm::BucketBased, Balancer::None, Distribution::Random);
    let rnd = measure(Algorithm::Randomized, Balancer::None, Distribution::Random);
    let rnd_srt = measure(Algorithm::Randomized, Balancer::None, Distribution::Sorted);
    let rnd_lb = measure(Algorithm::Randomized, Balancer::ModOmlb, Distribution::Random);
    let fast = measure(Algorithm::FastRandomized, Balancer::None, Distribution::Random);
    let fast_lb = measure(Algorithm::FastRandomized, Balancer::ModOmlb, Distribution::Random);
    let fast_srt = measure(Algorithm::FastRandomized, Balancer::None, Distribution::Sorted);
    let fast_srt_lb = measure(Algorithm::FastRandomized, Balancer::ModOmlb, Distribution::Sorted);
    let bkt_srt = measure(Algorithm::BucketBased, Balancer::None, Distribution::Sorted);
    let mom_srt =
        measure(Algorithm::MedianOfMedians, Balancer::GlobalExchange, Distribution::Sorted);

    // The implicit baseline of the whole paper: selection without sorting
    // must beat a full parallel sort followed by a rank lookup.
    let sort_baseline = {
        let parts = generate(Distribution::Random, n, p, 11);
        let k = (n as u64 - 1) / 2;
        let outs = cgselect_runtime::Machine::with_model(p, model)
            .run(|proc| {
                proc.barrier();
                let t0 = proc.now();
                let mine = parts[proc.rank()].clone();
                let vs = cgselect_sort::sorted_ranks_of(
                    proc,
                    cgselect_sort::SampleSortAlgo::Psrs,
                    mine,
                    &[k],
                );
                let _ = vs[0];
                proc.now() - t0
            })
            .unwrap();
        outs.into_iter().fold(0.0f64, f64::max)
    };

    let check = |ok: bool| if ok { "yes" } else { "NO" };
    let rows = vec![
        vec![
            "selection beats full parallel sort (sort/randomized)".into(),
            "large".into(),
            format!("{:.1}x", sort_baseline / rnd),
            check(sort_baseline > rnd).into(),
        ],
        vec![
            "deterministic algorithms an order of magnitude slower (MoM/rand)".into(),
            ">= 16x".into(),
            format!("{:.1}x", mom / rnd),
            check(mom / rnd > 4.0).into(),
        ],
        vec![
            "bucket-based also an order slower than randomized (bucket/rand)".into(),
            ">= 9x".into(),
            format!("{:.1}x", bkt / rnd),
            check(bkt / rnd > 3.0).into(),
        ],
        vec![
            "bucket-based beats MoM on random data (MoM/bucket)".into(),
            "~2x".into(),
            format!("{:.1}x", mom / bkt),
            check(mom / bkt > 1.0).into(),
        ],
        vec![
            "bucket (no LB) vs MoM (+LB) on sorted data".into(),
            "~25% slower".into(),
            format!("{:+.0}%", 100.0 * (bkt_srt - mom_srt) / mom_srt),
            check((bkt_srt - mom_srt) / mom_srt < 1.0).into(),
        ],
        vec![
            "randomized slower on sorted vs random".into(),
            "2-2.5x".into(),
            format!("{:.1}x", rnd_srt / rnd),
            check(rnd_srt / rnd > 1.3).into(),
        ],
        vec![
            "LB hurts randomized on random data".into(),
            "slower with LB".into(),
            format!("{:+.0}%", 100.0 * (rnd_lb - rnd) / rnd),
            check(rnd_lb > rnd).into(),
        ],
        vec![
            "LB hurts fast randomized on random data (mildly)".into(),
            "slightly slower".into(),
            format!("{:+.0}%", 100.0 * (fast_lb - fast) / fast),
            check(fast_lb >= fast * 0.98).into(),
        ],
        vec![
            "LB helps fast randomized on sorted data".into(),
            "faster with LB".into(),
            format!("{:+.0}%", 100.0 * (fast_srt_lb - fast_srt) / fast_srt),
            check(fast_srt_lb < fast_srt).into(),
        ],
        vec![
            "fast randomized (+LB) input-insensitive (sorted/random)".into(),
            "~1x".into(),
            format!("{:.2}x", fast_srt_lb / fast_lb),
            check(fast_srt_lb / fast_lb < 2.0).into(),
        ],
    ];
    let out = format!(
        "Headline claims (paper §5) at n = {n}, p = {p}\n\n{}",
        markdown_table(&["claim", "paper", "measured", "direction holds"], &rows)
    );
    write_text(&dir.join("headline.txt"), &out);
    write_csv(
        &dir.join("headline.csv"),
        "claim,paper,measured,direction_holds",
        &rows
            .iter()
            .map(|r| format!("{},{},{},{}", r[0].replace(',', ";"), r[1], r[2], r[3]))
            .collect::<Vec<_>>(),
    );
    print!("{out}");
    println!("headline -> {}/headline.{{csv,txt}}", dir.display());
}

/// Runs every figure and table in sequence.
pub fn all(quick: bool) {
    fig1(quick);
    fig2(quick);
    fig3(quick);
    fig4(quick);
    fig5(quick);
    fig6(quick);
    table1(quick);
    table2(quick);
    hybrid(quick);
    headline(quick);
}
