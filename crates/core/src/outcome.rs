//! Per-processor result and instrumentation of one parallel selection.

use cgselect_balance::BalanceReport;
use cgselect_runtime::CommStats;

/// What one processor observed while running a parallel selection.
///
/// `value` is identical on every processor (the algorithms end with a
/// broadcast). The timing fields are *virtual* seconds under the machine's
/// cost model, measured from the synchronizing barrier at call entry to the
/// final broadcast; they are what the experiment harness plots against the
/// paper's CM-5 measurements.
#[derive(Clone, Debug)]
pub struct SelectionOutcome<T> {
    /// The element of the requested rank.
    pub value: T,
    /// Number of parallel iterations executed (excluding the sequential
    /// finish).
    pub iterations: u32,
    /// Iterations of fast randomized selection in which the target fell
    /// outside the sampled bracket `[k₁, k₂]` (always 0 for the other
    /// algorithms). The paper's modification still discards the far side
    /// in that case instead of retrying.
    pub unsuccessful_iterations: u32,
    /// Total virtual seconds for the call.
    pub total_seconds: f64,
    /// Virtual seconds inside load balancing (Figures 5–6 plot this).
    pub lb_seconds: f64,
    /// Virtual seconds inside the parallel sample sort (Algorithm 4 only).
    pub sort_seconds: f64,
    /// Virtual seconds in the final gather-and-solve-sequentially step.
    pub finish_seconds: f64,
    /// Messages/bytes this processor moved during the call.
    pub comm: CommStats,
    /// Elementary operations (measured comparisons + moves) this processor
    /// charged during the call.
    pub ops: u64,
    /// Accumulated load-balancing transfer counts.
    pub balance: BalanceReport,
    /// Global surviving-set size at the start of each parallel iteration
    /// (identical on every processor). Lets callers inspect convergence —
    /// e.g. the geometric decay the paper proves for fast randomized
    /// selection.
    pub survivors: Vec<u64>,
}

/// Result of a whole-machine selection run (`select_on_machine`).
#[derive(Clone, Debug)]
pub struct MachineSelection<T> {
    /// The selected element (verified identical across processors).
    pub value: T,
    /// Per-processor outcomes, indexed by rank.
    pub per_proc: Vec<SelectionOutcome<T>>,
}

impl<T: Copy> MachineSelection<T> {
    /// Maximum total virtual time across processors — the machine's
    /// makespan, comparable to the paper's reported wall-clock times.
    pub fn makespan(&self) -> f64 {
        self.per_proc.iter().map(|o| o.total_seconds).fold(0.0, f64::max)
    }

    /// Maximum load-balancing time across processors.
    pub fn lb_makespan(&self) -> f64 {
        self.per_proc.iter().map(|o| o.lb_seconds).fold(0.0, f64::max)
    }

    /// Iteration count (identical on all processors by construction).
    pub fn iterations(&self) -> u32 {
        self.per_proc[0].iterations
    }

    /// Total elementary operations across the machine.
    pub fn total_ops(&self) -> u64 {
        self.per_proc.iter().map(|o| o.ops).sum()
    }

    /// Total messages sent across the machine.
    pub fn total_messages(&self) -> u64 {
        self.per_proc.iter().map(|o| o.comm.msgs_sent).sum()
    }
}
