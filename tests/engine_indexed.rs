//! The resident bucket index, end to end: the indexed exact path must
//! answer identically to the unindexed baseline (and to a sorted-vector
//! oracle) across every workload distribution and through the whole
//! mutation lifecycle — ingest bursts riding the unindexed delta run,
//! threshold-triggered delta merges, deletes through the index, and
//! watermark rebalances that rebuild the splitters — and it must pay for
//! itself: a repeated-quantile workload has to cost at least 2× fewer
//! collective operations per query than the pre-index baseline, with
//! steady-state repeats answered from the cached histogram alone.

use cgselect::{quantile_rank, Answer, Distribution, Engine, EngineConfig, MachineModel, Query};

fn engine_with(p: usize, index_buckets: usize, delta_threshold: f64) -> Engine<u64> {
    Engine::new(
        EngineConfig::new(p)
            .model(MachineModel::free())
            .index_buckets(index_buckets)
            .delta_threshold(delta_threshold),
    )
    .unwrap()
}

/// The mixed batch every lifecycle step is checked with.
fn mixed_batch(n: u64) -> Vec<Query> {
    vec![
        Query::Rank(0),
        Query::Rank(n / 3),
        Query::Rank(n - 1),
        Query::quantile(0.1),
        Query::quantile(0.5),
        Query::quantile(0.9),
        Query::Median,
        Query::TopK(5.min(n)),
    ]
}

fn oracle_answers(sorted: &[u64], queries: &[Query]) -> Vec<Answer<u64>> {
    let n = sorted.len() as u64;
    queries
        .iter()
        .map(|q| match *q {
            Query::Rank(k) => Answer::Value(sorted[k as usize]),
            Query::Median => Answer::Value(sorted[((n - 1) / 2) as usize]),
            Query::Quantile { q, .. } => Answer::Value(sorted[quantile_rank(q, n) as usize]),
            Query::TopK(k) => Answer::Top(sorted[..k as usize].to_vec()),
        })
        .collect()
}

/// Executes the mixed batch on both engines and checks both against the
/// oracle (and hence against each other).
fn check_step(label: &str, indexed: &mut Engine<u64>, baseline: &mut Engine<u64>, all: &[u64]) {
    let mut sorted = all.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let queries = mixed_batch(n);
    let expect = oracle_answers(&sorted, &queries);
    let got_indexed = indexed.execute(&queries).unwrap();
    let got_baseline = baseline.execute(&queries).unwrap();
    assert_eq!(got_indexed.answers, expect, "indexed path diverged: {label}");
    assert_eq!(got_baseline.answers, expect, "baseline path diverged: {label}");
    assert_eq!(indexed.len(), n, "{label}");
    assert_eq!(baseline.len(), n, "{label}");
}

#[test]
fn indexed_path_matches_baseline_and_oracle_through_the_lifecycle() {
    let p = 4;
    let n = 6000;
    let all_dists = [
        Distribution::Random,
        Distribution::Sorted,
        Distribution::ReverseSorted,
        Distribution::FewDistinct(17),
        Distribution::Gaussian,
        Distribution::Zipf,
        Distribution::OrganPipe,
        Distribution::AllEqual,
    ];
    for dist in all_dists {
        let data: Vec<u64> = cgselect::generate(dist, n, p, 23).into_iter().flatten().collect();
        // A tight delta threshold so the ingest bursts below cross merge
        // boundaries; a small bucket target keeps refinement visible.
        let mut indexed = engine_with(p, 16, 0.03);
        let mut baseline = engine_with(p, 0, 0.03);

        // Phase 1: bulk ingest of two thirds, first mixed batch (builds the
        // index on the indexed engine).
        let (bulk, tail) = data.split_at(2 * n / 3);
        let mut all = bulk.to_vec();
        indexed.ingest(bulk.to_vec()).unwrap();
        baseline.ingest(bulk.to_vec()).unwrap();
        check_step("bulk", &mut indexed, &mut baseline, &all);
        assert!(indexed.index_health().buckets > 0, "{dist:?}: index must build");

        // Phase 2: the remaining third arrives in bursts that ride the
        // delta run and trip merges at the threshold boundary.
        for (i, burst) in tail.chunks(n / 9).enumerate() {
            all.extend_from_slice(burst);
            indexed.ingest(burst.to_vec()).unwrap();
            baseline.ingest(burst.to_vec()).unwrap();
            check_step(&format!("burst {i}"), &mut indexed, &mut baseline, &all);
        }
        assert!(
            indexed.index_health().delta_merges >= 1,
            "{dist:?}: bursts of {} over threshold {} must have merged (health {:?})",
            n / 9,
            (0.03 * all.len() as f64).max(64.0),
            indexed.index_health()
        );

        // Phase 3: delete two resident value classes through the index
        // (skipped for the single-value distribution, which it would empty).
        if all.iter().any(|&x| x != all[0]) {
            let mut sorted = all.clone();
            sorted.sort_unstable();
            let victims = vec![sorted[n / 4], sorted[(3 * n) / 4]];
            let a = indexed.delete(&victims).unwrap();
            let b = baseline.delete(&victims).unwrap();
            assert_eq!(a.elements, b.elements, "{dist:?}");
            all.retain(|x| !victims.contains(x));
            check_step("delete", &mut indexed, &mut baseline, &all);
        }

        // Phase 4: a hot-shard burst trips the watermark; the rebalance
        // drops the splitters and the next batch rebuilds them.
        let rebuilds_before = indexed.index_health().rebuilds;
        let hot: Vec<u64> = (0..all.len() as u64).map(|i| i.wrapping_mul(2654435761)).collect();
        all.extend(&hot);
        let rep_i = indexed.ingest_pinned(1, hot.clone()).unwrap();
        let rep_b = baseline.ingest_pinned(1, hot).unwrap();
        assert!(rep_i.rebalanced && rep_b.rebalanced, "{dist:?}: watermark must trip");
        check_step("rebalance", &mut indexed, &mut baseline, &all);
        assert!(
            indexed.index_health().rebuilds > rebuilds_before,
            "{dist:?}: rebalance must force a splitter rebuild"
        );
    }
}

#[test]
fn repeated_quantile_workload_needs_half_the_collective_ops() {
    let p = 4;
    let data: Vec<u64> =
        cgselect::generate(Distribution::Random, 60_000, p, 7).into_iter().flatten().collect();
    let batch: Vec<Query> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .into_iter()
        .map(Query::quantile)
        .chain([Query::Median])
        .collect();
    let rounds = 6;

    let run = |mut engine: Engine<u64>| {
        engine.ingest(data.clone()).unwrap();
        let mut total_ops = 0u64;
        let mut answers = Vec::new();
        for _ in 0..rounds {
            let report = engine.execute(&batch).unwrap();
            total_ops += report.collective_ops;
            answers.push(report.answers.clone());
        }
        (total_ops, answers, engine.index_health())
    };

    let (base_ops, base_answers, _) = run(engine_with(p, 0, 0.05));
    let (idx_ops, idx_answers, health) = run(engine_with(p, 64, 0.05));

    assert_eq!(idx_answers, base_answers, "indexed answers must match the baseline");
    assert!(
        2 * idx_ops <= base_ops,
        "repeated-quantile workload: indexed {idx_ops} vs baseline {base_ops} collective ops \
         — the acceptance bar is at least 2x fewer"
    );
    // Steady state: every repeat after the first batch is histogram-only.
    let distinct = idx_answers[0].len() as u64 - 1; // median == q0.5 coalesce? keep loose:
    assert!(
        health.histogram_hits >= (rounds as u64 - 1) * distinct.min(6),
        "expected histogram steady state, got {health:?}"
    );
}

#[test]
fn steady_state_repeats_are_scan_free() {
    let p = 4;
    let mut engine = engine_with(p, 64, 0.05);
    let data: Vec<u64> =
        cgselect::generate(Distribution::Zipf, 30_000, p, 3).into_iter().flatten().collect();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    engine.ingest(data).unwrap();

    let batch = vec![Query::quantile(0.5), Query::quantile(0.99), Query::Rank(41)];
    let warm = engine.execute(&batch).unwrap();
    let hot = engine.execute(&batch).unwrap();
    assert_eq!(hot.answers, warm.answers);
    assert_eq!(hot.answers, oracle_answers(&sorted, &batch));
    assert_eq!(
        hot.histogram_answers, hot.exact_ranks,
        "every repeated rank must come from the histogram"
    );
    assert_eq!(hot.collective_ops, 0, "a histogram-only batch starts no collectives");
    assert_eq!(hot.makespan, 0.0, "and does no measured work");

    // A *nearby* quantile after refinement localizes to a refined window:
    // no costlier than the warm batch (strictly cheaper on large windows),
    // exact nonetheless.
    let near = vec![Query::quantile(0.501)];
    let report = engine.execute(&near).unwrap();
    assert_eq!(report.answers, oracle_answers(&sorted, &near));
    assert!(
        report.collective_ops <= warm.collective_ops,
        "near-quantile {} vs warm {} collective ops",
        report.collective_ops,
        warm.collective_ops
    );
}

#[test]
fn delta_boundary_interleaving_stays_exact() {
    // Drive the delta run right at its merge boundary with interleaved
    // ingests and deletes, checking exactness at every step.
    let p = 3;
    let mut engine = engine_with(p, 16, 0.04);
    let mut baseline = engine_with(p, 0, 0.04);
    let base: Vec<u64> = (0..4000u64).map(|i| i.wrapping_mul(48271) % 10_007).collect();
    let mut all = base.clone();
    engine.ingest(base.clone()).unwrap();
    baseline.ingest(base).unwrap();
    check_step("seed", &mut engine, &mut baseline, &all);

    for round in 0..6u64 {
        // Threshold is max(0.04·n, 64) ≈ 165; bursts of 90 straddle it.
        let burst: Vec<u64> = (0..90u64).map(|i| (round * 977 + i * 13) % 10_007).collect();
        all.extend(&burst);
        engine.ingest(burst.clone()).unwrap();
        baseline.ingest(burst.clone()).unwrap();
        check_step(&format!("ingest {round}"), &mut engine, &mut baseline, &all);

        if round % 2 == 1 {
            // Delete part of the *most recent* burst: removals must come out
            // of the delta run too, not just the indexed buckets.
            let victims: Vec<u64> = burst[..30].to_vec();
            let a = engine.delete(&victims).unwrap();
            let b = baseline.delete(&victims).unwrap();
            assert_eq!(a.elements, b.elements, "round {round}");
            all.retain(|x| !victims.contains(x));
            check_step(&format!("delete {round}"), &mut engine, &mut baseline, &all);
        }
    }
    let health = engine.index_health();
    assert!(health.delta_merges >= 1, "boundary bursts must have merged: {health:?}");
}
