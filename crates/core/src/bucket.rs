//! Algorithm 2 — Bucket-based parallel selection.

use cgselect_balance::BalanceReport;
use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::{median_rank, weighted_median, Buckets, KernelRng, LocalKernel, OpCount};

use crate::common::{finish, Narrow, Step};
use crate::{AlgoResult, Algorithm, SelectionConfig};

/// Runs bucket-based parallel selection (paper Algorithm 2, after
/// Rajasekaran et al.).
///
/// Two ideas distinguish it from median-of-medians:
///
/// 1. the estimated median is the **weighted** median of the local medians
///    (weights = remaining counts), so the fixed-fraction discard guarantee
///    survives arbitrary imbalance and **no load balancing is ever needed**
///    — data never moves between processors until the final gather;
/// 2. each processor preprocesses its data into `log p` value-ordered
///    buckets (`O((n/p)·log log p)`), after which both per-iteration local
///    operations (median by rank, split by the estimated median) cost only
///    `O(log log p + n/(p log p))` instead of `O(n/p)`.
///
/// The active set on each processor is a window into the bucket structure
/// that always starts and ends on bucket boundaries.
pub(crate) fn run<T: Key>(
    proc: &mut Proc,
    data: Vec<T>,
    k0: u64,
    n0: u64,
    cfg: &SelectionConfig,
) -> AlgoResult<T> {
    let p = proc.nprocs();
    let threshold = cfg.threshold(p);
    let kernel = cfg.kernel_for(Algorithm::BucketBased);
    let mut local_rng = KernelRng::derive(cfg.seed, proc.rank() as u64 + 1);

    // Step 0: bucket preprocessing. The structure only needs *exact*
    // splits, not the classic Blum-et-al. algorithm's identity, so it is
    // always built with the cheap deterministic introselect — the
    // deterministic/randomized kernel axis (including the paper's hybrid
    // experiment) applies to the *per-iteration* local selections below,
    // which use the same deterministic kernel as Algorithm 1 by default.
    let build_kernel = LocalKernel::IntroSelect;
    let nbuckets = if p <= 2 { 1 } else { (usize::BITS - (p - 1).leading_zeros()) as usize };
    let mut ops = OpCount::new();
    let mut buckets = Buckets::build(data, nbuckets.max(1), build_kernel, &mut local_rng, &mut ops);
    proc.charge_ops(ops.total());
    let mut window = buckets.full_window();

    let mut nr = Narrow { n: n0, k: k0 };
    let mut iterations = 0u32;
    let mut early: Option<T> = None;
    let mut survivors = Vec::new();

    while nr.n > threshold {
        survivors.push(nr.n);
        iterations += 1;
        assert!(
            iterations <= cfg.max_iters,
            "bucket-based selection exceeded {} iterations (n={}, k={})",
            cfg.max_iters,
            nr.n,
            nr.k
        );

        // Step 1: local median of the active window, through the buckets.
        let mi: Option<(T, u64)> = if window.is_empty() {
            None
        } else {
            let len = window.len();
            let mut ops = OpCount::new();
            let m = buckets.select_rank(
                window.clone(),
                median_rank(len),
                kernel,
                &mut local_rng,
                &mut ops,
            );
            proc.charge_ops(ops.total());
            Some((m, len as u64))
        };

        // Steps 2–3: gather (median, count) pairs; P0 computes the
        // weighted median; broadcast.
        let gathered = proc.gather(0, mi);
        let wm_opt: Option<T> = gathered.map(|list| {
            let pairs: Vec<(T, u64)> = list.into_iter().flatten().collect();
            assert!(!pairs.is_empty(), "n > 0 but every processor is empty");
            let mut ops = OpCount::new();
            let wm = weighted_median(&pairs, &mut ops);
            proc.charge_ops(ops.total());
            wm
        });
        let wm: T = proc.broadcast(0, wm_opt);

        // Steps 4–6: bracket split through the buckets (only the straddling
        // bucket is scanned), combine counts, narrow the window.
        let mut ops = OpCount::new();
        let (lt, le) = buckets.split_bracket(window.clone(), wm, &mut ops);
        proc.charge_ops(ops.total());
        let local = (lt as u64, (le - lt) as u64, (window.len() - le) as u64);
        let counts = proc.combine(local, |x, y| (x.0 + y.0, x.1 + y.1, x.2 + y.2));
        let step = nr.decide_eq(counts, lt, le);
        match step {
            Step::Done => {
                early = Some(wm);
                break;
            }
            Step::Low(a) => window = window.start..window.start + a,
            Step::High(b) => window = window.start + b..window.end,
            Step::Mid(..) => unreachable!("decide_eq never yields Mid"),
        }
    }

    // Steps 7–8: gather the surviving window, solve sequentially, broadcast.
    let value = match early {
        Some(v) => v,
        None => {
            let remaining = buckets.window_elements(window);
            proc.charge_ops(remaining.len() as u64);
            finish(proc, remaining, nr.k, kernel, &mut local_rng)
        }
    };
    AlgoResult { value, iterations, unsuccessful: 0, balance: BalanceReport::default(), survivors }
}
