//! Property tests: arbitrary distributed multisets, arbitrary ranks, all
//! four algorithms — the selected element must equal the oracle's, and the
//! bookkeeping must stay coherent.

use cgselect_core::{select_on_machine, Algorithm, Balancer, SelectionConfig};
use cgselect_runtime::MachineModel;
use proptest::prelude::*;

fn oracle(parts: &[Vec<u64>], k: u64) -> u64 {
    let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
    all.sort_unstable();
    all[k as usize]
}

/// Strategy: 1-6 processors, each holding 0..80 values from a small domain
/// (to force duplicate-heavy cases often).
fn parts_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..64, 0..80), 1..6)
        .prop_filter("need at least one element", |ps| ps.iter().any(|v| !v.is_empty()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_algorithm_matches_oracle(
        parts in parts_strategy(),
        k_frac in 0.0f64..1.0,
        seed in any::<u64>(),
        algo in prop::sample::select(Algorithm::ALL.to_vec()),
    ) {
        let total: usize = parts.iter().map(Vec::len).sum();
        let k = (((total as f64) * k_frac) as usize).min(total - 1) as u64;
        let cfg = SelectionConfig { min_sequential: 16, ..SelectionConfig::with_seed(seed) };
        let got = select_on_machine(parts.len(), MachineModel::free(), &parts, k, algo, &cfg)
            .unwrap();
        prop_assert_eq!(got.value, oracle(&parts, k));
        // Every processor agrees.
        for o in &got.per_proc {
            prop_assert_eq!(o.value, got.value);
        }
    }

    #[test]
    fn balancers_never_change_the_answer(
        parts in parts_strategy(),
        k_frac in 0.0f64..1.0,
        seed in any::<u64>(),
        bal in prop::sample::select(vec![
            Balancer::Omlb, Balancer::ModOmlb, Balancer::DimExchange, Balancer::GlobalExchange,
        ]),
        algo in prop::sample::select(vec![
            Algorithm::MedianOfMedians, Algorithm::Randomized, Algorithm::FastRandomized,
        ]),
    ) {
        let total: usize = parts.iter().map(Vec::len).sum();
        let k = (((total as f64) * k_frac) as usize).min(total - 1) as u64;
        let cfg = SelectionConfig {
            min_sequential: 16,
            balancer: bal,
            ..SelectionConfig::with_seed(seed)
        };
        let got = select_on_machine(parts.len(), MachineModel::free(), &parts, k, algo, &cfg)
            .unwrap();
        prop_assert_eq!(got.value, oracle(&parts, k));
    }

    #[test]
    fn virtual_times_are_positive_and_phases_bounded(
        parts in parts_strategy(),
        seed in any::<u64>(),
        algo in prop::sample::select(Algorithm::ALL.to_vec()),
    ) {
        let total: usize = parts.iter().map(Vec::len).sum();
        let k = (total / 2) as u64;
        let cfg = SelectionConfig { min_sequential: 16, ..SelectionConfig::with_seed(seed) };
        let got = select_on_machine(parts.len(), MachineModel::cm5(), &parts, k, algo, &cfg)
            .unwrap();
        for o in &got.per_proc {
            prop_assert!(o.total_seconds >= 0.0);
            prop_assert!(o.lb_seconds <= o.total_seconds + 1e-12);
            prop_assert!(o.sort_seconds <= o.total_seconds + 1e-12);
            prop_assert!(o.finish_seconds <= o.total_seconds + 1e-12);
        }
    }
}
