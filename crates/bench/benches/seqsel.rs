//! Wall-clock comparison of the sequential kernels — the constant-factor
//! story behind the paper's headline result, measured on real hardware
//! rather than the op-count model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cgselect_seqsel::{
    floyd_rivest_select, heap_select, introselect, median_of_medians_select, quickselect,
    sort_select, KernelRng, OpCount,
};

fn inputs(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = KernelRng::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("seqsel");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));

    for n in [1 << 14, 1 << 17] {
        let base = inputs(n, 3);
        let k = n / 2;
        g.throughput(Throughput::Elements(n as u64));

        g.bench_with_input(BenchmarkId::new("quickselect", n), &base, |b, base| {
            let mut rng = KernelRng::new(9);
            b.iter(|| {
                let mut v = base.clone();
                let mut ops = OpCount::new();
                quickselect(&mut v, k, &mut rng, &mut ops)
            });
        });
        g.bench_with_input(BenchmarkId::new("floyd_rivest", n), &base, |b, base| {
            b.iter(|| {
                let mut v = base.clone();
                let mut ops = OpCount::new();
                floyd_rivest_select(&mut v, k, &mut ops)
            });
        });
        g.bench_with_input(BenchmarkId::new("bfprt", n), &base, |b, base| {
            b.iter(|| {
                let mut v = base.clone();
                let mut ops = OpCount::new();
                median_of_medians_select(&mut v, k, &mut ops)
            });
        });
        g.bench_with_input(BenchmarkId::new("introselect", n), &base, |b, base| {
            b.iter(|| {
                let mut v = base.clone();
                let mut ops = OpCount::new();
                introselect(&mut v, k, &mut ops)
            });
        });
        g.bench_with_input(BenchmarkId::new("sort_baseline", n), &base, |b, base| {
            b.iter(|| {
                let mut v = base.clone();
                let mut ops = OpCount::new();
                sort_select(&mut v, k, &mut ops)
            });
        });
        // Heap select at the median (worst case for it) and at tiny k
        // (its sweet spot).
        g.bench_with_input(BenchmarkId::new("heap_select_median", n), &base, |b, base| {
            b.iter(|| {
                let mut ops = OpCount::new();
                heap_select(base, k, &mut ops)
            });
        });
        g.bench_with_input(BenchmarkId::new("heap_select_k10", n), &base, |b, base| {
            b.iter(|| {
                let mut ops = OpCount::new();
                heap_select(base, 10, &mut ops)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
