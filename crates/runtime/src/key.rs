//! The element type abstraction shared by the whole stack.

use crate::wiremsg::WireMsg;

/// An orderable, copyable element that can ride in messages.
///
/// All selection and load-balancing code is generic over `Key`. The sentinel
/// constants exist for algorithms that pad with extreme values (e.g. bitonic
/// sort pads short local arrays with `MAX_SENTINEL`).
///
/// Keys also define a canonical **wire encoding** (`WIRE_BYTES` /
/// [`wire_write`](Key::wire_write) / [`wire_read`](Key::wire_read)): a fixed
/// little-endian byte layout that message-passing execution backends use to
/// move elements across shard boundaries as serialized frames instead of
/// in-process values — the encoding a real out-of-process shard would speak.
/// [`WireMsg`] is a supertrait, so every `Key` (and every tuple / `Option` /
/// `Vec` composition of keys) can also ride an out-of-process collective
/// fabric; [`WIRE_TAG`](Key::WIRE_TAG) names the concrete type on the wire so
/// a worker *process* can instantiate the right monomorphized shard.
pub trait Key: Copy + Ord + Send + Sync + std::fmt::Debug + 'static + WireMsg {
    /// A value ordered ≤ every value of the type.
    const MIN_SENTINEL: Self;
    /// A value ordered ≥ every value of the type.
    const MAX_SENTINEL: Self;
    /// Exact size of this type's wire encoding, in bytes.
    const WIRE_BYTES: usize;
    /// Stable one-byte identifier of this key type, carried in worker
    /// handshakes so both sides of a process boundary agree on the element
    /// type before any data frame flows.
    const WIRE_TAG: u8;

    /// Appends this value's canonical little-endian wire encoding
    /// (exactly [`WIRE_BYTES`](Key::WIRE_BYTES) bytes).
    fn wire_write(self, out: &mut Vec<u8>);

    /// Decodes a value from exactly [`WIRE_BYTES`](Key::WIRE_BYTES) bytes
    /// previously produced by [`wire_write`](Key::wire_write).
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly `WIRE_BYTES` long.
    fn wire_read(bytes: &[u8]) -> Self;
}

macro_rules! impl_key_for_int {
    ($($t:ty => $tag:literal),*) => {
        $(impl Key for $t {
            const MIN_SENTINEL: Self = <$t>::MIN;
            const MAX_SENTINEL: Self = <$t>::MAX;
            const WIRE_BYTES: usize = std::mem::size_of::<$t>();
            const WIRE_TAG: u8 = $tag;

            fn wire_write(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn wire_read(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("wire frame truncated"))
            }
        })*
    };
}

impl_key_for_int!(
    u8 => 1, u16 => 2, u32 => 3, u64 => 4, u128 => 5, usize => 6,
    i8 => 7, i16 => 8, i32 => 9, i64 => 10, i128 => 11, isize => 12
);

/// A totally ordered `f64` (ordered by `f64::total_cmp`), so floating-point
/// data can be used as selection keys.
///
/// NaNs order after +∞ under `total_cmp`; the sentinels are therefore the
/// extreme NaN bit patterns, guaranteeing the sentinel property even for
/// inputs containing infinities or NaNs.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrdF64(pub f64);

impl OrdF64 {
    /// Wraps a raw `f64`.
    #[inline]
    pub fn new(v: f64) -> Self {
        OrdF64(v)
    }

    /// Unwraps to the raw `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for OrdF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Key for OrdF64 {
    // Under `total_cmp`, the NaN with sign bit set and all-ones payload is
    // the minimum of the whole type, and its positive twin is the maximum —
    // these bound every float including infinities and ordinary NaNs.
    const MIN_SENTINEL: Self = OrdF64(f64::from_bits(0xFFFF_FFFF_FFFF_FFFF));
    const MAX_SENTINEL: Self = OrdF64(f64::from_bits(0x7FFF_FFFF_FFFF_FFFF));
    const WIRE_BYTES: usize = 8;
    const WIRE_TAG: u8 = 13;

    // Bit-pattern encoding: round-trips every float exactly, NaN payloads
    // and signed zeros included (a value-level encoding would not).
    fn wire_write(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_bits().to_le_bytes());
    }

    fn wire_read(bytes: &[u8]) -> Self {
        OrdF64(f64::from_bits(u64::from_le_bytes(bytes.try_into().expect("wire frame truncated"))))
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64(v)
    }
}
impl From<OrdF64> for f64 {
    fn from(v: OrdF64) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::absurd_extreme_comparisons)] // the triviality IS the property
    fn int_sentinels_bound_everything() {
        for v in [-5i64, 0, 7, i64::MAX - 1] {
            assert!(i64::MIN_SENTINEL <= v);
            assert!(v <= i64::MAX_SENTINEL);
        }
    }

    #[test]
    fn ordf64_total_order() {
        let mut v = [OrdF64(3.0), OrdF64(-1.0), OrdF64(f64::INFINITY), OrdF64(0.0)];
        v.sort();
        assert_eq!(v[0], OrdF64(-1.0));
        assert_eq!(v[3], OrdF64(f64::INFINITY));
    }

    #[test]
    fn ordf64_sentinels_bound_infinities() {
        assert!(OrdF64::MIN_SENTINEL <= OrdF64(f64::NEG_INFINITY));
        assert!(OrdF64(f64::INFINITY) <= OrdF64::MAX_SENTINEL);
        assert!(OrdF64::MIN_SENTINEL <= OrdF64(0.0));
    }

    #[test]
    fn ordf64_negative_zero_sorts_before_positive_zero() {
        // total_cmp distinguishes -0.0 < +0.0; the order is total either way.
        assert!(OrdF64(-0.0) < OrdF64(0.0));
    }

    #[test]
    fn integer_wire_encoding_round_trips() {
        for v in [0u64, 1, 0x9E37_79B9, u64::MAX] {
            let mut buf = Vec::new();
            v.wire_write(&mut buf);
            assert_eq!(buf.len(), u64::WIRE_BYTES);
            assert_eq!(u64::wire_read(&buf), v);
        }
        for v in [i32::MIN, -7, 0, i32::MAX] {
            let mut buf = Vec::new();
            v.wire_write(&mut buf);
            assert_eq!(buf.len(), i32::WIRE_BYTES);
            assert_eq!(i32::wire_read(&buf), v);
        }
    }

    #[test]
    fn ordf64_wire_encoding_round_trips_exactly() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut buf = Vec::new();
            OrdF64(v).wire_write(&mut buf);
            let back = OrdF64::wire_read(&buf);
            assert_eq!(back.0.to_bits(), v.to_bits(), "bit pattern must survive the wire");
        }
    }
}
