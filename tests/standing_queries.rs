//! Standing-query subsystem tests: oracle-checked freshness across every
//! workload distribution, cross-backend conformance of the update streams
//! (identical answers AND identical per-update collective costs on
//! `LocalSpmd`, `ChannelMp` and `SocketMp`), clean unsubscribe/shutdown
//! drains, membership-change invalidation, and a property-test wall
//! guaranteeing gap-free monotone sequence stamps under arbitrary
//! ingest/delete interleavings.

use std::time::Duration;

use cgselect::{
    quantile_rank, BackendChoice, ChannelMpTuning, Distribution, Engine, EngineConfig,
    FrontendConfig, MachineModel, RefreshPolicy, Request, Response, SocketMpTuning, StandingUpdate,
};
use proptest::prelude::*;

const ALL_DISTRIBUTIONS: [Distribution; 8] = [
    Distribution::Random,
    Distribution::Sorted,
    Distribution::ReverseSorted,
    Distribution::FewDistinct(17),
    Distribution::Gaussian,
    Distribution::Zipf,
    Distribution::OrganPipe,
    Distribution::AllEqual,
];

fn cfg(p: usize, backend: BackendChoice) -> EngineConfig {
    EngineConfig::new(p)
        .model(MachineModel::free())
        .index_buckets(16)
        .delta_threshold(0.05)
        .backend(backend)
}

fn channel_mp() -> BackendChoice {
    BackendChoice::ChannelMp(ChannelMpTuning::default())
}

/// Builds the shard-worker binary once so `SocketMp` engines can spawn
/// their out-of-process shards from any test binary.
fn socket_mp() -> BackendChoice {
    use std::sync::Once;
    static BUILD: Once = Once::new();
    BUILD.call_once(|| {
        let exe = std::env::current_exe().expect("current_exe");
        let profile_dir = exe
            .parent()
            .and_then(|deps| deps.parent())
            .expect("test executable must live under target/<profile>/deps");
        if profile_dir.join("cgselect-shard-worker").is_file() {
            return;
        }
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = std::process::Command::new(cargo);
        cmd.args(["build", "-p", "cgselect-engine", "--bin", "cgselect-shard-worker"]);
        if profile_dir.file_name().and_then(|n| n.to_str()) == Some("release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("spawn cargo to build the shard worker");
        assert!(status.success(), "building cgselect-shard-worker failed");
    });
    BackendChoice::SocketMp(SocketMpTuning::default())
}

fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    sorted[quantile_rank(q, sorted.len() as u64) as usize]
}

/// Every update a standing quantile delivers must equal the from-scratch
/// answer over exactly the ingested prefix it claims freshness for — for
/// all 8 workload distributions.
#[test]
fn standing_updates_match_the_oracle_at_every_prefix() {
    for dist in ALL_DISTRIBUTIONS {
        let data: Vec<u64> = cgselect::generate(dist, 4000, 4, 13).into_iter().flatten().collect();
        let mut engine: Engine<u64> = Engine::new(cfg(4, BackendChoice::LocalSpmd)).unwrap();
        let p50 = engine.subscribe(Request::quantile(0.5), RefreshPolicy::EveryBatch);
        let p99 = engine.subscribe(Request::quantile(0.99), RefreshPolicy::EveryBatch);

        let mut prefix: Vec<u64> = Vec::new();
        let mut expected = Vec::new();
        for chunk in data.chunks(500) {
            prefix.extend_from_slice(chunk);
            engine.ingest(chunk.to_vec()).unwrap();
            let delivered = engine.refresh_standing().unwrap();
            assert_eq!(delivered, 2, "{}: both subscriptions refresh per ingest", dist.name());
            let mut sorted = prefix.clone();
            sorted.sort_unstable();
            expected.push((
                prefix.len() as u64,
                oracle_quantile(&sorted, 0.5),
                oracle_quantile(&sorted, 0.99),
            ));
        }

        for (handle, col) in [(&p50, 1), (&p99, 2)] {
            let updates = handle.drain();
            assert_eq!(updates.len(), expected.len(), "{}", dist.name());
            let mut last_version = 0;
            for (i, u) in updates.iter().enumerate() {
                let (elements, o50, o99) = expected[i];
                let want = if col == 1 { o50 } else { o99 };
                assert_eq!(u.seq, i as u64, "{}: gap-free sequence", dist.name());
                assert_eq!(
                    u.outcome.response,
                    Response::Element(want),
                    "{}: update {i} must match the prefix oracle",
                    dist.name()
                );
                assert_eq!(u.outcome.freshness.elements, elements, "{}", dist.name());
                assert!(
                    u.outcome.freshness.version > last_version,
                    "{}: versions must strictly increase across updates",
                    dist.name()
                );
                last_version = u.outcome.freshness.version;
            }
        }
    }
}

/// The execution seam stays unobservable for standing queries too: the
/// full update stream — answers, sequence stamps, freshness, and the
/// per-update attributed collective cost — is identical on the in-process,
/// channel message-passing and out-of-process socket backends.
#[test]
fn standing_streams_conform_across_all_three_backends() {
    let data: Vec<u64> =
        cgselect::generate(Distribution::Zipf, 6000, 3, 29).into_iter().flatten().collect();

    let run = |backend: BackendChoice| -> (Vec<StandingUpdate<u64>>, u64, u64) {
        let mut engine: Engine<u64> = Engine::new(cfg(3, backend)).unwrap();
        let handle = engine.subscribe(Request::quantile(0.9), RefreshPolicy::EveryBatch);
        for chunk in data.chunks(1000) {
            engine.ingest(chunk.to_vec()).unwrap();
            engine.refresh_standing().unwrap();
        }
        engine.delete(&[data[0], data[100]]).unwrap();
        engine.refresh_standing().unwrap();
        (handle.drain(), engine.standing_refreshes(), engine.standing_zero_collective())
    };

    let (local, local_refreshes, local_zero) = run(BackendChoice::LocalSpmd);
    assert_eq!(local_refreshes as usize, local.len());
    for (name, backend) in [("channel-mp", channel_mp()), ("socket-mp", socket_mp())] {
        let (other, refreshes, zero) = run(backend);
        assert_eq!(local.len(), other.len(), "{name}: update count");
        for (a, b) in local.iter().zip(&other) {
            assert_eq!(a.seq, b.seq, "{name}");
            assert_eq!(a.outcome.response, b.outcome.response, "{name}");
            assert_eq!(a.outcome.served, b.outcome.served, "{name}");
            assert_eq!(a.outcome.freshness, b.outcome.freshness, "{name}");
            assert_eq!(
                a.outcome.cost.collective_ops, b.outcome.cost.collective_ops,
                "{name}: per-update collective cost"
            );
        }
        assert_eq!(local_refreshes, refreshes, "{name}");
        assert_eq!(local_zero, zero, "{name}: zero-collective refresh count");
    }
}

/// Unsubscribing ends the stream; dropping the handle auto-unsubscribes on
/// the next delivery; a frontend shutdown drains pending work cleanly.
#[test]
fn unsubscribe_and_shutdown_drain_cleanly() {
    let mut engine: Engine<u64> = Engine::new(cfg(2, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest((0..500u64).collect()).unwrap();

    // Explicit unsubscribe: stream ends after the delivered updates.
    let h = engine.subscribe(Request::median(), RefreshPolicy::EveryBatch);
    engine.refresh_standing().unwrap();
    assert!(engine.unsubscribe(h.id()));
    assert!(!engine.unsubscribe(h.id()), "second unsubscribe is a no-op");
    assert_eq!(engine.standing_active(), 0);
    let updates = h.drain();
    assert_eq!(updates.len(), 1);
    assert!(h.recv().is_none(), "stream ends once the engine side is gone");

    // Dropped handle: the engine notices at the next delivery attempt and
    // removes the subscription instead of accumulating updates forever.
    let dropped = engine.subscribe(Request::median(), RefreshPolicy::EveryBatch);
    drop(dropped);
    assert_eq!(engine.standing_active(), 1);
    engine.ingest(vec![7]).unwrap();
    engine.refresh_standing().unwrap();
    assert_eq!(engine.standing_active(), 0, "dropped handle auto-unsubscribes");

    // Frontend shutdown: the handle's stream terminates, the engine comes
    // back with the subscription still registered and resumable.
    let queue = engine.into_frontend(FrontendConfig::new());
    let handle = queue
        .submit_standing(Request::quantile(0.25), RefreshPolicy::EveryBatch)
        .unwrap()
        .wait()
        .unwrap();
    let first = handle.recv_timeout(Duration::from_secs(5)).expect("inaugural update");
    assert_eq!(first.seq, 0);
    let mut engine = queue.shutdown().expect("first shutdown claims the engine");
    assert_eq!(engine.standing_active(), 1, "subscription survives the frontend");
    engine.ingest(vec![1000]).unwrap();
    engine.refresh_standing().unwrap();
    let second = handle.recv_timeout(Duration::from_secs(5)).expect("post-shutdown update");
    assert_eq!(second.seq, 1, "sequence continues gap-free across the frontend boundary");
}

/// Membership changes (migrate / join / retire) invalidate every cached
/// window: the next refresh is forced even though the multiset (and so the
/// mutation version) did not change, and its answer equals the
/// from-scratch oracle.
#[test]
fn membership_changes_force_full_re_resolution() {
    let data: Vec<u64> =
        cgselect::generate(Distribution::Gaussian, 3000, 3, 47).into_iter().flatten().collect();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let want = oracle_quantile(&sorted, 0.5);

    let mut engine: Engine<u64> = Engine::new(cfg(3, socket_mp())).unwrap();
    engine.ingest(data).unwrap();
    let handle = engine.subscribe(Request::quantile(0.5), RefreshPolicy::EveryBatch);
    engine.refresh_standing().unwrap();
    let baseline = handle.drain();
    assert_eq!(baseline.len(), 1);
    assert_eq!(baseline[0].outcome.response, Response::Element(want));

    // Idempotence check first: with no mutation and no membership change,
    // nothing is due.
    assert_eq!(engine.refresh_standing().unwrap(), 0);

    engine.migrate_shard(0).unwrap();
    assert_eq!(engine.refresh_standing().unwrap(), 1, "migration invalidates the subscription");
    engine.join_worker().unwrap();
    assert_eq!(engine.refresh_standing().unwrap(), 1, "join invalidates the subscription");
    let survivors = engine.retire_worker(1).unwrap();
    assert!(survivors >= 2);
    assert_eq!(engine.refresh_standing().unwrap(), 1, "retire invalidates the subscription");

    for (i, u) in handle.drain().iter().enumerate() {
        assert_eq!(u.seq, 1 + i as u64, "gap-free across membership changes");
        assert_eq!(
            u.outcome.response,
            Response::Element(want),
            "forced re-resolution must reproduce the oracle answer"
        );
        assert_eq!(u.outcome.freshness.elements, sorted.len() as u64, "no data was lost");
    }
}

/// `OnDelta` refreshes only once the churn crosses the configured fraction
/// of the resident population — small ingests accumulate silently.
#[test]
fn on_delta_policy_batches_small_churn() {
    let mut engine: Engine<u64> = Engine::new(cfg(2, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest((0..1000u64).collect()).unwrap();
    let handle = engine.subscribe(Request::median(), RefreshPolicy::OnDelta(0.10));
    // Inaugural refresh always happens.
    assert_eq!(engine.refresh_standing().unwrap(), 1);
    // 3 × 30 = 90 new elements < 10% of ~1000: no refresh yet.
    for i in 0..3u64 {
        engine.ingest((2000 + i * 100..2030 + i * 100).collect()).unwrap();
        assert_eq!(engine.refresh_standing().unwrap(), 0, "ingest {i} stays below the fraction");
    }
    // The fourth crosses the threshold: exactly one refresh covers all four.
    engine.ingest((9000..9040u64).collect()).unwrap();
    assert_eq!(engine.refresh_standing().unwrap(), 1);
    let updates = handle.drain();
    assert_eq!(updates.len(), 2);
    assert_eq!(updates[1].outcome.freshness.elements, 1130);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Under any interleaving of ingests and deletes, the update stream
    /// carries gap-free sequence numbers from 0, strictly increasing
    /// freshness versions, and an exact `elements` stamp per update — one
    /// update per multiset-changing operation (refreshes over an emptied
    /// engine are skipped without burning sequence numbers).
    #[test]
    fn sequence_stamps_stay_gap_free_under_random_interleavings(
        ops in prop::collection::vec(
            (0u64..4, prop::collection::vec(0u64..40, 1..30)),
            1..14,
        ).prop_map(|raw| raw
            .into_iter()
            .map(|(kind, mut vals)| {
                // ~25% deletes (of a few value classes), ~75% ingests.
                if kind == 0 {
                    vals.truncate(5);
                    Ops::Delete(vals)
                } else {
                    Ops::Ingest(vals)
                }
            })
            .collect::<Vec<_>>()),
    ) {
        let mut engine: Engine<u64> =
            Engine::new(cfg(2, BackendChoice::LocalSpmd)).unwrap();
        let handle = engine.subscribe(Request::quantile(0.5), RefreshPolicy::EveryBatch);
        let mut resident: Vec<u64> = Vec::new();
        let mut expected_elements: Vec<u64> = Vec::new();
        for op in &ops {
            let changed = match op {
                Ops::Ingest(vals) => {
                    resident.extend(vals);
                    engine.ingest(vals.clone()).unwrap();
                    true
                }
                Ops::Delete(vals) => {
                    let before = resident.len();
                    resident.retain(|x| !vals.contains(x));
                    engine.delete(vals.as_slice()).unwrap();
                    resident.len() != before
                }
            };
            let delivered = engine.refresh_standing().unwrap();
            if changed && !resident.is_empty() {
                prop_assert_eq!(delivered, 1, "multiset changed: one update due");
                expected_elements.push(resident.len() as u64);
            } else {
                prop_assert_eq!(delivered, 0, "no change or empty engine: no update");
            }
            prop_assert_eq!(engine.len(), resident.len() as u64);
        }
        let updates = handle.drain();
        prop_assert_eq!(updates.len(), expected_elements.len());
        let mut last_version = 0;
        for (i, u) in updates.iter().enumerate() {
            prop_assert_eq!(u.seq, i as u64, "gap-free from 0");
            prop_assert_eq!(u.outcome.freshness.elements, expected_elements[i]);
            prop_assert!(u.outcome.freshness.version > last_version);
            last_version = u.outcome.freshness.version;
        }
        if let Some(last) = updates.last() {
            let mut sorted = resident.clone();
            sorted.sort_unstable();
            if !sorted.is_empty() {
                prop_assert_eq!(
                    &last.outcome.response,
                    &Response::Element(oracle_quantile(&sorted, 0.5)),
                    "final update matches the oracle over the surviving multiset"
                );
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Ops {
    Ingest(Vec<u64>),
    Delete(Vec<u64>),
}
