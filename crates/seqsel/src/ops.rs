//! Operation counting shared by all kernels.

/// Comparisons and element moves performed by a kernel.
///
/// These are *measured* counts, not estimates: every comparison and every
/// element copy/swap in the kernels increments them. The parallel layer maps
/// them onto virtual time via `MachineModel::t_op`.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCount {
    /// Number of key comparisons.
    pub cmps: u64,
    /// Number of element moves (a swap counts as 3 moves).
    pub moves: u64,
}

impl OpCount {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total elementary operations (comparisons + moves).
    #[inline]
    pub fn total(&self) -> u64 {
        self.cmps + self.moves
    }

    /// Adds another counter into this one.
    #[inline]
    pub fn add(&mut self, other: OpCount) {
        self.cmps += other.cmps;
        self.moves += other.moves;
    }

    /// Difference `self - earlier`, for measuring a region.
    pub fn since(&self, earlier: &OpCount) -> OpCount {
        OpCount { cmps: self.cmps - earlier.cmps, moves: self.moves - earlier.moves }
    }
}

impl std::ops::AddAssign for OpCount {
    fn add_assign(&mut self, rhs: Self) {
        self.add(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut a = OpCount { cmps: 3, moves: 4 };
        a += OpCount { cmps: 1, moves: 2 };
        assert_eq!(a, OpCount { cmps: 4, moves: 6 });
        assert_eq!(a.total(), 10);
        assert_eq!(a.since(&OpCount { cmps: 1, moves: 1 }), OpCount { cmps: 3, moves: 5 });
    }
}
