//! Per-processor communication counters and phase timers.

/// Counters for messages and modeled bytes moved by one virtual processor.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommStats {
    /// Number of point-to-point messages sent (collectives included).
    pub msgs_sent: u64,
    /// Modeled payload bytes sent.
    pub bytes_sent: u64,
    /// Number of messages received.
    pub msgs_recv: u64,
    /// Modeled payload bytes received.
    pub bytes_recv: u64,
    /// Number of collective operations this processor has started (every
    /// barrier, broadcast, reduce/combine, scan, gather/scatter variant,
    /// all-to-all, and every `fresh_tag` draw counts once). Identical on
    /// every processor by SPMD discipline, which makes it the natural unit
    /// for "collective rounds" when comparing batched against per-query
    /// execution.
    pub collective_ops: u64,
}

impl CommStats {
    /// Component-wise difference `self - earlier`; useful for measuring a
    /// single algorithm phase: snapshot before, subtract after.
    ///
    /// A mismatched pair (an `earlier` snapshot that is actually *later*)
    /// is a caller bug, flagged by a `debug_assert`; release builds
    /// saturate to zero instead of underflow-panicking, so telemetry paths
    /// degrade to a zeroed delta rather than taking the process down.
    pub fn since(&self, earlier: &CommStats) -> CommStats {
        debug_assert!(
            self.msgs_sent >= earlier.msgs_sent
                && self.bytes_sent >= earlier.bytes_sent
                && self.msgs_recv >= earlier.msgs_recv
                && self.bytes_recv >= earlier.bytes_recv
                && self.collective_ops >= earlier.collective_ops,
            "CommStats::since with a snapshot pair out of order: {self:?} since {earlier:?}"
        );
        CommStats {
            msgs_sent: self.msgs_sent.saturating_sub(earlier.msgs_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            msgs_recv: self.msgs_recv.saturating_sub(earlier.msgs_recv),
            bytes_recv: self.bytes_recv.saturating_sub(earlier.bytes_recv),
            collective_ops: self.collective_ops.saturating_sub(earlier.collective_ops),
        }
    }

    /// Component-wise sum, for aggregating across processors.
    pub fn merged(&self, other: &CommStats) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            collective_ops: self.collective_ops + other.collective_ops,
        }
    }
}

/// Accumulates virtual time per named phase.
///
/// Phases may nest (e.g. `"sort"` inside the selection loop); the accumulated
/// time is *inclusive*. Begin/end pairs must be properly bracketed — the
/// timer panics on mismatched labels, which turns phase-accounting bugs in
/// the algorithms into immediate test failures.
#[derive(Default, Debug, Clone)]
pub struct PhaseTimer {
    stack: Vec<(&'static str, f64)>,
    acc: Vec<(&'static str, f64)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of `label` at virtual time `now`.
    pub fn begin(&mut self, label: &'static str, now: f64) {
        self.stack.push((label, now));
    }

    /// Marks the end of `label` at virtual time `now`, accumulating the
    /// elapsed virtual time.
    ///
    /// # Panics
    /// Panics if `label` does not match the innermost open phase.
    pub fn end(&mut self, label: &'static str, now: f64) {
        let (open, start) = self
            .stack
            .pop()
            .unwrap_or_else(|| panic!("PhaseTimer::end({label:?}) with no open phase"));
        assert_eq!(open, label, "PhaseTimer::end({label:?}) does not match open phase {open:?}");
        let elapsed = now - start;
        debug_assert!(elapsed >= 0.0, "virtual clock ran backwards in phase {label}");
        match self.acc.iter_mut().find(|(l, _)| *l == label) {
            Some((_, t)) => *t += elapsed,
            None => self.acc.push((label, elapsed)),
        }
    }

    /// Total accumulated virtual time for `label` (0.0 if never recorded).
    pub fn get(&self, label: &str) -> f64 {
        self.acc.iter().find(|(l, _)| *l == label).map(|(_, t)| *t).unwrap_or(0.0)
    }

    /// All recorded `(label, seconds)` pairs in first-seen order.
    pub fn all(&self) -> &[(&'static str, f64)] {
        &self.acc
    }

    /// True if every `begin` has been matched by an `end`.
    pub fn balanced(&self) -> bool {
        self.stack.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_since_and_merged() {
        let a = CommStats {
            msgs_sent: 5,
            bytes_sent: 100,
            msgs_recv: 3,
            bytes_recv: 60,
            collective_ops: 4,
        };
        let b = CommStats {
            msgs_sent: 2,
            bytes_sent: 40,
            msgs_recv: 1,
            bytes_recv: 20,
            collective_ops: 1,
        };
        let d = a.since(&b);
        assert_eq!(d.msgs_sent, 3);
        assert_eq!(d.bytes_sent, 60);
        assert_eq!(d.msgs_recv, 2);
        assert_eq!(d.bytes_recv, 40);
        assert_eq!(d.collective_ops, 3);
        let m = d.merged(&b);
        assert_eq!(m, a);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "snapshot pair out of order"))]
    fn since_saturates_on_mismatched_snapshots_in_release() {
        // A swapped snapshot pair must not underflow-wrap in release
        // telemetry paths; debug builds flag the caller bug loudly.
        let earlier = CommStats { msgs_sent: 1, ..CommStats::default() };
        let later = CommStats { msgs_sent: 5, bytes_sent: 10, ..CommStats::default() };
        let d = earlier.since(&later);
        assert_eq!(d, CommStats::default());
    }

    #[test]
    fn phases_accumulate() {
        let mut t = PhaseTimer::new();
        t.begin("lb", 1.0);
        t.end("lb", 3.0);
        t.begin("lb", 10.0);
        t.end("lb", 14.0);
        assert_eq!(t.get("lb"), 6.0);
        assert_eq!(t.get("other"), 0.0);
        assert!(t.balanced());
    }

    #[test]
    fn phases_nest_inclusively() {
        let mut t = PhaseTimer::new();
        t.begin("outer", 0.0);
        t.begin("inner", 1.0);
        t.end("inner", 2.0);
        t.end("outer", 5.0);
        assert_eq!(t.get("outer"), 5.0);
        assert_eq!(t.get("inner"), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match open phase")]
    fn mismatched_end_panics() {
        let mut t = PhaseTimer::new();
        t.begin("a", 0.0);
        t.end("b", 1.0);
    }

    #[test]
    #[should_panic(expected = "no open phase")]
    fn end_without_begin_panics() {
        let mut t = PhaseTimer::new();
        t.end("a", 1.0);
    }
}
