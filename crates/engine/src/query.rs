//! The engine's query language and the batch planner.
//!
//! Two surfaces share this planner:
//!
//! * **v2** — typed [`Request`]s ([`crate::request`]): rank-direction kinds
//!   plus the inverse direction ([`QueryKind::RankOf`],
//!   [`QueryKind::CountBetween`]) and explicit [`Accuracy`] contracts.
//!   [`crate::Engine::run`] plans a batch here, routes it against the
//!   cached histogram host-side, and lowers the remainder onto the
//!   collective ops.
//! * **v1** — the original closed [`Query`] enum, kept as a compatibility
//!   shim: [`Query::to_request`] lowers each variant onto the v2 surface,
//!   so old callers compile unchanged through [`crate::Engine::execute`].
//!
//! Planning reduces every exact rank-direction query to 0-based global
//! ranks and **coalesces the whole batch into one deduplicated
//! [`RankSet`]** — stored as contiguous *runs*, so `TopK(k)` contributes
//! one `(0, k)` run instead of `k` materialized ranks — which the engine
//! resolves with a single [`cgselect_core::parallel_multi_select_windows`]
//! pass: `R` rank queries cost one multi-select recursion (`O(log n + R)`
//! pivot rounds) instead of `R` independent selections (`O(R·log n)`
//! rounds). Value-direction queries coalesce their endpoints into one
//! deduplicated probe list resolved by a single vectorized `count_below`
//! Combine round. Queries whose [`Accuracy`] the resident sketches can
//! honor are routed to the approximate path and never touch the full data.

use crate::request::{Accuracy, Bounds, QueryKind, Request};

/// One v1 query against the resident distributed multiset (the
/// compatibility surface; see [`Request`] for the typed v2 surface).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Query {
    /// The element of this 0-based global rank.
    Rank(u64),
    /// The element nearest to quantile `q ∈ [0, 1]`.
    Quantile {
        /// The quantile, `0.0 ..= 1.0`.
        q: f64,
        /// `Some(t)`: the engine may answer from the sample sketches as
        /// long as the result's rank error is at most `t·n` (fraction of
        /// the resident population). `None` demands the exact element.
        tolerance: Option<f64>,
    },
    /// The median (0-based rank `(n−1)/2`, the paper's ⌈n/2⌉-th smallest).
    Median,
    /// The `k` smallest resident elements, in ascending order.
    TopK(u64),
}

impl Query {
    /// An exact quantile query.
    pub fn quantile(q: f64) -> Query {
        Query::Quantile { q, tolerance: None }
    }

    /// A quantile query the engine may answer approximately, with rank
    /// error at most `tolerance · n`.
    pub fn quantile_within(q: f64, tolerance: f64) -> Query {
        Query::Quantile { q, tolerance: Some(tolerance) }
    }

    /// Lowers this v1 query onto the typed v2 [`Request`] surface — the
    /// compatibility mapping [`crate::Engine::execute`] applies per query:
    ///
    /// | v1 | v2 |
    /// |---|---|
    /// | `Rank(k)` | `Request::rank(k)` |
    /// | `Quantile { q, tolerance: None }` | `Request::quantile(q)` |
    /// | `Quantile { q, tolerance: Some(t) }` | `Request::quantile(q).within_rank(t)` |
    /// | `Median` | `Request::median()` |
    /// | `TopK(k)` | `Request::top_k(k)` |
    pub fn to_request<T>(&self) -> Request<T> {
        match *self {
            Query::Rank(k) => Request::rank(k),
            Query::Quantile { q, tolerance: None } => Request::quantile(q),
            Query::Quantile { q, tolerance: Some(t) } => Request::quantile(q).within_rank(t),
            Query::Median => Request::median(),
            Query::TopK(k) => Request::top_k(k),
        }
    }
}

/// One v1 answer, aligned with the submitted query.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer<T> {
    /// Exact element (for `Rank`, `Median`, and exact `Quantile`).
    Value(T),
    /// The k smallest elements in ascending order (for `TopK`).
    Top(Vec<T>),
    /// Sketch-served quantile: `value`'s true rank is **guaranteed** to be
    /// within `max_rank_error` of `target_rank` (the deterministic
    /// ε-sketch's provable bound; see [`crate::EpsSketch`]).
    Approximate {
        /// The estimated element.
        value: T,
        /// The exact query's 0-based target rank.
        target_rank: u64,
        /// The guaranteed absolute rank-error bound — the sketch's current
        /// provable error, which is at most the contract's `⌈tolerance·n⌉`.
        max_rank_error: u64,
    },
}

impl<T> Answer<T> {
    /// Borrows the scalar answer, if this is a `Value` or `Approximate`
    /// answer — no `Copy` bound, so the accessor works for any future
    /// non-`Copy` key type.
    pub fn as_value(&self) -> Option<&T> {
        match self {
            Answer::Value(v) | Answer::Approximate { value: v, .. } => Some(v),
            Answer::Top(_) => None,
        }
    }

    /// Consumes the answer into its scalar value, if any.
    pub fn into_value(self) -> Option<T> {
        match self {
            Answer::Value(v) | Answer::Approximate { value: v, .. } => Some(v),
            Answer::Top(_) => None,
        }
    }

    /// The top-k list, if this is a `Top` answer.
    pub fn top(&self) -> Option<&[T]> {
        match self {
            Answer::Top(v) => Some(v),
            _ => None,
        }
    }
}

impl<T: Copy> Answer<T> {
    /// The scalar answer by value, if this is a `Value` or `Approximate`
    /// answer (kept for `Copy` keys; prefer [`as_value`](Self::as_value)
    /// in generic code).
    pub fn value(&self) -> Option<T> {
        self.as_value().copied()
    }
}

/// Folds a v2 [`Response`] back into a v1 [`Answer`] — THE compatibility
/// mapping, shared by [`crate::Engine::execute`] and the async frontend's
/// v1 tickets so the two paths cannot drift apart.
///
/// # Panics
/// Panics on [`Response::Count`]: [`Query::to_request`] never lowers a v1
/// query to a count kind, so a count can only reach here through a bug.
pub(crate) fn answer_from_response<T>(response: crate::request::Response<T>) -> Answer<T> {
    use crate::request::Response;
    match response {
        Response::Element(v) => Answer::Value(v),
        Response::Elements(vs) => Answer::Top(vs),
        Response::Approximate { value, target_rank, max_rank_error } => {
            Answer::Approximate { value, target_rank, max_rank_error }
        }
        Response::Count { .. } => unreachable!("v1 queries never lower to count kinds"),
    }
}

/// The 0-based rank the engine resolves quantile `q` to over `n` elements
/// (nearest-rank definition: `round(q·(n−1))`).
pub fn quantile_rank(q: f64, n: u64) -> u64 {
    assert!(n > 0, "quantile of an empty set");
    ((q * (n - 1) as f64).round() as u64).min(n - 1)
}

// ---------------------------------------------------------------------------
// RankSet: the coalesced rank list, stored as runs.
// ---------------------------------------------------------------------------

/// A deduplicated set of 0-based global ranks, stored as sorted, disjoint,
/// maximal **runs** — so a contiguous request like `TopK(100_000)`
/// contributes one `(0, 100_000)` run instead of `100_000` materialized,
/// sorted ranks. This is the coalesced rank list a batch's multi-select
/// pass resolves; it crosses the [`crate::ExecBackend`] boundary inside
/// [`crate::BatchPlan`], so the wire encoding is per-run too.
///
/// Slots: the set defines a flat ascending order over its members;
/// [`slot_of`](Self::slot_of) maps a member rank to its position, which is
/// the index of its resolved value in the batch outcome.
///
/// ```
/// use cgselect_engine::RankSet;
///
/// // TopK(5) + Rank(3) + Rank(9): one merged run plus a point.
/// let set = RankSet::from_runs(vec![(0, 5), (3, 1), (9, 1)]);
/// assert_eq!(set.len(), 6);
/// assert_eq!(set.num_runs(), 2);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 9]);
/// assert_eq!(set.slot_of(9), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankSet {
    /// `(start, len, first_slot)` per run; sorted, disjoint, non-adjacent.
    runs: Vec<(u64, u64, u64)>,
    total: u64,
}

impl RankSet {
    /// Builds the set from arbitrary `(start, len)` runs (unsorted,
    /// possibly overlapping or adjacent; zero-length runs are dropped).
    pub fn from_runs(mut raw: Vec<(u64, u64)>) -> Self {
        raw.retain(|&(_, len)| len > 0);
        raw.sort_unstable();
        let mut runs: Vec<(u64, u64, u64)> = Vec::with_capacity(raw.len());
        for (start, len) in raw {
            match runs.last_mut() {
                // Overlapping or exactly adjacent: extend the open run.
                Some(last) if start <= last.0 + last.1 => {
                    let end = (start + len).max(last.0 + last.1);
                    last.1 = end - last.0;
                }
                _ => runs.push((start, len, 0)),
            }
        }
        let mut total = 0u64;
        for run in &mut runs {
            run.2 = total;
            total += run.1;
        }
        RankSet { runs, total }
    }

    /// Number of distinct member ranks.
    #[allow(clippy::len_without_is_empty)] // is_empty provided below
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of maximal runs (the compact representation's size).
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// The maximal runs, ascending, as `(start, len)`.
    pub fn runs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.runs.iter().map(|&(s, l, _)| (s, l))
    }

    /// Every member rank, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|&(s, l, _)| s..s + l)
    }

    /// The flat ascending position of member rank `r` (the slot its
    /// resolved value occupies in a batch outcome).
    ///
    /// # Panics
    /// Panics if `r` is not a member.
    pub fn slot_of(&self, r: u64) -> usize {
        let i = self.runs.partition_point(|&(s, l, _)| s + l <= r);
        match self.runs.get(i) {
            Some(&(s, _, base)) if s <= r => (base + (r - s)) as usize,
            _ => panic!("rank {r} is not in the set"),
        }
    }

    /// A new set additionally containing the given individual ranks.
    pub fn union_points(&self, points: &[u64]) -> RankSet {
        if points.is_empty() {
            return self.clone();
        }
        let mut raw: Vec<(u64, u64)> = self.runs.iter().map(|&(s, l, _)| (s, l)).collect();
        raw.extend(points.iter().map(|&p| (p, 1)));
        RankSet::from_runs(raw)
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Checks one v2 request's domain against a resident population of `n`
/// elements without planning it: the single source of truth for what
/// [`plan_requests`] accepts, also used by the async frontend to reject an
/// invalid request individually instead of failing its whole coalesced
/// batch.
pub(crate) fn validate_request<T>(request: &Request<T>, n: u64) -> Result<(), crate::EngineError> {
    use crate::EngineError;
    if n == 0 {
        return Err(EngineError::Empty);
    }
    match &request.kind {
        QueryKind::Rank(k) if *k >= n => {
            return Err(EngineError::RankOutOfRange { rank: *k, n });
        }
        QueryKind::Quantile(q) if !(0.0..=1.0).contains(q) => {
            return Err(EngineError::InvalidQuantile(*q));
        }
        QueryKind::Quantiles(qs) => {
            if let Some(&q) = qs.iter().find(|q| !(0.0..=1.0).contains(*q)) {
                return Err(EngineError::InvalidQuantile(q));
            }
        }
        QueryKind::TopK(k) if *k > n => {
            return Err(EngineError::TopKTooLarge { k: *k, n });
        }
        _ => {}
    }
    // NaN and ±∞ tolerances are rejected up front: the rank budget ⌈t·n⌉
    // of a non-finite tolerance is meaningless, and an infinite one would
    // admit every sketch route regardless of the resident guarantee.
    if let Accuracy::WithinRank(t) = request.accuracy {
        if !t.is_finite() || t < 0.0 {
            return Err(crate::EngineError::InvalidTolerance(t));
        }
    }
    Ok(())
}

/// v1 validation: lowers the query and validates the request.
pub(crate) fn validate(query: &Query, n: u64) -> Result<(), crate::EngineError> {
    validate_request(&query.to_request::<u64>(), n)
}

// ---------------------------------------------------------------------------
// The batch plan
// ---------------------------------------------------------------------------

/// How one probe list entry contributes to a count: subtracted terms are
/// planned as their *complementary* probe so every count is a difference of
/// two monotone prefix counts.
#[derive(Clone, Debug)]
pub(crate) struct CountResolution {
    /// Probe index whose count is added; `None` means the full population.
    pub minuend: Option<usize>,
    /// Probe index whose count is subtracted; `None` means zero.
    pub subtrahend: Option<usize>,
    /// `Some(max_error)` when the accuracy contract lets the resident
    /// ε-sketch serve this count — the *guaranteed* absolute error (the
    /// per-probe guarantee summed over the probes), at most `⌈t·n⌉`.
    pub sketch_error: Option<u64>,
    /// The caller accepts a bucket-resolution histogram answer.
    pub histogram_ok: bool,
    /// The interval is empty: the count is exactly 0, no probes needed.
    pub empty: bool,
}

/// How the planner resolved one request.
#[derive(Clone, Debug)]
pub(crate) enum Resolution {
    /// Answer is the element at this exact rank.
    Exact(u64),
    /// Answer is the elements at ranks `0..len`, ascending (`TopK`).
    ExactRun {
        /// Number of leading ranks.
        len: u64,
    },
    /// Answer is the elements at these ranks, aligned (`Quantiles`).
    MultiExact(Vec<u64>),
    /// Answer from the host-global ε-sketch (rank direction).
    Sketch {
        /// The exact query's target rank.
        target_rank: u64,
        /// The guaranteed absolute rank-error bound (the sketch's current
        /// provable error, not the looser `⌈t·n⌉` contract).
        max_rank_error: u64,
    },
    /// Rank-direction query whose contract accepts a histogram-resolution
    /// answer; the engine tries the cached histogram first and falls back
    /// to the exact rank.
    HistRank {
        /// The exact query's target rank.
        target_rank: u64,
    },
    /// Value-direction count (see [`CountResolution`]).
    Count(CountResolution),
}

/// A planned v2 batch: per-request resolutions, the coalesced rank set,
/// the sketch targets and the coalesced value-probe list.
///
/// Probes are `(value, inclusive)` prefix counts: `inclusive = false`
/// counts `x < value`, `true` counts `x ≤ value` — the paper's
/// count-below-pivot primitive, batched.
#[derive(Clone, Debug)]
pub(crate) struct RequestPlan<T> {
    pub resolutions: Vec<Resolution>,
    /// Deduplicated ranks committed to exact resolution, as runs.
    pub exact_ranks: RankSet,
    /// Target ranks of the sketch-served rank-direction queries, in
    /// resolution order.
    pub sketch_targets: Vec<u64>,
    /// Distinct, sorted value probes feeding the single `count_below`
    /// Combine round (or the histogram / sketch fast paths).
    pub probes: Vec<(T, bool)>,
}

/// The deterministic error guarantees of the resident host-global
/// ε-sketch, as the planner consumes them: integer absolute bounds, not
/// fractions, so routing decisions are exact arithmetic with no float
/// rounding at the contract boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SketchErr {
    /// Provable bound on `|true_rank(answer) − target_rank|` for a rank
    /// query served from the sketch.
    pub rank: u64,
    /// Provable bound on the error of one prefix-count estimate.
    pub count: u64,
}

/// A `WithinRank(t)` contract's absolute rank budget over `n` elements.
fn rank_budget(t: f64, n: u64) -> u64 {
    (t * n as f64).ceil() as u64
}

/// Plans a v2 batch over `n` resident elements. `sketch` carries the
/// resident ε-sketch's current guarantees ([`crate::Engine`] derives them
/// from the host-global sketch); `None` disables the approximate path. A
/// `WithinRank(t)` request routes to the sketch rung iff the guarantee
/// fits the `⌈t·n⌉` budget — the answer then reports the guarantee itself
/// as its maximum error.
///
/// Fails (via `Err`) on out-of-domain requests so the caller can reject
/// the batch before any collective work happens.
pub(crate) fn plan_requests<T: Copy + Ord>(
    requests: &[Request<T>],
    n: u64,
    sketch: Option<SketchErr>,
) -> Result<RequestPlan<T>, crate::EngineError> {
    if n == 0 {
        return Err(crate::EngineError::Empty);
    }
    let mut resolutions = Vec::with_capacity(requests.len());
    let mut rank_runs: Vec<(u64, u64)> = Vec::new();
    let mut sketch_targets = Vec::new();
    let mut raw_probes: Vec<(T, bool)> = Vec::new();

    // Stage 1: resolve kinds; collect rank runs and raw probe references.
    for request in requests {
        validate_request(request, n)?;
        let res = match &request.kind {
            QueryKind::Rank(k) => rank_resolution(*k, request.accuracy, n, sketch),
            QueryKind::Median => rank_resolution((n - 1) / 2, request.accuracy, n, sketch),
            QueryKind::Min => rank_resolution(0, request.accuracy, n, sketch),
            QueryKind::Max => rank_resolution(n - 1, request.accuracy, n, sketch),
            QueryKind::Quantile(q) => {
                rank_resolution(quantile_rank(*q, n), request.accuracy, n, sketch)
            }
            // Multi-element kinds are always served exactly (serving
            // better than the contract is allowed).
            QueryKind::TopK(k) => Resolution::ExactRun { len: *k },
            QueryKind::Quantiles(qs) => {
                Resolution::MultiExact(crate::request::quantile_ranks(qs, n))
            }
            QueryKind::RankOf(v) => {
                let minuend = push_probe(&mut raw_probes, (*v, false));
                Resolution::Count(CountResolution {
                    minuend: Some(minuend),
                    subtrahend: None,
                    sketch_error: count_sketch_error(request.accuracy, 1, n, sketch),
                    histogram_ok: request.accuracy == Accuracy::HistogramOk,
                    empty: false,
                })
            }
            QueryKind::CountBetween(bounds) => {
                plan_count_between(*bounds, request.accuracy, n, sketch, &mut raw_probes)
            }
        };
        match &res {
            Resolution::Exact(r) => rank_runs.push((*r, 1)),
            Resolution::ExactRun { len } => rank_runs.push((0, *len)),
            Resolution::MultiExact(ranks) => rank_runs.extend(ranks.iter().map(|&r| (r, 1))),
            Resolution::Sketch { target_rank, .. } => sketch_targets.push(*target_rank),
            Resolution::HistRank { .. } | Resolution::Count(_) => {}
        }
        resolutions.push(res);
    }

    // Stage 2: canonicalize the probe list (sorted, distinct) and rewrite
    // every raw probe index onto it.
    let mut probes = raw_probes.clone();
    probes.sort_unstable();
    probes.dedup();
    let remap = |idx: &mut Option<usize>| {
        if let Some(i) = idx {
            *i = probes.binary_search(&raw_probes[*i]).expect("canonical probe present");
        }
    };
    for res in &mut resolutions {
        if let Resolution::Count(c) = res {
            remap(&mut c.minuend);
            remap(&mut c.subtrahend);
        }
    }

    Ok(RequestPlan {
        resolutions,
        exact_ranks: RankSet::from_runs(rank_runs),
        sketch_targets,
        probes,
    })
}

/// Resolution of a single-rank kind under its accuracy contract.
fn rank_resolution(
    target: u64,
    accuracy: Accuracy,
    n: u64,
    sketch: Option<SketchErr>,
) -> Resolution {
    match accuracy {
        Accuracy::Exact => Resolution::Exact(target),
        Accuracy::WithinRank(t) => match sketch {
            Some(s) if s.rank <= rank_budget(t, n) => {
                Resolution::Sketch { target_rank: target, max_rank_error: s.rank }
            }
            // Guarantee too loose for the contract (or sketches disabled):
            // exact fallback.
            _ => Resolution::Exact(target),
        },
        Accuracy::HistogramOk => Resolution::HistRank { target_rank: target },
    }
}

/// `Some(guaranteed_error)` when `probes` sketch estimates, each within
/// the per-probe count guarantee, together stay within the
/// `WithinRank(t)` contract's `⌈t·n⌉` budget.
fn count_sketch_error(
    accuracy: Accuracy,
    probes: u64,
    n: u64,
    sketch: Option<SketchErr>,
) -> Option<u64> {
    match (accuracy, sketch) {
        (Accuracy::WithinRank(t), Some(s)) => {
            let guaranteed = probes.checked_mul(s.count)?;
            (guaranteed <= rank_budget(t, n)).then_some(guaranteed)
        }
        _ => None,
    }
}

/// Lowers a `CountBetween` onto (up to) two prefix-count probes:
/// `count(interval) = count(≤/< hi) − count(</≤ lo)`.
fn plan_count_between<T: Copy + Ord>(
    bounds: Bounds<T>,
    accuracy: Accuracy,
    n: u64,
    sketch: Option<SketchErr>,
    raw_probes: &mut Vec<(T, bool)>,
) -> Resolution {
    if bounds.is_empty() {
        return Resolution::Count(CountResolution {
            minuend: None,
            subtrahend: None,
            sketch_error: None,
            histogram_ok: false,
            empty: true,
        });
    }
    // Upper endpoint: an inclusive `hi` admits x ≤ hi, an exclusive one
    // x < hi; unbounded means the whole population.
    let minuend = bounds.hi.map(|(v, inclusive)| push_probe(raw_probes, (v, inclusive)));
    // Lower endpoint: an inclusive `lo` *excludes* x < lo (strict probe),
    // an exclusive one excludes x ≤ lo (inclusive probe).
    let subtrahend = bounds.lo.map(|(v, inclusive)| push_probe(raw_probes, (v, !inclusive)));
    let probes = minuend.is_some() as u64 + subtrahend.is_some() as u64;
    Resolution::Count(CountResolution {
        minuend,
        subtrahend,
        sketch_error: count_sketch_error(accuracy, probes, n, sketch),
        histogram_ok: accuracy == Accuracy::HistogramOk,
        empty: false,
    })
}

fn push_probe<T>(raw: &mut Vec<(T, bool)>, probe: (T, bool)) -> usize {
    raw.push(probe);
    raw.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, Response};

    fn v1(queries: &[Query]) -> Vec<Request<u64>> {
        queries.iter().map(Query::to_request).collect()
    }

    #[test]
    fn quantile_rank_nearest() {
        assert_eq!(quantile_rank(0.0, 100), 0);
        assert_eq!(quantile_rank(1.0, 100), 99);
        assert_eq!(quantile_rank(0.5, 101), 50);
        assert_eq!(quantile_rank(0.5, 1), 0);
    }

    #[test]
    fn rank_set_merges_and_slots() {
        let s = RankSet::from_runs(vec![(10, 3), (0, 2), (12, 4), (5, 1), (1, 1)]);
        assert_eq!(s.runs().collect::<Vec<_>>(), vec![(0, 2), (5, 1), (10, 6)]);
        assert_eq!(s.len(), 9);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 5, 10, 11, 12, 13, 14, 15]);
        assert_eq!(s.slot_of(0), 0);
        assert_eq!(s.slot_of(5), 2);
        assert_eq!(s.slot_of(13), 6);
        let u = s.union_points(&[4, 13, 100]);
        assert_eq!(u.len(), 11);
        assert_eq!(u.slot_of(4), 2);
        assert_eq!(u.slot_of(100), 10);
        assert!(RankSet::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "rank 3 is not in the set")]
    fn slot_of_rejects_gap_ranks_in_release_builds_too() {
        // The membership check must be a hard panic, not a debug_assert:
        // a wrapped subtraction would otherwise return a garbage slot.
        let s = RankSet::from_runs(vec![(0, 2), (5, 1)]);
        let _ = s.slot_of(3);
    }

    #[test]
    #[should_panic(expected = "rank 99 is not in the set")]
    fn slot_of_rejects_ranks_beyond_every_run() {
        let s = RankSet::from_runs(vec![(0, 2)]);
        let _ = s.slot_of(99);
    }

    #[test]
    fn top_k_plans_as_one_run_not_k_ranks() {
        // The satellite fix: TopK(k) must not allocate/sort k individual
        // ranks in the plan — one contiguous run represents them all.
        let k = 100_000u64;
        let plan = plan_requests(&[Request::<u64>::top_k(k)], 1 << 20, None).unwrap();
        assert_eq!(plan.exact_ranks.len(), k as usize);
        assert_eq!(plan.exact_ranks.num_runs(), 1);
        assert_eq!(plan.exact_ranks.runs().next(), Some((0, k)));
    }

    #[test]
    fn planner_coalesces_and_dedups() {
        let queries = [
            Query::Rank(5),
            Query::Median, // n=11 -> rank 5, duplicate
            Query::TopK(3),
            Query::quantile(1.0), // rank 10
        ];
        let plan = plan_requests(&v1(&queries), 11, None).unwrap();
        assert_eq!(plan.exact_ranks.iter().collect::<Vec<_>>(), vec![0, 1, 2, 5, 10]);
        assert!(plan.sketch_targets.is_empty());
        assert!(plan.probes.is_empty());
    }

    #[test]
    fn tolerant_quantiles_route_to_sketch_only_when_supported() {
        let guarantee = Some(SketchErr { rank: 10, count: 10 });
        let queries = [Query::quantile_within(0.5, 0.05), Query::quantile_within(0.5, 0.001)];
        let plan = plan_requests(&v1(&queries), 1000, guarantee).unwrap();
        // Budget ⌈0.05·1000⌉ = 50 ≥ guarantee 10 -> sketch, reporting the
        // guarantee (not the looser budget) as the promised error;
        // ⌈0.001·1000⌉ = 1 < 10 -> exact fallback.
        assert_eq!(plan.sketch_targets, vec![500]);
        assert_eq!(plan.exact_ranks.iter().collect::<Vec<_>>(), vec![500]);
        match plan.resolutions[0] {
            Resolution::Sketch { target_rank: 500, max_rank_error: 10 } => {}
            ref other => panic!("unexpected resolution {other:?}"),
        }
    }

    #[test]
    fn exact_guarantee_routes_even_a_zero_tolerance_to_the_sketch() {
        // A sketch that never compacted is exact (guarantee 0): even the
        // tightest contract may ride the zero-collective rung.
        let plan = plan_requests(
            &v1(&[Query::quantile_within(0.5, 0.0)]),
            1000,
            Some(SketchErr { rank: 0, count: 0 }),
        )
        .unwrap();
        assert!(matches!(
            plan.resolutions[0],
            Resolution::Sketch { target_rank: 500, max_rank_error: 0 }
        ));
    }

    #[test]
    fn non_finite_tolerances_are_rejected_not_sketch_routed() {
        // A non-finite tolerance has no meaningful ⌈t·n⌉ budget; it must be
        // rejected whether or not a sketch guarantee is resident.
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            for guarantee in [None, Some(SketchErr { rank: 0, count: 0 })] {
                let queries = [Query::quantile_within(0.5, bad)];
                assert!(
                    matches!(
                        plan_requests(&v1(&queries), 100, guarantee),
                        Err(crate::EngineError::InvalidTolerance(_))
                    ),
                    "tolerance {bad} must be rejected"
                );
            }
        }
    }

    #[test]
    fn domain_errors_reject_the_batch() {
        assert!(matches!(
            plan_requests(&v1(&[Query::Rank(10)]), 10, None),
            Err(crate::EngineError::RankOutOfRange { rank: 10, n: 10 })
        ));
        assert!(matches!(
            plan_requests(&v1(&[Query::quantile(1.5)]), 10, None),
            Err(crate::EngineError::InvalidQuantile(_))
        ));
        assert!(matches!(
            plan_requests(&v1(&[Query::TopK(11)]), 10, None),
            Err(crate::EngineError::TopKTooLarge { k: 11, n: 10 })
        ));
        assert!(matches!(
            plan_requests(&v1(&[Query::Median]), 0, None),
            Err(crate::EngineError::Empty)
        ));
        assert!(matches!(
            plan_requests(&[Request::<u64>::quantiles([0.5, 2.0])], 10, None),
            Err(crate::EngineError::InvalidQuantile(_))
        ));
    }

    #[test]
    fn inverse_queries_coalesce_probes() {
        use crate::request::Bounds;
        let requests = [
            Request::rank_of(50u64),
            Request::count_between(Bounds::closed(10, 50)),
            Request::count_between(Bounds::below(50)),
            Request::count_between(Bounds::at_least(10)),
        ];
        let plan = plan_requests(&requests, 1000, None).unwrap();
        // RankOf(50) -> (50, lt); closed(10,50) -> (50, le) − (10, lt);
        // below(50) -> (50, lt); at_least(10) -> n − (10, lt):
        // three distinct probes after coalescing.
        assert_eq!(plan.probes, vec![(10, false), (50, false), (50, true)]);
        assert!(plan.exact_ranks.is_empty());
        match &plan.resolutions[1] {
            Resolution::Count(c) => {
                assert_eq!(plan.probes[c.minuend.unwrap()], (50, true));
                assert_eq!(plan.probes[c.subtrahend.unwrap()], (10, false));
            }
            other => panic!("unexpected resolution {other:?}"),
        }
        match &plan.resolutions[3] {
            Resolution::Count(c) => {
                assert_eq!(c.minuend, None, "unbounded above = full population");
                assert_eq!(plan.probes[c.subtrahend.unwrap()], (10, false));
            }
            other => panic!("unexpected resolution {other:?}"),
        }
    }

    #[test]
    fn empty_interval_counts_zero_without_probes() {
        use crate::request::Bounds;
        let plan =
            plan_requests(&[Request::count_between(Bounds::open(5u64, 5))], 100, None).unwrap();
        assert!(plan.probes.is_empty());
        assert!(matches!(&plan.resolutions[0], Resolution::Count(c) if c.empty));
    }

    #[test]
    fn count_sketch_eligibility_scales_with_probe_count() {
        use crate::request::Bounds;
        // Per-probe count guarantee 10: RankOf (1 probe, error 10) fits
        // the ⌈0.015·1000⌉ = 15 budget, CountBetween with two endpoints
        // (2 probes, error 20) does not; ⌈0.02·1000⌉ = 20 admits both.
        // The reported error is the summed guarantee, not the budget.
        let reqs = [
            Request::rank_of(7u64).within_rank(0.015),
            Request::count_between(Bounds::closed(1u64, 9)).within_rank(0.015),
            Request::count_between(Bounds::closed(1u64, 9)).within_rank(0.02),
        ];
        let plan = plan_requests(&reqs, 1000, Some(SketchErr { rank: 10, count: 10 })).unwrap();
        let sketch_err = |i: usize| match &plan.resolutions[i] {
            Resolution::Count(c) => c.sketch_error,
            other => panic!("unexpected resolution {other:?}"),
        };
        assert_eq!(sketch_err(0), Some(10));
        assert_eq!(sketch_err(1), None);
        assert_eq!(sketch_err(2), Some(20));
    }

    #[test]
    fn histogram_ok_routes_rank_and_count_kinds() {
        let reqs =
            [Request::<u64>::quantile(0.5).histogram_ok(), Request::rank_of(7u64).histogram_ok()];
        let plan = plan_requests(&reqs, 101, None).unwrap();
        assert!(matches!(plan.resolutions[0], Resolution::HistRank { target_rank: 50 }));
        assert!(matches!(&plan.resolutions[1], Resolution::Count(c) if c.histogram_ok));
        // HistRank targets are NOT pre-committed to the exact rank set —
        // the engine adds them back only if the histogram cannot serve.
        assert!(plan.exact_ranks.is_empty());
    }

    #[test]
    fn quantiles_kind_plans_aligned_ranks() {
        let plan =
            plan_requests(&[Request::<u64>::quantiles([0.0, 0.5, 0.5, 1.0])], 101, None).unwrap();
        match &plan.resolutions[0] {
            Resolution::MultiExact(ranks) => assert_eq!(ranks, &vec![0, 50, 50, 100]),
            other => panic!("unexpected resolution {other:?}"),
        }
        assert_eq!(plan.exact_ranks.iter().collect::<Vec<_>>(), vec![0, 50, 100]);
    }

    #[test]
    fn v1_conversion_is_the_documented_table() {
        assert_eq!(Query::Rank(7).to_request::<u64>(), Request::rank(7));
        assert_eq!(Query::Median.to_request::<u64>(), Request::median());
        assert_eq!(Query::TopK(3).to_request::<u64>(), Request::top_k(3));
        assert_eq!(Query::quantile(0.9).to_request::<u64>(), Request::quantile(0.9));
        assert_eq!(
            Query::quantile_within(0.9, 0.05).to_request::<u64>(),
            Request::quantile(0.9).within_rank(0.05)
        );
        // And the response side: a Count can never come back for them.
        let r: Response<u64> = Response::Element(4);
        assert_eq!(r.count(), None);
    }
}
