//! Standing queries: a live percentile dashboard over an ingest storm.
//!
//! Run with: `cargo run --release --example standing_dashboard`
//!
//! Three standing subscriptions — p50, p99, p999 — ride a skewed (Zipf)
//! ingest storm through the async frontend. Each demonstrates one
//! [`RefreshPolicy`]: the p50 refreshes on every executed batch, the p99
//! only once 2% of the multiset has churned, and the p999 on a wall-clock
//! deadline served from the batcher's idle ticks. Every update carries a
//! gap-free sequence number, a freshness stamp (mutation version + element
//! count), and per-query attributed collective cost — so the dashboard can
//! show *how stale* each tile is and *what it cost* to keep fresh.

use std::time::Duration;

use cgselect::{
    Distribution, Engine, EngineConfig, FrontendConfig, Query, RefreshPolicy, Response,
    StandingHandle, StandingUpdate,
};

fn value(update: &StandingUpdate<u64>) -> u64 {
    match update.outcome.response {
        Response::Element(v) => v,
        ref other => panic!("quantile answers are single elements, got {other:?}"),
    }
}

fn show(label: &str, update: &StandingUpdate<u64>) {
    let zero = update.outcome.cost.collective_ops == 0.0;
    println!(
        "  {label:>5}  seq={:<3} value={:<8} v{} n={:<8} {}",
        update.seq,
        value(update),
        update.outcome.freshness.version,
        update.outcome.freshness.elements,
        if zero { "zero-collective" } else { "collective" },
    );
}

fn drain_into(label: &str, handle: &StandingHandle<u64>, latest: &mut Option<StandingUpdate<u64>>) {
    for update in handle.drain() {
        show(label, &update);
        *latest = Some(update);
    }
}

fn main() {
    let p = 8;
    let mut engine: Engine<u64> = Engine::new(EngineConfig::new(p)).expect("engine");
    // Seed the engine so the inaugural updates have something to report.
    let seed: Vec<u64> =
        cgselect::generate(Distribution::Zipf, 50_000, p, 11).into_iter().flatten().collect();
    engine.ingest(seed).expect("seed ingest");

    let queue = engine
        .into_frontend(FrontendConfig::new().window(Duration::from_millis(1)).queue_capacity(4096));

    // One subscription per dashboard tile, one policy each. Registration is
    // FIFO with mutations: each handle's first update reflects exactly the
    // data ingested before the subscribe.
    let p50 = queue
        .submit_standing(Query::Median.to_request(), RefreshPolicy::EveryBatch)
        .expect("admit p50")
        .wait()
        .expect("subscribe p50");
    let p99 = queue
        .submit_standing(Query::quantile(0.99).to_request(), RefreshPolicy::OnDelta(0.02))
        .expect("admit p99")
        .wait()
        .expect("subscribe p99");
    let p999 = queue
        .submit_standing(Query::quantile(0.999).to_request(), RefreshPolicy::Deadline(5))
        .expect("admit p999")
        .wait()
        .expect("subscribe p999");

    println!("inaugural updates (seq 0, delivered at subscribe):");
    let (mut last50, mut last99, mut last999) = (None, None, None);
    drain_into("p50", &p50, &mut last50);
    drain_into("p99", &p99, &mut last99);
    drain_into("p999", &p999, &mut last999);

    // The storm: 40 skewed bursts. Every applied burst bumps the mutation
    // version; the batcher piggybacks due refreshes on each one.
    println!("\ningest storm (40 bursts x 5000 Zipf-skewed elements):");
    for burst in 0..40u64 {
        let chunk: Vec<u64> = cgselect::generate(Distribution::Zipf, 5_000, p, 100 + burst)
            .into_iter()
            .flatten()
            .collect();
        queue.submit_ingest(chunk).expect("admit burst").wait().expect("apply burst");
        drain_into("p50", &p50, &mut last50);
        drain_into("p99", &p99, &mut last99);
        drain_into("p999", &p999, &mut last999);
    }
    // Let the idle ticks serve any Deadline refresh still pending.
    std::thread::sleep(Duration::from_millis(20));
    drain_into("p999", &p999, &mut last999);

    let stats = queue.stats();
    println!("\nfinal dashboard:");
    for (label, last) in [("p50", &last50), ("p99", &last99), ("p999", &last999)] {
        let update = last.as_ref().expect("every tile saw at least the inaugural update");
        println!(
            "  {label:>5} = {:<8} (seq {}, {} elements at version {})",
            value(update),
            update.seq,
            update.outcome.freshness.elements,
            update.outcome.freshness.version,
        );
    }
    println!(
        "\n{} standing updates delivered, {} of them zero-collective ({:.0}%)",
        stats.standing_updates,
        stats.standing_zero_collective,
        100.0 * stats.standing_zero_collective as f64 / stats.standing_updates.max(1) as f64,
    );

    queue.cancel_standing(p50.id()).expect("admit").wait().expect("cancel");
    queue.cancel_standing(p99.id()).expect("admit").wait().expect("cancel");
    queue.cancel_standing(p999.id()).expect("admit").wait().expect("cancel");
    queue.shutdown();
}
