//! Configuration knobs for the parallel selection algorithms.

use cgselect_balance::Balancer;
use cgselect_seqsel::LocalKernel;
use cgselect_sort::SampleSortAlgo;

use crate::Algorithm;

/// Tuning parameters shared by all four algorithms.
///
/// The defaults reproduce the paper's setup: termination at `n ≤ p²`,
/// sample-size exponent ε = 0.6 (the paper's experimentally chosen value),
/// bracket width δ = √(|S|·ln n), no load balancing, and the
/// algorithm-appropriate sequential kernel.
#[derive(Clone, Debug)]
pub struct SelectionConfig {
    /// Master seed. The shared random stream (identical on every processor,
    /// as the paper requires for the randomized pivot choice) is derived
    /// from it, as are per-processor sampling streams.
    pub seed: u64,
    /// Load balancing strategy applied at the end of each iteration
    /// (ignored by the bucket-based algorithm, which never moves data).
    pub balancer: Balancer,
    /// Iterate while `n > threshold_coeff · p²` (the paper uses `n > p²`,
    /// i.e. coefficient 1); below that, survivors are gathered on P0 and
    /// solved sequentially.
    pub threshold_coeff: usize,
    /// Lower floor for the sequential-finish threshold, so that tiny
    /// machines (p = 1, 2) don't iterate all the way down to a handful of
    /// elements. The effective threshold is
    /// `max(threshold_coeff · p², min_sequential)`.
    pub min_sequential: usize,
    /// Fast randomized selection samples ~`n^epsilon` keys per iteration.
    pub epsilon: f64,
    /// Multiplier on the bracket offset δ = `delta_coeff · √(|S| ln n)`.
    pub delta_coeff: f64,
    /// Sequential kernel override. `None` picks the algorithm-appropriate
    /// kernel (deterministic for Algorithms 1–2, randomized for 3–4);
    /// `Some(LocalKernel::Randomized)` on a deterministic algorithm
    /// reproduces the paper's *hybrid* experiment.
    pub local_kernel: Option<LocalKernel>,
    /// Parallel sort used for the fast-randomized sample.
    pub sample_sort: SampleSortAlgo,
    /// Safety valve: abort (panic) if an algorithm exceeds this many
    /// iterations, which would indicate a livelock bug rather than slow
    /// convergence.
    pub max_iters: u32,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            seed: 0x5EED,
            balancer: Balancer::None,
            threshold_coeff: 1,
            min_sequential: 1024,
            epsilon: 0.6,
            delta_coeff: 1.0,
            local_kernel: None,
            sample_sort: SampleSortAlgo::Psrs,
            max_iters: 10_000,
        }
    }
}

impl SelectionConfig {
    /// Config with a specific seed, otherwise defaults.
    pub fn with_seed(seed: u64) -> Self {
        SelectionConfig { seed, ..Self::default() }
    }

    /// Builder-style balancer choice.
    pub fn balancer(mut self, balancer: Balancer) -> Self {
        self.balancer = balancer;
        self
    }

    /// Builder-style kernel override.
    pub fn kernel(mut self, kernel: LocalKernel) -> Self {
        self.local_kernel = Some(kernel);
        self
    }

    /// Builder-style sample-sort choice.
    pub fn sample_sort(mut self, algo: SampleSortAlgo) -> Self {
        self.sample_sort = algo;
        self
    }

    /// The sequential kernel an algorithm actually uses under this config.
    pub fn kernel_for(&self, algorithm: Algorithm) -> LocalKernel {
        self.local_kernel.unwrap_or(match algorithm {
            Algorithm::MedianOfMedians | Algorithm::BucketBased => LocalKernel::Deterministic,
            Algorithm::Randomized | Algorithm::FastRandomized => LocalKernel::Randomized,
        })
    }

    /// The sequential-finish threshold for a `p`-processor machine.
    pub fn threshold(&self, p: usize) -> u64 {
        ((self.threshold_coeff * p * p).max(self.min_sequential)) as u64
    }

    /// Validates parameter ranges; called once by the driver.
    pub fn validate(&self) {
        assert!(self.threshold_coeff >= 1, "threshold_coeff must be >= 1");
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon must lie in (0, 1), got {}",
            self.epsilon
        );
        assert!(self.delta_coeff > 0.0, "delta_coeff must be positive");
        assert!(self.max_iters >= 1, "max_iters must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = SelectionConfig::default();
        assert_eq!(cfg.epsilon, 0.6);
        assert_eq!(cfg.threshold_coeff, 1);
        assert_eq!(cfg.balancer, Balancer::None);
        cfg.validate();
    }

    #[test]
    fn kernel_defaults_are_algorithm_appropriate() {
        let cfg = SelectionConfig::default();
        assert_eq!(cfg.kernel_for(Algorithm::MedianOfMedians), LocalKernel::Deterministic);
        assert_eq!(cfg.kernel_for(Algorithm::BucketBased), LocalKernel::Deterministic);
        assert_eq!(cfg.kernel_for(Algorithm::Randomized), LocalKernel::Randomized);
        assert_eq!(cfg.kernel_for(Algorithm::FastRandomized), LocalKernel::Randomized);
        // Hybrid override.
        let hybrid = cfg.kernel(LocalKernel::Randomized);
        assert_eq!(hybrid.kernel_for(Algorithm::MedianOfMedians), LocalKernel::Randomized);
    }

    #[test]
    fn threshold_applies_floor_and_scales_with_p() {
        let cfg = SelectionConfig::default();
        assert_eq!(cfg.threshold(2), 1024); // floor dominates
        assert_eq!(cfg.threshold(64), (64 * 64)); // p^2 dominates above floor
        let cfg = SelectionConfig { threshold_coeff: 4, ..Default::default() };
        assert_eq!(cfg.threshold(64), 4 * 64 * 64);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        SelectionConfig { epsilon: 1.5, ..Default::default() }.validate();
    }
}
