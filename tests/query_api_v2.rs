//! Query API v2: typed requests, inverse queries, accuracy contracts and
//! provenance.
//!
//! The acceptance bar for the v2 surface:
//!
//! * `RankOf` / `CountBetween` match the sequential oracle across all 8
//!   workload distributions, on both execution backends, with identical
//!   answers *and identical collective-round counts*;
//! * when the resident index's splitters bound a probe, the answer is
//!   served with **zero data scans** (provenance = `Histogram`, zero
//!   collectives — the backend is never consulted);
//! * otherwise the whole probe batch costs **one collective Combine
//!   round**, no matter how many probes it carries;
//! * the old `Query` surface keeps working unchanged through the
//!   `Engine::execute` compatibility shim.

use cgselect::{
    generate, quantile_rank, Accuracy, Answer, BackendChoice, Bounds, ChannelMpTuning,
    Distribution, Engine, EngineConfig, MachineModel, Query, QueryKind, Request, Response, Served,
};

const ALL_DISTRIBUTIONS: [Distribution; 8] = [
    Distribution::Random,
    Distribution::Sorted,
    Distribution::ReverseSorted,
    Distribution::FewDistinct(17),
    Distribution::Gaussian,
    Distribution::Zipf,
    Distribution::OrganPipe,
    Distribution::AllEqual,
];

fn backends() -> [BackendChoice; 2] {
    [BackendChoice::LocalSpmd, BackendChoice::ChannelMp(ChannelMpTuning::default())]
}

fn cfg(p: usize, backend: BackendChoice) -> EngineConfig {
    EngineConfig::new(p).model(MachineModel::free()).backend(backend)
}

/// The sequential oracle for one prefix probe.
fn oracle_count(sorted: &[u64], v: u64, inclusive: bool) -> u64 {
    if inclusive {
        sorted.partition_point(|&x| x <= v) as u64
    } else {
        sorted.partition_point(|&x| x < v) as u64
    }
}

fn oracle_between(sorted: &[u64], b: &Bounds<u64>) -> u64 {
    let hi = match b.hi {
        Some((v, incl)) => oracle_count(sorted, v, incl),
        None => sorted.len() as u64,
    };
    let lo = match b.lo {
        Some((v, incl)) => oracle_count(sorted, v, !incl),
        None => 0,
    };
    hi.saturating_sub(lo)
}

// ---------------------------------------------------------------------------
// The inverse pair against the oracle: all 8 distributions × both backends.
// ---------------------------------------------------------------------------

#[test]
fn inverse_queries_match_oracle_across_distributions_and_backends() {
    for dist in ALL_DISTRIBUTIONS {
        let data: Vec<u64> = generate(dist, 4000, 4, 31).into_iter().flatten().collect();
        let mut sorted = data.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;

        // Probe values drawn from the data (hit equality classes) and
        // around it (miss), plus assorted intervals.
        let probe_values: Vec<u64> = vec![
            sorted[0],
            sorted[(n / 3) as usize],
            sorted[(n / 2) as usize],
            sorted[(n - 1) as usize],
            sorted[(n - 1) as usize].saturating_add(1),
            sorted[0].wrapping_add(7) % sorted[(n - 1) as usize].max(1),
        ];
        let intervals = [
            Bounds::closed(sorted[(n / 4) as usize], sorted[(3 * n / 4) as usize]),
            Bounds::open(sorted[0], sorted[(n - 1) as usize]),
            Bounds::at_most(sorted[(n / 2) as usize]),
            Bounds::at_least(sorted[(n / 2) as usize]),
            Bounds::below(sorted[0]),
            Bounds::open(5, 5), // empty
        ];

        let mut per_backend: Vec<(Vec<Response<u64>>, u64)> = Vec::new();
        for backend in backends() {
            let mut engine: Engine<u64> = Engine::new(cfg(4, backend)).unwrap();
            engine.ingest(data.clone()).unwrap();
            let requests: Vec<Request<u64>> = probe_values
                .iter()
                .map(|&v| Request::rank_of(v))
                .chain(intervals.iter().map(|&b| Request::count_between(b)))
                .collect();
            let report = engine.run(&requests).unwrap();
            for (i, &v) in probe_values.iter().enumerate() {
                assert_eq!(
                    report.outcomes[i].response.count(),
                    Some(oracle_count(&sorted, v, false)),
                    "{dist:?}: RankOf({v})"
                );
                assert_eq!(report.outcomes[i].response.max_error(), 0, "{dist:?}: exact contract");
            }
            for (j, b) in intervals.iter().enumerate() {
                assert_eq!(
                    report.outcomes[probe_values.len() + j].response.count(),
                    Some(oracle_between(&sorted, b)),
                    "{dist:?}: CountBetween({b:?})"
                );
            }
            let responses = report.outcomes.iter().map(|o| o.response.clone()).collect();
            per_backend.push((responses, report.collective_ops));
        }
        let (a, b) = (&per_backend[0], &per_backend[1]);
        assert_eq!(a.0, b.0, "{dist:?}: backends must agree on inverse answers");
        assert_eq!(a.1, b.1, "{dist:?}: backends must agree on inverse-round counts");
    }
}

/// The inverse pair is consistent with forward selection: for the element
/// `v` at rank `k`, `RankOf(v) ≤ k < RankOf(v) + multiplicity(v)` — on
/// both backends, over random multisets and random ranks.
mod inverse_consistency {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn rank_of_select_k_is_k_consistent(
            seed in 1u64..1_000_000_000,
            p in 2usize..5,
        ) {
            let data: Vec<u64> =
                (0..3000u64).map(|i| i.wrapping_mul(seed | 1) % 997).collect();
            let mut sorted = data.clone();
            sorted.sort_unstable();
            let n = sorted.len() as u64;
            for backend in backends() {
                let mut engine: Engine<u64> = Engine::new(cfg(p, backend)).unwrap();
                engine.ingest(data.clone()).unwrap();
                for k in [0, seed % n, n / 2, n - 1] {
                    let v = engine
                        .run(&[Request::rank(k)])
                        .unwrap()
                        .outcomes[0]
                        .response
                        .element()
                        .expect("rank answer");
                    prop_assert_eq!(v, sorted[k as usize]);
                    let report = engine
                        .run(&[
                            Request::rank_of(v),
                            Request::count_between(Bounds::closed(v, v)),
                        ])
                        .unwrap();
                    let rank_of = report.outcomes[0].response.count().expect("count answer");
                    let multiplicity =
                        report.outcomes[1].response.count().expect("count answer");
                    prop_assert!(
                        rank_of <= k && k < rank_of + multiplicity,
                        "RankOf(select({})) = {} with multiplicity {} is not {}-consistent",
                        k, rank_of, multiplicity, k
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Zero scans when the splitters bound the answer; one Combine round
// otherwise — on both backends, with identical answers and rounds.
// ---------------------------------------------------------------------------

#[test]
fn bounded_probes_are_histogram_served_with_zero_collectives() {
    for backend in backends() {
        let mut engine: Engine<u64> = Engine::new(cfg(4, backend)).unwrap();
        let data: Vec<u64> = (0..20_000u64).rev().collect();
        engine.ingest(data).unwrap();
        // Warm: resolving the median refines an equality-class bucket
        // around its value, so the splitters now bound probes at it.
        let median = engine.run(&[Request::median()]).unwrap().outcomes[0]
            .response
            .element()
            .expect("median");
        assert_eq!(median, 9999);
        let report = engine
            .run(&[
                Request::rank_of(median),
                Request::count_between(Bounds::closed(median, median)),
            ])
            .unwrap();
        assert_eq!(report.outcomes[0].response.count(), Some(9999));
        assert_eq!(report.outcomes[1].response.count(), Some(1));
        for o in &report.outcomes {
            assert_eq!(o.served, Served::Histogram, "splitters bound the probe: zero scans");
            assert_eq!(o.cost.collective_ops, 0.0);
        }
        assert_eq!(report.collective_ops, 0, "histogram-served batch starts no collectives");
        assert_eq!(report.value_probes, 0, "no probe reached the backend");
        assert_eq!(report.histogram_answers, 2);
    }
}

#[test]
fn probe_batch_costs_one_combine_round_regardless_of_size() {
    let data: Vec<u64> = (0..30_000u64).map(|i| i.wrapping_mul(2654435761) % 1_000_000).collect();
    let mut per_backend: Vec<(u64, u64, Vec<Option<u64>>)> = Vec::new();
    for backend in backends() {
        // Two identically-built engines: a resolved probe refines the
        // splitters (its equality pair is carved into the index), so
        // running the big batch after the single probe on one engine
        // would let the carve serve some probes from the histogram —
        // fresh engines keep all 16 on the backend path.
        let mut engine: Engine<u64> = Engine::new(cfg(4, backend.clone())).unwrap();
        engine.ingest(data.clone()).unwrap();
        engine.run(&[Request::median()]).unwrap(); // builds the index
        let mut engine_many: Engine<u64> = Engine::new(cfg(4, backend)).unwrap();
        engine_many.ingest(data.clone()).unwrap();
        engine_many.run(&[Request::median()]).unwrap();

        // Fresh probe values strictly inside buckets: the histogram
        // brackets but cannot bound them, so they go to the backend.
        let one = engine.run(&[Request::rank_of(123_457)]).unwrap();
        let many: Vec<Request<u64>> =
            (0..16u64).map(|i| Request::rank_of(123_461 + i * 53_077)).collect();
        let many_report = engine_many.run(&many).unwrap();
        assert!(one.value_probes >= 1);
        assert_eq!(many_report.value_probes, 16, "all 16 probes must reach the backend");
        assert_eq!(
            one.collective_ops,
            many_report.collective_ops,
            "{:?}: 16 probes must cost exactly the rounds of 1 (one vectorized Combine)",
            engine.backend_kind()
        );
        per_backend.push((
            one.collective_ops,
            many_report.collective_ops,
            many_report.outcomes.iter().map(|o| o.response.count()).collect(),
        ));
    }
    assert_eq!(per_backend[0], per_backend[1], "backends must agree on answers and rounds");
}

// ---------------------------------------------------------------------------
// Accuracy contracts.
// ---------------------------------------------------------------------------

#[test]
fn within_rank_contract_serves_inverse_queries_from_sketches() {
    let n = 80_000u64;
    let data: Vec<u64> = {
        // 0..n shuffled deterministically: value == rank.
        let mut v: Vec<u64> = (0..n).collect();
        let mut rng = cgselect::seqsel::KernelRng::new(9);
        for i in (1..v.len()).rev() {
            v.swap(i, rng.below(i as u64 + 1) as usize);
        }
        v
    };
    let mut engine: Engine<u64> =
        Engine::new(cfg(4, BackendChoice::LocalSpmd).sketch_capacity(2048)).unwrap();
    engine.ingest(data).unwrap();
    let tol = 0.05;
    let report = engine
        .run(&[
            Request::rank_of(40_000).within_rank(tol),
            Request::count_between(Bounds::closed(10_000u64, 29_999)).within_rank(tol),
        ])
        .unwrap();
    assert_eq!(report.sketch_answers, 2);
    // The sketch rung is served from the host-global ε-sketch: the batch
    // starts zero collectives and attributes zero backend cost.
    assert_eq!(report.collective_ops, 0, "sketch serving must start no collectives");
    assert_eq!(report.value_probes, 0, "no probe may reach the backend");
    let budget = (tol * n as f64).ceil() as u64;
    for (o, truth) in report.outcomes.iter().zip([40_000u64, 20_000]) {
        assert_eq!(o.served, Served::Sketch);
        assert_eq!(o.cost.collective_ops, 0.0, "no backend phase to attribute");
        let Response::Count { count, max_error } = o.response else {
            panic!("expected a count, got {:?}", o.response)
        };
        // The reported error is the sketch's deterministic *guarantee*,
        // which must honor (and here beats) the ⌈t·n⌉ contract.
        assert!(max_error <= budget, "guarantee {max_error} exceeds the contract {budget}");
        assert!(max_error > 0, "a compacted sketch is not exact");
        assert!(
            count.abs_diff(truth) <= max_error,
            "sketch count {count} vs truth {truth} exceeds the promised error {max_error}"
        );
    }
    // A tolerance tighter than the sketch's guarantee falls back to exact.
    let report = engine.run(&[Request::rank_of(40_000).within_rank(1e-9)]).unwrap();
    assert_eq!(report.sketch_answers, 0);
    assert_eq!(report.outcomes[0].response.count(), Some(40_000));
    assert_eq!(report.outcomes[0].response.max_error(), 0);
}

#[test]
fn mixed_batches_attribute_zero_cost_to_the_sketch_rung() {
    // One batch, two rungs: the exact member pays the backend collectives,
    // the sketch member rides the host-global ε-sketch for free.
    let mut engine: Engine<u64> =
        Engine::new(cfg(4, BackendChoice::LocalSpmd).sketch_capacity(1024).index_buckets(0))
            .unwrap();
    engine.ingest((0..50_000u64).rev().collect()).unwrap();
    let report = engine
        .run(&[
            Request::<u64>::quantile(0.5).within_rank(0.05),
            Request::<u64>::quantile(0.9), // exact: must reach the backend
        ])
        .unwrap();
    assert!(report.collective_ops > 0, "the exact member pays collectives");
    assert_eq!(report.outcomes[0].served, Served::Sketch);
    assert_eq!(
        report.outcomes[0].cost.collective_ops, 0.0,
        "the sketch rung is host-side even when the batch hits the backend"
    );
    // value == rank in this dataset, so the exact answer is its own rank.
    assert_eq!(report.outcomes[1].response.element(), Some(quantile_rank(0.9, 50_000)));
    let attributed: f64 = report.outcomes.iter().map(|o| o.cost.collective_ops).sum();
    assert!(
        (attributed - report.collective_ops as f64).abs() < 1e-6,
        "attribution must still reproduce the batch total"
    );
}

#[test]
fn histogram_ok_contract_brackets_within_the_bucket_resolution() {
    let mut engine: Engine<u64> = Engine::new(cfg(4, BackendChoice::LocalSpmd)).unwrap();
    let data: Vec<u64> = (0..40_000u64).map(|i| i.wrapping_mul(48271) % 500_000).collect();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    engine.ingest(data).unwrap();
    engine.run(&[Request::median()]).unwrap(); // builds the index

    // Inverse direction: the bracket midpoint must be within its own
    // promised error of the truth, at zero collective cost.
    let probe = 250_123u64;
    let report = engine.run(&[Request::rank_of(probe).histogram_ok()]).unwrap();
    let o = &report.outcomes[0];
    assert_eq!(o.served, Served::Histogram);
    assert_eq!(report.collective_ops, 0);
    let Response::Count { count, max_error } = o.response else {
        panic!("expected a count, got {:?}", o.response)
    };
    let truth = oracle_count(&sorted, probe, false);
    assert!(
        count.abs_diff(truth) <= max_error,
        "histogram count {count} vs truth {truth} exceeds the promised error {max_error}"
    );
    assert!(
        max_error < sorted.len() as u64 / 16,
        "bucket-resolution error {max_error} should be far below n"
    );

    // Rank direction: a HistogramOk quantile is answered from the bucket
    // alone with a rank-error bound.
    let report = engine.run(&[Request::<u64>::quantile(0.77).histogram_ok()]).unwrap();
    let o = &report.outcomes[0];
    assert_eq!(o.served, Served::Histogram);
    match o.response {
        Response::Element(v) => {
            // Exact: the target sat in an equality-class bucket.
            assert_eq!(v, sorted[quantile_rank(0.77, sorted.len() as u64) as usize]);
        }
        Response::Approximate { value, target_rank, max_rank_error } => {
            let lo = target_rank.saturating_sub(max_rank_error) as usize;
            let hi = (target_rank + max_rank_error).min(sorted.len() as u64 - 1) as usize;
            assert!(
                (sorted[lo]..=sorted[hi]).contains(&value),
                "histogram answer {value} outside the promised rank window"
            );
        }
        ref other => panic!("unexpected response {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// New rank-direction kinds, cost attribution, and the compat shim.
// ---------------------------------------------------------------------------

#[test]
fn min_max_and_multi_quantile_kinds() {
    let mut engine: Engine<u64> = Engine::new(cfg(3, BackendChoice::LocalSpmd)).unwrap();
    let data: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 77_777).collect();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    engine.ingest(data).unwrap();
    let report = engine
        .run(&[
            Request::min(),
            Request::max(),
            Request::quantiles([0.1, 0.5, 0.9]),
            Request::top_k(4),
        ])
        .unwrap();
    assert_eq!(report.outcomes[0].response.element(), Some(sorted[0]));
    assert_eq!(report.outcomes[1].response.element(), Some(sorted[(n - 1) as usize]));
    let expect: Vec<u64> =
        [0.1, 0.5, 0.9].iter().map(|&q| sorted[quantile_rank(q, n) as usize]).collect();
    assert_eq!(report.outcomes[2].response.elements(), Some(expect.as_slice()));
    assert_eq!(report.outcomes[3].response.elements(), Some(&sorted[..4]));
    // Cost attribution: the per-query shares reproduce the batch total.
    let attributed: f64 = report.outcomes.iter().map(|o| o.cost.collective_ops).sum();
    assert!(
        (attributed - report.collective_ops as f64).abs() < 1e-6,
        "attributed {attributed} vs batch total {}",
        report.collective_ops
    );
}

#[test]
fn provenance_distinguishes_scan_index_and_histogram() {
    let data: Vec<u64> = (0..10_000u64).rev().collect();
    // Index disabled: exact ranks are scans.
    let mut baseline: Engine<u64> =
        Engine::new(cfg(2, BackendChoice::LocalSpmd).index_buckets(0)).unwrap();
    baseline.ingest(data.clone()).unwrap();
    let report = baseline.run(&[Request::median(), Request::rank_of(17)]).unwrap();
    assert_eq!(report.outcomes[0].served, Served::Scan);
    assert_eq!(report.outcomes[1].served, Served::Scan);

    // Index enabled: first resolution localizes (Index), repeats are
    // histogram-served.
    let mut indexed: Engine<u64> = Engine::new(cfg(2, BackendChoice::LocalSpmd)).unwrap();
    indexed.ingest(data).unwrap();
    let cold = indexed.run(&[Request::median()]).unwrap();
    assert_eq!(cold.outcomes[0].served, Served::Index);
    assert!(cold.outcomes[0].cost.collective_ops > 0.0);
    let hot = indexed.run(&[Request::median()]).unwrap();
    assert_eq!(hot.outcomes[0].served, Served::Histogram);
    assert_eq!(hot.outcomes[0].cost.collective_ops, 0.0);
}

#[test]
fn v1_queries_compile_and_run_unchanged_through_the_shim() {
    // This is the compat contract: the old enum, the old execute, the old
    // answers — byte-for-byte the same results as the v2 path they now
    // ride on.
    let mut engine: Engine<u64> = Engine::new(cfg(3, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest((0..1000u64).rev().collect()).unwrap();
    let queries = vec![Query::Rank(10), Query::Median, Query::quantile(0.25), Query::TopK(3)];
    let report = engine.execute(&queries).unwrap();
    assert_eq!(report.answers[0], Answer::Value(10));
    assert_eq!(report.answers[1], Answer::Value(499));
    assert_eq!(report.answers[2], Answer::Value(250));
    assert_eq!(report.answers[3], Answer::Top(vec![0, 1, 2]));

    let requests: Vec<Request<u64>> = queries.iter().map(Query::to_request).collect();
    assert!(matches!(requests[1].kind, QueryKind::Median));
    assert!(matches!(requests[1].accuracy, Accuracy::Exact));
    let run = engine.run(&requests).unwrap();
    for (answer, outcome) in report.answers.iter().zip(&run.outcomes) {
        match (answer, &outcome.response) {
            (Answer::Value(a), Response::Element(b)) => assert_eq!(a, b),
            (Answer::Top(a), Response::Elements(b)) => assert_eq!(a, b),
            other => panic!("shim mismatch: {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// The async frontend's v2 surface.
// ---------------------------------------------------------------------------

#[test]
fn submit_many_returns_aligned_outcome_tickets() {
    let mut engine: Engine<u64> = Engine::new(cfg(3, BackendChoice::LocalSpmd)).unwrap();
    let data: Vec<u64> = (0..6000u64).map(|i| i.wrapping_mul(2654435761) % 50_000).collect();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    engine.ingest(data).unwrap();
    let queue = engine
        .into_frontend(cgselect::FrontendConfig::new().window(std::time::Duration::from_millis(2)));

    let requests: Vec<Request<u64>> = vec![
        Request::median(),
        Request::rank_of(25_000),
        Request::count_between(Bounds::at_most(10_000)),
        Request::rank(9_999_999), // invalid: fails alone
        Request::top_k(2),
    ];
    let tickets = queue.submit_many(requests).unwrap();
    assert_eq!(tickets.len(), 5);
    let mut results: Vec<_> = Vec::new();
    for t in tickets {
        results.push(t.wait());
    }
    let n = sorted.len() as u64;
    assert_eq!(
        results[0].as_ref().unwrap().response.element(),
        Some(sorted[((n - 1) / 2) as usize])
    );
    assert_eq!(
        results[1].as_ref().unwrap().response.count(),
        Some(oracle_count(&sorted, 25_000, false))
    );
    assert_eq!(
        results[2].as_ref().unwrap().response.count(),
        Some(oracle_count(&sorted, 10_000, true))
    );
    assert!(
        matches!(
            results[3],
            Err(cgselect::AsyncError::Engine(cgselect::EngineError::RankOutOfRange { .. }))
        ),
        "the invalid request must fail its own ticket, got {:?}",
        results[3]
    );
    assert_eq!(results[4].as_ref().unwrap().response.elements(), Some(&sorted[..2]));

    let engine = queue.shutdown().expect("first shutdown claims the engine");
    assert_eq!(engine.len(), n);
}

#[test]
fn submit_request_resolves_one_typed_outcome() {
    let mut engine: Engine<u64> = Engine::new(cfg(2, BackendChoice::LocalSpmd)).unwrap();
    engine.ingest((0..100u64).collect()).unwrap();
    let queue = engine.into_frontend(cgselect::FrontendConfig::new());
    let outcome = queue.submit_request(Request::rank_of(40)).unwrap().wait().unwrap();
    assert_eq!(outcome.response.count(), Some(40));
    assert!(outcome.served <= Served::Scan);
    drop(queue);
}
