//! # cgselect-sort — parallel sorting substrate
//!
//! The paper's fast randomized selection (Algorithm 4, after Rajasekaran et
//! al.) parallel-sorts a small random sample every iteration (Step 2:
//! `S = ParallelSort(Sᵢ, p)`) and then reads the sample elements at two
//! global ranks to bracket the target. This crate provides that substrate:
//!
//! * [`sample_sort`] — parallel sorting by regular sampling (PSRS): works
//!   for any `p`, any (including empty) local sizes;
//! * [`bitonic_sort`] — the classic hypercube compare-split bitonic sort
//!   for power-of-two `p` (the machine sizes the paper ran on);
//! * [`select_global_ranks`] — given distributed, globally sorted data,
//!   fetch the elements at a set of global ranks onto every processor;
//! * [`sorted_ranks_of`] — the one-call combination used by Algorithm 4,
//!   with a [`SampleSortAlgo`] knob (including a gather-and-sort fallback
//!   that is cheapest for the tiny samples the algorithm draws — the
//!   trade-off is ablated in the benchmark suite).
//!
//! Local comparison/move counts are charged to the virtual clock just as in
//! the selection kernels.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitonic;
mod merge;
mod ranks;
mod samplesort;

pub use bitonic::bitonic_sort;
pub use merge::kway_merge;
pub use ranks::select_global_ranks;
pub use samplesort::sample_sort;

use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::OpCount;

/// Which parallel sort backs Algorithm 4's sample-sorting step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SampleSortAlgo {
    /// Parallel sorting by regular sampling — any `p`, robust default.
    #[default]
    Psrs,
    /// Hypercube bitonic sort — requires power-of-two `p`.
    Bitonic,
    /// Gather everything to processor 0 and sort sequentially — lowest
    /// latency for the very small samples Algorithm 4 draws.
    GatherSort,
}

impl SampleSortAlgo {
    /// Name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            SampleSortAlgo::Psrs => "psrs",
            SampleSortAlgo::Bitonic => "bitonic",
            SampleSortAlgo::GatherSort => "gather",
        }
    }
}

/// Sorts `data` in place with the standard library's unstable sort,
/// charging the measured comparisons (plus one move per element, the
/// observable lower bound) to `ops`.
pub(crate) fn local_sort_counted<T: Copy + Ord>(data: &mut [T], ops: &mut OpCount) {
    let mut cmps = 0u64;
    data.sort_unstable_by(|a, b| {
        cmps += 1;
        a.cmp(b)
    });
    ops.cmps += cmps;
    ops.moves += data.len() as u64;
}

/// Sorts the distributed `sample` with the chosen algorithm and returns, on
/// **every** processor, the sample elements at the requested global `ranks`
/// (0-based, into the sorted order of the whole distributed sample).
///
/// This is exactly Steps 2–4 of the paper's Algorithm 4: parallel-sort the
/// sample, pick `k₁` and `k₂` at two ranks, broadcast them.
///
/// # Panics
/// Panics if any rank is out of range of the total sample size, or if
/// `Bitonic` is requested on a non-power-of-two machine.
pub fn sorted_ranks_of<T: Key>(
    proc: &mut Proc,
    algo: SampleSortAlgo,
    sample: Vec<T>,
    ranks: &[u64],
) -> Vec<T> {
    match algo {
        SampleSortAlgo::Psrs => {
            let sorted = sample_sort(proc, sample);
            select_global_ranks(proc, &sorted, ranks)
        }
        SampleSortAlgo::Bitonic => {
            let sorted = bitonic_sort(proc, sample);
            select_global_ranks(proc, &sorted, ranks)
        }
        SampleSortAlgo::GatherSort => {
            let gathered = proc.gather_flat(0, sample);
            let picked: Option<Vec<T>> = gathered.map(|mut all| {
                let mut ops = OpCount::new();
                local_sort_counted(&mut all, &mut ops);
                proc.charge_ops(ops.total());
                ranks
                    .iter()
                    .map(|&r| {
                        assert!(
                            (r as usize) < all.len(),
                            "rank {r} out of range for sample of {}",
                            all.len()
                        );
                        all[r as usize]
                    })
                    .collect()
            });
            proc.broadcast(0, picked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel};
    use cgselect_seqsel::KernelRng;

    #[test]
    fn sorted_ranks_of_agrees_across_algorithms() {
        let p = 4;
        let mut rng = KernelRng::new(5);
        let parts: Vec<Vec<u64>> =
            (0..p).map(|_| (0..37).map(|_| rng.next_u64() % 1000).collect()).collect();
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let ranks = [0u64, 5, 73, (all.len() - 1) as u64];
        let want: Vec<u64> = ranks.iter().map(|&r| all[r as usize]).collect();

        for algo in [SampleSortAlgo::Psrs, SampleSortAlgo::Bitonic, SampleSortAlgo::GatherSort] {
            let out = Machine::with_model(p, MachineModel::free())
                .run(|proc| {
                    let mine = parts[proc.rank()].clone();
                    sorted_ranks_of(proc, algo, mine, &ranks)
                })
                .unwrap();
            for got in out {
                assert_eq!(got, want, "algo {algo:?}");
            }
        }
    }

    #[test]
    fn gather_sort_rejects_out_of_range_rank() {
        // Only P0 panics (it owns the gathered sample); give P1 a short
        // timeout so the test fails fast instead of waiting the default 30s.
        let err = Machine::new(2)
            .recv_timeout(std::time::Duration::from_millis(200))
            .run(|proc| {
                let mine = vec![proc.rank() as u64];
                sorted_ranks_of(proc, SampleSortAlgo::GatherSort, mine, &[2])
            })
            .unwrap_err();
        assert!(format!("{err}").contains("out of range"), "{err}");
    }
}
