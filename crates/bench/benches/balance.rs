//! Wall-clock comparison of the four load balancers on pathologically
//! imbalanced layouts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cgselect_balance::{rebalance, Balancer};
use cgselect_runtime::{Machine, MachineModel};
use cgselect_workloads::{generate_with_layout, Distribution, Layout};

fn bench_balancers(c: &mut Criterion) {
    let mut g = c.benchmark_group("balance");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));

    let p = 8;
    let n = 1 << 16;
    for layout in [Layout::Hoarded, Layout::Staircase] {
        let parts = generate_with_layout(Distribution::Random, layout, n, p, 5);
        for bal in Balancer::ALL_ACTIVE {
            g.bench_with_input(
                BenchmarkId::new(bal.name().replace(' ', "_"), format!("{layout:?}")),
                &parts,
                |b, parts| {
                    let machine = Machine::with_model(p, MachineModel::free());
                    b.iter(|| {
                        machine
                            .run(|proc| {
                                let mut mine = parts[proc.rank()].clone();
                                rebalance(bal, proc, &mut mine);
                                mine.len()
                            })
                            .unwrap()
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_balancers);
criterion_main!(benches);
