//! # cgselect-seqsel — sequential selection kernels with measured costs
//!
//! The parallel selection algorithms of the paper repeatedly run *sequential*
//! selection on each processor's local data: BFPRT median-of-medians for the
//! deterministic algorithms (Blum–Floyd–Pratt–Rivest–Tarjan), randomized
//! quickselect / Floyd–Rivest for the randomized ones, plus partitioning,
//! weighted medians and the bucket structure of the bucket-based algorithm.
//!
//! Every kernel takes an [`OpCount`] accumulator and reports the number of
//! **comparisons and element moves it actually performed**. The parallel
//! layer charges these measured counts to the machine's virtual clock, so
//! the constant-factor gap the paper observes between deterministic and
//! randomized selection (an order of magnitude on the CM-5) emerges from
//! real kernel behaviour instead of being assumed.
//!
//! This crate is dependency-free (apart from dev-dependencies) and usable on
//! its own as a plain sequential selection library.
//!
//! ## Rank convention
//!
//! Ranks are **0-based**: `select(data, k)` returns the element that would
//! be at index `k` if `data` were sorted. The paper's median (the element of
//! 1-based rank ⌈N/2⌉) is rank [`median_rank`]`(n) = (n−1)/2`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod buckets;
mod floyd_rivest;
mod heap_select;
mod introselect;
mod kernels;
mod median_of_medians;
mod ops;
mod partition;
mod quickselect;
mod rng;
mod sort_select;
mod splitters;
mod weighted_median;

pub use buckets::Buckets;
pub use floyd_rivest::{floyd_rivest_multi_select, floyd_rivest_select};
pub use heap_select::heap_select;
pub use introselect::introselect;
pub use kernels::{
    count_below_kernel, count_below_reference, partition3_kernel, partition_bound_kernel,
    partition_bound_reference, scalar_reference_mode, set_scalar_reference_mode,
};
pub use median_of_medians::median_of_medians_select;
pub use ops::OpCount;
pub use partition::{insertion_sort, partition3, partition_le};
pub use quickselect::quickselect;
pub use rng::KernelRng;
pub use sort_select::sort_select;
pub use splitters::{bucket_of, bucket_search_cmps, partition_by_bounds, SepBound};
pub use weighted_median::weighted_median;

/// 0-based rank of the paper's median (1-based rank ⌈N/2⌉) among `n` items.
///
/// # Panics
/// Panics if `n == 0`.
#[inline]
pub fn median_rank(n: usize) -> usize {
    assert!(n > 0, "median of an empty set is undefined");
    (n - 1) / 2
}

/// Converts the paper's 1-based rank to this crate's 0-based rank.
///
/// # Panics
/// Panics if `rank1 == 0`.
#[inline]
pub fn rank_from_one_based(rank1: usize) -> usize {
    assert!(rank1 >= 1, "1-based ranks start at 1");
    rank1 - 1
}

/// Which sequential kernel a parallel algorithm uses for its local
/// selections. The paper's *hybrid* experiment (§5) swaps the deterministic
/// kernels of the deterministic parallel algorithms for randomized ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalKernel {
    /// Classic BFPRT median-of-medians: deterministic `O(n)` with a large
    /// constant — the sequential algorithm of Blum et al. that the paper's
    /// deterministic parallel algorithms are built on.
    Deterministic,
    /// Randomized quickselect: expected `O(n)` with a small constant.
    Randomized,
    /// Introselect (`slice::select_nth_unstable`): deterministic and
    /// worst-case linear with quickselect-like constants. Used to *build*
    /// the bucket structure, which only needs exact splits, not the classic
    /// algorithm's identity.
    IntroSelect,
}

/// Runs the chosen sequential kernel on `data`, returning the element of
/// 0-based rank `k`.
pub fn select_with<T: Copy + Ord>(
    kernel: LocalKernel,
    data: &mut [T],
    k: usize,
    rng: &mut KernelRng,
    ops: &mut OpCount,
) -> T {
    match kernel {
        LocalKernel::Deterministic => median_of_medians_select(data, k, ops),
        LocalKernel::Randomized => quickselect(data, k, rng, ops),
        LocalKernel::IntroSelect => introselect(data, k, ops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_rank_matches_paper() {
        // Paper: median has 1-based rank ceil(N/2).
        for n in 1..50usize {
            let one_based = n.div_ceil(2);
            assert_eq!(median_rank(n), one_based - 1, "n={n}");
        }
    }

    #[test]
    fn one_based_conversion() {
        assert_eq!(rank_from_one_based(1), 0);
        assert_eq!(rank_from_one_based(10), 9);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn median_rank_rejects_empty() {
        let _ = median_rank(0);
    }

    #[test]
    fn select_with_dispatches_all_kernels() {
        let mut rng = KernelRng::new(7);
        let mut ops = OpCount::default();
        for kernel in
            [LocalKernel::Deterministic, LocalKernel::Randomized, LocalKernel::IntroSelect]
        {
            let mut v = vec![5u64, 1, 4, 2, 3];
            assert_eq!(select_with(kernel, &mut v, 2, &mut rng, &mut ops), 3);
        }
        assert!(ops.cmps > 0);
    }
}
