//! Integration tests for the library's extensions beyond the paper:
//! multi-rank selection, top-k extraction, weighted quantiles, tracing.

use cgselect::{
    multi_select_on_machine, parallel_top_k, parallel_weighted_select, Algorithm, Distribution,
    Machine, MachineModel, SelectionConfig,
};
use proptest::prelude::*;

fn cfg() -> SelectionConfig {
    SelectionConfig { min_sequential: 32, ..SelectionConfig::with_seed(61) }
}

#[test]
fn multi_select_equals_repeated_single_select() {
    let p = 4;
    let parts = cgselect::generate(Distribution::Random, 4000, p, 3);
    let ranks = [0u64, 999, 2000, 3999];
    let multi = multi_select_on_machine(p, MachineModel::free(), &parts, &ranks, &cfg()).unwrap();
    for (i, &k) in ranks.iter().enumerate() {
        let single = cgselect::select_on_machine(
            p,
            MachineModel::free(),
            &parts,
            k,
            Algorithm::FastRandomized,
            &cfg(),
        )
        .unwrap();
        assert_eq!(multi[i], single.value, "rank {k}");
    }
}

#[test]
fn top_k_then_select_again_is_consistent() {
    // The maximum of the top-k set must equal the k-th smallest element.
    let p = 4;
    let parts = cgselect::generate(Distribution::Random, 8000, p, 5);
    let k = 1234u64;
    let kth = cgselect::select_on_machine(
        p,
        MachineModel::free(),
        &parts,
        k - 1,
        Algorithm::Randomized,
        &cfg(),
    )
    .unwrap()
    .value;

    let shares = cgselect::top_k_on_machine(
        p,
        MachineModel::free(),
        &parts,
        k,
        Algorithm::Randomized,
        &cfg(),
    )
    .unwrap();
    let total: usize = shares.iter().map(Vec::len).sum();
    assert_eq!(total as u64, k);
    let max = shares.iter().flatten().max().unwrap();
    assert_eq!(*max, kth);
}

#[test]
fn weighted_select_with_unit_weights_is_plain_selection() {
    let p = 3;
    let parts = cgselect::generate(Distribution::Random, 3000, p, 7);
    let weighted: Vec<Vec<(u64, u64)>> =
        parts.iter().map(|v| v.iter().map(|&x| (x, 1)).collect()).collect();
    let k = 1500u64;
    let plain = cgselect::select_on_machine(
        p,
        MachineModel::free(),
        &parts,
        k - 1,
        Algorithm::Randomized,
        &cfg(),
    )
    .unwrap()
    .value;
    let out = Machine::with_model(p, MachineModel::free())
        .run(|proc| parallel_weighted_select(proc, weighted[proc.rank()].clone(), k, &cfg()))
        .unwrap();
    assert_eq!(out[0], plain);
}

#[test]
fn traced_selection_accounts_for_all_messages() {
    let p = 4;
    let parts = cgselect::generate(Distribution::Random, 4000, p, 9);
    let results = Machine::with_model(p, MachineModel::cm5())
        .run(|proc| {
            proc.trace_enable();
            let out = cgselect::parallel_select(
                proc,
                parts[proc.rank()].clone(),
                2000,
                Algorithm::Randomized,
                &cfg(),
            );
            (out.comm, proc.take_trace())
        })
        .unwrap();
    for (comm, trace) in &results {
        // Trace covers the whole run including the entry barrier, so it can
        // only see at least as many sends as the selection's own counters.
        assert!(trace.count_sends() as u64 >= comm.msgs_sent);
        assert!(trace.bytes_sent() >= comm.bytes_sent);
    }
    // Global conservation: sends == recvs across the machine.
    let sends: usize = results.iter().map(|(_, t)| t.count_sends()).sum();
    let recvs: usize = results.iter().map(|(_, t)| t.count_recvs()).sum();
    assert_eq!(sends, recvs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn multi_select_matches_oracle(
        parts in prop::collection::vec(prop::collection::vec(0u64..128, 0..60), 1..5)
            .prop_filter("non-empty", |ps| ps.iter().any(|v| !v.is_empty())),
        fracs in prop::collection::vec(0.0f64..1.0, 1..6),
        seed in any::<u64>(),
    ) {
        let total: usize = parts.iter().map(Vec::len).sum();
        let ranks: Vec<u64> =
            fracs.iter().map(|f| ((total as f64 * f) as u64).min(total as u64 - 1)).collect();
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let want: Vec<u64> = ranks.iter().map(|&r| all[r as usize]).collect();
        let cfg = SelectionConfig { min_sequential: 16, ..SelectionConfig::with_seed(seed) };
        let got =
            multi_select_on_machine(parts.len(), MachineModel::free(), &parts, &ranks, &cfg)
                .unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn top_k_matches_oracle(
        parts in prop::collection::vec(prop::collection::vec(0u64..64, 0..60), 1..5)
            .prop_filter("non-empty", |ps| ps.iter().any(|v| !v.is_empty())),
        k_frac in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let total: usize = parts.iter().map(Vec::len).sum();
        let k = ((total as f64) * k_frac) as u64;
        let cfg = SelectionConfig { min_sequential: 16, ..SelectionConfig::with_seed(seed) };
        let p = parts.len();
        let shares = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                parallel_top_k(proc, parts[proc.rank()].clone(), k, Algorithm::Randomized, &cfg).0
            })
            .unwrap();
        let mut got: Vec<u64> = shares.into_iter().flatten().collect();
        got.sort_unstable();
        let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        all.truncate(k as usize);
        prop_assert_eq!(got, all);
    }

    #[test]
    fn weighted_select_matches_oracle(
        parts in prop::collection::vec(
            prop::collection::vec((0u64..100, 0u64..10), 0..50), 1..5)
            .prop_filter("positive weight", |ps| {
                ps.iter().flatten().map(|(_, w)| *w).sum::<u64>() > 0
            }),
        t_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let total_w: u64 = parts.iter().flatten().map(|(_, w)| *w).sum();
        let target = 1 + ((total_w - 1) as f64 * t_frac) as u64;
        let mut all: Vec<(u64, u64)> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut acc = 0u64;
        let mut want = None;
        for (k, w) in &all {
            acc += w;
            if acc >= target {
                want = Some(*k);
                break;
            }
        }
        let cfg = SelectionConfig { min_sequential: 16, ..SelectionConfig::with_seed(seed) };
        let p = parts.len();
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| parallel_weighted_select(proc, parts[proc.rank()].clone(), target, &cfg))
            .unwrap();
        prop_assert_eq!(out[0], want.unwrap());
    }
}
