//! Transport abstraction for out-of-process fabrics.
//!
//! [`crate::Machine::procs`] wires the `p` processors over in-process
//! channels. A socket-backed execution backend instead runs each rank in its
//! own OS process and implements [`FabricLink`]: the runtime keeps its
//! virtual-clock accounting, `(src, tag)` matching, stashing and timeout
//! diagnostics, while the link moves opaque [`WireEnvelope`] frames between
//! the peers. Construct the per-rank handle with
//! [`crate::Machine::fabric_proc`].
//!
//! Contract for implementors:
//!
//! * **Per-peer FIFO.** Envelopes from one source must be surfaced in the
//!   order delivered; after a peer's stream ends, a single
//!   [`FabricPoll::PeerDown`] marker must follow its last envelope. The
//!   runtime relies on this to convert a dead peer into the same
//!   "all senders disconnected" diagnostic the in-process transport raises.
//! * **No reordering across `poll`.** `poll` surfaces envelopes from all
//!   peers in arrival order; the runtime stashes mismatches itself.

use std::time::Duration;

use crate::wiremsg::{WireMsg, WireMsgError, WireReader};

/// One message crossing a fabric: the envelope header the virtual-time model
/// needs (`sent_at` + modeled `bytes`) plus the encoded payload.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEnvelope {
    /// Sending rank.
    pub src: usize,
    /// Message tag (user or collective space).
    pub tag: u64,
    /// Sender's virtual time when the send started.
    pub sent_at: f64,
    /// Modeled payload size in bytes (computed from `size_of`, not from the
    /// encoded length — keeps virtual time transport-invariant).
    pub bytes: u64,
    /// The [`crate::WireMsg`]-encoded payload.
    pub payload: Vec<u8>,
}

impl WireEnvelope {
    /// Serializes the whole envelope (header + payload) into one frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.payload.len());
        (self.src, self.tag, self.sent_at, self.bytes).wire_encode(&mut out);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes an envelope previously produced by
    /// [`to_frame`](WireEnvelope::to_frame).
    pub fn from_frame(frame: &[u8]) -> Result<Self, WireMsgError> {
        let mut r = WireReader::new(frame);
        let (src, tag, sent_at, bytes) = <(usize, u64, f64, u64)>::wire_decode(&mut r)?;
        Ok(WireEnvelope { src, tag, sent_at, bytes, payload: r.take(r.remaining())?.to_vec() })
    }
}

/// One event surfaced by [`FabricLink::poll`].
#[derive(Debug)]
pub enum FabricPoll {
    /// A message arrived.
    Message(WireEnvelope),
    /// The given peer's stream ended; no further envelopes from it will
    /// arrive. Surfaced exactly once per dead peer, after its last envelope.
    PeerDown(usize),
}

/// Why a [`FabricLink::poll`] returned without an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricRecvError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The link is closed: every peer stream has ended and the queue is
    /// drained.
    Closed,
}

/// A transport carrying [`WireEnvelope`]s between the ranks of one machine.
///
/// Implemented by execution backends that run ranks out of process (e.g.
/// shard workers connected over Unix sockets). See the module docs for the
/// ordering contract.
pub trait FabricLink: Send {
    /// Sends an envelope to rank `dst`. An error means the peer is
    /// unreachable (the runtime reports it like a hung-up receiver).
    fn deliver(&mut self, dst: usize, env: WireEnvelope) -> Result<(), String>;

    /// Waits up to `timeout` for the next event from any peer.
    fn poll(&mut self, timeout: Duration) -> Result<FabricPoll, FabricRecvError>;

    /// Number of already-received envelopes not yet surfaced via
    /// [`poll`](FabricLink::poll) (used by the end-of-program
    /// no-pending-messages check).
    fn pending(&self) -> usize;

    /// Drains any queued envelopes into `(src, tag)` pairs for the
    /// end-of-program diagnostic.
    fn drain_pending(&mut self) -> Vec<(usize, u64)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_frames_round_trip() {
        let env = WireEnvelope {
            src: 3,
            tag: 0x8000_0000_0000_0000 | (7 << 16),
            sent_at: 1.25,
            bytes: 40,
            payload: vec![1, 2, 3, 4, 5],
        };
        let frame = env.to_frame();
        assert_eq!(WireEnvelope::from_frame(&frame).unwrap(), env);
    }

    #[test]
    fn truncated_envelope_is_a_typed_error() {
        let env = WireEnvelope { src: 0, tag: 1, sent_at: 0.0, bytes: 8, payload: vec![9; 8] };
        let frame = env.to_frame();
        assert!(WireEnvelope::from_frame(&frame[..10]).is_err());
    }
}
