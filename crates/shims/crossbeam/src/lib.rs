//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so this workspace ships the
//! small slice of crossbeam's API that `cgselect-runtime` actually uses: an
//! unbounded MPSC channel with cloneable senders, timeout-aware receives and
//! disconnect detection. It is implemented on `std::sync` primitives
//! (`Mutex` + `Condvar`); semantics match `crossbeam-channel` for this
//! surface, throughput is merely adequate (the runtime's virtual processors
//! block on `recv_timeout`, so the channel is never the bottleneck in the
//! modeled-time experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer single-consumer unbounded channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable; the channel
    /// disconnects when every `Sender` has been dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when the receiver has been dropped;
    /// carries the unsent message back to the caller.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receiver_alive: true }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake a receiver blocked in recv_timeout so it can observe
                // the disconnect instead of sleeping out its full timeout.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.state.lock().expect("channel poisoned").receiver_alive = false;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if !st.receiver_alive {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, the channel disconnects, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) =
                    self.shared.ready.wait_timeout(st, deadline - now).expect("channel poisoned");
                st = guard;
            }
        }

        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// True if no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.shared.state.lock().expect("channel poisoned").queue.is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            assert!(rx.is_empty());
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded::<u64>();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }
    }
}
