//! Message envelope carried between virtual processors.

use std::any::Any;

/// Tags below this bound are available to user code; tags at or above it are
/// reserved for the runtime's collectives.
pub(crate) const USER_TAG_LIMIT: u64 = 1 << 32;

/// A payload in flight: boxed in-process values on the channel transport,
/// encoded bytes on an out-of-process fabric. The receive path downcasts or
/// decodes respectively; either way the caller names the expected type.
pub(crate) enum Payload {
    Local(Box<dyn Any + Send>),
    Wire(Vec<u8>),
}

/// A message in flight between two virtual processors.
///
/// `sent_at` is the sender's virtual time at the moment the send started and
/// `bytes` is the modeled payload size; together with the machine model they
/// determine when the receive completes. The payload itself is type-erased so
/// a single channel per processor can carry every message type.
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u64,
    pub sent_at: f64,
    pub bytes: u64,
    pub payload: Payload,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("src", &self.src)
            .field("tag", &format_args!("{:#x}", self.tag))
            .field("sent_at", &self.sent_at)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}
