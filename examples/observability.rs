//! Observability: trace a mixed request batch through both execution
//! backends, then read the engine's self-served metrics and SLO line.
//!
//! Run with: `cargo run --release --example observability`
//!
//! The engine observes itself with its own machinery: request latencies
//! feed a `ReservoirSketch` and the p50/p95/p99 below come out of the same
//! rank-estimation code that answers quantile queries.

use cgselect::{
    BackendChoice, Bounds, ChannelMpTuning, Distribution, Engine, EngineConfig, MachineModel,
    Query, Request, SloAccumulator, TraceId,
};

fn main() {
    let p = 4;
    let n = 200_000;
    let data: Vec<u64> =
        cgselect::generate(Distribution::Zipf, n, p, 7).into_iter().flatten().collect();

    for backend in [BackendChoice::LocalSpmd, BackendChoice::ChannelMp(ChannelMpTuning::default())]
    {
        // `observe(true)` turns on spans + metrics; off by default, and
        // zero-cost when off.
        let cfg = EngineConfig::new(p).model(MachineModel::cm5()).backend(backend).observe(true);
        let mut engine: Engine<u64> = Engine::new(cfg).expect("engine");
        engine.ingest(data.clone()).expect("ingest");
        engine.execute(&[Query::Median]).expect("warm-up builds the index");

        // A mixed batch: forward selections, an inverse rank probe, and a
        // range count. Stamping trace IDs is optional — the engine assigns
        // them when absent — but a caller-supplied ID lets an upstream
        // service correlate the span with its own request log.
        let requests: Vec<Request<u64>> = vec![
            Query::Median.to_request().traced(TraceId(1001)),
            Query::quantile(0.99).to_request().traced(TraceId(1002)),
            Request::rank_of(data[0]).traced(TraceId(1003)),
            Request::count_between(Bounds::closed(100, 10_000)).traced(TraceId(1004)),
            Query::TopK(3).to_request().traced(TraceId(1005)),
        ];

        let mut slo = SloAccumulator::new();
        let report = engine.run(&requests).expect("batch");
        slo.observe(&report);

        println!("=== {} ===", engine.backend_kind());
        let span = report.span.as_ref().expect("observing engines attach a span");
        print!("{}", span.render());

        let metrics = engine.metrics().expect("observing engines expose a registry");
        println!("\n--- metrics snapshot ---");
        print!("{}", metrics.snapshot().to_text());

        println!("\n--- SLO line (what the bench bins append to results/) ---");
        println!("{}\n", slo.report().render_line());
    }
}
