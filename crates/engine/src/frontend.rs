//! The engine's async frontend: a submission queue with deadline
//! micro-batching.
//!
//! [`Engine::execute`] is synchronous — the caller forms a batch and blocks
//! on its collective pass. A service facing many concurrent clients wants
//! the opposite: each client submits *one* query and awaits *one* answer,
//! while the engine amortizes the `O(log n + R)` multi-select rounds over
//! as many concurrent queries as possible. This module provides that
//! frontend:
//!
//! * **[`SubmissionQueue`]** — a cloneable, thread-safe handle. Clients
//!   [`submit`](SubmissionQueue::submit) queries (or
//!   [`submit_ingest`](SubmissionQueue::submit_ingest) /
//!   [`submit_delete`](SubmissionQueue::submit_delete) mutations) and get a
//!   [`Ticket`] — a future-like handle resolving to the answer.
//! * **Deadline micro-batching** — a dedicated batcher thread owns the
//!   [`Engine`] (and with it the persistent SPMD session). The first
//!   queued query opens a batch; the batch executes when the configured
//!   [`window`](FrontendConfig::window) elapses or
//!   [`max_batch`](FrontendConfig::max_batch) queries have coalesced,
//!   whichever comes first. Everything already queued at wakeup joins the
//!   batch immediately, so even `window = 0` opportunistically coalesces
//!   backlog.
//! * **Admission control** — the queue is bounded
//!   ([`queue_capacity`](FrontendConfig::queue_capacity)); a saturated
//!   queue rejects new submissions with [`SubmitError::Saturated`] instead
//!   of buffering without bound. The queue keeps serving and recovers as
//!   soon as it drains.
//! * **Per-query failure isolation** — each query is validated individually
//!   against the resident population at execution time, so one
//!   out-of-domain query fails *its own* ticket and never poisons the
//!   coalesced batch it rode in with.
//! * **Metrics** — [`FrontendStats`] exposes queue depth, wait times,
//!   batch occupancy and the per-batch [`CommStats`]-derived collective-op
//!   counts ([`FrontendStats::rounds_per_query`] is the number the
//!   micro-batch window is tuned against).
//!
//! FIFO order is preserved: a mutation is a hard batch boundary, so queries
//! submitted before an ingest/delete observe the pre-mutation population
//! and queries submitted after it observe the post-mutation one.
//!
//! [`CommStats`]: cgselect_runtime::CommStats

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cgselect_runtime::Key;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use crate::obs::{MetricsRegistry, TraceId};
use crate::{
    Answer, Engine, EngineError, MutationReport, Outcome, Query, RefreshPolicy, Request,
    StandingHandle, SubscriptionId,
};

/// How long the batcher sleeps between polls while idle or paused, and the
/// cap on any single in-window wait (so shutdown is observed promptly even
/// under very wide windows).
const IDLE_POLL: Duration = Duration::from_millis(1);
const PAUSE_POLL: Duration = Duration::from_micros(200);
const COLLECT_POLL_CAP: Duration = Duration::from_millis(5);

/// Configuration of the async frontend.
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// Bound on queued-but-unexecuted submissions; submissions beyond it
    /// are rejected with [`SubmitError::Saturated`].
    pub queue_capacity: usize,
    /// Maximum queries coalesced into one batch (one multi-select pass).
    pub max_batch: usize,
    /// Micro-batch window: how long a batch stays open after its first
    /// query arrives, gathering more queries. Wider windows trade single
    /// query latency for fewer collective rounds per query.
    pub window: Duration,
    /// Start with execution paused ([`SubmissionQueue::resume`] starts the
    /// batcher draining). Submissions are accepted (up to capacity) but no
    /// batch is opened while paused — useful for deterministic tests and
    /// for staging a burst. (A later [`SubmissionQueue::pause`] only takes
    /// effect from the next batch; a window already open keeps collecting.)
    pub start_paused: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            queue_capacity: 1024,
            max_batch: 256,
            window: Duration::from_millis(1),
            start_paused: false,
        }
    }
}

impl FrontendConfig {
    /// Defaults: capacity 1024, max batch 256, 1 ms window, running.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style queue capacity choice.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Builder-style max batch choice.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Builder-style micro-batch window choice.
    pub fn window(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Builder-style paused start.
    pub fn start_paused(mut self, paused: bool) -> Self {
        self.start_paused = paused;
        self
    }

    fn validate(&self) {
        assert!(self.queue_capacity >= 1, "queue capacity must be at least 1");
        assert!(self.max_batch >= 1, "max batch must be at least 1");
    }
}

/// Why a submission was not accepted into the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission control: the bounded queue is full. Back off and retry.
    Saturated {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The frontend is shutting down (or already gone).
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { capacity } => {
                write!(f, "submission queue saturated (capacity {capacity})")
            }
            SubmitError::ShuttingDown => write!(f, "submission queue is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted submission did not produce an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum AsyncError {
    /// The engine rejected or failed this submission.
    Engine(EngineError),
    /// The frontend went away before answering (batcher dropped).
    Disconnected,
}

impl std::fmt::Display for AsyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsyncError::Engine(e) => write!(f, "engine error: {e}"),
            AsyncError::Disconnected => write!(f, "frontend disconnected before answering"),
        }
    }
}

impl std::error::Error for AsyncError {}

/// A future-like handle to one submission's answer. Obtained from
/// [`SubmissionQueue::submit`] and friends; resolves exactly once.
pub struct Ticket<R> {
    rx: Receiver<Result<R, AsyncError>>,
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

/// A [`Ticket`] resolving to a v1 query's [`Answer`].
pub type QueryTicket<T> = Ticket<Answer<T>>;

/// A [`Ticket`] resolving to a v2 request's [`Outcome`] (answer +
/// provenance + attributed cost).
pub type OutcomeTicket<T> = Ticket<Outcome<T>>;

/// A [`Ticket`] resolving to an ingest/delete's [`MutationReport`].
pub type MutationTicket = Ticket<MutationReport>;

/// A [`Ticket`] resolving to a registered standing query's
/// [`StandingHandle`] (see [`SubmissionQueue::submit_standing`]).
pub type StandingTicket<T> = Ticket<StandingHandle<T>>;

impl<R> Ticket<R> {
    /// Blocks until the answer is ready.
    pub fn wait(self) -> Result<R, AsyncError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(AsyncError::Disconnected),
        }
    }

    /// Blocks up to `timeout`; `None` means not ready yet (the ticket
    /// remains valid and can be polled or waited again).
    pub fn wait_for(&self, timeout: Duration) -> Option<Result<R, AsyncError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(res) => Some(res),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(AsyncError::Disconnected)),
        }
    }

    /// Non-blocking check; `None` means not ready yet.
    pub fn poll(&self) -> Option<Result<R, AsyncError>> {
        match self.rx.try_recv() {
            Ok(res) => Some(res),
            Err(crossbeam::channel::TryRecvError::Empty) => None,
            Err(crossbeam::channel::TryRecvError::Disconnected) => {
                Some(Err(AsyncError::Disconnected))
            }
        }
    }
}

/// A snapshot of the frontend's counters (see [`SubmissionQueue::stats`]).
///
/// All counters are cumulative since the frontend started, except
/// `queue_depth` which is the instantaneous backlog.
#[derive(Clone, Debug, Default)]
pub struct FrontendStats {
    /// Submissions accepted into the queue.
    pub submitted: u64,
    /// Submissions rejected by admission control ([`SubmitError::Saturated`]).
    pub rejected: u64,
    /// Submissions currently queued, not yet picked up by the batcher.
    pub queue_depth: usize,
    /// Query batches executed (each is one coalesced collective pass).
    pub batches: u64,
    /// Queries answered through batch execution.
    pub queries_executed: u64,
    /// Mutations (ingest/delete) applied.
    pub mutations: u64,
    /// Submissions that resolved to an error (invalid query, runtime
    /// failure) instead of an answer.
    pub failures: u64,
    /// Largest single-batch occupancy observed.
    pub max_occupancy: usize,
    /// Collective operations across all executed batches (per-processor
    /// counts, summed over batches) — the numerator of
    /// [`rounds_per_query`](Self::rounds_per_query).
    pub collective_ops: u64,
    /// Messages sent across all executed batches.
    pub msgs_sent: u64,
    /// Summed virtual-time makespan of all executed batches.
    pub makespan: f64,
    /// Summed submission-to-execution wait across processed submissions.
    pub total_wait: Duration,
    /// Largest single submission-to-execution wait observed.
    pub max_wait: Duration,
    /// Exact ranks answered from the resident bucket index's cached
    /// histogram alone (zero element scans), across all executed batches.
    pub histogram_answers: u64,
    /// Bucket-index (re)builds the engine has performed so far.
    pub index_rebuilds: u64,
    /// Amortized delta-run merges the engine has performed so far.
    pub delta_merges: u64,
    /// Delta-run occupancy (unindexed fraction of the resident population)
    /// observed at the most recent executed batch.
    pub delta_occupancy: f64,
    /// Live standing queries registered with the engine, as of the most
    /// recent batcher activity.
    pub standing_active: usize,
    /// Standing-query updates the engine has delivered so far.
    pub standing_updates: u64,
    /// How many of [`standing_updates`](Self::standing_updates) were served
    /// without a single attributed collective op (rebased histogram or
    /// ε-sketch) — the incremental-refresh win.
    pub standing_zero_collective: u64,
}

impl FrontendStats {
    /// Mean queries per executed batch — the coalescing the micro-batch
    /// window actually achieved.
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.queries_executed as f64 / self.batches as f64
        }
    }

    /// Collective rounds paid per answered query; drops as the window
    /// widens and more queries share each multi-select pass.
    pub fn rounds_per_query(&self) -> f64 {
        if self.queries_executed == 0 {
            0.0
        } else {
            self.collective_ops as f64 / self.queries_executed as f64
        }
    }

    /// Submissions that went through the batcher (answered or failed).
    pub fn processed(&self) -> u64 {
        self.queries_executed + self.mutations + self.failures
    }

    /// Mean submission-to-execution wait.
    pub fn mean_wait(&self) -> Duration {
        let n = self.processed();
        if n == 0 {
            Duration::ZERO
        } else {
            self.total_wait / n as u32
        }
    }
}

// ---------------------------------------------------------------------------
// Batch formation
// ---------------------------------------------------------------------------

/// The deadline/size-driven batch former: the single authority on where
/// batch boundaries fall, so the live batcher loop and the property tests
/// exercise exactly the same logic. Time is a caller-supplied monotonic
/// nanosecond clock, which keeps the type pure and simulable.
pub(crate) struct Accumulator<I> {
    max_batch: usize,
    window_ns: u64,
    opened_ns: u64,
    items: Vec<I>,
}

impl<I> Accumulator<I> {
    pub(crate) fn new(max_batch: usize, window_ns: u64) -> Self {
        assert!(max_batch >= 1, "a batch holds at least one query");
        Accumulator { max_batch, window_ns, opened_ns: 0, items: Vec::new() }
    }

    fn deadline_ns(&self) -> u64 {
        self.opened_ns.saturating_add(self.window_ns)
    }

    /// Admits `item` at `now_ns`, returning any batches this seals: a
    /// pending batch whose deadline already lapsed is sealed *before* the
    /// newcomer (which then opens a fresh batch), and a batch reaching
    /// `max_batch` is sealed with the newcomer inside. At most two batches
    /// result (both only when `max_batch == 1` meets a lapsed deadline).
    pub(crate) fn push(&mut self, item: I, now_ns: u64) -> Vec<Vec<I>> {
        let mut sealed = Vec::new();
        if !self.items.is_empty() && now_ns > self.deadline_ns() {
            sealed.push(self.flush());
        }
        if self.items.is_empty() {
            self.opened_ns = now_ns;
        }
        self.items.push(item);
        if self.items.len() >= self.max_batch {
            sealed.push(self.flush());
        }
        sealed
    }

    /// How long the caller may still wait for more queries before the
    /// pending batch is due (0 = due now); `None` when nothing is pending.
    pub(crate) fn remaining_ns(&self, now_ns: u64) -> Option<u64> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.deadline_ns().saturating_sub(now_ns))
        }
    }

    /// Seals and returns the pending batch (empty if nothing is pending).
    pub(crate) fn flush(&mut self) -> Vec<I> {
        std::mem::take(&mut self.items)
    }
}

// ---------------------------------------------------------------------------
// Submissions
// ---------------------------------------------------------------------------

/// Where one pending request's result goes: a v1 ticket (the outcome is
/// folded back into an [`Answer`]) or a v2 ticket (the typed [`Outcome`]
/// is delivered as-is).
enum ReplyTx<T: Key> {
    Answer(Sender<Result<Answer<T>, AsyncError>>),
    Outcome(Sender<Result<Outcome<T>, AsyncError>>),
}

impl<T: Key> ReplyTx<T> {
    /// Delivers one result, converting to the ticket's surface (the shared
    /// `answer_from_response` fold for v1 tickets). The ticket may have
    /// been dropped; a failed send is fine.
    fn deliver(self, result: Result<Outcome<T>, AsyncError>) {
        match self {
            ReplyTx::Outcome(tx) => {
                let _ = tx.send(result);
            }
            ReplyTx::Answer(tx) => {
                let _ = tx.send(result.map(|o| crate::query::answer_from_response(o.response)));
            }
        }
    }
}

struct PendingQuery<T: Key> {
    request: Request<T>,
    reply: ReplyTx<T>,
    submitted_at: Instant,
}

enum MutationOp<T: Key> {
    Ingest(Vec<T>),
    Delete(Vec<T>),
}

struct PendingMutation<T: Key> {
    op: MutationOp<T>,
    tx: Sender<Result<MutationReport, AsyncError>>,
    submitted_at: Instant,
}

struct PendingStanding<T: Key> {
    request: Request<T>,
    policy: RefreshPolicy,
    tx: Sender<Result<StandingHandle<T>, AsyncError>>,
}

enum Submission<T: Key> {
    /// One or more queries admitted together (a [`SubmissionQueue::submit`]
    /// carries one; a [`SubmissionQueue::submit_many`] carries the whole
    /// aligned slice in a single queue slot).
    Queries(Vec<PendingQuery<T>>),
    Mutation(PendingMutation<T>),
    /// Register a standing query; FIFO with mutations, so the first update
    /// reflects exactly the mutations submitted before it.
    Standing(PendingStanding<T>),
    /// Remove a standing query by id.
    CancelStanding {
        id: SubscriptionId,
        tx: Sender<Result<bool, AsyncError>>,
    },
}

struct Shared {
    paused: AtomicBool,
    closing: AtomicBool,
    submitted: AtomicU64,
    rejected: AtomicU64,
    /// Batcher-owned counters; the batcher is the only writer.
    batch_stats: Mutex<FrontendStats>,
}

struct Inner<T: Key> {
    handle: Mutex<Option<JoinHandle<Engine<T>>>>,
    shared: Arc<Shared>,
}

impl<T: Key> Drop for Inner<T> {
    fn drop(&mut self) {
        // Last handle gone: tell the batcher to drain out and wait for it.
        // (Its queue receiver also observes the sender disconnect.)
        self.shared.closing.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.lock().expect("frontend join lock").take() {
            let _ = h.join();
        }
    }
}

/// The async frontend handle: clone it into as many client threads as
/// needed. See the [module docs](self) for the architecture.
pub struct SubmissionQueue<T: Key> {
    // Field order matters: `tx` must drop before `inner`, whose Drop joins
    // the batcher — the batcher only exits once every sender is gone (or
    // `closing` is set, which Inner::drop also does).
    tx: Sender<Submission<T>>,
    shared: Arc<Shared>,
    capacity: usize,
    inner: Arc<Inner<T>>,
    /// The engine's metrics registry, captured before the hand-off — its
    /// presence is also the "stamp trace IDs at admission" signal.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<T: Key> Clone for SubmissionQueue<T> {
    fn clone(&self) -> Self {
        SubmissionQueue {
            tx: self.tx.clone(),
            shared: self.shared.clone(),
            capacity: self.capacity,
            inner: self.inner.clone(),
            metrics: self.metrics.clone(),
        }
    }
}

impl<T: Key> SubmissionQueue<T> {
    /// Takes ownership of `engine` (hand-off: the persistent session's
    /// worker threads now answer to the batcher thread) and starts serving.
    pub fn start(engine: Engine<T>, cfg: FrontendConfig) -> Self {
        cfg.validate();
        let metrics = engine.metrics();
        let (tx, rx) = bounded::<Submission<T>>(cfg.queue_capacity);
        let shared = Arc::new(Shared {
            paused: AtomicBool::new(cfg.start_paused),
            closing: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batch_stats: Mutex::new(FrontendStats::default()),
        });
        let thread_shared = shared.clone();
        let thread_cfg = cfg.clone();
        let handle = std::thread::Builder::new()
            .name("cgselect-batcher".into())
            .spawn(move || batcher_loop(engine, thread_cfg, rx, thread_shared))
            .expect("failed to spawn batcher thread");
        SubmissionQueue {
            tx,
            shared: shared.clone(),
            capacity: cfg.queue_capacity,
            inner: Arc::new(Inner { handle: Mutex::new(Some(handle)), shared }),
            metrics,
        }
    }

    /// Stamps a trace ID at admission when the engine observes, so the
    /// request's span covers its whole journey through the queue.
    fn stamp(&self, mut request: Request<T>) -> Request<T> {
        if self.metrics.is_some() && request.trace.is_none() {
            request.trace = Some(TraceId::next());
        }
        request
    }

    fn admit(&self, sub: Submission<T>, queries: u64) -> Result<(), SubmitError> {
        if self.shared.closing.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        match self.tx.try_send(sub) {
            Ok(()) => {
                self.shared.submitted.fetch_add(queries.max(1), Ordering::SeqCst);
                if let Some(m) = &self.metrics {
                    m.gauge_set("queue_depth", self.tx.len() as f64);
                }
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.shared.rejected.fetch_add(queries.max(1), Ordering::SeqCst);
                Err(SubmitError::Saturated { capacity: self.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Enqueues one v1 query; the returned ticket resolves to its
    /// [`Answer`] once the micro-batch it coalesced into has executed.
    pub fn submit(&self, query: Query) -> Result<QueryTicket<T>, SubmitError> {
        let (tx, rx) = unbounded();
        self.admit(
            Submission::Queries(vec![PendingQuery {
                request: self.stamp(query.to_request()),
                reply: ReplyTx::Answer(tx),
                submitted_at: Instant::now(),
            }]),
            1,
        )?;
        Ok(Ticket { rx })
    }

    /// Enqueues one typed v2 [`Request`]; the returned ticket resolves to
    /// its [`Outcome`] (answer + provenance + attributed cost).
    pub fn submit_request(&self, request: Request<T>) -> Result<OutcomeTicket<T>, SubmitError> {
        let mut tickets = self.submit_many(vec![request])?;
        Ok(tickets.pop().expect("one ticket per request"))
    }

    /// Enqueues a whole slice of typed v2 [`Request`]s in **one
    /// admission** — a single bounded-queue slot, accepted or rejected
    /// atomically — and returns one ticket per request, aligned with the
    /// input. The requests ride the same micro-batch window as everything
    /// else (and may split across batches at the
    /// [`max_batch`](FrontendConfig::max_batch) boundary); each ticket
    /// resolves independently, so one invalid request fails its own
    /// ticket, never its neighbors'.
    pub fn submit_many(
        &self,
        requests: Vec<Request<T>>,
    ) -> Result<Vec<OutcomeTicket<T>>, SubmitError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let now = Instant::now();
        let count = requests.len() as u64;
        let mut tickets = Vec::with_capacity(requests.len());
        let pending: Vec<PendingQuery<T>> = requests
            .into_iter()
            .map(|request| {
                let (tx, rx) = unbounded();
                tickets.push(Ticket { rx });
                PendingQuery {
                    request: self.stamp(request),
                    reply: ReplyTx::Outcome(tx),
                    submitted_at: now,
                }
            })
            .collect();
        self.admit(Submission::Queries(pending), count)?;
        Ok(tickets)
    }

    /// Enqueues an ingest. FIFO with queries: earlier-submitted queries see
    /// the engine without `items`, later ones see it with them.
    pub fn submit_ingest(&self, items: Vec<T>) -> Result<MutationTicket, SubmitError> {
        let (tx, rx) = unbounded();
        self.admit(
            Submission::Mutation(PendingMutation {
                op: MutationOp::Ingest(items),
                tx,
                submitted_at: Instant::now(),
            }),
            1,
        )?;
        Ok(Ticket { rx })
    }

    /// Enqueues a delete of all occurrences of `values`; FIFO like
    /// [`submit_ingest`](Self::submit_ingest).
    pub fn submit_delete(&self, values: Vec<T>) -> Result<MutationTicket, SubmitError> {
        let (tx, rx) = unbounded();
        self.admit(
            Submission::Mutation(PendingMutation {
                op: MutationOp::Delete(values),
                tx,
                submitted_at: Instant::now(),
            }),
            1,
        )?;
        Ok(Ticket { rx })
    }

    /// Registers `request` as a **standing query** (see
    /// [`Engine::subscribe`]): the ticket resolves to a [`StandingHandle`]
    /// streaming stamped updates whenever the resident data moves under
    /// `policy`. Standing registrations are FIFO with mutations — the
    /// handle's first update reflects exactly the mutations submitted
    /// before this call. The batcher serves [`RefreshPolicy::Deadline`]
    /// policies from its idle ticks, and every executed batch or mutation
    /// piggybacks due refreshes at shared-collective cost.
    ///
    /// # Panics
    /// Panics on a non-finite or negative [`RefreshPolicy::OnDelta`]
    /// fraction (caller-side, before admission).
    pub fn submit_standing(
        &self,
        request: Request<T>,
        policy: RefreshPolicy,
    ) -> Result<StandingTicket<T>, SubmitError> {
        if let RefreshPolicy::OnDelta(frac) = policy {
            assert!(
                frac.is_finite() && frac >= 0.0,
                "OnDelta fraction must be finite and >= 0, got {frac}"
            );
        }
        let (tx, rx) = unbounded();
        self.admit(
            Submission::Standing(PendingStanding { request: self.stamp(request), policy, tx }),
            1,
        )?;
        Ok(Ticket { rx })
    }

    /// Cancels the standing query `id`; the ticket resolves to whether it
    /// was live (a handle dropped earlier may already have unsubscribed
    /// it). Its [`StandingHandle`]'s stream ends once applied.
    pub fn cancel_standing(&self, id: SubscriptionId) -> Result<Ticket<bool>, SubmitError> {
        let (tx, rx) = unbounded();
        self.admit(Submission::CancelStanding { id, tx }, 1)?;
        Ok(Ticket { rx })
    }

    /// Stops the batcher from *opening new batches*: further submissions
    /// queue (up to capacity) instead of executing. A batch whose window is
    /// already open when the pause lands still collects and executes to its
    /// deadline — the pause takes full effect from the next batch.
    /// Idempotent.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::SeqCst);
    }

    /// Resumes a paused frontend. Idempotent.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::SeqCst);
    }

    /// Instantaneous backlog (accepted, not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.tx.len()
    }

    /// A snapshot of the frontend's metrics.
    pub fn stats(&self) -> FrontendStats {
        let mut s = self.shared.batch_stats.lock().expect("frontend stats lock").clone();
        s.submitted = self.shared.submitted.load(Ordering::SeqCst);
        s.rejected = self.shared.rejected.load(Ordering::SeqCst);
        s.queue_depth = self.tx.len();
        s
    }

    /// Drains everything already accepted, stops the batcher, and hands the
    /// engine back (for inspection, reconfiguration, or a new frontend).
    /// Returns `None` if another handle already claimed the shutdown.
    /// Submissions racing with shutdown may resolve to
    /// [`AsyncError::Disconnected`].
    pub fn shutdown(self) -> Option<Engine<T>> {
        self.shared.closing.store(true, Ordering::SeqCst);
        let handle = self.inner.handle.lock().expect("frontend join lock").take();
        handle.map(|h| h.join().expect("batcher thread panicked"))
    }
}

// ---------------------------------------------------------------------------
// The batcher thread
// ---------------------------------------------------------------------------

fn now_ns(base: Instant) -> u64 {
    base.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn batcher_loop<T: Key>(
    mut engine: Engine<T>,
    cfg: FrontendConfig,
    rx: Receiver<Submission<T>>,
    shared: Arc<Shared>,
) -> Engine<T> {
    let base = Instant::now();
    let window_ns = cfg.window.as_nanos().min(u64::MAX as u128) as u64;
    let mut acc: Accumulator<PendingQuery<T>> = Accumulator::new(cfg.max_batch, window_ns);
    let mut disconnected = false;

    'serve: while !disconnected {
        // Park while paused; `closing` overrides a pause so shutdown and
        // handle-drop cannot wedge behind it.
        while shared.paused.load(Ordering::SeqCst) && !shared.closing.load(Ordering::SeqCst) {
            std::thread::sleep(PAUSE_POLL);
        }

        // Idle: wait for the first submission of the next batch.
        match rx.recv_timeout(IDLE_POLL) {
            Ok(sub) => match sub {
                Submission::Queries(pqs) => {
                    for pq in pqs {
                        for batch in acc.push(pq, now_ns(base)) {
                            execute_batch(&mut engine, batch, &shared);
                        }
                    }
                }
                other => {
                    execute_control(&mut engine, other, &shared);
                    continue 'serve;
                }
            },
            Err(RecvTimeoutError::Timeout) => {
                if shared.closing.load(Ordering::SeqCst) && rx.is_empty() {
                    break 'serve;
                }
                // Idle tick: flush standing refreshes that came due without
                // traffic — this is what serves `RefreshPolicy::Deadline`
                // (and delivers post-mutation updates promptly when no
                // query batch follows). Cheap no-op when nothing is due.
                standing_tick(&mut engine, &shared);
                continue 'serve;
            }
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        }

        // Collect: drain the existing backlog at a single instant (so even
        // window = 0 coalesces whatever queued up during the last
        // execution), then wait out the remaining window for stragglers.
        'collect: loop {
            let drain_now = now_ns(base);
            loop {
                match rx.try_recv() {
                    Ok(Submission::Queries(pqs)) => {
                        for pq in pqs {
                            for batch in acc.push(pq, drain_now) {
                                execute_batch(&mut engine, batch, &shared);
                            }
                        }
                    }
                    Ok(other) => {
                        // A mutation (or standing registration/cancel) is a
                        // hard boundary: flush queries that preceded it,
                        // then apply it.
                        let batch = acc.flush();
                        if !batch.is_empty() {
                            execute_batch(&mut engine, batch, &shared);
                        }
                        execute_control(&mut engine, other, &shared);
                    }
                    Err(crossbeam::channel::TryRecvError::Empty) => break,
                    Err(crossbeam::channel::TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }
            let Some(rem) = acc.remaining_ns(now_ns(base)) else {
                break 'collect; // nothing pending — back to idle
            };
            if rem == 0 || disconnected || shared.closing.load(Ordering::SeqCst) {
                let batch = acc.flush();
                execute_batch(&mut engine, batch, &shared);
                break 'collect;
            }
            // Wait for stragglers, capped so closing is observed promptly.
            let wait = Duration::from_nanos(rem).min(COLLECT_POLL_CAP);
            match rx.recv_timeout(wait) {
                Ok(Submission::Queries(pqs)) => {
                    for pq in pqs {
                        for batch in acc.push(pq, now_ns(base)) {
                            execute_batch(&mut engine, batch, &shared);
                        }
                    }
                }
                Ok(other) => {
                    let batch = acc.flush();
                    if !batch.is_empty() {
                        execute_batch(&mut engine, batch, &shared);
                    }
                    execute_control(&mut engine, other, &shared);
                    break 'collect;
                }
                Err(RecvTimeoutError::Timeout) => {} // loop re-evaluates rem
                Err(RecvTimeoutError::Disconnected) => {
                    let batch = acc.flush();
                    execute_batch(&mut engine, batch, &shared);
                    break 'serve;
                }
            }
        }
    }
    // Exiting drops `rx`; any in-flight ticket resolves to Disconnected.
    engine
}

/// An outcome (or error) staged for delivery to one ticket after the
/// batch's stats have been committed.
type Delivery<T> = (ReplyTx<T>, Result<Outcome<T>, AsyncError>);

/// Executes one coalesced batch: validates each request individually (an
/// invalid request fails its own ticket, not its neighbors), runs the
/// valid remainder as one `Engine::run` pass, updates the stats, and only
/// then delivers the outcomes (so a client that saw its answer also sees
/// the batch in the stats).
fn execute_batch<T: Key>(engine: &mut Engine<T>, batch: Vec<PendingQuery<T>>, shared: &Shared) {
    if batch.is_empty() {
        return;
    }
    let start = Instant::now();
    let mut total_wait = Duration::ZERO;
    let mut max_wait = Duration::ZERO;
    for pq in &batch {
        let wait = start.saturating_duration_since(pq.submitted_at);
        total_wait += wait;
        max_wait = max_wait.max(wait);
    }

    let mut valid: Vec<Request<T>> = Vec::with_capacity(batch.len());
    let mut valid_reply = Vec::with_capacity(batch.len());
    let mut valid_submitted = Vec::with_capacity(batch.len());
    let mut deliveries: Vec<Delivery<T>> = Vec::with_capacity(batch.len());
    let mut failures = 0u64;
    for pq in batch {
        match engine.validate_request(&pq.request) {
            Ok(()) => {
                valid.push(pq.request);
                valid_reply.push(pq.reply);
                valid_submitted.push(pq.submitted_at);
            }
            Err(e) => {
                failures += 1;
                deliveries.push((pq.reply, Err(AsyncError::Engine(e))));
            }
        }
    }

    let mut executed = None;
    if !valid.is_empty() {
        match engine.run(&valid) {
            Ok(report) => {
                if let Some(m) = engine.metrics() {
                    let done = Instant::now();
                    for submitted_at in &valid_submitted {
                        let wall = done.saturating_duration_since(*submitted_at);
                        m.latency_observe("request_wall", wall.as_nanos() as u64);
                    }
                }
                for (reply, outcome) in valid_reply.into_iter().zip(report.outcomes.iter().cloned())
                {
                    deliveries.push((reply, Ok(outcome)));
                }
                executed = Some(report);
            }
            Err(e) => {
                failures += valid.len() as u64;
                for reply in valid_reply {
                    deliveries.push((reply, Err(AsyncError::Engine(e.clone()))));
                }
            }
        }
    }

    {
        let mut stats = shared.batch_stats.lock().expect("frontend stats lock");
        stats.failures += failures;
        stats.total_wait += total_wait;
        stats.max_wait = stats.max_wait.max(max_wait);
        if let Some(report) = &executed {
            stats.batches += 1;
            stats.queries_executed += valid.len() as u64;
            stats.max_occupancy = stats.max_occupancy.max(valid.len());
            stats.collective_ops += report.collective_ops;
            stats.msgs_sent += report.comm.msgs_sent;
            stats.makespan += report.makespan;
            stats.histogram_answers += report.histogram_answers as u64;
            stats.delta_occupancy = report.delta_occupancy;
            let health = engine.index_health();
            stats.index_rebuilds = health.rebuilds;
            stats.delta_merges = health.delta_merges;
        }
        // Standing refreshes ride query batches; mirror the engine's
        // cumulative counters whenever a batch ran.
        stats.standing_active = engine.standing_active();
        stats.standing_updates = engine.standing_refreshes();
        stats.standing_zero_collective = engine.standing_zero_collective();
    }

    for (reply, result) in deliveries {
        reply.deliver(result);
    }
}

/// Dispatches the non-query submissions (anything that is not a
/// [`Submission::Queries`]): mutations, standing registrations, cancels.
fn execute_control<T: Key>(engine: &mut Engine<T>, sub: Submission<T>, shared: &Shared) {
    match sub {
        Submission::Queries(_) => unreachable!("queries go through the accumulator"),
        Submission::Mutation(m) => execute_mutation(engine, m, shared),
        Submission::Standing(s) => {
            let handle = engine.subscribe(s.request, s.policy);
            // Serve the inaugural update immediately (when the request is
            // currently answerable) instead of waiting for traffic: a
            // dashboard sees its first datapoint at subscribe time.
            let _ = engine.refresh_standing();
            sync_standing_stats(engine, shared);
            let _ = s.tx.send(Ok(handle));
        }
        Submission::CancelStanding { id, tx } => {
            let removed = engine.unsubscribe(id);
            sync_standing_stats(engine, shared);
            let _ = tx.send(Ok(removed));
        }
    }
}

/// Flushes due standing refreshes outside any batch (the batcher's idle
/// tick). Engine failures are left for the next query/mutation to surface —
/// a subscription has no per-refresh ticket to fail.
fn standing_tick<T: Key>(engine: &mut Engine<T>, shared: &Shared) {
    if engine.standing_active() == 0 {
        return;
    }
    match engine.refresh_standing() {
        Ok(0) => {}
        _ => sync_standing_stats(engine, shared),
    }
}

/// Mirrors the engine's cumulative standing counters into the frontend
/// stats (the engine is the single source of truth; refreshes ride query
/// batches too, so the frontend cannot count deliveries itself).
fn sync_standing_stats<T: Key>(engine: &Engine<T>, shared: &Shared) {
    let mut stats = shared.batch_stats.lock().expect("frontend stats lock");
    stats.standing_active = engine.standing_active();
    stats.standing_updates = engine.standing_refreshes();
    stats.standing_zero_collective = engine.standing_zero_collective();
}

/// Applies one mutation, updates the stats, then delivers the report.
/// Standing subscriptions the mutation made due refresh right here, so an
/// `EveryBatch` dashboard sees the post-mutation answer without waiting
/// for a query batch or an idle tick.
fn execute_mutation<T: Key>(engine: &mut Engine<T>, m: PendingMutation<T>, shared: &Shared) {
    let wait = Instant::now().saturating_duration_since(m.submitted_at);
    let result = match m.op {
        MutationOp::Ingest(items) => engine.ingest(items),
        MutationOp::Delete(values) => engine.delete(&values),
    };
    if result.is_ok() && engine.standing_active() > 0 {
        let _ = engine.refresh_standing();
    }
    {
        let mut stats = shared.batch_stats.lock().expect("frontend stats lock");
        stats.total_wait += wait;
        stats.max_wait = stats.max_wait.max(wait);
        match &result {
            Ok(_) => stats.mutations += 1,
            Err(_) => stats.failures += 1,
        }
        stats.standing_active = engine.standing_active();
        stats.standing_updates = engine.standing_refreshes();
        stats.standing_zero_collective = engine.standing_zero_collective();
    }
    let _ = m.tx.send(result.map_err(AsyncError::Engine));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::MachineModel;
    use proptest::prelude::*;

    use crate::EngineConfig;

    fn free_engine(p: usize) -> Engine<u64> {
        Engine::new(EngineConfig::new(p).model(MachineModel::free())).unwrap()
    }

    #[test]
    fn submitted_queries_resolve_to_oracle_answers() {
        let mut engine = free_engine(4);
        let data: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 65_536).collect();
        let mut oracle = data.clone();
        oracle.sort_unstable();
        engine.ingest(data).unwrap();
        let n = oracle.len() as u64;

        let queue =
            SubmissionQueue::start(engine, FrontendConfig::new().window(Duration::from_millis(2)));
        let tickets: Vec<(u64, QueryTicket<u64>)> = (0..32u64)
            .map(|i| (i * 137 % n, queue.submit(Query::Rank(i * 137 % n)).unwrap()))
            .collect();
        for (rank, t) in tickets {
            assert_eq!(t.wait(), Ok(Answer::Value(oracle[rank as usize])), "rank {rank}");
        }
        let top = queue.submit(Query::TopK(3)).unwrap().wait().unwrap();
        assert_eq!(top, Answer::Top(oracle[..3].to_vec()));

        let stats = queue.stats();
        assert_eq!(stats.submitted, 33);
        assert_eq!(stats.queries_executed, 33);
        assert_eq!(stats.rejected, 0);
        assert!(stats.batches >= 1 && stats.batches <= 33);
        assert!(stats.collective_ops > 0);

        // The engine comes back with the data still resident.
        let engine = queue.shutdown().expect("first shutdown claims the engine");
        assert_eq!(engine.len(), n);
    }

    #[test]
    fn mutations_are_fifo_with_queries() {
        let mut engine = free_engine(2);
        engine.ingest(vec![10, 20, 30]).unwrap();
        let queue = SubmissionQueue::start(
            engine,
            // A wide window would delay the pre-mutation query's batch past
            // the mutation; FIFO must hold anyway because the mutation is a
            // hard batch boundary.
            FrontendConfig::new().window(Duration::from_millis(50)),
        );
        let before = queue.submit(Query::Rank(0)).unwrap();
        let ingest = queue.submit_ingest(vec![1, 2]).unwrap();
        let after = queue.submit(Query::Rank(0)).unwrap();
        let del = queue.submit_delete(vec![1, 2, 99]).unwrap();
        let last = queue.submit(Query::Rank(0)).unwrap();

        assert_eq!(before.wait(), Ok(Answer::Value(10)));
        assert_eq!(ingest.wait().unwrap(), MutationReport { elements: 2, rebalanced: false });
        assert_eq!(after.wait(), Ok(Answer::Value(1)));
        let rep = del.wait().unwrap();
        assert_eq!(rep.elements, 2); // 99 was never resident
        assert_eq!(last.wait(), Ok(Answer::Value(10)));
        let stats = queue.stats();
        assert_eq!(stats.mutations, 2);
        assert_eq!(stats.queries_executed, 3);
    }

    #[test]
    fn invalid_query_fails_alone_not_its_batch() {
        let mut engine = free_engine(2);
        engine.ingest((0..100u64).collect()).unwrap();
        let queue = SubmissionQueue::start(
            engine,
            FrontendConfig::new().start_paused(true).window(Duration::from_millis(1)),
        );
        // All three land in one batch; the middle one is out of domain.
        let good1 = queue.submit(Query::Rank(5)).unwrap();
        let bad = queue.submit(Query::Rank(100)).unwrap();
        let good2 = queue.submit(Query::Median).unwrap();
        queue.resume();
        assert_eq!(good1.wait(), Ok(Answer::Value(5)));
        assert_eq!(
            bad.wait(),
            Err(AsyncError::Engine(EngineError::RankOutOfRange { rank: 100, n: 100 }))
        );
        assert_eq!(good2.wait(), Ok(Answer::Value(49)));
        let stats = queue.stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.queries_executed, 2);
    }

    #[test]
    fn empty_submit_many_is_a_no_op() {
        let mut engine = free_engine(2);
        engine.ingest(vec![1, 2, 3]).unwrap();
        let queue = SubmissionQueue::start(engine, FrontendConfig::new());
        // No admission, no queue slot, no phantom submitted count.
        assert!(queue.submit_many(Vec::new()).unwrap().is_empty());
        assert_eq!(queue.stats().submitted, 0);
        assert_eq!(queue.queue_depth(), 0);
    }

    #[test]
    fn queries_on_an_empty_engine_fail_individually() {
        let queue = SubmissionQueue::start(free_engine(2), FrontendConfig::new());
        let t = queue.submit(Query::Median).unwrap();
        assert_eq!(t.wait(), Err(AsyncError::Engine(EngineError::Empty)));
        // The frontend recovers: ingest then query works.
        queue.submit_ingest(vec![7, 3, 5]).unwrap().wait().unwrap();
        assert_eq!(queue.submit(Query::Median).unwrap().wait(), Ok(Answer::Value(5)));
    }

    #[test]
    fn standing_subscription_streams_updates_through_the_frontend() {
        let mut engine = free_engine(2);
        engine.ingest((0..100u64).collect()).unwrap();
        let queue = SubmissionQueue::start(engine, FrontendConfig::new());
        let handle = queue
            .submit_standing(Request::median(), RefreshPolicy::EveryBatch)
            .unwrap()
            .wait()
            .unwrap();
        // The inaugural update arrives at subscribe time.
        let first = handle.recv().expect("inaugural update");
        assert_eq!(first.seq, 0);
        assert_eq!(first.outcome.response.element(), Some(49));
        assert_eq!(first.outcome.freshness.elements, 100);
        // A mutation makes the subscription due; the batcher refreshes it
        // without any query traffic.
        queue.submit_ingest((100..201u64).collect()).unwrap().wait().unwrap();
        let second = handle.recv_timeout(Duration::from_secs(5)).expect("post-ingest update");
        assert_eq!(second.seq, 1);
        assert_eq!(second.outcome.response.element(), Some(100));
        assert_eq!(second.outcome.freshness.elements, 201);
        assert!(second.outcome.freshness.version > first.outcome.freshness.version);
        // Cancel ends the stream and the stats reflect the lifecycle.
        assert!(queue.cancel_standing(handle.id()).unwrap().wait().unwrap());
        let stats = queue.stats();
        assert_eq!(stats.standing_active, 0);
        assert!(stats.standing_updates >= 2);
    }

    #[test]
    fn dropping_every_handle_drains_parked_submissions() {
        let mut engine = free_engine(2);
        engine.ingest(vec![4, 8, 15]).unwrap();
        let queue = SubmissionQueue::start(engine, FrontendConfig::new().start_paused(true));
        let t = queue.submit(Query::Median).unwrap();
        // Dropping every handle shuts the batcher down gracefully: the
        // already-accepted submission is still answered, not dropped
        // (closing overrides the pause, so this cannot wedge either).
        drop(queue);
        assert_eq!(t.wait(), Ok(Answer::Value(8)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Any arrival sequence, window and size cap: the accumulator never
        /// drops or duplicates a ticket, preserves FIFO order, respects the
        /// size cap, and keeps every batch's arrival span within the window.
        #[test]
        fn accumulator_respects_bounds_and_loses_nothing(
            gaps in prop::collection::vec(0u64..3_000_000, 1..200),
            window_ns in 0u64..2_000_000,
            max_batch in 1usize..9,
        ) {
            let arrivals: Vec<u64> = gaps
                .iter()
                .scan(0u64, |t, &g| {
                    *t += g;
                    Some(*t)
                })
                .collect();
            let mut acc: Accumulator<usize> = Accumulator::new(max_batch, window_ns);
            let mut batches: Vec<Vec<usize>> = Vec::new();
            for (idx, &t) in arrivals.iter().enumerate() {
                batches.extend(acc.push(idx, t));
            }
            let tail = acc.flush();
            if !tail.is_empty() {
                batches.push(tail);
            }
            for batch in &batches {
                prop_assert!(!batch.is_empty(), "no empty batches are sealed");
                prop_assert!(
                    batch.len() <= max_batch,
                    "batch of {} exceeds cap {max_batch}", batch.len()
                );
                let span = arrivals[*batch.last().unwrap()] - arrivals[batch[0]];
                prop_assert!(
                    span <= window_ns,
                    "batch spans {span}ns, window is {window_ns}ns"
                );
            }
            let flat: Vec<usize> = batches.iter().flatten().copied().collect();
            let expect: Vec<usize> = (0..arrivals.len()).collect();
            prop_assert_eq!(flat, expect, "tickets dropped, duplicated or reordered");
        }

        /// The caller-visible deadline: while a batch is pending, remaining
        /// time decreases to 0 at exactly `opened + window` and a push after
        /// that seals the old batch before admitting the newcomer.
        #[test]
        fn accumulator_deadline_is_exact(
            open_at in 0u64..1_000_000,
            window_ns in 1u64..1_000_000,
            late_by in 1u64..1_000_000,
        ) {
            let mut acc: Accumulator<u32> = Accumulator::new(1024, window_ns);
            prop_assert_eq!(acc.remaining_ns(open_at), None);
            prop_assert!(acc.push(0, open_at).is_empty());
            prop_assert_eq!(acc.remaining_ns(open_at), Some(window_ns));
            prop_assert_eq!(acc.remaining_ns(open_at + window_ns), Some(0));
            // A straggler exactly at the deadline still joins …
            prop_assert!(acc.push(1, open_at + window_ns).is_empty());
            // … one after it seals the pending batch first.
            let sealed = acc.push(2, open_at + window_ns + late_by);
            prop_assert_eq!(sealed, vec![vec![0, 1]]);
            prop_assert_eq!(acc.flush(), vec![2]);
        }
    }
}
