//! The out-of-process message-passing backend: one shard worker **process**
//! per rank, every byte on a real socket.
//!
//! [`SocketMp`] is [`super::ChannelMp`] with the thread boundary promoted to
//! a process boundary. The host spawns one `cgselect-shard-worker` child per
//! shard and speaks the exact same versioned, batch-sequence-numbered
//! command/reply protocol (`super::protocol`) over a Unix-domain control
//! socket — each frame additionally `u32`-LE length-prefixed, because a
//! stream has no message boundaries (the framing is TCP-ready: nothing
//! below assumes the stream is local). Shard-to-shard collectives cross a
//! second socket mesh, the **fabric**: each worker implements the runtime's
//! [`cgselect_runtime::FabricLink`] transport over peer sockets and drives
//! an ordinary [`cgselect_runtime::Proc`] through
//! [`cgselect_runtime::Machine::fabric_proc`]. Because the virtual-time
//! model charges modeled bytes computed *before* encoding, and all three
//! backends run the identical `super::ops` shard code, answers,
//! collective-round counts and virtual-time makespans are identical across
//! transports — the property `tests/backend_conformance.rs` pins down.
//!
//! # Membership: join, leave, migrate, recover
//!
//! Unlike the fixed worker rings of the in-process backends, the socket
//! fabric is rebuilt on demand (fresh socket paths per epoch), which makes
//! shard membership a runtime operation:
//!
//! * [`SocketMp::replace_worker`] — bucket-granular **shard migration**:
//!   export the shard's full state (data, bucket runs, the deterministic
//!   ε-sketch mid-stream), spawn a fresh process, import the snapshot
//!   exactly, splice the newcomer into the fabric and retire the old
//!   process. The shard is bit-identical after the move, so the host's
//!   cached histogram stays warm.
//! * [`SocketMp::join_worker`] / [`SocketMp::retire_worker`] — grow or
//!   shrink the ring; a retiring shard's data merges into a survivor, and
//!   its ε-sketch merges too ([`EpsSketch::merge`] is closed under the
//!   error bound, so the union sketch keeps a provable guarantee).
//! * [`SocketMp::recover`] — "detect, re-shard, keep serving": ping every
//!   worker, respawn the dead ones empty, reset the survivors' indexes,
//!   rebuild the fabric and clear the poison so the engine serves again
//!   (the dead shards' data is lost; the surviving multiset remains exact).
//!
//! Failure semantics otherwise mirror [`super::ChannelMp`]: a worker that
//! dies mid-collective surfaces within one reply deadline as a typed
//! [`BackendError`] (never a hang), the backend poisons, and — uniquely
//! here — [`SocketMp::recover`] can un-poison it.

use std::io::{Read, Write};
use std::marker::PhantomData;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cgselect_balance::Balancer;
use cgselect_core::{SampleSortAlgo, SelectionConfig};
use cgselect_runtime::{
    panic_message, FabricLink, FabricPoll, FabricRecvError, Key, Machine, MachineModel, OrdF64,
    Proc, Topology, WireEnvelope,
};
use cgselect_seqsel::{LocalKernel, SepBound};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::index::{BucketStats, ShardIndex};
use crate::sketch::EpsSketch;
use crate::EngineConfig;

use super::ops::{self, Shard};
use super::protocol::{
    self, WorkerConfig, CMD_EXIT, CMD_EXPORT, CMD_FABRIC_BIND, CMD_FABRIC_CONNECT, CMD_IMPORT,
    CMD_INIT, CMD_PING, REPLY_OK,
};
use super::wire::{Reader, WireResult, Writer};
use super::{
    BackendError, BackendKind, BatchPlan, ExecBackend, RecoveryReport, ShardBatchOutcome,
    ShardDeletion,
};

/// Tuning of the [`SocketMp`] backend.
#[derive(Clone, Debug)]
pub struct SocketMpTuning {
    /// How long the host waits for a round's reply frames before declaring
    /// the silent workers [`BackendError::WorkerUnresponsive`]. One deadline
    /// covers the whole collect loop. Keep comfortably **above**
    /// `proc_timeout` (see [`super::ChannelMpTuning::reply_timeout`]).
    pub reply_timeout: Duration,
    /// The workers' collective receive timeout (how long a shard blocked in
    /// a collective waits for a dead peer before failing itself).
    pub proc_timeout: Duration,
    /// How long the host waits for a spawned worker process to connect and
    /// acknowledge its deployment configuration.
    pub spawn_timeout: Duration,
}

impl Default for SocketMpTuning {
    fn default() -> Self {
        SocketMpTuning {
            reply_timeout: Duration::from_secs(60),
            proc_timeout: Duration::from_secs(30),
            spawn_timeout: Duration::from_secs(10),
        }
    }
}

impl SocketMpTuning {
    /// Defaults: 60 s reply timeout, 30 s collective timeout, 10 s spawn
    /// timeout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style reply-timeout choice.
    pub fn reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Builder-style collective-timeout choice.
    pub fn proc_timeout(mut self, timeout: Duration) -> Self {
        self.proc_timeout = timeout;
        self
    }

    /// Builder-style spawn-timeout choice.
    pub fn spawn_timeout(mut self, timeout: Duration) -> Self {
        self.spawn_timeout = timeout;
        self
    }
}

// ---------------------------------------------------------------------
// Stream framing: every protocol frame on a byte stream is u32-LE
// length-prefixed. Nothing here assumes Unix sockets specifically — the
// same functions would drive a TcpStream.
// ---------------------------------------------------------------------

/// Upper bound on a single frame (1 GiB) — a corrupt length prefix must
/// not trigger a gigantic allocation.
const MAX_FRAME_BYTES: u32 = 1 << 30;

fn write_stream_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<()> {
    w.write_all(&(frame.len() as u32).to_le_bytes())?;
    w.write_all(frame)?;
    w.flush()
}

fn read_stream_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Locates the `cgselect-shard-worker` binary: the `CGSELECT_WORKER_BIN`
/// environment variable wins; otherwise walk up from the current
/// executable's directory (test binaries live in `target/debug/deps`, the
/// worker in `target/debug`).
fn discover_worker_bin() -> Result<PathBuf, String> {
    if let Ok(p) = std::env::var("CGSELECT_WORKER_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(format!("CGSELECT_WORKER_BIN={} is not a file", p.display()));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe failed: {e}"))?;
    for dir in exe.ancestors().skip(1) {
        let cand = dir.join("cgselect-shard-worker");
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err(format!(
        "cgselect-shard-worker binary not found near {} (build it with \
         `cargo build -p cgselect-engine --bins` or set CGSELECT_WORKER_BIN)",
        exe.display()
    ))
}

fn spawn_err(rank: usize) -> impl Fn(std::io::Error) -> BackendError {
    move |e| BackendError::Spawn { rank, detail: e.to_string() }
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn fabric_path(dir: &Path, epoch: u64, rank: usize) -> PathBuf {
    dir.join(format!("fab-e{epoch}-r{rank}.sock"))
}

// ---------------------------------------------------------------------
// Enum byte codecs for the deployment configuration (INIT frame).
// ---------------------------------------------------------------------

fn balancer_to_u8(b: Balancer) -> u8 {
    match b {
        Balancer::None => 0,
        Balancer::Omlb => 1,
        Balancer::ModOmlb => 2,
        Balancer::DimExchange => 3,
        Balancer::GlobalExchange => 4,
    }
}

fn balancer_from_u8(v: u8) -> Option<Balancer> {
    Some(match v {
        0 => Balancer::None,
        1 => Balancer::Omlb,
        2 => Balancer::ModOmlb,
        3 => Balancer::DimExchange,
        4 => Balancer::GlobalExchange,
        _ => return None,
    })
}

fn topology_to_u8(t: Topology) -> u8 {
    match t {
        Topology::Crossbar => 0,
        Topology::Hypercube => 1,
        Topology::Mesh2D => 2,
    }
}

fn topology_from_u8(v: u8) -> Option<Topology> {
    Some(match v {
        0 => Topology::Crossbar,
        1 => Topology::Hypercube,
        2 => Topology::Mesh2D,
        _ => return None,
    })
}

fn kernel_to_u8(k: Option<LocalKernel>) -> u8 {
    match k {
        None => 0,
        Some(LocalKernel::Deterministic) => 1,
        Some(LocalKernel::Randomized) => 2,
        Some(LocalKernel::IntroSelect) => 3,
    }
}

fn kernel_from_u8(v: u8) -> Option<Option<LocalKernel>> {
    Some(match v {
        0 => None,
        1 => Some(LocalKernel::Deterministic),
        2 => Some(LocalKernel::Randomized),
        3 => Some(LocalKernel::IntroSelect),
        _ => return None,
    })
}

fn sort_to_u8(s: SampleSortAlgo) -> u8 {
    match s {
        SampleSortAlgo::Psrs => 0,
        SampleSortAlgo::Bitonic => 1,
        SampleSortAlgo::GatherSort => 2,
    }
}

fn sort_from_u8(v: u8) -> Option<SampleSortAlgo> {
    Some(match v {
        0 => SampleSortAlgo::Psrs,
        1 => SampleSortAlgo::Bitonic,
        2 => SampleSortAlgo::GatherSort,
        _ => return None,
    })
}

/// Everything a worker process needs to serve, parsed from its INIT frame.
struct WorkerDeployment {
    rank: usize,
    sketch_capacity: usize,
    proc_timeout: Duration,
    dir: PathBuf,
    model: MachineModel,
    selection: SelectionConfig,
    balancer: Balancer,
}

/// Encodes the INIT command. The leading wire tag names the element type so
/// the (monomorphic) worker binary can dispatch to the right `serve::<T>`.
fn encode_init<T: Key>(
    rank: usize,
    cfg: &EngineConfig,
    proc_timeout: Duration,
    dir: &Path,
) -> Vec<u8> {
    let mut w = Writer::new(CMD_INIT);
    w.u8(T::WIRE_TAG);
    w.usize(rank);
    w.usize(cfg.sketch_capacity);
    w.u64(proc_timeout.as_nanos() as u64);
    w.str(&dir.display().to_string());
    w.f64(cfg.model.tau);
    w.f64(cfg.model.mu);
    w.f64(cfg.model.t_op);
    w.u8(topology_to_u8(cfg.model.topology));
    w.f64(cfg.model.hop_cost);
    let s = &cfg.selection;
    w.u64(s.seed);
    w.u8(balancer_to_u8(s.balancer));
    w.usize(s.threshold_coeff);
    w.usize(s.min_sequential);
    w.f64(s.epsilon);
    w.f64(s.delta_coeff);
    w.u8(kernel_to_u8(s.local_kernel));
    w.u8(sort_to_u8(s.sample_sort));
    w.u64(u64::from(s.max_iters));
    w.u8(balancer_to_u8(cfg.balancer));
    w.into_frame()
}

fn decode_init(body: &[u8]) -> WireResult<WorkerDeployment> {
    let bad = |what: &str| cgselect_runtime::WireMsgError::new(format!("bad INIT field: {what}"));
    let mut r = Reader::new(body);
    let _wire_tag = r.u8()?; // already dispatched on by the binary's main
    let rank = r.usize()?;
    let sketch_capacity = r.usize()?;
    let proc_timeout = Duration::from_nanos(r.u64()?);
    let dir = PathBuf::from(r.str()?);
    let tau = r.f64()?;
    let mu = r.f64()?;
    let t_op = r.f64()?;
    let topology = topology_from_u8(r.u8()?).ok_or_else(|| bad("topology"))?;
    let hop_cost = r.f64()?;
    let model = MachineModel { tau, mu, t_op, topology, hop_cost };
    let selection = SelectionConfig {
        seed: r.u64()?,
        balancer: balancer_from_u8(r.u8()?).ok_or_else(|| bad("selection balancer"))?,
        threshold_coeff: r.usize()?,
        min_sequential: r.usize()?,
        epsilon: r.f64()?,
        delta_coeff: r.f64()?,
        local_kernel: kernel_from_u8(r.u8()?).ok_or_else(|| bad("local kernel"))?,
        sample_sort: sort_from_u8(r.u8()?).ok_or_else(|| bad("sample sort"))?,
        max_iters: r.u64()? as u32,
    };
    let balancer = balancer_from_u8(r.u8()?).ok_or_else(|| bad("engine balancer"))?;
    r.finish()?;
    Ok(WorkerDeployment { rank, sketch_capacity, proc_timeout, dir, model, selection, balancer })
}

// ---------------------------------------------------------------------
// Shard snapshot codec (EXPORT reply payload / IMPORT command payload).
// ---------------------------------------------------------------------

fn encode_snapshot<T: Key>(w: &mut Writer, shard: &Shard<T>) {
    w.keys(&shard.data);
    match &shard.index {
        Some(idx) => {
            w.bool(true);
            // A SepBound is structurally a probe pair: (value, inclusive).
            let pairs: Vec<(T, bool)> = idx.bounds.iter().map(|b| (b.value, b.inclusive)).collect();
            w.probes(&pairs);
            let offsets: Vec<u64> = idx.offsets.iter().map(|&o| o as u64).collect();
            w.u64s(&offsets);
        }
        None => w.bool(false),
    }
    // The ε-sketch rides its canonical byte encoding mid-stream: the
    // restored sketch is bit-identical, accumulated error bound included.
    w.eps_sketch(&shard.sketch);
}

fn decode_snapshot<T: Key>(r: &mut Reader<'_>) -> WireResult<Shard<T>> {
    let data = r.keys::<T>()?;
    let index = if r.bool()? {
        let bounds = r
            .probes::<T>()?
            .into_iter()
            .map(|(value, inclusive)| SepBound { value, inclusive })
            .collect();
        let offsets = r.u64s()?.into_iter().map(|o| o as usize).collect();
        Some(ShardIndex { bounds, offsets })
    } else {
        None
    };
    let sketch = r.eps_sketch::<T>()?;
    Ok(Shard { data, index, sketch })
}

/// The empty snapshot used to *reset* a surviving shard's index during
/// [`SocketMp::recover`] (import in merge mode with nothing to add; merging
/// an empty ε-sketch is the identity, so the survivor's sketch — still a
/// valid summary of its unchanged multiset — is kept as is).
fn empty_snapshot_import<T: Key>() -> Vec<u8> {
    let mut w = Writer::new(CMD_IMPORT);
    w.u8(1); // merge mode
    let empty: Shard<T> = Shard { data: Vec::new(), index: None, sketch: EpsSketch::new(0) };
    encode_snapshot(&mut w, &empty);
    w.into_frame()
}

// =====================================================================
// Host side
// =====================================================================

/// One live shard worker process, as the host sees it.
struct WorkerHandle {
    child: Child,
    /// Write half of the control socket (commands flow here).
    stream: UnixStream,
    /// Reply frames, pumped off the read half by `reader`.
    reply: Receiver<Vec<u8>>,
    reader: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Reaps the child, escalating to SIGKILL if it ignores EXIT.
    fn reap(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5))
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    break;
                }
            }
        }
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// The out-of-process message-passing execution backend (see the
/// [module docs](self)).
pub struct SocketMp<T: Key> {
    dir: PathBuf,
    bin: PathBuf,
    cfg: EngineConfig,
    tuning: SocketMpTuning,
    workers: Vec<WorkerHandle>,
    /// Fabric generation: bumped on every membership change; socket paths
    /// are epoch-scoped so a rebuild never races the mesh it replaces.
    epoch: u64,
    /// Monotonic spawn counter: control-socket paths stay unique across
    /// worker generations at the same rank.
    spawns: u64,
    next_seq: u64,
    poisoned: bool,
    _marker: PhantomData<fn(T)>,
}

impl<T: Key> SocketMp<T> {
    /// Spawns `cfg.nprocs` worker processes with empty shards resident and
    /// wires their collective fabric.
    pub(crate) fn start(cfg: &EngineConfig, tuning: SocketMpTuning) -> Result<Self, BackendError> {
        let bin =
            discover_worker_bin().map_err(|detail| BackendError::Spawn { rank: 0, detail })?;
        let dir = std::env::temp_dir().join(format!(
            "cgselect-mp-{}-{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(spawn_err(0))?;
        let mut host = SocketMp {
            dir,
            bin,
            cfg: cfg.clone(),
            tuning,
            workers: Vec::with_capacity(cfg.nprocs),
            epoch: 0,
            spawns: 0,
            next_seq: 1,
            poisoned: false,
            _marker: PhantomData,
        };
        for rank in 0..cfg.nprocs {
            let w = host.spawn_worker(rank)?;
            host.workers.push(w);
        }
        host.rebuild_fabric()?;
        Ok(host)
    }

    /// Spawns one worker process, hands it the deployment configuration
    /// over its fresh control socket and waits for the acknowledgement.
    fn spawn_worker(&mut self, rank: usize) -> Result<WorkerHandle, BackendError> {
        let err = spawn_err(rank);
        self.spawns += 1;
        let ctrl = self.dir.join(format!("ctrl-{}.sock", self.spawns));
        let listener = UnixListener::bind(&ctrl).map_err(&err)?;
        listener.set_nonblocking(true).map_err(&err)?;
        let mut child =
            Command::new(&self.bin).arg(&ctrl).stdin(Stdio::null()).spawn().map_err(&err)?;
        let deadline = Instant::now() + self.tuning.spawn_timeout;
        let stream = loop {
            match listener.accept() {
                Ok((s, _)) => break s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if child.try_wait().map_err(&err)?.is_some() || Instant::now() > deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        let _ = std::fs::remove_file(&ctrl);
                        return Err(BackendError::Spawn {
                            rank,
                            detail: "worker process did not connect its control socket".into(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(err(e));
                }
            }
        };
        let _ = std::fs::remove_file(&ctrl);
        stream.set_nonblocking(false).map_err(&err)?;
        let mut stream = stream;
        // Deployment configuration rides as the one out-of-band frame
        // (sequence 0); everything after it is the shared protocol.
        let init = encode_init::<T>(rank, &self.cfg, self.tuning.proc_timeout, &self.dir);
        write_stream_frame(&mut stream, &protocol::encode_framed(0, &init)).map_err(&err)?;
        stream.set_read_timeout(Some(self.tuning.spawn_timeout)).map_err(&err)?;
        let ack = read_stream_frame(&mut stream).map_err(&err)?;
        stream.set_read_timeout(None).map_err(&err)?;
        let (seq, body) = protocol::split_framed(&ack).map_err(|e| BackendError::Spawn {
            rank,
            detail: format!("bad INIT acknowledgement: {}", e.detail),
        })?;
        if seq != 0 || body.first() != Some(&REPLY_OK) {
            let _ = child.kill();
            let _ = child.wait();
            return Err(BackendError::Spawn {
                rank,
                detail: "worker rejected its deployment configuration".into(),
            });
        }
        let read_half = stream.try_clone().map_err(&err)?;
        let (tx, rx) = unbounded::<Vec<u8>>();
        let reader = std::thread::Builder::new()
            .name(format!("cgselect-socket-host-r{rank}"))
            .spawn(move || {
                let mut read_half = read_half;
                while let Ok(frame) = read_stream_frame(&mut read_half) {
                    if tx.send(frame).is_err() {
                        break;
                    }
                }
                // EOF or error: dropping tx disconnects the reply channel,
                // which the collect loop reports as WorkerUnresponsive.
            })
            .map_err(|e| BackendError::Spawn { rank, detail: e.to_string() })?;
        Ok(WorkerHandle { child, stream, reply: rx, reader: Some(reader) })
    }

    /// Sends one control command to worker `rank` and waits for its reply
    /// payload under the reply timeout. Control calls never poison the
    /// backend themselves — membership verbs decide what a failure means.
    fn control_one(&mut self, rank: usize, body: &[u8]) -> Result<Vec<u8>, BackendError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let w = &mut self.workers[rank];
        if write_stream_frame(&mut w.stream, &protocol::encode_framed(seq, body)).is_err() {
            return Err(BackendError::WorkerUnresponsive { rank });
        }
        let deadline = Instant::now() + self.tuning.reply_timeout;
        protocol::collect_frame(&w.reply, deadline, seq, rank)
            .and_then(|b| protocol::decode_reply_status(rank, b))
    }

    /// Sends per-rank control bodies to every worker and collects each
    /// reply individually under one shared deadline.
    fn control_round(&mut self, bodies: Vec<Vec<u8>>) -> Vec<Result<Vec<u8>, BackendError>> {
        debug_assert_eq!(bodies.len(), self.workers.len());
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut sent = vec![true; self.workers.len()];
        for (rank, (w, body)) in self.workers.iter_mut().zip(&bodies).enumerate() {
            sent[rank] =
                write_stream_frame(&mut w.stream, &protocol::encode_framed(seq, body)).is_ok();
        }
        let deadline = Instant::now() + self.tuning.reply_timeout;
        self.workers
            .iter()
            .enumerate()
            .map(|(rank, w)| {
                if !sent[rank] {
                    return Err(BackendError::WorkerUnresponsive { rank });
                }
                protocol::collect_frame(&w.reply, deadline, seq, rank)
                    .and_then(|b| protocol::decode_reply_status(rank, b))
            })
            .collect()
    }

    /// Tears down every worker's fabric and wires a fresh epoch: a BIND
    /// round (each worker drops its `Proc`, learns its — possibly new —
    /// rank and listens on an epoch-scoped socket), then a CONNECT round
    /// (the mesh is established and each worker builds its new `Proc`).
    fn rebuild_fabric(&mut self) -> Result<(), BackendError> {
        self.epoch += 1;
        let p = self.workers.len();
        let bind_bodies: Vec<Vec<u8>> = (0..p)
            .map(|rank| {
                let mut w = Writer::new(CMD_FABRIC_BIND);
                w.u64(self.epoch);
                w.usize(rank);
                w.usize(p);
                w.into_frame()
            })
            .collect();
        for r in self.control_round(bind_bodies) {
            r?;
        }
        let mut connect = Writer::new(CMD_FABRIC_CONNECT);
        connect.u64(self.epoch);
        let connect = connect.into_frame();
        for r in self.control_round(vec![connect; p]) {
            r?;
        }
        Ok(())
    }

    /// Re-reads every shard's size with one empty-ingest round (zero
    /// collectives, zero virtual time) — the resync after membership moves.
    fn sizes_round(&mut self) -> Result<Vec<u64>, BackendError> {
        let body = protocol::encode_ingest::<T>(&[]);
        let payloads = self.round_trip(vec![body; self.workers.len()])?;
        self.decode_all(payloads, protocol::decode_u64_reply)
    }

    /// The data-plane round trip: identical contract to
    /// [`super::ChannelMp`]'s — shared reply deadline, sequence-stamped
    /// frames, root-cause triage, poisoning on failure.
    fn round_trip(&mut self, bodies: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, BackendError> {
        if self.poisoned {
            return Err(BackendError::Poisoned);
        }
        let results = self.control_round(bodies);
        let mut payloads = Vec::with_capacity(results.len());
        let mut failures: Vec<BackendError> = Vec::new();
        for r in results {
            match r {
                Ok(p) => payloads.push(p),
                Err(e) => failures.push(e),
            }
        }
        if failures.is_empty() {
            return Ok(payloads);
        }
        self.poisoned = true;
        Err(protocol::triage(failures))
    }

    fn broadcast_frames(&self, body: Vec<u8>) -> Vec<Vec<u8>> {
        vec![body; self.workers.len()]
    }

    fn decode_all<R>(
        &mut self,
        payloads: Vec<Vec<u8>>,
        decode: impl Fn(usize, &[u8]) -> Result<R, BackendError>,
    ) -> Result<Vec<R>, BackendError> {
        let mut out = Vec::with_capacity(payloads.len());
        for (rank, body) in payloads.iter().enumerate() {
            match decode(rank, body) {
                Ok(v) => out.push(v),
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Sends EXIT and reaps one worker (escalating to SIGKILL if ignored).
    fn shutdown_worker(&mut self, mut w: WorkerHandle) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let _ = write_stream_frame(&mut w.stream, &protocol::encode_framed(seq, &[CMD_EXIT]));
        w.reap();
    }
}

impl<T: Key> ExecBackend<T> for SocketMp<T> {
    fn nprocs(&self) -> usize {
        self.workers.len()
    }

    fn kind(&self) -> BackendKind {
        BackendKind::SocketMp
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn ingest(&mut self, chunks: Vec<Vec<T>>) -> Result<Vec<u64>, BackendError> {
        assert_eq!(chunks.len(), self.workers.len(), "one ingest chunk per shard");
        let bodies = chunks.iter().map(|chunk| protocol::encode_ingest(chunk)).collect();
        let payloads = self.round_trip(bodies)?;
        self.decode_all(payloads, protocol::decode_u64_reply)
    }

    fn delete(&mut self, values: Vec<T>) -> Result<Vec<ShardDeletion>, BackendError> {
        let payloads = self.round_trip(self.broadcast_frames(protocol::encode_delete(&values)))?;
        self.decode_all(payloads, protocol::decode_deletion_reply)
    }

    fn rebalance(&mut self) -> Result<Vec<u64>, BackendError> {
        let payloads = self
            .round_trip(self.broadcast_frames(Writer::new(protocol::CMD_REBALANCE).into_frame()))?;
        self.decode_all(payloads, protocol::decode_u64_reply)
    }

    #[allow(clippy::type_complexity)]
    fn build_index(
        &mut self,
        buckets: usize,
    ) -> Result<(Vec<cgselect_seqsel::SepBound<T>>, Vec<BucketStats<T>>), BackendError> {
        let payloads =
            self.round_trip(self.broadcast_frames(protocol::encode_build_index(buckets)))?;
        let pairs = self.decode_all(payloads, protocol::decode_index_build_reply::<T>)?;
        let mut bounds = Vec::new();
        let mut stats = Vec::with_capacity(pairs.len());
        for (rank, (b, s)) in pairs.into_iter().enumerate() {
            if rank == 0 {
                bounds = b;
            } else {
                debug_assert_eq!(bounds, b, "splitter bounds must agree across shards");
            }
            stats.push(s);
        }
        Ok((bounds, stats))
    }

    fn merge_delta(&mut self) -> Result<Vec<BucketStats<T>>, BackendError> {
        let payloads = self.round_trip(
            self.broadcast_frames(Writer::new(protocol::CMD_MERGE_DELTA).into_frame()),
        )?;
        self.decode_all(payloads, protocol::decode_bucket_stats_reply::<T>)
    }

    fn execute(&mut self, plan: &BatchPlan<T>) -> Result<Vec<ShardBatchOutcome<T>>, BackendError> {
        let payloads = self.round_trip(self.broadcast_frames(protocol::encode_execute(plan)))?;
        self.decode_all(payloads, protocol::decode_outcome::<T>)
    }

    fn export_sketches(&mut self) -> Result<Vec<crate::sketch::EpsSketch<T>>, BackendError> {
        let payloads = self.round_trip(self.broadcast_frames(protocol::encode_export_sketch()))?;
        self.decode_all(payloads, protocol::decode_sketch_reply::<T>)
    }

    fn supports_membership(&self) -> bool {
        true
    }

    fn worker_pids(&self) -> Vec<u32> {
        self.workers.iter().map(|w| w.child.id()).collect()
    }

    fn replace_worker(&mut self, rank: usize) -> Result<Vec<u64>, BackendError> {
        assert!(rank < self.workers.len(), "shard {rank} out of range");
        // Export the shard's full state: data, bucket runs, and the
        // ε-sketch's mid-stream compactor levels, bit-exactly.
        let snap = self.control_one(rank, &Writer::new(CMD_EXPORT).into_frame())?;
        let mut fresh = self.spawn_worker(rank)?;
        let mut import = Writer::new(CMD_IMPORT);
        import.u8(0); // replace mode: exact restore
        import.raw(&snap[1..]); // splice the snapshot past the status byte
        let seq = self.next_seq;
        self.next_seq += 1;
        write_stream_frame(&mut fresh.stream, &protocol::encode_framed(seq, &import.into_frame()))
            .map_err(|_| BackendError::WorkerUnresponsive { rank })?;
        let deadline = Instant::now() + self.tuning.reply_timeout;
        protocol::collect_frame(&fresh.reply, deadline, seq, rank)
            .and_then(|b| protocol::decode_reply_status(rank, b))?;
        let old = std::mem::replace(&mut self.workers[rank], fresh);
        self.shutdown_worker(old);
        self.rebuild_fabric()?;
        self.sizes_round()
    }

    fn join_worker(&mut self) -> Result<Vec<u64>, BackendError> {
        let rank = self.workers.len();
        let w = self.spawn_worker(rank)?;
        self.workers.push(w);
        self.rebuild_fabric()?;
        self.sizes_round()
    }

    fn retire_worker(&mut self, rank: usize) -> Result<Vec<u64>, BackendError> {
        assert!(rank < self.workers.len(), "shard {rank} out of range");
        if self.workers.len() == 1 {
            return Err(BackendError::Unsupported { verb: "retire_worker on the last shard" });
        }
        let snap = self.control_one(rank, &Writer::new(CMD_EXPORT).into_frame())?;
        let old = self.workers.remove(rank);
        self.shutdown_worker(old);
        // Ranks above the retiree shift down; the BIND round renumbers them.
        self.rebuild_fabric()?;
        let dst = rank % self.workers.len();
        let mut import = Writer::new(CMD_IMPORT);
        import.u8(1); // merge mode: append data, drop index, merge sketches
        import.raw(&snap[1..]);
        self.control_one(dst, &import.into_frame())?;
        self.sizes_round()
    }

    fn recover(&mut self) -> Result<RecoveryReport, BackendError> {
        // Detect: one ping round under the shared deadline.
        let ping = Writer::new(CMD_PING).into_frame();
        let results = self.control_round(vec![ping; self.workers.len()]);
        let dead: Vec<usize> =
            results.iter().enumerate().filter_map(|(rank, r)| r.is_err().then_some(rank)).collect();
        // Re-shard: respawn the dead ranks with empty shards (their data is
        // lost — the surviving multiset stays exact), reset every
        // survivor's index (a shard index abandoned mid-batch is not
        // trustworthy; the next exact batch rebuilds it). The survivors'
        // ε-sketches stay: execution permutes but never changes the
        // multiset, so each remains a valid bounded-error summary.
        for &rank in &dead {
            let _ = self.workers[rank].child.kill();
            let fresh = self.spawn_worker(rank)?;
            let mut old = std::mem::replace(&mut self.workers[rank], fresh);
            old.reap();
        }
        let reset = empty_snapshot_import::<T>();
        for rank in 0..self.workers.len() {
            if !dead.contains(&rank) {
                self.control_one(rank, &reset)?;
            }
        }
        self.rebuild_fabric()?;
        self.poisoned = false;
        let sizes = self.sizes_round()?;
        Ok(RecoveryReport { replaced: dead, sizes })
    }
}

impl<T: Key> Drop for SocketMp<T> {
    fn drop(&mut self) {
        // Reap-on-drop: tell every worker to exit and wait for it (SIGKILL
        // if it ignores us), so dropping an engine never leaks processes.
        let seq = self.next_seq;
        for w in &mut self.workers {
            let _ = write_stream_frame(&mut w.stream, &protocol::encode_framed(seq, &[CMD_EXIT]));
        }
        for w in &mut self.workers {
            w.reap();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

// =====================================================================
// Worker side
// =====================================================================

/// Events the per-peer fabric reader threads feed the link's queue.
enum FabricEvent {
    Env(WireEnvelope),
    Down(usize),
}

/// [`FabricLink`] over a Unix-socket mesh: one stream per peer (the
/// lower-ranked side listens, the higher-ranked side connects), one reader
/// thread per peer pumping envelopes into a single queue, loopback via a
/// local sender. Per-peer FIFO holds because each peer's envelopes ride one
/// stream read by one thread; a peer's `Down` marker is sent by that same
/// thread after its last envelope.
struct SocketFabric {
    rank: usize,
    p: usize,
    writers: Vec<Option<UnixStream>>,
    loopback: Sender<FabricEvent>,
    rx: Receiver<FabricEvent>,
    downs: usize,
}

impl SocketFabric {
    /// Establishes this rank's half of the epoch's mesh. Every peer's
    /// listener already exists (the host ran the full BIND round first), so
    /// connects need no retry; the 8-byte rank handshake identifies each
    /// accepted stream.
    fn establish(
        dir: &Path,
        epoch: u64,
        rank: usize,
        p: usize,
        listener: Option<UnixListener>,
        accept_deadline: Instant,
    ) -> std::io::Result<Self> {
        let (tx, rx) = unbounded::<FabricEvent>();
        let mut writers: Vec<Option<UnixStream>> = (0..p).map(|_| None).collect();
        for (peer, slot) in writers.iter_mut().enumerate().take(rank) {
            let mut s = UnixStream::connect(fabric_path(dir, epoch, peer))?;
            s.write_all(&(rank as u64).to_le_bytes())?;
            *slot = Some(s);
        }
        if rank + 1 < p {
            let listener = listener.expect("a non-top rank binds a fabric listener");
            listener.set_nonblocking(true)?;
            let mut accepted = 0usize;
            while accepted < p - rank - 1 {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        s.set_nonblocking(false)?;
                        s.set_read_timeout(Some(Duration::from_secs(10)))?;
                        let mut buf = [0u8; 8];
                        s.read_exact(&mut buf)?;
                        s.set_read_timeout(None)?;
                        let peer = u64::from_le_bytes(buf) as usize;
                        if peer <= rank || peer >= p {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("bad fabric handshake rank {peer}"),
                            ));
                        }
                        writers[peer] = Some(s);
                        accepted += 1;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if Instant::now() > accept_deadline {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::TimedOut,
                                "fabric peers did not all connect",
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        for (peer, stream) in writers.iter().enumerate() {
            let Some(stream) = stream else { continue };
            let mut read_half = stream.try_clone()?;
            let txc = tx.clone();
            std::thread::Builder::new().name(format!("cgselect-fabric-r{rank}p{peer}")).spawn(
                move || {
                    while let Ok(frame) = read_stream_frame(&mut read_half) {
                        let Ok(env) = WireEnvelope::from_frame(&frame) else { break };
                        if txc.send(FabricEvent::Env(env)).is_err() {
                            return;
                        }
                    }
                    let _ = txc.send(FabricEvent::Down(peer));
                },
            )?;
        }
        // The worker's own listener socket file is no longer needed once
        // the mesh is up.
        let _ = std::fs::remove_file(fabric_path(dir, epoch, rank));
        Ok(SocketFabric { rank, p, writers, loopback: tx, rx, downs: 0 })
    }
}

impl FabricLink for SocketFabric {
    fn deliver(&mut self, dst: usize, env: WireEnvelope) -> Result<(), String> {
        if dst == self.rank {
            return self.loopback.send(FabricEvent::Env(env)).map_err(|_| "loopback closed".into());
        }
        let Some(stream) = self.writers.get_mut(dst).and_then(Option::as_mut) else {
            return Err(format!("no fabric link to rank {dst}"));
        };
        write_stream_frame(stream, &env.to_frame()).map_err(|e| e.to_string())
    }

    fn poll(&mut self, timeout: Duration) -> Result<FabricPoll, FabricRecvError> {
        if self.p > 1 && self.downs >= self.p - 1 && self.rx.is_empty() {
            return Err(FabricRecvError::Closed);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(FabricEvent::Env(env)) => Ok(FabricPoll::Message(env)),
            Ok(FabricEvent::Down(peer)) => {
                self.downs += 1;
                Ok(FabricPoll::PeerDown(peer))
            }
            Err(RecvTimeoutError::Timeout) => Err(FabricRecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(FabricRecvError::Closed),
        }
    }

    fn pending(&self) -> usize {
        self.rx.len()
    }

    fn drain_pending(&mut self) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        while let Ok(ev) = self.rx.try_recv() {
            match ev {
                FabricEvent::Env(env) => out.push((env.src, env.tag)),
                FabricEvent::Down(_) => self.downs += 1,
            }
        }
        out
    }
}

/// A fabric listener bound by the BIND round, waiting for the CONNECT round
/// to establish the mesh.
struct PendingFabric {
    epoch: u64,
    rank: usize,
    p: usize,
    listener: Option<UnixListener>,
}

/// Entry point of the `cgselect-shard-worker` binary: connects the control
/// socket named by `argv[1]`, reads the INIT frame, and dispatches to the
/// monomorphic serve loop for the element type named by the frame's wire
/// tag. Returns the process exit code.
pub fn worker_main() -> i32 {
    let Some(ctrl) = std::env::args().nth(1) else {
        eprintln!("usage: cgselect-shard-worker <control-socket-path>");
        return 2;
    };
    let mut stream = match UnixStream::connect(&ctrl) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cgselect-shard-worker: connect {ctrl}: {e}");
            return 2;
        }
    };
    let frame = match read_stream_frame(&mut stream) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cgselect-shard-worker: read INIT: {e}");
            return 2;
        }
    };
    let body = match protocol::split_framed(&frame) {
        Ok((0, body)) if body.first() == Some(&CMD_INIT) && body.len() >= 2 => body.to_vec(),
        _ => {
            eprintln!("cgselect-shard-worker: malformed INIT frame");
            return 2;
        }
    };
    // body[1] is the wire tag: dispatch to the right monomorphization.
    match body[1] {
        u8::WIRE_TAG => serve::<u8>(stream, &body),
        u16::WIRE_TAG => serve::<u16>(stream, &body),
        u32::WIRE_TAG => serve::<u32>(stream, &body),
        u64::WIRE_TAG => serve::<u64>(stream, &body),
        u128::WIRE_TAG => serve::<u128>(stream, &body),
        usize::WIRE_TAG => serve::<usize>(stream, &body),
        i8::WIRE_TAG => serve::<i8>(stream, &body),
        i16::WIRE_TAG => serve::<i16>(stream, &body),
        i32::WIRE_TAG => serve::<i32>(stream, &body),
        i64::WIRE_TAG => serve::<i64>(stream, &body),
        i128::WIRE_TAG => serve::<i128>(stream, &body),
        isize::WIRE_TAG => serve::<isize>(stream, &body),
        OrdF64::WIRE_TAG => serve::<OrdF64>(stream, &body),
        other => {
            eprintln!("cgselect-shard-worker: unknown wire tag {other}");
            2
        }
    }
}

/// The worker's command loop. Control verbs (ping, fabric wiring, shard
/// export/import, exit) are always served; data-plane verbs require a live
/// fabric `Proc`. A data-plane failure (panic or protocol violation) is
/// reported in the reply frame and drops the `Proc` — the worker keeps
/// serving control verbs, which is what lets the host re-shard around a
/// failure instead of abandoning every survivor.
fn serve<T: Key>(mut stream: UnixStream, init_body: &[u8]) -> i32 {
    let mut dep = match decode_init(init_body) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cgselect-shard-worker: bad INIT: {e}");
            return 2;
        }
    };
    let mut shard: Shard<T> = ops::init_shard(dep.sketch_capacity);
    let mut proc: Option<Proc> = None;
    let mut pending_fabric: Option<PendingFabric> = None;
    let wire_error = |detail: String| {
        let mut w = Writer::new(protocol::REPLY_WIRE_ERROR);
        w.str(&detail);
        w.into_frame()
    };
    // Acknowledge the deployment configuration (sequence 0).
    let ack = Writer::new(REPLY_OK).into_frame();
    if write_stream_frame(&mut stream, &protocol::encode_framed(0, &ack)).is_err() {
        return 1;
    }
    loop {
        let Ok(frame) = read_stream_frame(&mut stream) else {
            // Host gone (engine dropped without EXIT, or host crashed).
            return 0;
        };
        let Ok((seq, body)) = protocol::split_framed(&frame) else {
            // An unframeable command cannot be answered under a matching
            // sequence number; exit and let the host time out.
            return 1;
        };
        let reply = match body.first().copied() {
            Some(CMD_EXIT) => return 0,
            Some(CMD_PING) => Writer::new(REPLY_OK).into_frame(),
            Some(CMD_FABRIC_BIND) => {
                // Tear down the old mesh first: our peers' reader threads
                // must see EOF before the next epoch connects.
                proc = None;
                match (|| -> WireResult<(u64, usize, usize)> {
                    let mut r = Reader::new(body);
                    let epoch = r.u64()?;
                    let new_rank = r.usize()?;
                    let p = r.usize()?;
                    r.finish()?;
                    Ok((epoch, new_rank, p))
                })() {
                    Ok((epoch, new_rank, p)) => {
                        dep.rank = new_rank;
                        let listener = if new_rank + 1 < p {
                            match UnixListener::bind(fabric_path(&dep.dir, epoch, new_rank)) {
                                Ok(l) => Some(l),
                                Err(e) => {
                                    pending_fabric = None;
                                    let r = wire_error(format!("fabric bind failed: {e}"));
                                    if write_stream_frame(
                                        &mut stream,
                                        &protocol::encode_framed(seq, &r),
                                    )
                                    .is_err()
                                    {
                                        return 1;
                                    }
                                    continue;
                                }
                            }
                        } else {
                            None
                        };
                        pending_fabric = Some(PendingFabric { epoch, rank: new_rank, p, listener });
                        Writer::new(REPLY_OK).into_frame()
                    }
                    Err(e) => wire_error(e.detail),
                }
            }
            Some(CMD_FABRIC_CONNECT) => match pending_fabric.take() {
                Some(pf) => {
                    let deadline = Instant::now() + dep.proc_timeout.max(Duration::from_secs(5));
                    match SocketFabric::establish(
                        &dep.dir,
                        pf.epoch,
                        pf.rank,
                        pf.p,
                        pf.listener,
                        deadline,
                    ) {
                        Ok(fabric) => {
                            let machine =
                                Machine::with_model(pf.p, dep.model).recv_timeout(dep.proc_timeout);
                            proc = Some(machine.fabric_proc(pf.rank, Box::new(fabric)));
                            Writer::new(REPLY_OK).into_frame()
                        }
                        Err(e) => wire_error(format!("fabric connect failed: {e}")),
                    }
                }
                None => wire_error("fabric connect without a preceding bind".into()),
            },
            Some(CMD_EXPORT) => {
                let mut w = Writer::new(REPLY_OK);
                encode_snapshot(&mut w, &shard);
                w.into_frame()
            }
            Some(CMD_IMPORT) => match (|| -> WireResult<(u8, Shard<T>)> {
                let mut r = Reader::new(body);
                let mode = r.u8()?;
                let snap = decode_snapshot::<T>(&mut r)?;
                r.finish()?;
                Ok((mode, snap))
            })() {
                Ok((0, snap)) => {
                    // Replace: exact restore — the migrated shard is
                    // indistinguishable from one that never moved.
                    shard = snap;
                    Writer::new(REPLY_OK).into_frame()
                }
                Ok((1, snap)) => {
                    // Merge: absorb the data and *merge* the ε-sketches —
                    // EpsSketch::merge is closed under the error bound, so
                    // the union sketch keeps a provable guarantee without
                    // re-reading the data. The bucket runs no longer
                    // describe the union, so drop the index.
                    shard.data.extend(snap.data);
                    shard.index = None;
                    shard.sketch.merge(&snap.sketch);
                    Writer::new(REPLY_OK).into_frame()
                }
                Ok((mode, _)) => wire_error(format!("unknown import mode {mode}")),
                Err(e) => wire_error(e.detail),
            },
            _ => {
                // Data-plane verb: needs a live fabric Proc.
                let Some(pr) = proc.as_mut() else {
                    let r = wire_error("shard has no fabric (no bind/connect round yet)".into());
                    if write_stream_frame(&mut stream, &protocol::encode_framed(seq, &r)).is_err() {
                        return 1;
                    }
                    continue;
                };
                let cfg = WorkerConfig {
                    rank: dep.rank,
                    sketch_capacity: dep.sketch_capacity,
                    selection: dep.selection.clone(),
                    balancer: dep.balancer,
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    protocol::run_command::<T>(pr, &mut shard, &cfg, body, false)
                }));
                let reply = match outcome {
                    Ok(Ok(payload)) => payload,
                    Ok(Err(protocol_err)) => protocol::encode_protocol_error(&protocol_err),
                    Err(payload) => {
                        let mut w = Writer::new(protocol::REPLY_PANICKED);
                        w.str(&panic_message(payload));
                        w.into_frame()
                    }
                };
                if reply.first() != Some(&REPLY_OK) {
                    // This program failed: the Proc's collective state can
                    // no longer be trusted. Drop it (peers see our fabric
                    // streams close) but keep serving control verbs so the
                    // host can re-shard around the failure.
                    proc = None;
                }
                reply
            }
        };
        if write_stream_frame(&mut stream, &protocol::encode_framed(seq, &reply)).is_err() {
            return 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_frame_round_trips() {
        let cfg = EngineConfig::new(5)
            .model(MachineModel::free())
            .sketch_capacity(17)
            .balancer(Balancer::DimExchange);
        let frame = encode_init::<u64>(3, &cfg, Duration::from_millis(250), Path::new("/tmp/x"));
        assert_eq!(frame[0], CMD_INIT);
        assert_eq!(frame[1], u64::WIRE_TAG);
        let dep = decode_init(&frame).unwrap();
        assert_eq!(dep.rank, 3);
        assert_eq!(dep.sketch_capacity, 17);
        assert_eq!(dep.proc_timeout, Duration::from_millis(250));
        assert_eq!(dep.dir, PathBuf::from("/tmp/x"));
        assert_eq!(dep.model, MachineModel::free());
        assert_eq!(format!("{:?}", dep.selection), format!("{:?}", cfg.selection));
        assert_eq!(dep.balancer, Balancer::DimExchange);
    }

    #[test]
    fn enum_byte_codecs_round_trip() {
        for b in [
            Balancer::None,
            Balancer::Omlb,
            Balancer::ModOmlb,
            Balancer::DimExchange,
            Balancer::GlobalExchange,
        ] {
            assert_eq!(balancer_from_u8(balancer_to_u8(b)), Some(b));
        }
        for t in [Topology::Crossbar, Topology::Hypercube, Topology::Mesh2D] {
            assert_eq!(topology_from_u8(topology_to_u8(t)), Some(t));
        }
        for k in [
            None,
            Some(LocalKernel::Deterministic),
            Some(LocalKernel::Randomized),
            Some(LocalKernel::IntroSelect),
        ] {
            assert_eq!(kernel_from_u8(kernel_to_u8(k)), Some(k));
        }
        for s in [SampleSortAlgo::Psrs, SampleSortAlgo::Bitonic, SampleSortAlgo::GatherSort] {
            assert_eq!(sort_from_u8(sort_to_u8(s)), Some(s));
        }
        assert_eq!(balancer_from_u8(99), None);
        assert_eq!(topology_from_u8(99), None);
        assert_eq!(kernel_from_u8(99), None);
        assert_eq!(sort_from_u8(99), None);
    }

    #[test]
    fn shard_snapshot_round_trips_exactly() {
        let mut shard: Shard<u64> = ops::init_shard(8);
        for x in [5u64, 1, 9, 7, 3, 3, 8, 2, 6, 4, 0, 11, 13, 12] {
            shard.sketch.offer(x);
            shard.data.push(x);
        }
        shard.index = Some(ShardIndex {
            bounds: vec![
                SepBound { value: 4, inclusive: false },
                SepBound { value: 9, inclusive: true },
            ],
            offsets: vec![0, 5, 11, 14],
        });
        let mut w = Writer::new(REPLY_OK);
        encode_snapshot(&mut w, &shard);
        let frame = w.into_frame();
        let mut r = Reader::new(&frame);
        let restored = decode_snapshot::<u64>(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.data, shard.data);
        let idx = restored.index.as_ref().unwrap();
        let orig = shard.index.as_ref().unwrap();
        assert_eq!(idx.bounds, orig.bounds);
        assert_eq!(idx.offsets, orig.offsets);
        assert_eq!(restored.sketch, shard.sketch);
        assert_eq!(restored.sketch.to_bytes(), shard.sketch.to_bytes());
    }

    #[test]
    fn stream_framing_round_trips() {
        let mut buf: Vec<u8> = Vec::new();
        write_stream_frame(&mut buf, b"hello").unwrap();
        write_stream_frame(&mut buf, b"").unwrap();
        write_stream_frame(&mut buf, &[7u8; 300]).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_stream_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_stream_frame(&mut r).unwrap(), b"");
        assert_eq!(read_stream_frame(&mut r).unwrap(), vec![7u8; 300]);
        assert!(read_stream_frame(&mut r).is_err(), "EOF is an error, not a frame");
    }

    #[test]
    fn corrupt_length_prefixes_do_not_allocate() {
        let mut buf: Vec<u8> = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        let err = read_stream_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
