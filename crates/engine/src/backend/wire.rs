//! The byte codec of the message-passing backend's control plane.
//!
//! Every command the [`super::ChannelMp`] host sends to a shard worker, and
//! every reply a worker sends back, crosses the channel as one serialized
//! frame built here — no shared pointers, no in-process shortcuts. This is
//! the dress rehearsal for out-of-process shards: the frames are plain
//! little-endian bytes (element values ride on the [`Key`] wire encoding),
//! so the exact same protocol could be written to a socket.
//!
//! Decoding is **fallible**: a truncated or corrupt frame — e.g. a
//! half-written reply from a dying worker process — surfaces as a typed
//! [`WireMsgError`] that callers convert into
//! [`RunError::WireProtocol`](cgselect_runtime::RunError) and ultimately
//! [`BackendError::Runtime`](super::BackendError), never as an abort of the
//! process that happened to read the frame.

use cgselect_runtime::{CommStats, Key, WireMsgError};
use cgselect_seqsel::SepBound;

use crate::index::{BucketStats, Group};
use crate::obs::{Phase, PhaseSpan, TraceContext, TraceId};
use crate::query::RankSet;
use crate::sketch::EpsSketch;

/// Builds one wire frame.
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new(tag: u8) -> Self {
        Writer { buf: vec![tag] }
    }

    pub(crate) fn into_frame(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Splices pre-encoded wire bytes (e.g. an exported shard snapshot
    /// being forwarded into an import command) into the frame verbatim.
    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn key<T: Key>(&mut self, v: T) {
        v.wire_write(&mut self.buf);
    }

    pub(crate) fn keys<T: Key>(&mut self, vs: &[T]) {
        self.usize(vs.len());
        self.buf.reserve(vs.len() * T::WIRE_BYTES);
        for &v in vs {
            v.wire_write(&mut self.buf);
        }
    }

    pub(crate) fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    pub(crate) fn opt_key<T: Key>(&mut self, v: Option<T>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.key(x);
            }
            None => self.bool(false),
        }
    }

    pub(crate) fn bucket_stats<T: Key>(&mut self, stats: &BucketStats<T>) {
        self.usize(stats.len());
        for &(count, mm) in stats {
            self.u64(count);
            match mm {
                Some((lo, hi)) => {
                    self.bool(true);
                    self.key(lo);
                    self.key(hi);
                }
                None => self.bool(false),
            }
        }
    }

    pub(crate) fn group(&mut self, g: &Group) {
        self.usize(g.lo);
        self.usize(g.hi);
        self.u64(g.n);
        self.u64s(&g.ranks);
        self.usize(g.out.len());
        for &slot in &g.out {
            self.usize(slot);
        }
    }

    pub(crate) fn comm_stats(&mut self, s: &CommStats) {
        self.u64(s.msgs_sent);
        self.u64(s.bytes_sent);
        self.u64(s.msgs_recv);
        self.u64(s.bytes_recv);
        self.u64(s.collective_ops);
    }

    /// Separator bounds ride as `(key, inclusive)` pairs — the same shape
    /// as value probes, kept distinct so the two codecs can diverge.
    pub(crate) fn sep_bounds<T: Key>(&mut self, bounds: &[SepBound<T>]) {
        self.usize(bounds.len());
        for b in bounds {
            self.key(b.value);
            self.bool(b.inclusive);
        }
    }

    /// Value probes ride as `(key, inclusive)` pairs.
    pub(crate) fn probes<T: Key>(&mut self, probes: &[(T, bool)]) {
        self.usize(probes.len());
        for &(v, inclusive) in probes {
            self.key(v);
            self.bool(inclusive);
        }
    }

    /// A rank set rides as its runs — the whole point of the compact
    /// representation is that `TopK(k)` costs one `(0, k)` pair on the
    /// wire, not `k` ranks.
    pub(crate) fn rank_set(&mut self, set: &RankSet) {
        self.usize(set.num_runs());
        for (start, len) in set.runs() {
            self.u64(start);
            self.u64(len);
        }
    }

    /// The batch trace context rides in execute command frames — this is
    /// how request-scoped observability crosses the host/worker boundary.
    pub(crate) fn trace_context(&mut self, ctx: &Option<TraceContext>) {
        match ctx {
            Some(c) => {
                self.bool(true);
                self.u64(c.batch);
                self.u64(c.root.0);
            }
            None => self.bool(false),
        }
    }

    /// An ε-sketch rides as its own length-prefixed byte encoding
    /// ([`EpsSketch::to_bytes`]) so snapshot and export frames share one
    /// canonical codec with the host-side persistence path.
    pub(crate) fn eps_sketch<T: Key>(&mut self, s: &EpsSketch<T>) {
        let bytes = s.to_bytes();
        self.usize(bytes.len());
        self.raw(&bytes);
    }

    /// Per-phase span measurements ride back in execute reply frames.
    pub(crate) fn phase_spans(&mut self, spans: &[PhaseSpan]) {
        self.usize(spans.len());
        for s in spans {
            self.buf.push(s.phase.as_u8());
            self.f64(s.time);
            self.comm_stats(&s.comm);
        }
    }
}

/// Result of decoding one field from a wire frame.
pub(crate) type WireResult<T> = Result<T, WireMsgError>;

/// Consumes one wire frame.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading after the frame's tag byte (which the caller has
    /// already dispatched on).
    pub(crate) fn new(frame: &'a [u8]) -> Self {
        Reader { buf: frame, pos: 1 }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| WireMsgError::new("wire frame length overflow"))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| {
            WireMsgError::new(format!(
                "wire frame truncated: wanted {n} bytes at offset {}, frame holds {}",
                self.pos,
                self.buf.len()
            ))
        })?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> WireResult<bool> {
        Ok(self.u8()? != 0)
    }

    pub(crate) fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes taken")))
    }

    pub(crate) fn usize(&mut self) -> WireResult<usize> {
        Ok(self.u64()? as usize)
    }

    pub(crate) fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> WireResult<String> {
        let len = self.usize()?;
        Ok(String::from_utf8_lossy(self.take(len)?).into_owned())
    }

    pub(crate) fn key<T: Key>(&mut self) -> WireResult<T> {
        Ok(T::wire_read(self.take(T::WIRE_BYTES)?))
    }

    pub(crate) fn keys<T: Key>(&mut self) -> WireResult<Vec<T>> {
        let len = self.usize()?;
        (0..len).map(|_| self.key()).collect()
    }

    pub(crate) fn u64s(&mut self) -> WireResult<Vec<u64>> {
        let len = self.usize()?;
        (0..len).map(|_| self.u64()).collect()
    }

    pub(crate) fn opt_key<T: Key>(&mut self) -> WireResult<Option<T>> {
        if self.bool()? {
            Ok(Some(self.key()?))
        } else {
            Ok(None)
        }
    }

    pub(crate) fn bucket_stats<T: Key>(&mut self) -> WireResult<BucketStats<T>> {
        let len = self.usize()?;
        (0..len)
            .map(|_| {
                let count = self.u64()?;
                let mm = if self.bool()? {
                    let lo = self.key()?;
                    let hi = self.key()?;
                    Some((lo, hi))
                } else {
                    None
                };
                Ok((count, mm))
            })
            .collect()
    }

    pub(crate) fn group(&mut self) -> WireResult<Group> {
        let lo = self.usize()?;
        let hi = self.usize()?;
        let n = self.u64()?;
        let ranks = self.u64s()?;
        let out_len = self.usize()?;
        let out = (0..out_len).map(|_| self.usize()).collect::<WireResult<_>>()?;
        Ok(Group { lo, hi, n, ranks, out })
    }

    pub(crate) fn comm_stats(&mut self) -> WireResult<CommStats> {
        Ok(CommStats {
            msgs_sent: self.u64()?,
            bytes_sent: self.u64()?,
            msgs_recv: self.u64()?,
            bytes_recv: self.u64()?,
            collective_ops: self.u64()?,
        })
    }

    pub(crate) fn sep_bounds<T: Key>(&mut self) -> WireResult<Vec<SepBound<T>>> {
        let len = self.usize()?;
        (0..len)
            .map(|_| {
                let value = self.key()?;
                let inclusive = self.bool()?;
                Ok(SepBound { value, inclusive })
            })
            .collect()
    }

    pub(crate) fn probes<T: Key>(&mut self) -> WireResult<Vec<(T, bool)>> {
        let len = self.usize()?;
        (0..len)
            .map(|_| {
                let v = self.key()?;
                let inclusive = self.bool()?;
                Ok((v, inclusive))
            })
            .collect()
    }

    pub(crate) fn rank_set(&mut self) -> WireResult<RankSet> {
        let len = self.usize()?;
        let runs = (0..len)
            .map(|_| {
                let start = self.u64()?;
                let l = self.u64()?;
                Ok((start, l))
            })
            .collect::<WireResult<_>>()?;
        Ok(RankSet::from_runs(runs))
    }

    pub(crate) fn trace_context(&mut self) -> WireResult<Option<TraceContext>> {
        if self.bool()? {
            let batch = self.u64()?;
            let root = TraceId(self.u64()?);
            Ok(Some(TraceContext { batch, root }))
        } else {
            Ok(None)
        }
    }

    pub(crate) fn eps_sketch<T: Key>(&mut self) -> WireResult<EpsSketch<T>> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        EpsSketch::from_bytes(bytes)
            .ok_or_else(|| WireMsgError::new("malformed ε-sketch payload on the wire"))
    }

    pub(crate) fn phase_spans(&mut self) -> WireResult<Vec<PhaseSpan>> {
        let len = self.usize()?;
        (0..len)
            .map(|_| {
                let byte = self.u8()?;
                let phase = Phase::from_u8(byte).ok_or_else(|| {
                    WireMsgError::new(format!("unknown phase byte {byte:#x} on the wire"))
                })?;
                let time = self.f64()?;
                let comm = self.comm_stats()?;
                Ok(PhaseSpan { phase, time, comm })
            })
            .collect()
    }

    /// Checks the frame was consumed exactly — a cheap wire-format check
    /// applied to every decoded command and reply.
    pub(crate) fn finish(self) -> WireResult<()> {
        if self.pos != self.buf.len() {
            return Err(WireMsgError::new(format!(
                "wire frame has {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::OrdF64;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new(7);
        w.bool(true);
        w.u64(u64::MAX - 5);
        w.usize(12345);
        w.f64(-0.125);
        w.str("hello wire");
        w.key(OrdF64(2.5));
        w.opt_key::<u64>(None);
        w.opt_key(Some(99u64));
        let frame = w.into_frame();
        assert_eq!(frame[0], 7);
        let mut r = Reader::new(&frame);
        assert!(r.bool().unwrap());
        assert_eq!(r.u64().unwrap(), u64::MAX - 5);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "hello wire");
        assert_eq!(r.key::<OrdF64>().unwrap(), OrdF64(2.5));
        assert_eq!(r.opt_key::<u64>().unwrap(), None);
        assert_eq!(r.opt_key::<u64>().unwrap(), Some(99));
        r.finish().unwrap();
    }

    #[test]
    fn aggregate_round_trips() {
        let stats: BucketStats<u64> = vec![(4, Some((1, 9))), (0, None), (2, Some((5, 5)))];
        let group = Group { lo: 2, hi: 5, n: 1000, ranks: vec![3, 700], out: vec![1, 0] };
        let comm = CommStats {
            msgs_sent: 1,
            bytes_sent: 2,
            msgs_recv: 3,
            bytes_recv: 4,
            collective_ops: 5,
        };
        let probes: Vec<(u64, bool)> = vec![(5, false), (5, true), (900, false)];
        let ranks = RankSet::from_runs(vec![(0, 100_000), (500_000, 1), (700_000, 3)]);
        let mut w = Writer::new(0);
        w.keys(&[10u64, 20, 30]);
        w.u64s(&[7, 8]);
        w.bucket_stats(&stats);
        w.group(&group);
        w.comm_stats(&comm);
        w.probes(&probes);
        w.rank_set(&ranks);
        let frame = w.into_frame();
        let mut r = Reader::new(&frame);
        assert_eq!(r.keys::<u64>().unwrap(), vec![10, 20, 30]);
        assert_eq!(r.u64s().unwrap(), vec![7, 8]);
        assert_eq!(r.bucket_stats::<u64>().unwrap(), stats);
        assert_eq!(r.group().unwrap(), group);
        assert_eq!(r.comm_stats().unwrap(), comm);
        assert_eq!(r.probes::<u64>().unwrap(), probes);
        assert_eq!(r.rank_set().unwrap(), ranks);
        r.finish().unwrap();
    }

    #[test]
    fn trace_context_round_trips() {
        let ctx = Some(TraceContext { batch: 42, root: TraceId(u64::MAX - 1) });
        let mut w = Writer::new(0);
        w.trace_context(&ctx);
        w.trace_context(&None);
        let frame = w.into_frame();
        let mut r = Reader::new(&frame);
        assert_eq!(r.trace_context().unwrap(), ctx);
        assert_eq!(r.trace_context().unwrap(), None);
        r.finish().unwrap();
        // The disabled encoding is one byte: observability off must not
        // inflate command frames.
        let mut w = Writer::new(0);
        w.trace_context(&None);
        assert_eq!(w.into_frame().len(), 2, "tag byte + disabled flag");
    }

    #[test]
    fn phase_spans_round_trip() {
        let spans = vec![
            PhaseSpan { phase: Phase::Probes, time: 1.5e-6, comm: CommStats::default() },
            PhaseSpan {
                phase: Phase::Exact,
                time: 0.25,
                comm: CommStats {
                    msgs_sent: 9,
                    bytes_sent: 144,
                    msgs_recv: 9,
                    bytes_recv: 144,
                    collective_ops: 7,
                },
            },
            PhaseSpan { phase: Phase::Sketch, time: 0.0, comm: CommStats::default() },
        ];
        let mut w = Writer::new(0);
        w.phase_spans(&spans);
        w.phase_spans(&[]);
        let frame = w.into_frame();
        let mut r = Reader::new(&frame);
        // f64 rides as raw bits, so the roundtrip is exact — required for
        // the cross-backend span-equality conformance check.
        assert_eq!(r.phase_spans().unwrap(), spans);
        assert_eq!(r.phase_spans().unwrap(), Vec::new());
        r.finish().unwrap();
    }

    #[test]
    fn eps_sketch_rides_the_wire_bit_identically() {
        let mut s = EpsSketch::new(8);
        for x in 0..500u64 {
            s.offer(x.wrapping_mul(0x9E37_79B9) % 1000);
        }
        let mut w = Writer::new(0);
        w.eps_sketch(&s);
        let frame = w.into_frame();
        let mut r = Reader::new(&frame);
        let got: EpsSketch<u64> = r.eps_sketch().unwrap();
        r.finish().unwrap();
        assert_eq!(got, s);
        assert_eq!(got.to_bytes(), s.to_bytes());
        // A truncated sketch payload is a typed error, not a panic.
        let mut r = Reader::new(&frame[..frame.len() - 1]);
        assert!(r.eps_sketch::<u64>().is_err());
    }

    #[test]
    fn unknown_phase_bytes_are_a_typed_error() {
        let frame = {
            let mut w = Writer::new(0);
            w.usize(1);
            w.into_frame()
        };
        let mut frame = frame;
        frame.push(9); // not a Phase discriminant
        frame.extend_from_slice(&[0u8; 48]); // time + comm payload
        let mut r = Reader::new(&frame);
        let err = r.phase_spans().unwrap_err();
        assert!(err.detail.contains("unknown phase byte"), "{err}");
    }

    #[test]
    fn rank_set_wire_size_is_per_run_not_per_rank() {
        // TopK(100_000) must ride as one run, not 100k ranks.
        let ranks = RankSet::from_runs(vec![(0, 100_000)]);
        let mut w = Writer::new(0);
        w.rank_set(&ranks);
        assert!(w.into_frame().len() < 64, "a single run must encode in O(1) bytes");
    }

    #[test]
    fn truncated_frames_are_a_typed_error() {
        // A half-written frame from a dying peer must surface as a decode
        // error the host can convert into `BackendError::Runtime`, never as
        // a panic that aborts the reader.
        let mut w = Writer::new(0);
        w.u64(1);
        let mut frame = w.into_frame();
        frame.pop();
        let mut r = Reader::new(&frame);
        let err = r.u64().unwrap_err();
        assert!(err.detail.contains("wire frame truncated"), "{err}");
    }

    #[test]
    fn truncation_mid_aggregate_is_a_typed_error() {
        // Truncation inside a length-prefixed aggregate (the realistic
        // half-written-reply shape) errors too, at whatever field the bytes
        // run out.
        let mut w = Writer::new(0);
        w.keys(&[10u64, 20, 30]);
        let frame = w.into_frame();
        for cut in 1..frame.len() {
            let mut r = Reader::new(&frame[..cut]);
            assert!(r.keys::<u64>().is_err(), "cut at {cut} must fail to decode");
        }
    }

    #[test]
    fn trailing_bytes_are_a_typed_error() {
        let mut w = Writer::new(0);
        w.u64(7);
        let mut frame = w.into_frame();
        frame.push(0xEE);
        let mut r = Reader::new(&frame);
        r.u64().unwrap();
        let err = r.finish().unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
    }
}
