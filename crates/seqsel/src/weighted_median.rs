//! Weighted median — the pivot rule of the paper's bucket-based algorithm.

use crate::ops::OpCount;

/// Returns the **lower weighted median** of `(key, weight)` items: the
/// smallest key `m` such that the total weight of items with key ≤ `m`
/// reaches ⌈W/2⌉, where `W` is the total weight.
///
/// In the bucket-based selection algorithm (paper §3.2) the keys are the
/// processors' local medians and the weights are their remaining element
/// counts; weighting restores the "a fixed fraction of all elements is
/// discarded every iteration" guarantee *without* requiring the processors
/// to hold equally many elements — that is precisely why the bucket-based
/// algorithm needs no load balancing.
///
/// Zero-weight items (processors whose active window is empty) are
/// effectively ignored.
///
/// # Panics
/// Panics if `items` is empty or the total weight is zero.
pub fn weighted_median<T: Copy + Ord>(items: &[(T, u64)], ops: &mut OpCount) -> T {
    assert!(!items.is_empty(), "weighted_median of no items");
    let total: u64 = items.iter().map(|(_, w)| *w).sum();
    assert!(total > 0, "weighted_median requires positive total weight");

    let mut sorted: Vec<(T, u64)> = items.to_vec();
    ops.moves += sorted.len() as u64;
    let mut cmps = 0u64;
    sorted.sort_unstable_by(|a, b| {
        cmps += 1;
        a.0.cmp(&b.0)
    });
    ops.cmps += cmps;

    let half = total.div_ceil(2);
    let mut acc = 0u64;
    for (v, w) in &sorted {
        acc += w;
        if acc >= half {
            return *v;
        }
    }
    unreachable!("cumulative weight must reach ceil(total/2)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weights_reduce_to_plain_median() {
        let items: Vec<(i64, u64)> = [5, 1, 9, 3, 7].iter().map(|&v| (v, 1)).collect();
        let mut ops = OpCount::new();
        assert_eq!(weighted_median(&items, &mut ops), 5);
    }

    #[test]
    fn heavy_item_dominates() {
        let items = vec![(1i64, 1u64), (2, 1), (100, 10)];
        let mut ops = OpCount::new();
        assert_eq!(weighted_median(&items, &mut ops), 100);
    }

    #[test]
    fn zero_weight_items_are_ignored() {
        let items = vec![(0i64, 0u64), (1, 0), (7, 3), (9, 0)];
        let mut ops = OpCount::new();
        assert_eq!(weighted_median(&items, &mut ops), 7);
    }

    #[test]
    fn lower_median_on_even_split() {
        // weights 2 and 2: ceil(4/2)=2 is reached by the smaller key.
        let items = vec![(10i64, 2u64), (20, 2)];
        let mut ops = OpCount::new();
        assert_eq!(weighted_median(&items, &mut ops), 10);
    }

    #[test]
    fn half_weight_property_holds() {
        // Definition check on a bigger instance: weight below the WM must be
        // < ceil(W/2) and weight up to and including it must be >= ceil(W/2).
        let items: Vec<(u64, u64)> = (0..100).map(|i| (i * 37 % 101, (i % 7) + 1)).collect();
        let mut ops = OpCount::new();
        let m = weighted_median(&items, &mut ops);
        let total: u64 = items.iter().map(|(_, w)| w).sum();
        let below: u64 = items.iter().filter(|(v, _)| *v < m).map(|(_, w)| w).sum();
        let up_to: u64 = items.iter().filter(|(v, _)| *v <= m).map(|(_, w)| w).sum();
        assert!(below < total.div_ceil(2), "below={below} total={total}");
        assert!(up_to >= total.div_ceil(2), "up_to={up_to} total={total}");
    }

    #[test]
    #[should_panic(expected = "no items")]
    fn empty_input_panics() {
        let mut ops = OpCount::new();
        let _ = weighted_median::<u64>(&[], &mut ops);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn all_zero_weights_panic() {
        let mut ops = OpCount::new();
        let _ = weighted_median(&[(1u64, 0u64), (2, 0)], &mut ops);
    }
}
