//! Rank lookups on distributed, globally sorted data.

use cgselect_runtime::{Key, Proc};

/// Given globally sorted distributed data (each processor holds a sorted
/// run; rank-order concatenation is sorted — the output shape of
/// [`crate::sample_sort`] and [`crate::bitonic_sort`]), returns the
/// elements at the requested global `ranks` on **every** processor.
///
/// One all-gather of the counts lets every processor locate each rank's
/// owner; the owner publishes the element via an owner-broadcast. Cost
/// `O(τ log p + μp + |ranks| (τ + μ) log p)`.
///
/// # Panics
/// Panics if a rank is out of range of the total element count.
pub fn select_global_ranks<T: Key>(proc: &mut Proc, sorted_local: &[T], ranks: &[u64]) -> Vec<T> {
    let counts: Vec<u64> = proc.all_gather(sorted_local.len() as u64);
    let total: u64 = counts.iter().sum();
    let mut starts = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u64;
    starts.push(0u64);
    for &c in &counts {
        acc += c;
        starts.push(acc);
    }
    proc.charge_ops(counts.len() as u64);

    let rank_id = proc.rank();
    let mut out = Vec::with_capacity(ranks.len());
    for &r in ranks {
        assert!(r < total, "global rank {r} out of range for {total} elements");
        let mine = (starts[rank_id] <= r && r < starts[rank_id + 1])
            .then(|| sorted_local[(r - starts[rank_id]) as usize]);
        out.push(proc.bcast_from_owner(mine));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel};

    #[test]
    fn fetches_ranks_across_processors() {
        // Sorted distribution: proc i holds [10i, 10i+10).
        let p = 4;
        let out = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let lo = proc.rank() as u64 * 10;
                let mine: Vec<u64> = (lo..lo + 10).collect();
                select_global_ranks(proc, &mine, &[0, 9, 10, 25, 39])
            })
            .unwrap();
        for got in out {
            assert_eq!(got, vec![0, 9, 10, 25, 39]);
        }
    }

    #[test]
    fn handles_empty_runs() {
        let parts: Vec<Vec<u64>> = vec![vec![], (0..5).collect(), vec![], (5..8).collect()];
        let out = Machine::with_model(4, MachineModel::free())
            .run(|proc| {
                let mine = parts[proc.rank()].clone();
                select_global_ranks(proc, &mine, &[0, 4, 5, 7])
            })
            .unwrap();
        for got in out {
            assert_eq!(got, vec![0, 4, 5, 7]);
        }
    }

    #[test]
    fn no_ranks_requested() {
        let out = Machine::with_model(2, MachineModel::free())
            .run(|proc| {
                let mine = vec![proc.rank() as u64];
                select_global_ranks(proc, &mine, &[])
            })
            .unwrap();
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn out_of_range_rank_panics() {
        let err = Machine::new(2)
            .run(|proc| {
                let mine = vec![proc.rank() as u64];
                select_global_ranks(proc, &mine, &[2])
            })
            .unwrap_err();
        assert!(format!("{err}").contains("out of range"), "{err}");
    }
}
