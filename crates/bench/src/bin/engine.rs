//! The persistent engine's two amortization experiments.
//!
//! **Experiment 1 — batching** (the PR-2 claim, `results/engine.{csv,txt}`):
//! for batches of R rank queries over the same resident data, one coalesced
//! multi-select pass vs R single-query calls, on the baseline (index-free)
//! engine — in collective rounds, virtual seconds (CM-5 model), and host
//! wall-clock. Round accounting comes from `cgselect_engine::measure_rounds`,
//! the same helper `tests/engine.rs` asserts on.
//!
//! **Experiment 2 — the resident bucket index**
//! (`results/engine_indexed.{csv,txt}`): the indexed engine vs the PR-2
//! batched baseline on two workloads — fresh distinct-rank batches
//! (localization pays) and a repeated-quantile stream (the histogram fast
//! path pays) — reporting collective ops/query, virtual makespan, wall
//! clock, and histogram hit counts. The indexed exact path clones nothing:
//! the multi-select runs over candidate buckets borrowed in place, so the
//! baseline's per-batch full-shard copy + scan is simply absent.
//!
//! **Experiment 3 — Query API v2 mixed workloads**
//! (`results/engine_api_v2.{csv,txt}`): batches mixing forward ranks with
//! the v2 inverse direction (rank-of-value CDF probes + range counts) on
//! the indexed engine, per-query vs batched and cold vs histogram-warm,
//! on both backends — the whole probe batch rides one vectorized Combine
//! round, and probes the refined splitters bound are served from the
//! cached histogram with zero collectives.
//!
//! **Experiment 4 — observability** (`results/engine_slo.txt`): the same
//! request stream on twin engines, one observing and one not, on both
//! backends. The obs-off twin is the overhead guard — observation must
//! not change a single answer, collective-round count or virtual
//! makespan — and the obs-on twin's `SloAccumulator` emits the SLO line
//! (host-served fraction, max rank error, rounds/query) that
//! `SloPolicy` gates in CI.
//!
//! **Experiment 5 — the ε-sketch serving rung**
//! (`results/engine_sketch.{csv,txt}`): a mixed million-request stream
//! (full mode) that is overwhelmingly `WithinRank`-tolerant, over data
//! whose values equal their ranks so every answer's true error is
//! directly observable. Measures the fraction of the tolerant stream
//! served from the host-global deterministic sketch, pins the sketch
//! rung's attributed collective cost to zero, and checks every sketch
//! answer's *measured* error against the *guarantee* it reported.
//!
//! **Experiment 6 — standing queries vs dashboard re-submission**
//! (`results/engine_standing.{csv,txt}`): a standing p50/p99/p999
//! dashboard over a million-event skewed ingest stream with ordinary
//! query traffic riding alongside. The standing subscriptions piggyback
//! on each tick's user batch (EveryBatch policy); the twin engine serves
//! the identical stream but re-submits the same three quantiles as its
//! own poll batch every tick. Measures the fraction of standing refreshes
//! served at zero collectives from the rebased histogram, the attributed
//! collective ops per refresh on both sides, and that every standing
//! update is bit-equal to the poller's from-scratch answer at the same
//! prefix.
//!
//! Pass `--quick` for a reduced grid. Pass `--check` to exit non-zero
//! unless the indexed engine uses no more collective ops/query than the
//! baseline on both workloads *and* at least 2× fewer on the
//! repeated-quantile workload, the mixed v2 workload batches at least 2×
//! fewer ops/query than per-query execution with ChannelMp round-parity,
//! the histogram-warm inverse stream costs zero collectives, the
//! observability twin-run and SLO thresholds above hold, the sketch
//! rung serves >= 90% of the tolerant stream at zero collectives with
//! measured error within every reported guarantee, and the standing
//! dashboard serves >= 80% of refreshes at zero collectives while
//! beating re-submission >= 3x on collective ops per refresh — the CI
//! perf-smoke regression guard.

use std::time::Instant;

use cgselect_bench::chart::{markdown_table, write_csv, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_engine::{
    measure_rounds, BackendChoice, Bounds, ChannelMpTuning, Engine, EngineConfig, ExecutionMode,
    IndexHealth, Query, RefreshPolicy, Request, Served, SloAccumulator, SloPolicy, SocketMpTuning,
};
use cgselect_workloads::{generate, Distribution};

fn check_mode() -> bool {
    std::env::args().any(|a| a == "--check")
}

/// One mode × workload measurement of experiment 2.
struct Run {
    workload: &'static str,
    mode: &'static str,
    batches: usize,
    queries: usize,
    collective_ops: u64,
    makespan: f64,
    wall: f64,
    health: IndexHealth,
}

impl Run {
    fn ops_per_query(&self) -> f64 {
        self.collective_ops as f64 / self.queries as f64
    }
}

fn drive(
    workload: &'static str,
    mode: &'static str,
    index_buckets: usize,
    backend: BackendChoice,
    data: &[u64],
    p: usize,
    batches: &[Vec<Query>],
) -> Run {
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).index_buckets(index_buckets).backend(backend))
            .expect("engine start");
    engine.ingest(data.to_vec()).expect("ingest");
    let wall0 = Instant::now();
    let mut collective_ops = 0u64;
    let mut makespan = 0.0f64;
    let mut queries = 0usize;
    for batch in batches {
        let report = engine.execute(batch).expect("execute");
        collective_ops += report.collective_ops;
        makespan += report.makespan;
        queries += batch.len();
    }
    Run {
        workload,
        mode,
        batches: batches.len(),
        queries,
        collective_ops,
        makespan,
        wall: wall0.elapsed().as_secs_f64(),
        health: engine.index_health(),
    }
}

/// Experiment 1: batched vs per-query on the baseline engine.
fn batching_experiment(quick: bool, dir: &std::path::Path) {
    let p = 8;
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let batch_sizes: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64, 256] };

    let data: Vec<u64> = generate(Distribution::Random, n, p, 7).into_iter().flatten().collect();
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).index_buckets(0)).expect("engine start");
    engine.ingest(data).expect("ingest");
    let total = engine.len();

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for &r in batch_sizes {
        let queries: Vec<Query> = (0..r)
            .map(|i| Query::Rank((i as u64 * (total - 1)) / r.max(2) as u64 + i as u64 % 3))
            .collect();

        let wall0 = Instant::now();
        let batched =
            measure_rounds(&mut engine, &queries, ExecutionMode::Batched).expect("batched execute");
        let batched_wall = wall0.elapsed().as_secs_f64();

        let wall0 = Instant::now();
        let single =
            measure_rounds(&mut engine, &queries, ExecutionMode::PerQuery).expect("single execute");
        let single_wall = wall0.elapsed().as_secs_f64();

        rows.push(format!(
            "{n},{p},{r},{},{},{:.6},{:.6},{},{},{:.6},{:.6}",
            batched.collective_ops,
            single.collective_ops,
            batched.makespan,
            single.makespan,
            batched.msgs_sent,
            single.msgs_sent,
            batched_wall,
            single_wall
        ));
        table.push(vec![
            r.to_string(),
            batched.collective_ops.to_string(),
            single.collective_ops.to_string(),
            format!("{:.1}x", single.collective_ops as f64 / batched.collective_ops as f64),
            format!("{:.2}", batched.rounds_per_query()),
            format!("{:.2}", single.rounds_per_query()),
            format!("{:.4}", batched.makespan),
            format!("{:.4}", single.makespan),
            format!("{:.1}x", single.makespan / batched.makespan.max(1e-12)),
        ]);
        println!(
            "R={r:>4}: collective ops {:>6} batched vs {:>7} single ({:.1}x, \
             {:.2} vs {:.2} rounds/query); virtual {:.4}s vs {:.4}s; wall {:.3}s vs {:.3}s",
            batched.collective_ops,
            single.collective_ops,
            single.collective_ops as f64 / batched.collective_ops as f64,
            batched.rounds_per_query(),
            single.rounds_per_query(),
            batched.makespan,
            single.makespan,
            batched_wall,
            single_wall
        );
    }

    let out = format!(
        "Batched vs per-query execution on the persistent engine (baseline, index off)\n\
         (n = {n}, p = {p}, random resident data; virtual times under the CM-5 model)\n\n{}\n\
         One multi-select pass resolves a whole batch in O(log n + R) pivot\n\
         rounds; R single-rank calls pay O(R log n). The ratio grows with R.\n",
        markdown_table(
            &[
                "R",
                "coll. ops (batch)",
                "coll. ops (single)",
                "ops ratio",
                "rounds/query (batch)",
                "rounds/query (single)",
                "virtual s (batch)",
                "virtual s (single)",
                "time ratio"
            ],
            &table
        )
    );
    write_csv(
        &dir.join("engine.csv"),
        "n,p,batch,collective_ops_batched,collective_ops_single,makespan_batched,\
         makespan_single,msgs_batched,msgs_single,wall_batched,wall_single",
        &rows,
    );
    write_text(&dir.join("engine.txt"), &out);
    print!("{out}");
}

/// Experiment 2: resident bucket index vs the batched baseline.
fn index_experiment(quick: bool, dir: &std::path::Path) -> bool {
    let p = 8;
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let data: Vec<u64> = generate(Distribution::Random, n, p, 11).into_iter().flatten().collect();
    let total = data.len() as u64;

    // Workload A: fresh distinct ranks every batch (no repeats to cache).
    let distinct_batches: Vec<Vec<Query>> = (0..8u64)
        .map(|b| (0..32u64).map(|i| Query::Rank((i * total / 32 + b * 97 + i) % total)).collect())
        .collect();
    // Workload B: the same quantile set, batch after batch (a dashboard).
    let quantiles: Vec<Query> = [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        .into_iter()
        .map(Query::quantile)
        .chain([Query::Median])
        .collect();
    let repeated_batches: Vec<Vec<Query>> = (0..16).map(|_| quantiles.clone()).collect();

    let local = BackendChoice::LocalSpmd;
    let mp = || BackendChoice::ChannelMp(ChannelMpTuning::default());
    let sock = || BackendChoice::SocketMp(SocketMpTuning::default());
    let runs = vec![
        drive("distinct-ranks", "baseline", 0, local.clone(), &data, p, &distinct_batches),
        drive("distinct-ranks", "indexed", 64, local.clone(), &data, p, &distinct_batches),
        drive("distinct-ranks", "indexed-mp", 64, mp(), &data, p, &distinct_batches),
        drive("distinct-ranks", "indexed-sock", 64, sock(), &data, p, &distinct_batches),
        drive("repeated-quantiles", "baseline", 0, local.clone(), &data, p, &repeated_batches),
        drive("repeated-quantiles", "indexed", 64, local, &data, p, &repeated_batches),
        drive("repeated-quantiles", "indexed-mp", 64, mp(), &data, p, &repeated_batches),
        drive("repeated-quantiles", "indexed-sock", 64, sock(), &data, p, &repeated_batches),
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for run in &runs {
        rows.push(format!(
            "{},{},{n},{p},{},{},{},{:.4},{:.6},{:.6},{},{},{}",
            run.workload,
            run.mode,
            run.batches,
            run.queries,
            run.collective_ops,
            run.ops_per_query(),
            run.makespan,
            run.wall,
            run.health.histogram_hits,
            run.health.rebuilds,
            run.health.buckets,
        ));
        table.push(vec![
            run.workload.to_string(),
            run.mode.to_string(),
            run.queries.to_string(),
            run.collective_ops.to_string(),
            format!("{:.2}", run.ops_per_query()),
            format!("{:.5}", run.makespan),
            format!("{:.3}", run.wall),
            run.health.histogram_hits.to_string(),
        ]);
        println!(
            "{:>18} | {:>8}: {:>6} coll. ops over {} queries ({:.2}/query); \
             virtual {:.5}s; wall {:.3}s; histogram hits {}",
            run.workload,
            run.mode,
            run.collective_ops,
            run.queries,
            run.ops_per_query(),
            run.makespan,
            run.wall,
            run.health.histogram_hits
        );
    }

    let find = |w: &str, m: &str| {
        runs.iter().find(|r| r.workload == w && r.mode == m).expect("run recorded")
    };
    let ratio = |w: &str| {
        find(w, "baseline").ops_per_query() / find(w, "indexed").ops_per_query().max(1e-12)
    };
    let out = format!(
        "Resident bucket index vs the batched baseline\n\
         (n = {n}, p = {p}, random resident data; virtual times under the CM-5 model;\n\
         indexed-mp = the same indexed engine on the message-passing ChannelMp backend;\n\
         indexed-sock = on SocketMp, shard workers as child processes over Unix sockets)\n\n{}\n\
         Localization against the cached per-bucket histogram confines each\n\
         rank to a candidate-bucket window (borrowed in place — the baseline's\n\
         per-batch full-shard clone does not exist on the indexed path), and\n\
         answer-refined splitters turn repeated quantiles into histogram-only\n\
         lookups. Collective-ops ratios: distinct-ranks {:.1}x, \n\
         repeated-quantiles {:.1}x.\n",
        markdown_table(
            &[
                "workload",
                "mode",
                "queries",
                "coll. ops",
                "ops/query",
                "virtual s",
                "wall s",
                "histogram hits"
            ],
            &table
        ),
        ratio("distinct-ranks"),
        ratio("repeated-quantiles"),
    );
    write_csv(
        &dir.join("engine_indexed.csv"),
        "workload,mode,n,p,batches,queries,collective_ops,ops_per_query,makespan,wall_s,\
         histogram_hits,index_rebuilds,buckets",
        &rows,
    );
    write_text(&dir.join("engine_indexed.txt"), &out);
    print!("{out}");

    // The regression guard CI asserts on.
    let mut ok = true;
    for w in ["distinct-ranks", "repeated-quantiles"] {
        if ratio(w) < 1.0 {
            eprintln!("PERF REGRESSION: indexed ops/query exceeds baseline on {w}");
            ok = false;
        }
        // Backend-neutrality guard: the message-passing backend must pay
        // exactly the collective-round budget of the in-process session on
        // the engine_indexed workload — a drift means a backend diverged
        // from the shared per-shard ops.
        let (spmd, chan) = (find(w, "indexed"), find(w, "indexed-mp"));
        if spmd.collective_ops != chan.collective_ops {
            eprintln!(
                "BACKEND REGRESSION: ChannelMp used {} collective ops on {w}, \
                 LocalSpmd used {}",
                chan.collective_ops, spmd.collective_ops
            );
            ok = false;
        }
        // The same pin for the out-of-process workers: modeled message
        // sizes are computed before wire encoding, so crossing a real
        // socket must cost identical collective rounds.
        let sock = find(w, "indexed-sock");
        if sock.collective_ops != chan.collective_ops {
            eprintln!(
                "BACKEND REGRESSION: SocketMp used {} collective ops on {w}, \
                 ChannelMp used {}",
                sock.collective_ops, chan.collective_ops
            );
            ok = false;
        }
    }
    if ratio("repeated-quantiles") < 2.0 {
        eprintln!(
            "PERF REGRESSION: repeated-quantile ops/query ratio {:.2} < 2.0",
            ratio("repeated-quantiles")
        );
        ok = false;
    }
    ok
}

/// One mode × workload measurement of experiment 3.
struct V2Run {
    workload: &'static str,
    mode: &'static str,
    queries: usize,
    collective_ops: u64,
    makespan: f64,
    wall: f64,
    histogram_served: u64,
}

impl V2Run {
    fn ops_per_query(&self) -> f64 {
        self.collective_ops as f64 / self.queries as f64
    }
}

/// Runs one v2 request stream on a fresh indexed engine, warmed by
/// `warmup` first; the "per-query" mode executes every request as its own
/// single-element batch.
fn drive_v2(
    workload: &'static str,
    mode: &'static str,
    backend: BackendChoice,
    data: &[u64],
    p: usize,
    warmup: &[Request<u64>],
    batches: &[Vec<Request<u64>>],
) -> V2Run {
    let per_request = mode == "per-query";
    let mut engine: Engine<u64> =
        Engine::new(EngineConfig::new(p).backend(backend)).expect("engine start");
    engine.ingest(data.to_vec()).expect("ingest");
    if !warmup.is_empty() {
        engine.run(warmup).expect("warmup");
    }
    let wall0 = Instant::now();
    let mut collective_ops = 0u64;
    let mut makespan = 0.0f64;
    let mut queries = 0usize;
    let mut histogram_served = 0u64;
    for batch in batches {
        // Per-request mode runs the same stream as 1-element batches; the
        // measurement body is shared so the two modes can never drift.
        let chunk = if per_request { 1 } else { batch.len() };
        for unit in batch.chunks(chunk) {
            let report = engine.run(unit).expect("run");
            collective_ops += report.collective_ops;
            makespan += report.makespan;
            queries += unit.len();
            histogram_served +=
                report.outcomes.iter().filter(|o| o.served == Served::Histogram).count() as u64;
        }
    }
    V2Run {
        workload,
        mode,
        queries,
        collective_ops,
        makespan,
        wall: wall0.elapsed().as_secs_f64(),
        histogram_served,
    }
}

/// Experiment 3: the v2 mixed-kind workload (forward ranks + rank-of +
/// range counts).
fn api_v2_experiment(quick: bool, dir: &std::path::Path) -> bool {
    let p = 8;
    let n: usize = if quick { 1 << 16 } else { 1 << 19 };
    let data: Vec<u64> = generate(Distribution::Random, n, p, 13).into_iter().flatten().collect();
    let total = data.len() as u64;
    let max = *data.iter().max().expect("nonempty");

    // Mixed-kind batches: fresh ranks, CDF probes and range counts each
    // batch (nothing for the histogram to have cached).
    let rounds = if quick { 4u64 } else { 8 };
    let mixed: Vec<Vec<Request<u64>>> = (0..rounds)
        .map(|b| {
            (0..8u64)
                .flat_map(|i| {
                    let rank = (i * total / 8 + b * 131 + i) % total;
                    // Probe values drawn from the data itself (perturbed so
                    // they sit strictly inside buckets, not on refined
                    // boundaries): the histogram brackets but cannot bound
                    // them, so they exercise the collective probe round.
                    let v = data[((b * 7919 + i * 104_729) as usize) % data.len()] ^ 1;
                    let w = v.saturating_add(max >> 4);
                    vec![
                        Request::rank(rank),
                        Request::rank_of(v),
                        Request::count_between(Bounds::closed(v, w)),
                    ]
                })
                .collect()
        })
        .collect();

    // Warm inverse stream: probes at values the warmup already resolved —
    // the refined splitters bound every one of them.
    let warm_quantiles: Vec<Request<u64>> =
        [0.1, 0.25, 0.5, 0.75, 0.9].into_iter().map(Request::quantile).collect();
    let warm_probe_batch = |engine_answers: &[u64]| -> Vec<Request<u64>> {
        engine_answers
            .iter()
            .flat_map(|&v| vec![Request::rank_of(v), Request::count_between(Bounds::closed(v, v))])
            .collect()
    };
    // Resolve the warm answer values once, host-side.
    let warm_values: Vec<u64> = {
        let mut engine: Engine<u64> = Engine::new(EngineConfig::new(p)).expect("engine start");
        engine.ingest(data.clone()).expect("ingest");
        let report = engine.run(&warm_quantiles).expect("warmup answers");
        report.outcomes.iter().filter_map(|o| o.response.element()).collect()
    };
    let warm_batches: Vec<Vec<Request<u64>>> =
        (0..if quick { 8 } else { 16 }).map(|_| warm_probe_batch(&warm_values)).collect();

    let local = BackendChoice::LocalSpmd;
    let mp = || BackendChoice::ChannelMp(ChannelMpTuning::default());
    let runs = vec![
        drive_v2("mixed-kinds", "per-query", local.clone(), &data, p, &[], &mixed),
        drive_v2("mixed-kinds", "batched", local.clone(), &data, p, &[], &mixed),
        drive_v2("mixed-kinds", "batched-mp", mp(), &data, p, &[], &mixed),
        drive_v2("inverse-warm", "batched", local, &data, p, &warm_quantiles, &warm_batches),
        drive_v2("inverse-warm", "batched-mp", mp(), &data, p, &warm_quantiles, &warm_batches),
    ];

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for run in &runs {
        rows.push(format!(
            "{},{},{n},{p},{},{},{:.4},{:.6},{:.6},{}",
            run.workload,
            run.mode,
            run.queries,
            run.collective_ops,
            run.ops_per_query(),
            run.makespan,
            run.wall,
            run.histogram_served,
        ));
        table.push(vec![
            run.workload.to_string(),
            run.mode.to_string(),
            run.queries.to_string(),
            run.collective_ops.to_string(),
            format!("{:.2}", run.ops_per_query()),
            format!("{:.5}", run.makespan),
            format!("{:.3}", run.wall),
            run.histogram_served.to_string(),
        ]);
        println!(
            "{:>12} | {:>10}: {:>6} coll. ops over {} queries ({:.2}/query); \
             virtual {:.5}s; wall {:.3}s; histogram-served {}",
            run.workload,
            run.mode,
            run.collective_ops,
            run.queries,
            run.ops_per_query(),
            run.makespan,
            run.wall,
            run.histogram_served
        );
    }

    let find = |w: &str, m: &str| {
        runs.iter().find(|r| r.workload == w && r.mode == m).expect("run recorded")
    };
    let batching_ratio = find("mixed-kinds", "per-query").ops_per_query()
        / find("mixed-kinds", "batched").ops_per_query().max(1e-12);
    let out = format!(
        "Query API v2: mixed-kind workloads (ranks + rank-of + range counts)\n\
         (n = {n}, p = {p}, random resident data, indexed engine; virtual times under\n\
         the CM-5 model; batched-mp = the same workload on the ChannelMp backend)\n\n{}\n\
         A batch's value probes share ONE vectorized count-below Combine round and\n\
         its ranks share one multi-select pass, so batching the mixed workload pays\n\
         {batching_ratio:.1}x fewer collective ops per query than per-query execution.\n\
         The warm inverse stream probes values the refined splitters bound, so every\n\
         answer is served from the cached histogram: zero collectives, zero scans.\n",
        markdown_table(
            &[
                "workload",
                "mode",
                "queries",
                "coll. ops",
                "ops/query",
                "virtual s",
                "wall s",
                "histogram served"
            ],
            &table
        ),
    );
    write_csv(
        &dir.join("engine_api_v2.csv"),
        "workload,mode,n,p,queries,collective_ops,ops_per_query,makespan,wall_s,histogram_served",
        &rows,
    );
    write_text(&dir.join("engine_api_v2.txt"), &out);
    print!("{out}");

    // The regression guard CI asserts on.
    let mut ok = true;
    if batching_ratio < 2.0 {
        eprintln!("PERF REGRESSION: v2 mixed-kind batching ratio {batching_ratio:.2} < 2.0");
        ok = false;
    }
    let (spmd, chan) = (find("mixed-kinds", "batched"), find("mixed-kinds", "batched-mp"));
    if spmd.collective_ops != chan.collective_ops {
        eprintln!(
            "BACKEND REGRESSION: ChannelMp used {} collective ops on the v2 mixed workload, \
             LocalSpmd used {}",
            chan.collective_ops, spmd.collective_ops
        );
        ok = false;
    }
    for mode in ["batched", "batched-mp"] {
        let warm = find("inverse-warm", mode);
        if warm.collective_ops != 0 {
            eprintln!(
                "PERF REGRESSION: histogram-warm inverse stream ({mode}) started {} \
                 collectives, expected 0",
                warm.collective_ops
            );
            ok = false;
        }
        if warm.histogram_served != warm.queries as u64 {
            eprintln!(
                "PERF REGRESSION: only {}/{} warm inverse queries were histogram-served",
                warm.histogram_served, warm.queries
            );
            ok = false;
        }
    }
    ok
}

/// Experiment 4: the observability twin-run and SLO gate.
fn obs_experiment(quick: bool, dir: &std::path::Path) -> bool {
    let p = 8;
    let n: usize = if quick { 1 << 16 } else { 1 << 19 };
    let data: Vec<u64> = generate(Distribution::Random, n, p, 17).into_iter().flatten().collect();
    let total = data.len() as u64;

    // The measured stream: mixed forward/inverse batches that exercise the
    // backend, then a repeated-quantile tail the refined splitters serve
    // host-side — the SLO's host-served fraction comes from there.
    let quantiles: Vec<Request<u64>> =
        [0.05, 0.25, 0.5, 0.75, 0.95].into_iter().map(Request::quantile).collect();
    let mut batches: Vec<Vec<Request<u64>>> = (0..if quick { 4u64 } else { 8 })
        .map(|i| {
            (0..6u64)
                .flat_map(|j| {
                    let rank = (j * total / 6 + i * 211 + j) % total;
                    let v = data[((i * 6361 + j * 9973) as usize) % data.len()];
                    vec![
                        Request::rank(rank),
                        Request::rank_of(v ^ 1),
                        Request::count_between(Bounds::closed(v, v.saturating_add(1 << 20))),
                    ]
                })
                .collect()
        })
        .collect();
    batches.extend((0..if quick { 8 } else { 16 }).map(|_| quantiles.clone()));

    let mut ok = true;
    let mut lines = Vec::new();
    for backend in [BackendChoice::LocalSpmd, BackendChoice::ChannelMp(ChannelMpTuning::default())]
    {
        let mut plain: Engine<u64> =
            Engine::new(EngineConfig::new(p).backend(backend.clone())).expect("engine start");
        let mut observed: Engine<u64> =
            Engine::new(EngineConfig::new(p).backend(backend).observe(true)).expect("engine start");
        let kind = observed.backend_kind();
        plain.ingest(data.clone()).expect("ingest");
        observed.ingest(data.clone()).expect("ingest");

        let mut slo = SloAccumulator::new();
        let wall0 = Instant::now();
        for batch in &batches {
            let a = plain.run(batch).expect("run");
            let b = observed.run(batch).expect("run");
            slo.observe(&b);
            // The zero-cost guard: observation may not perturb execution —
            // not one answer, round or virtual second.
            let same_answers = a
                .outcomes
                .iter()
                .zip(&b.outcomes)
                .all(|(x, y)| x.response == y.response && x.served == y.served);
            if !same_answers || a.collective_ops != b.collective_ops || a.makespan != b.makespan {
                eprintln!("OBS REGRESSION: observability perturbed execution on {kind}");
                ok = false;
            }
            if b.span.is_none() {
                eprintln!("OBS REGRESSION: observing run on {kind} carried no span");
                ok = false;
            }
        }
        let wall = wall0.elapsed().as_secs_f64();

        let report = slo.report();
        let line = format!("{kind} {}", report.render_line());
        println!("{line}  (twin-run wall {wall:.3}s)");
        lines.push(line);

        // The CI contract: thresholds the steady-state engine must hold.
        let policy = SloPolicy {
            min_host_served_fraction: 0.25,
            min_sketch_served_fraction: 0.0, // this stream has no tolerant queries
            max_rank_error: 0,
            max_rounds_per_query: 16.0,
        };
        for v in policy.evaluate(&report) {
            eprintln!("SLO REGRESSION ({kind}): {v}");
            ok = false;
        }

        // The registry must have self-served a latency percentile per batch.
        let snap = observed.metrics().expect("observing engine").snapshot();
        if !snap.latencies.iter().any(|l| l.name == "batch_wall" && l.count == batches.len() as u64)
        {
            eprintln!("OBS REGRESSION: batch_wall latency track incomplete on {kind}");
            ok = false;
        }
    }

    write_text(
        &dir.join("engine_slo.txt"),
        &format!(
            "SLO report: twin-run (observed vs unobserved) engine, n = {n}, p = {p}\n\
             policy: host_served >= 0.25, sketch_served >= 0 (no tolerant queries in this\n\
             stream), max_rank_error = 0, rounds_per_query <= 16\n\n{}\n",
            lines.join("\n")
        ),
    );
    ok
}

/// Experiment 5: the deterministic ε-sketch serving rung under a
/// tolerant-dominated mixed stream.
fn sketch_experiment(quick: bool, dir: &std::path::Path) -> bool {
    let p = 8;
    let n: usize = if quick { 1 << 17 } else { 1 << 20 };
    let tol = 0.01;
    // Distinct values equal to their ranks: the true rank of any answered
    // element — and the true count below any probe — is the value itself,
    // so the measured error of every sketch answer is directly observable.
    let data: Vec<u64> = (0..n as u64).rev().collect();
    let total = n as u64;
    let batch_count: usize = if quick { 200 } else { 10_000 };
    let per_batch = 100u64;
    let budget = (tol * total as f64).ceil() as u64;

    let mut rows = Vec::new();
    let mut lines = Vec::new();
    let mut ok = true;
    for backend in [BackendChoice::LocalSpmd, BackendChoice::ChannelMp(ChannelMpTuning::default())]
    {
        // Capacity 4096 keeps the count guarantee comfortably inside the
        // two-probe range-count budget at n = 2^20.
        let mut engine: Engine<u64> =
            Engine::new(EngineConfig::new(p).backend(backend).sketch_capacity(4096))
                .expect("engine start");
        engine.ingest(data.clone()).expect("ingest");
        let kind = engine.backend_kind();

        let mut slo = SloAccumulator::new();
        let mut tolerant = 0u64;
        let mut sketch_served = 0u64;
        let mut sketch_cost = 0.0f64;
        let mut max_guarantee = 0u64;
        let mut max_measured = 0u64;
        let mut violations = 0u64;
        let wall0 = Instant::now();
        for b in 0..batch_count as u64 {
            let mut requests: Vec<Request<u64>> = Vec::with_capacity(per_batch as usize);
            // The exact oracle for each tolerant request (None = exact
            // minority request, not part of the sketch measurement).
            let mut truths: Vec<Option<u64>> = Vec::with_capacity(per_batch as usize);
            for i in 0..per_batch {
                let x = (b.wrapping_mul(104_729) + i.wrapping_mul(7919)) % total;
                if b % 10 == 0 && i < 10 {
                    // The exact minority (~1% of the stream): keeps the
                    // stream mixed and the backend path exercised.
                    requests.push(Request::rank(x));
                    truths.push(None);
                    continue;
                }
                tolerant += 1;
                match i % 3 {
                    0 => {
                        let q = (x % 1000) as f64 / 999.0;
                        requests.push(Request::<u64>::quantile(q).within_rank(tol));
                        truths.push(Some(cgselect_engine::quantile_rank(q, total)));
                    }
                    1 => {
                        requests.push(Request::rank_of(x).within_rank(tol));
                        truths.push(Some(x));
                    }
                    _ => {
                        let lo = x.min(total - 1);
                        let hi = (lo + total / 50).min(total - 1);
                        requests
                            .push(Request::count_between(Bounds::closed(lo, hi)).within_rank(tol));
                        truths.push(Some(hi - lo + 1));
                    }
                }
            }
            let report = engine.run(&requests).expect("run");
            slo.observe(&report);
            for (outcome, truth) in report.outcomes.iter().zip(&truths) {
                let Some(truth) = *truth else { continue };
                if outcome.served != Served::Sketch {
                    continue;
                }
                sketch_served += 1;
                sketch_cost += outcome.cost.collective_ops;
                let guarantee = outcome.response.max_error();
                let answer = outcome
                    .response
                    .element()
                    .or_else(|| outcome.response.count())
                    .expect("sketch answers carry a value or a count");
                let measured = answer.abs_diff(truth);
                max_guarantee = max_guarantee.max(guarantee);
                max_measured = max_measured.max(measured);
                if measured > guarantee || guarantee > budget {
                    violations += 1;
                }
            }
        }
        let wall = wall0.elapsed().as_secs_f64();
        let report = slo.report();
        let frac = sketch_served as f64 / tolerant.max(1) as f64;

        let line = format!(
            "{kind} {} | tolerant {tolerant}, sketch-served {sketch_served} ({:.4}), \
             max measured error {max_measured} <= max guarantee {max_guarantee} \
             (budget {budget}), wall {wall:.3}s",
            report.render_line(),
            frac
        );
        println!("{line}");
        lines.push(line);
        rows.push(format!(
            "{kind},{n},{p},{},{tolerant},{sketch_served},{:.6},{max_guarantee},{max_measured},\
             {violations},{},{:.6},{:.6}",
            report.queries, frac, report.max_rank_error, report.rounds_per_query, wall,
        ));

        // The regression guard CI asserts on.
        if frac < 0.9 {
            eprintln!(
                "SKETCH REGRESSION ({kind}): only {:.4} of the tolerant stream rode the \
                 sketch rung (floor 0.9)",
                frac
            );
            ok = false;
        }
        if violations > 0 {
            eprintln!(
                "SKETCH REGRESSION ({kind}): {violations} answers exceeded their reported \
                 guarantee (or a guarantee exceeded the {budget} budget)"
            );
            ok = false;
        }
        if sketch_cost != 0.0 {
            eprintln!(
                "SKETCH REGRESSION ({kind}): sketch-served answers were attributed \
                 {sketch_cost} collective ops, expected 0"
            );
            ok = false;
        }
        let policy = SloPolicy {
            min_host_served_fraction: 0.9,
            min_sketch_served_fraction: 0.85,
            max_rank_error: budget,
            max_rounds_per_query: 4.0,
        };
        for v in policy.evaluate(&report) {
            eprintln!("SKETCH SLO REGRESSION ({kind}): {v}");
            ok = false;
        }
    }

    write_csv(
        &dir.join("engine_sketch.csv"),
        "backend,n,p,queries,tolerant,sketch_served,sketch_fraction,max_guarantee,\
         max_measured_error,violations,slo_max_rank_error,rounds_per_query,wall_s",
        &rows,
    );
    write_text(
        &dir.join("engine_sketch.txt"),
        &format!(
            "Deterministic ε-sketch serving rung: tolerant-dominated mixed stream\n\
             (n = {n}, p = {p}, values equal ranks so measured error is exact;\n\
             tolerance {tol} -> rank budget {budget}; sketch capacity 4096;\n\
             policy: host_served >= 0.9, sketch_served >= 0.85, max_rank_error <= budget,\n\
             rounds_per_query <= 4; gate: sketch serves >= 90% of the tolerant stream at\n\
             zero attributed collectives, every measured error within its guarantee)\n\n{}\n",
            lines.join("\n")
        ),
    );
    ok
}

/// One backend's measurement of experiment 6.
struct StandingRun {
    backend: String,
    refreshes: u64,
    zero_collective: u64,
    standing_cost: f64,
    poll_cost: f64,
    polls: u64,
    mismatches: u64,
    wall: f64,
}

impl StandingRun {
    fn zero_fraction(&self) -> f64 {
        self.zero_collective as f64 / self.refreshes.max(1) as f64
    }
    fn ops_per_refresh(&self) -> f64 {
        self.standing_cost / self.refreshes.max(1) as f64
    }
    fn ops_per_poll(&self) -> f64 {
        self.poll_cost / self.polls.max(1) as f64
    }
    fn advantage(&self) -> f64 {
        self.ops_per_poll() / self.ops_per_refresh().max(1e-12)
    }
}

/// Experiment 6: standing p50/p99/p999 vs per-tick re-submission over a
/// skewed million-event ingest stream with user traffic riding alongside.
fn standing_experiment(quick: bool, dir: &std::path::Path) -> bool {
    let p = 8;
    let seed_n = 10_000usize;
    let chunk = 500usize;
    // 2000 ticks x 500 events + the seed = a ~10^6-event stream.
    let ticks: usize = if quick { 200 } else { 2_000 };
    // A skewed small domain: equality-class buckets absorb rank drift, so
    // most refreshes re-serve from the rebased histogram.
    let dist = Distribution::FewDistinct(4096);
    let buckets = 256usize;
    let quantiles = [0.5, 0.99, 0.999];

    let mut runs: Vec<StandingRun> = Vec::new();
    let mut ok = true;
    for backend in [BackendChoice::LocalSpmd, BackendChoice::ChannelMp(ChannelMpTuning::default())]
    {
        let cfg = || EngineConfig::new(p).index_buckets(buckets).backend(backend.clone());
        let mut standing: Engine<u64> = Engine::new(cfg()).expect("engine start");
        let mut poller: Engine<u64> = Engine::new(cfg()).expect("engine start");
        let kind = standing.backend_kind().to_string();

        let seed: Vec<u64> = generate(dist, seed_n, p, 3).into_iter().flatten().collect();
        standing.ingest(seed.clone()).expect("ingest");
        poller.ingest(seed).expect("ingest");

        let reqs: Vec<Request<u64>> =
            quantiles.into_iter().map(|q| Query::quantile(q).to_request()).collect();
        let handles: Vec<_> =
            reqs.iter().map(|r| standing.subscribe(r.clone(), RefreshPolicy::EveryBatch)).collect();

        let mut standing_cost = 0.0f64;
        let mut poll_cost = 0.0f64;
        let mut mismatches = 0u64;
        let mut total = seed_n as u64;
        let wall0 = Instant::now();
        for t in 0..ticks as u64 {
            let burst: Vec<u64> = generate(dist, chunk, p, 100 + t).into_iter().flatten().collect();
            standing.ingest(burst.clone()).expect("ingest");
            poller.ingest(burst).expect("ingest");
            total += chunk as u64;
            // The ordinary traffic both engines serve: fresh distinct ranks
            // each tick. On the standing engine the due refreshes ride this
            // batch and share its collective passes.
            let user: Vec<Request<u64>> =
                (0..16u64).map(|i| Request::rank((i * total / 16 + t * 97 + i) % total)).collect();
            standing.run(&user).expect("user batch");
            poller.run(&user).expect("user batch");
            // The poller re-submits the dashboard set as its own batch
            // (generous to the twin: one coalesced poll, not 3 calls).
            let poll = poller.run(&reqs).expect("poll");
            poll_cost += poll.collective_ops as f64;
            for (handle, polled) in handles.iter().zip(&poll.outcomes) {
                let mut updates = handle.drain();
                assert_eq!(updates.len(), 1, "every tick's ingest makes each sub due once");
                let update = updates.pop().expect("one update");
                standing_cost += update.outcome.cost.collective_ops;
                // The freshness contract: the pushed update is bit-equal to
                // a from-scratch evaluation at the same prefix.
                if update.outcome.response != polled.response {
                    mismatches += 1;
                }
            }
        }
        runs.push(StandingRun {
            backend: kind,
            refreshes: standing.standing_refreshes(),
            zero_collective: standing.standing_zero_collective(),
            standing_cost,
            poll_cost,
            polls: (ticks * reqs.len()) as u64,
            mismatches,
            wall: wall0.elapsed().as_secs_f64(),
        });
    }

    let mut rows = Vec::new();
    let mut table = Vec::new();
    for run in &runs {
        rows.push(format!(
            "{},{},{p},{ticks},{},{},{},{:.4},{:.6},{:.6},{:.2},{},{:.6}",
            run.backend,
            seed_n + ticks * chunk,
            quantiles.len(),
            run.refreshes,
            run.zero_collective,
            run.zero_fraction(),
            run.ops_per_refresh(),
            run.ops_per_poll(),
            run.advantage(),
            run.mismatches,
            run.wall,
        ));
        table.push(vec![
            run.backend.to_string(),
            run.refreshes.to_string(),
            format!("{:.4}", run.zero_fraction()),
            format!("{:.4}", run.ops_per_refresh()),
            format!("{:.4}", run.ops_per_poll()),
            format!("{:.1}x", run.advantage()),
            run.mismatches.to_string(),
            format!("{:.3}", run.wall),
        ]);
        println!(
            "{:>10}: {} refreshes, {:.4} zero-collective; {:.4} ops/refresh standing vs \
             {:.4} re-submitted ({:.1}x); {} mismatches; wall {:.3}s",
            run.backend,
            run.refreshes,
            run.zero_fraction(),
            run.ops_per_refresh(),
            run.ops_per_poll(),
            run.advantage(),
            run.mismatches,
            run.wall
        );

        // The regression guard CI asserts on.
        if run.zero_fraction() < 0.8 {
            eprintln!(
                "STANDING REGRESSION ({}): only {:.4} of refreshes were zero-collective \
                 (floor 0.8)",
                run.backend,
                run.zero_fraction()
            );
            ok = false;
        }
        if run.advantage() < 3.0 {
            eprintln!(
                "STANDING REGRESSION ({}): standing beat re-submission only {:.2}x on \
                 collective ops/refresh (floor 3.0)",
                run.backend,
                run.advantage()
            );
            ok = false;
        }
        if run.mismatches > 0 {
            eprintln!(
                "STANDING REGRESSION ({}): {} updates diverged from the from-scratch \
                 answer at the same prefix",
                run.backend, run.mismatches
            );
            ok = false;
        }
    }
    // Backend-neutrality: the standing refresh economy must be identical
    // on the message-passing backend — same refresh count, same number
    // served collective-free.
    let (spmd, chan) = (&runs[0], &runs[1]);
    if spmd.refreshes != chan.refreshes || spmd.zero_collective != chan.zero_collective {
        eprintln!(
            "BACKEND REGRESSION: standing counters diverged — LocalSpmd {}/{} \
             zero-collective, ChannelMp {}/{}",
            spmd.zero_collective, spmd.refreshes, chan.zero_collective, chan.refreshes
        );
        ok = false;
    }

    let out = format!(
        "Standing queries vs dashboard re-submission\n\
         (p50/p99/p999 standing under EveryBatch over a {}-event few-distinct(4096)\n\
         stream, p = {p}, {buckets} index buckets; each tick ingests {chunk} events and\n\
         serves 16 fresh user ranks that the standing refreshes ride; the twin engine\n\
         serves the identical stream but re-submits the same three quantiles as its own\n\
         poll batch each tick; ops are per-outcome attributed collective ops)\n\n{}\n\
         A due standing quantile is appended to the tick's ordinary batch, so it\n\
         shares that batch's collective passes and usually re-serves from the\n\
         delta-rebased histogram at zero collectives; the re-submitting dashboard\n\
         pays its own localization round-trips for the same answers every tick.\n",
        seed_n + ticks * chunk,
        markdown_table(
            &[
                "backend",
                "refreshes",
                "zero-collective frac",
                "ops/refresh (standing)",
                "ops/refresh (re-submit)",
                "advantage",
                "mismatches",
                "wall s"
            ],
            &table
        ),
    );
    write_csv(
        &dir.join("engine_standing.csv"),
        "backend,events,p,ticks,subscriptions,refreshes,zero_collective,zero_fraction,\
         ops_per_refresh_standing,ops_per_refresh_resubmit,advantage,mismatches,wall_s",
        &rows,
    );
    write_text(&dir.join("engine_standing.txt"), &out);
    print!("{out}");
    ok
}

fn main() {
    let quick = quick_mode();
    let dir = results_dir();
    batching_experiment(quick, &dir);
    let index_ok = index_experiment(quick, &dir);
    let v2_ok = api_v2_experiment(quick, &dir);
    let obs_ok = obs_experiment(quick, &dir);
    let sketch_ok = sketch_experiment(quick, &dir);
    let standing_ok = standing_experiment(quick, &dir);
    println!(
        "engine -> {}/engine.{{csv,txt}} + engine_indexed.{{csv,txt}} + engine_api_v2.{{csv,txt}} \
         + engine_slo.txt + engine_sketch.{{csv,txt}} + engine_standing.{{csv,txt}}",
        dir.display()
    );
    if check_mode() && !(index_ok && v2_ok && obs_ok && sketch_ok && standing_ok) {
        std::process::exit(1);
    }
    if check_mode() {
        println!(
            "perf smoke: indexed engine within bounds (distinct <= baseline, repeated >= 2x), \
             v2 mixed-kind batching >= 2x with zero-collective warm inverse serving, \
             ChannelMp and SocketMp collective-round counts equal LocalSpmd's, \
             observability zero-cost (identical answers, rounds and makespan), SLO \
             thresholds held, the sketch rung served >= 90% of the tolerant stream \
             at zero collectives within every reported guarantee, and the standing \
             dashboard served >= 80% of refreshes zero-collective while beating \
             re-submission >= 3x on collective ops/refresh"
        );
    }
}
