//! Algorithm 1 — Median of Medians parallel selection.

use cgselect_balance::{rebalance, BalanceReport};
use cgselect_runtime::{Key, Proc};
use cgselect_seqsel::{median_rank, select_with, KernelRng, OpCount};

use crate::common::{finish, two_way_narrow, Narrow};
use crate::{AlgoResult, Algorithm, SelectionConfig};

/// Runs the median-of-medians selection algorithm (paper Algorithm 1): per
/// iteration, every processor finds its local median, processor 0 finds the
/// median of those medians and broadcasts it as the estimated median, every
/// processor partitions its remaining elements against it, a Combine
/// determines which side survives, and the data is re-balanced (paper
/// Step 7 — this algorithm's pivot guarantee *needs* near-equal counts).
///
/// The per-iteration scan is the paper's two-way `≤`/`>` partition; the
/// duplicate-degeneracy fallback in [`two_way_narrow`] keeps heavily
/// duplicated inputs from livelocking the narrowing loop.
pub(crate) fn run<T: Key>(
    proc: &mut Proc,
    mut data: Vec<T>,
    k0: u64,
    n0: u64,
    cfg: &SelectionConfig,
) -> AlgoResult<T> {
    let p = proc.nprocs();
    let threshold = cfg.threshold(p);
    let kernel = cfg.kernel_for(Algorithm::MedianOfMedians);
    let mut local_rng = KernelRng::derive(cfg.seed, proc.rank() as u64 + 1);
    let mut p0_rng = KernelRng::derive(cfg.seed, 0x9000);

    let mut nr = Narrow { n: n0, k: k0 };
    let mut iterations = 0u32;
    let mut balance = BalanceReport::default();
    let mut early: Option<T> = None;
    let mut survivors = Vec::new();

    while nr.n > threshold {
        survivors.push(nr.n);
        iterations += 1;
        assert!(
            iterations <= cfg.max_iters,
            "median-of-medians exceeded {} iterations (n={}, k={})",
            cfg.max_iters,
            nr.n,
            nr.k
        );

        // Step 1: local median (processors whose set is exhausted abstain).
        let mi: Option<T> = if data.is_empty() {
            None
        } else {
            let mut ops = OpCount::new();
            let rank = median_rank(data.len());
            let m = select_with(kernel, &mut data, rank, &mut local_rng, &mut ops);
            proc.charge_ops(ops.total());
            Some(m)
        };

        // Steps 2–3: gather medians; P0 selects their median; broadcast.
        let gathered = proc.gather(0, mi);
        let mom_opt: Option<T> = gathered.map(|list| {
            let mut vals: Vec<T> = list.into_iter().flatten().collect();
            assert!(!vals.is_empty(), "n > 0 but every processor is empty");
            let mut ops = OpCount::new();
            let rank = median_rank(vals.len());
            let m = select_with(kernel, &mut vals, rank, &mut p0_rng, &mut ops);
            proc.charge_ops(ops.total());
            m
        });
        let mom: T = proc.broadcast(0, mom_opt);

        // Steps 4–6: partition, combine count, narrow.
        if let Some(v) = two_way_narrow(proc, &mut data, &mut nr, mom) {
            early = Some(v);
            break;
        }

        // Step 7: load balance.
        balance.absorb(rebalance(cfg.balancer, proc, &mut data));
    }

    // Steps 8–9: gather survivors, solve sequentially, broadcast.
    let value = match early {
        Some(v) => v,
        None => finish(proc, data, nr.k, kernel, &mut local_rng),
    };
    AlgoResult { value, iterations, unsuccessful: 0, balance, survivors }
}
