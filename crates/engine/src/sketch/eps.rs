//! The deterministic mergeable ε-sketch: a compactor hierarchy in the
//! Munro–Paterson / deterministic-KLL style.
//!
//! Level `h` holds items of weight `2^h`. Offering an item appends it to
//! level 0; when a level fills to the capacity `k` it is **compacted**:
//! sorted, then every other item (alternating the starting parity
//! deterministically) is promoted to the next level with doubled weight.
//! Total mass `Σ weight` always equals the number of offered items, and
//! each compaction at level `h` moves any item's estimated rank by at most
//! `2^h` — the sketch *maintains its own worst-case error* in
//! [`EpsSketch::err`]-style accounting rather than quoting an asymptotic:
//!
//! * value → rank ([`EpsSketch::rank_of`]): error ≤
//!   [`count_error_bound`](EpsSketch::count_error_bound) `= err`;
//! * rank → value ([`EpsSketch::query_rank`]): the returned element's true
//!   rank is within [`rank_error_bound`](EpsSketch::rank_error_bound)
//!   `= err + w_max − 1` of the target, where `w_max` is the largest item
//!   weight (the extra `w_max − 1` is the discretization gap of picking
//!   one weighted item).
//!
//! Summed over a stream of `n` items the error is `O((n/k)·log(n/k))` —
//! deterministic, no RNG anywhere, so equal offer streams give
//! bit-identical sketches on every backend and every host.
//!
//! `merge` concatenates levels, adds the two `err` terms, and re-compacts:
//! the bound is **closed under merge**, which is what lets shard sketches
//! ride migration/join/retire snapshots and still sum to a valid global
//! guarantee.

use cgselect_runtime::Key;

/// A deterministic mergeable quantile sketch with a self-reported
/// worst-case rank-error bound.
#[derive(Clone, Debug)]
pub struct EpsSketch<T> {
    /// Compactor capacity per level; `0` disables the sketch (offers are
    /// counted but nothing is stored).
    k: usize,
    /// Number of items offered (or merged in); the total mass.
    n: u64,
    /// Accumulated worst-case rank error from every compaction so far.
    err: u64,
    /// `levels[h]` holds unsorted items of weight `2^h`.
    levels: Vec<Vec<T>>,
    /// Per-level compaction parity: which half survives next time.
    parities: Vec<bool>,
    /// Lazily built sorted `(item, cumulative_weight)` view for queries;
    /// invalidated by every mutation, excluded from equality and the wire
    /// encoding.
    view: Option<Vec<(T, u64)>>,
}

/// Equality of sketch *state* — the query cache is excluded, so a freshly
/// decoded sketch equals the one that was encoded.
impl<T: Key> PartialEq for EpsSketch<T> {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.n == other.n
            && self.err == other.err
            && self.levels == other.levels
            && self.parities == other.parities
    }
}

impl<T: Key> Eq for EpsSketch<T> {}

impl<T: Key> EpsSketch<T> {
    /// An empty sketch with compactor capacity `k` (0 disables storage).
    pub fn new(k: usize) -> Self {
        EpsSketch { k, n: 0, err: 0, levels: Vec::new(), parities: Vec::new(), view: None }
    }

    /// Builds a sketch of `data` by offering every element in order.
    pub fn from_data(k: usize, data: &[T]) -> Self {
        let mut s = EpsSketch::new(k);
        for &x in data {
            s.offer(x);
        }
        s
    }

    /// The compactor capacity this sketch was built with.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Total mass: how many elements the sketch represents.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Offers one element. Deterministic: equal offer streams produce
    /// bit-identical sketches.
    pub fn offer(&mut self, x: T) {
        self.n += 1;
        if self.k == 0 {
            return;
        }
        self.view = None;
        if self.levels.is_empty() {
            self.levels.push(Vec::with_capacity(self.k));
            self.parities.push(false);
        }
        self.levels[0].push(x);
        if self.levels[0].len() >= self.k {
            self.compact(0);
        }
    }

    /// Discards the current state and re-sketches `data` — used after
    /// deletes and rebalances, which mutate the represented multiset.
    pub fn rebuild(&mut self, data: &[T]) {
        *self = EpsSketch::from_data(self.k, data);
    }

    /// Folds `other` into `self`. The error bound is closed under merge:
    /// the merged sketch's bound is valid for the union multiset.
    pub fn merge(&mut self, other: &EpsSketch<T>) {
        self.n += other.n;
        self.err += other.err;
        if other.levels.iter().all(|l| l.is_empty()) {
            return;
        }
        self.view = None;
        if self.k == 0 {
            // A disabled sketch absorbs only the counts; with no storage
            // there is nothing to answer from, and the engine never routes
            // queries here.
            return;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
            self.parities.push(false);
        }
        for (h, level) in other.levels.iter().enumerate() {
            self.levels[h].extend_from_slice(level);
        }
        let mut h = 0;
        while h < self.levels.len() {
            if self.levels[h].len() >= self.k {
                self.compact(h);
            }
            h += 1;
        }
    }

    /// Compacts level `h`: sort, hold one item back if the count is odd,
    /// promote every other item (alternating parity) with doubled weight.
    /// Adds `2^h` to the worst-case error and cascades if the next level
    /// fills.
    fn compact(&mut self, h: usize) {
        if self.levels.len() <= h + 1 {
            self.levels.push(Vec::new());
            self.parities.push(false);
        }
        let mut buf = std::mem::take(&mut self.levels[h]);
        buf.sort_unstable();
        // An odd survivor stays at this level so promotion always pairs
        // items; mass is conserved either way.
        if buf.len() % 2 == 1 {
            let stay = buf.pop().expect("nonempty odd buffer");
            self.levels[h].push(stay);
        }
        let parity = self.parities[h];
        self.parities[h] = !parity;
        let mut i = usize::from(parity);
        while i < buf.len() {
            self.levels[h + 1].push(buf[i]);
            i += 2;
        }
        self.err += 1u64 << h;
        if self.levels[h + 1].len() >= self.k {
            self.compact(h + 1);
        }
    }

    /// The largest item weight currently held (1 for an uncompacted or
    /// empty sketch).
    fn max_weight(&self) -> u64 {
        self.levels
            .iter()
            .enumerate()
            .rev()
            .find(|(_, level)| !level.is_empty())
            .map_or(1, |(h, _)| 1u64 << h)
    }

    /// Guaranteed absolute error of [`rank_of`](Self::rank_of) estimates:
    /// the accumulated compaction error. `0` while the sketch is lossless
    /// (every offered item still resident, i.e. `n < k`, before the first
    /// compaction).
    pub fn count_error_bound(&self) -> u64 {
        self.err
    }

    /// Guaranteed absolute rank error of [`query_rank`](Self::query_rank)
    /// answers: compaction error plus the weight-discretization gap.
    pub fn rank_error_bound(&self) -> u64 {
        self.err + (self.max_weight() - 1)
    }

    /// The sorted weighted view, built on first use after a mutation.
    fn view(&mut self) -> &[(T, u64)] {
        if self.view.is_none() {
            let mut items: Vec<(T, u64)> = Vec::new();
            for (h, level) in self.levels.iter().enumerate() {
                let w = 1u64 << h;
                items.extend(level.iter().map(|&x| (x, w)));
            }
            items.sort_unstable_by_key(|&(x, _)| x);
            let mut cum = 0u64;
            for item in &mut items {
                cum += item.1;
                item.1 = cum;
            }
            self.view = Some(items);
        }
        self.view.as_deref().expect("view just built")
    }

    /// The element whose estimated rank covers 0-based `target`: its true
    /// rank is within [`rank_error_bound`](Self::rank_error_bound) of
    /// `target` (for any `target < n`).
    ///
    /// # Panics
    /// Panics if the sketch holds no items.
    pub fn query_rank(&mut self, target: u64) -> T {
        let view = self.view();
        assert!(!view.is_empty(), "rank query over an empty sketch");
        // First item whose cumulative weight covers the target (+1: ranks
        // are 0-based, cumulative weights are counts).
        let i = view.partition_point(|&(_, cum)| cum < target + 1);
        view[i.min(view.len() - 1)].0
    }

    /// Estimated number of resident elements admitted by the probe
    /// (`x < value`, or `x ≤ value` when `inclusive`): within
    /// [`count_error_bound`](Self::count_error_bound) of the true count.
    /// Never exceeds the population (mass is conserved).
    pub fn rank_of(&mut self, value: T, inclusive: bool) -> u64 {
        let n = self.n;
        let view = self.view();
        let i = if inclusive {
            view.partition_point(|&(x, _)| x <= value)
        } else {
            view.partition_point(|&(x, _)| x < value)
        };
        let est = if i == 0 { 0 } else { view[i - 1].1 };
        est.min(n)
    }

    /// `m` evenly rank-spaced elements (ascending, possibly with repeats) —
    /// the deterministic splitter seed for the bucket index. Empty when the
    /// sketch holds no items.
    pub fn quantile_points(&mut self, m: usize) -> Vec<T> {
        if m == 0 || self.levels.iter().all(|l| l.is_empty()) {
            return Vec::new();
        }
        let n = self.n;
        (0..m)
            .map(|j| {
                let target =
                    if m == 1 { n / 2 } else { (j as u64).saturating_mul(n - 1) / (m as u64 - 1) };
                self.query_rank(target)
            })
            .collect()
    }

    /// Canonical byte encoding of the sketch state (query cache excluded):
    /// bit-identical for equal sketches, including mid-stream parities.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        (self.k as u64).wire_write(&mut out);
        self.n.wire_write(&mut out);
        self.err.wire_write(&mut out);
        (self.levels.len() as u64).wire_write(&mut out);
        for (level, &parity) in self.levels.iter().zip(&self.parities) {
            out.push(u8::from(parity));
            (level.len() as u64).wire_write(&mut out);
            for &x in level {
                x.wire_write(&mut out);
            }
        }
        out
    }

    /// Decodes a [`to_bytes`](Self::to_bytes) encoding. Returns `None` on
    /// truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let u64_at = |pos: &mut usize| -> Option<u64> {
            let end = pos.checked_add(8)?;
            let v = u64::wire_read(bytes.get(*pos..end)?);
            *pos = end;
            Some(v)
        };
        let k = u64_at(&mut pos)? as usize;
        let n = u64_at(&mut pos)?;
        let err = u64_at(&mut pos)?;
        let num_levels = u64_at(&mut pos)? as usize;
        let mut levels = Vec::with_capacity(num_levels);
        let mut parities = Vec::with_capacity(num_levels);
        for _ in 0..num_levels {
            let parity = *bytes.get(pos)? != 0;
            pos += 1;
            let len = u64_at(&mut pos)? as usize;
            let mut level = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                let end = pos.checked_add(T::WIRE_BYTES)?;
                level.push(T::wire_read(bytes.get(pos..end)?));
                pos = end;
            }
            levels.push(level);
            parities.push(parity);
        }
        if pos != bytes.len() {
            return None;
        }
        Some(EpsSketch { k, n, err, levels, parities, view: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_rank(sorted: &[u64], v: u64, inclusive: bool) -> u64 {
        if inclusive {
            sorted.partition_point(|&x| x <= v) as u64
        } else {
            sorted.partition_point(|&x| x < v) as u64
        }
    }

    #[test]
    fn lossless_below_capacity() {
        let mut s = EpsSketch::new(64);
        for x in (0..50u64).rev() {
            s.offer(x);
        }
        assert_eq!(s.rank_error_bound(), 0);
        assert_eq!(s.count_error_bound(), 0);
        for r in 0..50 {
            assert_eq!(s.query_rank(r), r);
        }
        for v in [0u64, 7, 49, 100] {
            assert_eq!(s.rank_of(v, false), v.min(50));
            assert_eq!(s.rank_of(v, true), (v + 1).min(50));
        }
    }

    #[test]
    fn mass_is_conserved_through_compaction() {
        let mut s = EpsSketch::new(16);
        for x in 0..10_000u64 {
            s.offer(x.wrapping_mul(2654435761) % 100_003);
        }
        assert_eq!(s.population(), 10_000);
        let mass: u64 = s.levels.iter().enumerate().map(|(h, l)| (l.len() as u64) << h).sum();
        assert_eq!(mass, 10_000, "compaction must conserve total mass");
    }

    #[test]
    fn errors_stay_within_the_reported_bound() {
        let n = 50_000u64;
        let mut s = EpsSketch::new(256);
        let mut data: Vec<u64> = (0..n).map(|i| i.wrapping_mul(48271) % 1_000_003).collect();
        for &x in &data {
            s.offer(x);
        }
        data.sort_unstable();
        let bound = s.rank_error_bound();
        assert!(bound > 0 && bound < n / 10, "bound {bound} out of expected range");
        for target in [0u64, 1, n / 4, n / 2, 3 * n / 4, n - 1] {
            let v = s.query_rank(target);
            let lo = oracle_rank(&data, v, false);
            let hi = oracle_rank(&data, v, true) - 1;
            // The true rank of v is the closest rank in [lo, hi].
            let dist = if target < lo { lo - target } else { target.saturating_sub(hi) };
            assert!(dist <= bound, "target {target}: value {v} off by {dist} > bound {bound}");
        }
        let cbound = s.count_error_bound();
        for v in [0u64, 250_000, 500_000, 999_999] {
            let est = s.rank_of(v, false);
            let truth = oracle_rank(&data, v, false);
            assert!(est.abs_diff(truth) <= cbound, "rank_of({v}) {est} vs {truth} > {cbound}");
        }
    }

    #[test]
    fn merge_is_closed_under_the_bound() {
        let mut a = EpsSketch::new(64);
        let mut b = EpsSketch::new(64);
        let mut all: Vec<u64> = Vec::new();
        for i in 0..20_000u64 {
            let x = i.wrapping_mul(2654435761) % 65_521;
            if i % 2 == 0 {
                a.offer(x);
            } else {
                b.offer(x);
            }
            all.push(x);
        }
        all.sort_unstable();
        a.merge(&b);
        assert_eq!(a.population(), 20_000);
        let bound = a.rank_error_bound();
        for target in [0u64, 5000, 10_000, 19_999] {
            let v = a.query_rank(target);
            let lo = oracle_rank(&all, v, false);
            let hi = oracle_rank(&all, v, true) - 1;
            let dist = if target < lo { lo - target } else { target.saturating_sub(hi) };
            assert!(dist <= bound, "merged: target {target} off by {dist} > bound {bound}");
        }
    }

    #[test]
    fn equal_streams_give_bit_identical_sketches() {
        let stream: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(69621) % 9973).collect();
        let a = EpsSketch::from_data(32, &stream);
        let b = EpsSketch::from_data(32, &stream);
        assert_eq!(a, b);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn byte_roundtrip_is_identity_mid_stream() {
        let mut s = EpsSketch::new(16);
        for i in 0..777u64 {
            s.offer(i.wrapping_mul(48271) % 1009);
        }
        let bytes = s.to_bytes();
        let mut back: EpsSketch<u64> = EpsSketch::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes);
        // The restored sketch continues the stream identically.
        for i in 777..1500u64 {
            let x = i.wrapping_mul(48271) % 1009;
            s.offer(x);
            back.offer(x);
        }
        assert_eq!(back, s);
        assert!(EpsSketch::<u64>::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn disabled_sketch_counts_but_stores_nothing() {
        let mut s = EpsSketch::new(0);
        for x in 0..100u64 {
            s.offer(x);
        }
        assert_eq!(s.population(), 100);
        assert!(s.levels.is_empty());
        assert!(s.quantile_points(8).is_empty());
    }

    #[test]
    fn quantile_points_are_sorted_and_cover_the_range() {
        let mut s = EpsSketch::new(128);
        for i in 0..10_000u64 {
            s.offer(i);
        }
        let pts = s.quantile_points(16);
        assert_eq!(pts.len(), 16);
        assert!(pts.windows(2).all(|w| w[0] <= w[1]), "points must ascend: {pts:?}");
        assert!(pts[0] <= 1000 && pts[15] >= 9000, "points must span the range: {pts:?}");
    }
}
