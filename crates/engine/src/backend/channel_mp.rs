//! The in-process message-passing backend: one long-lived worker thread per
//! shard, commands and replies as serialized byte frames.
//!
//! [`ChannelMp`] is the dress rehearsal for out-of-process/remote shards.
//! Unlike [`super::LocalSpmd`], where the host ships shared closures into a
//! [`cgselect_runtime::Session`], here the host holds **no shard state and
//! no code pointer into the workers**: every verb is encoded as a byte
//! frame in the shared host↔worker protocol (`super::protocol` — versioned,
//! batch-sequence-numbered framing over the `super::wire` codec), sent down
//! a per-worker channel, decoded by the worker, executed against its owned
//! `super::ops::Shard`, and answered with another byte frame. Only the
//! per-batch pivot *seed* crosses the wire per execute; the rest of the
//! selection tuning is deployment configuration every worker received at
//! spawn. Shard-to-shard collectives ride the same in-process
//! [`cgselect_runtime::Proc`] fabric as `LocalSpmd` (obtained via
//! [`cgselect_runtime::Machine::procs`]), which is precisely what keeps
//! collective-round counts identical across backends; [`super::SocketMp`]
//! speaks the same protocol with real child processes and a socket fabric.
//!
//! Failure semantics mirror session poisoning, surfaced as typed
//! [`BackendError`]s: a worker that panics mid-program reports the panic in
//! its reply frame (its peers fail shortly after with receive timeouts,
//! triaged as secondary fallout); a worker that never replies within
//! [`ChannelMpTuning::reply_timeout`] is reported as
//! [`BackendError::WorkerUnresponsive`]. The reply deadline is **shared
//! across the whole collect loop** — p stragglers stall the host for one
//! `reply_timeout`, not p of them — and replies carry the round's sequence
//! number, so a slow worker's late reply can never be mistaken for an
//! answer to a later round. Either way the backend is poisoned and every
//! later call fails fast with [`BackendError::Poisoned`]. [`Fault`]
//! injection exists so the conformance harness can force each of these
//! paths deterministically.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cgselect_runtime::{panic_message, Key, Machine, Proc};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::index::BucketStats;
use crate::EngineConfig;

use super::ops::{self, Shard};
use super::protocol::{self, WorkerConfig, CMD_EXECUTE, CMD_EXIT, REPLY_OK};
use super::wire::Writer;
use super::{BackendError, BackendKind, BatchPlan, ExecBackend, ShardBatchOutcome, ShardDeletion};

/// Tuning (and test instrumentation) of the [`ChannelMp`] backend.
#[derive(Clone, Debug)]
pub struct ChannelMpTuning {
    /// How long the host waits for the round's reply frames before
    /// declaring the silent workers [`BackendError::WorkerUnresponsive`]
    /// and poisoning the backend. One deadline covers the whole collect
    /// loop. Keep comfortably **above** `proc_timeout`: when a worker dies
    /// mid-collective its surviving peers only report (as secondary
    /// timeout panics) after `proc_timeout` has elapsed, and those reports
    /// must reach the host before the reply deadline fires or typed root
    /// causes degrade to spurious `WorkerUnresponsive`.
    pub reply_timeout: Duration,
    /// The workers' collective receive timeout (how long a shard blocked in
    /// a collective waits for a dead peer before failing itself).
    pub proc_timeout: Duration,
    /// Injected faults, for exercising the failure paths deterministically.
    pub faults: Vec<Fault>,
}

impl Default for ChannelMpTuning {
    fn default() -> Self {
        ChannelMpTuning {
            // 2x the collective timeout: headroom for peers' timeout
            // reports to arrive before the host declares silence.
            reply_timeout: Duration::from_secs(60),
            proc_timeout: Duration::from_secs(30),
            faults: Vec::new(),
        }
    }
}

impl ChannelMpTuning {
    /// Defaults: 60 s reply timeout, 30 s collective timeout, no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style reply-timeout choice.
    pub fn reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Builder-style collective-timeout choice.
    pub fn proc_timeout(mut self, timeout: Duration) -> Self {
        self.proc_timeout = timeout;
        self
    }

    /// Builder-style fault injection.
    pub fn fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }
}

/// An injected fault, for pinning down [`ChannelMp`]'s typed-error and
/// poisoning behavior in tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Worker `rank` panics *mid-batch* while serving its `nth`
    /// batch-execute command (0-based): it enters the batch's opening
    /// barrier, then dies, leaving its peers mid-collective.
    PanicOnExecute {
        /// The faulty worker.
        rank: usize,
        /// Which of its execute commands triggers the panic.
        nth: u64,
    },
    /// Worker `rank` executes its `nth` batch-execute command to completion
    /// but its reply frame is lost (never sent).
    DropReplyOnExecute {
        /// The faulty worker.
        rank: usize,
        /// Which of its execute commands loses its reply.
        nth: u64,
    },
    /// Worker `rank` sleeps `delay` before serving every command — a
    /// straggling shard. Must be well below both timeouts; the program
    /// still completes correctly, just later.
    SlowShard {
        /// The slow worker.
        rank: usize,
        /// Extra latency per command.
        delay: Duration,
    },
}

/// Everything a worker needs at spawn besides its `Proc`: deployment
/// configuration, moved (not serialized) into the thread exactly as argv
/// and config files reach a remote shard process out of band.
struct WorkerInit {
    cfg: WorkerConfig,
    faults: Vec<Fault>,
}

struct WorkerLink {
    cmd: Sender<Vec<u8>>,
    reply: Receiver<Vec<u8>>,
    handle: Option<JoinHandle<()>>,
}

/// The in-process message-passing execution backend (see the
/// [module docs](self)).
pub struct ChannelMp<T: Key> {
    workers: Vec<WorkerLink>,
    reply_timeout: Duration,
    next_seq: u64,
    poisoned: bool,
    _marker: PhantomData<fn(T)>,
}

impl<T: Key> ChannelMp<T> {
    /// Spawns the per-shard worker threads with empty shards resident.
    pub(crate) fn start(cfg: &EngineConfig, tuning: ChannelMpTuning) -> Self {
        let machine = Machine::with_model(cfg.nprocs, cfg.model).recv_timeout(tuning.proc_timeout);
        let workers = machine
            .procs()
            .into_iter()
            .enumerate()
            .map(|(rank, proc)| {
                let (cmd_tx, cmd_rx) = unbounded::<Vec<u8>>();
                let (reply_tx, reply_rx) = unbounded::<Vec<u8>>();
                let init = WorkerInit {
                    cfg: WorkerConfig {
                        rank,
                        sketch_capacity: cfg.sketch_capacity,
                        selection: cfg.selection.clone(),
                        balancer: cfg.balancer,
                    },
                    faults: tuning.faults.clone(),
                };
                let handle = std::thread::Builder::new()
                    .name(format!("cgselect-mp-shard{rank}"))
                    .spawn(move || worker_loop::<T>(proc, init, cmd_rx, reply_tx))
                    .expect("failed to spawn channel-mp shard worker");
                WorkerLink { cmd: cmd_tx, reply: reply_rx, handle: Some(handle) }
            })
            .collect();
        ChannelMp {
            workers,
            reply_timeout: tuning.reply_timeout,
            next_seq: 1,
            poisoned: false,
            _marker: PhantomData,
        }
    }

    /// Sends one command body per worker and collects one reply payload per
    /// worker, applying the session-style root-cause triage and poisoning
    /// on any failure. The round's sequence number stamps every frame; the
    /// reply deadline is shared across the whole collect loop.
    fn round_trip(&mut self, bodies: Vec<Vec<u8>>) -> Result<Vec<Vec<u8>>, BackendError> {
        if self.poisoned {
            return Err(BackendError::Poisoned);
        }
        debug_assert_eq!(bodies.len(), self.workers.len());
        let seq = self.next_seq;
        self.next_seq += 1;
        for (rank, (w, body)) in self.workers.iter().zip(bodies).enumerate() {
            if w.cmd.send(protocol::encode_framed(seq, &body)).is_err() {
                self.poisoned = true;
                return Err(BackendError::WorkerUnresponsive { rank });
            }
        }
        let deadline = Instant::now() + self.reply_timeout;
        let mut payloads = Vec::with_capacity(self.workers.len());
        let mut failures: Vec<BackendError> = Vec::new();
        for (rank, w) in self.workers.iter().enumerate() {
            match protocol::collect_frame(&w.reply, deadline, seq, rank)
                .and_then(|body| protocol::decode_reply_status(rank, body))
            {
                Ok(payload) => payloads.push(payload),
                Err(e) => failures.push(e),
            }
        }
        if failures.is_empty() {
            return Ok(payloads);
        }
        self.poisoned = true;
        Err(protocol::triage(failures))
    }

    /// The same serialized body for every worker.
    fn broadcast_frames(&self, body: Vec<u8>) -> Vec<Vec<u8>> {
        let p = self.workers.len();
        let mut bodies = Vec::with_capacity(p);
        for _ in 1..p {
            bodies.push(body.clone());
        }
        bodies.push(body);
        bodies
    }

    /// Decodes every rank's reply payload, poisoning the backend on the
    /// first malformed frame (a worker that writes garbage is as gone as
    /// one that panicked).
    fn decode_all<R>(
        &mut self,
        payloads: Vec<Vec<u8>>,
        decode: impl Fn(usize, &[u8]) -> Result<R, BackendError>,
    ) -> Result<Vec<R>, BackendError> {
        let mut out = Vec::with_capacity(payloads.len());
        for (rank, body) in payloads.iter().enumerate() {
            match decode(rank, body) {
                Ok(v) => out.push(v),
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
        Ok(out)
    }
}

impl<T: Key> ExecBackend<T> for ChannelMp<T> {
    fn nprocs(&self) -> usize {
        self.workers.len()
    }

    fn kind(&self) -> BackendKind {
        BackendKind::ChannelMp
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn ingest(&mut self, chunks: Vec<Vec<T>>) -> Result<Vec<u64>, BackendError> {
        assert_eq!(chunks.len(), self.workers.len(), "one ingest chunk per shard");
        let bodies = chunks.iter().map(|chunk| protocol::encode_ingest(chunk)).collect();
        let payloads = self.round_trip(bodies)?;
        self.decode_all(payloads, protocol::decode_u64_reply)
    }

    fn delete(&mut self, values: Vec<T>) -> Result<Vec<ShardDeletion>, BackendError> {
        let payloads = self.round_trip(self.broadcast_frames(protocol::encode_delete(&values)))?;
        self.decode_all(payloads, protocol::decode_deletion_reply)
    }

    fn rebalance(&mut self) -> Result<Vec<u64>, BackendError> {
        let payloads = self
            .round_trip(self.broadcast_frames(Writer::new(protocol::CMD_REBALANCE).into_frame()))?;
        self.decode_all(payloads, protocol::decode_u64_reply)
    }

    #[allow(clippy::type_complexity)]
    fn build_index(
        &mut self,
        buckets: usize,
    ) -> Result<(Vec<cgselect_seqsel::SepBound<T>>, Vec<BucketStats<T>>), BackendError> {
        let payloads =
            self.round_trip(self.broadcast_frames(protocol::encode_build_index(buckets)))?;
        let pairs = self.decode_all(payloads, protocol::decode_index_build_reply::<T>)?;
        let mut bounds = Vec::new();
        let mut stats = Vec::with_capacity(pairs.len());
        for (rank, (b, s)) in pairs.into_iter().enumerate() {
            if rank == 0 {
                bounds = b;
            } else {
                debug_assert_eq!(bounds, b, "splitter bounds must agree across shards");
            }
            stats.push(s);
        }
        Ok((bounds, stats))
    }

    fn merge_delta(&mut self) -> Result<Vec<BucketStats<T>>, BackendError> {
        let payloads = self.round_trip(
            self.broadcast_frames(Writer::new(protocol::CMD_MERGE_DELTA).into_frame()),
        )?;
        self.decode_all(payloads, protocol::decode_bucket_stats_reply::<T>)
    }

    fn execute(&mut self, plan: &BatchPlan<T>) -> Result<Vec<ShardBatchOutcome<T>>, BackendError> {
        let payloads = self.round_trip(self.broadcast_frames(protocol::encode_execute(plan)))?;
        self.decode_all(payloads, protocol::decode_outcome::<T>)
    }

    fn export_sketches(&mut self) -> Result<Vec<crate::sketch::EpsSketch<T>>, BackendError> {
        let payloads = self.round_trip(self.broadcast_frames(protocol::encode_export_sketch()))?;
        self.decode_all(payloads, protocol::decode_sketch_reply::<T>)
    }
}

impl<T: Key> Drop for ChannelMp<T> {
    fn drop(&mut self) {
        // Join-on-drop, mirroring `Session`: tell every worker to exit and
        // wait for it, so dropping an engine never leaks shard threads.
        for w in &self.workers {
            let _ = w.cmd.send(protocol::encode_framed(self.next_seq, &[CMD_EXIT]));
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The shard worker's command loop: unframe, decode, execute against the
/// owned shard, run the end-of-program protocol, reply under the command's
/// sequence number. A panic (injected or real) or protocol violation is
/// reported in the reply frame and ends the loop, exactly as a `Session`
/// worker stops serving after a failure.
fn worker_loop<T: Key>(
    mut proc: Proc,
    init: WorkerInit,
    commands: Receiver<Vec<u8>>,
    replies: Sender<Vec<u8>>,
) {
    let rank = init.cfg.rank;
    let mut shard: Shard<T> = ops::init_shard(init.cfg.sketch_capacity);
    let slow_delay = init.faults.iter().find_map(|f| match f {
        Fault::SlowShard { rank: r, delay } if *r == rank => Some(*delay),
        _ => None,
    });
    let mut executes_served = 0u64;
    while let Ok(frame) = commands.recv() {
        let (seq, body) = match protocol::split_framed(&frame) {
            Ok(parts) => parts,
            // An unframeable command cannot be answered under a matching
            // sequence number; stop serving and let the host time out.
            Err(_) => break,
        };
        if body.first() == Some(&CMD_EXIT) {
            break;
        }
        if let Some(delay) = slow_delay {
            std::thread::sleep(delay);
        }
        let (panic_now, drop_reply) = if body.first() == Some(&CMD_EXECUTE) {
            let nth = executes_served;
            executes_served += 1;
            (
                init.faults.iter().any(|f| {
                    matches!(f, Fault::PanicOnExecute { rank: r, nth: n } if *r == rank && *n == nth)
                }),
                init.faults.iter().any(|f| {
                    matches!(f, Fault::DropReplyOnExecute { rank: r, nth: n } if *r == rank && *n == nth)
                }),
            )
        } else {
            (false, false)
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            protocol::run_command::<T>(&mut proc, &mut shard, &init.cfg, body, panic_now)
        }));
        let reply = match outcome {
            Ok(Ok(payload)) => payload,
            Ok(Err(protocol_err)) => protocol::encode_protocol_error(&protocol_err),
            Err(payload) => {
                let mut w = Writer::new(protocol::REPLY_PANICKED);
                w.str(&panic_message(payload));
                w.into_frame()
            }
        };
        let failed = reply.first() != Some(&REPLY_OK);
        if drop_reply && !failed {
            // Simulate a lost reply frame: the program ran, the host never
            // hears about it. Keep serving (the host will poison itself).
            continue;
        }
        if replies.send(protocol::encode_framed(seq, &reply)).is_err() || failed {
            // Host gone mid-run, or this program failed: this worker's Proc
            // state can no longer be trusted — stop serving.
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::MachineModel;

    #[test]
    fn default_tuning_gives_reply_deadline_headroom() {
        // Peers report a dead rank only after proc_timeout; the host's
        // reply deadline must sit beyond that or root causes degrade to
        // WorkerUnresponsive.
        let t = ChannelMpTuning::default();
        assert!(t.reply_timeout >= t.proc_timeout + t.proc_timeout / 2);
    }

    #[test]
    fn straggler_timeouts_share_one_deadline() {
        // Two stragglers sleep far past the reply deadline. With a shared
        // deadline the host stalls ~one reply_timeout total; the old
        // per-worker sequential timeouts would stall ~2x. The margin
        // asserted here (< 2 full timeouts) fails on the sequential shape
        // even under scheduler noise.
        let cfg = EngineConfig::new(3).model(MachineModel::free());
        let tuning = ChannelMpTuning::new()
            .reply_timeout(Duration::from_millis(700))
            .proc_timeout(Duration::from_millis(200))
            .fault(Fault::SlowShard { rank: 0, delay: Duration::from_secs(2) })
            .fault(Fault::SlowShard { rank: 1, delay: Duration::from_secs(2) });
        let mut backend = ChannelMp::<u64>::start(&cfg, tuning);
        let start = Instant::now();
        let err = backend.ingest(vec![vec![1], vec![2], vec![3]]).unwrap_err();
        let elapsed = start.elapsed();
        assert!(
            matches!(
                err,
                BackendError::WorkerUnresponsive { .. } | BackendError::WorkerPanicked { .. }
            ),
            "{err:?}"
        );
        assert!(
            elapsed < Duration::from_millis(1300),
            "collect loop must share one deadline across stragglers, stalled {elapsed:?}"
        );
        assert!(backend.is_poisoned());
    }
}
