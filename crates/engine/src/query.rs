//! The engine's query language and the batch planner.
//!
//! Queries arrive in batches. The planner reduces every exact query to a set
//! of 0-based global ranks and **coalesces the whole batch into one sorted,
//! deduplicated rank list**, which the engine resolves with a single
//! [`cgselect_core::parallel_multi_select`] collective pass — this is where
//! batching wins: R rank queries cost one multi-select recursion
//! (`O(log n + R)` pivot rounds) instead of R independent selections
//! (`O(R·log n)` rounds). Quantile queries carrying a rank-error tolerance
//! the resident sketches can honor are routed to the approximate path
//! instead and never touch the full data.

use std::collections::HashMap;
use std::sync::Arc;

/// One query against the resident distributed multiset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Query {
    /// The element of this 0-based global rank.
    Rank(u64),
    /// The element nearest to quantile `q ∈ [0, 1]`.
    Quantile {
        /// The quantile, `0.0 ..= 1.0`.
        q: f64,
        /// `Some(t)`: the engine may answer from the sample sketches as
        /// long as the result's rank error is at most `t·n` (fraction of
        /// the resident population). `None` demands the exact element.
        tolerance: Option<f64>,
    },
    /// The median (0-based rank `(n−1)/2`, the paper's ⌈n/2⌉-th smallest).
    Median,
    /// The `k` smallest resident elements, in ascending order.
    TopK(u64),
}

impl Query {
    /// An exact quantile query.
    pub fn quantile(q: f64) -> Query {
        Query::Quantile { q, tolerance: None }
    }

    /// A quantile query the engine may answer approximately, with rank
    /// error at most `tolerance · n`.
    pub fn quantile_within(q: f64, tolerance: f64) -> Query {
        Query::Quantile { q, tolerance: Some(tolerance) }
    }
}

/// One answer, aligned with the submitted query.
#[derive(Clone, Debug, PartialEq)]
pub enum Answer<T> {
    /// Exact element (for `Rank`, `Median`, and exact `Quantile`).
    Value(T),
    /// The k smallest elements in ascending order (for `TopK`).
    Top(Vec<T>),
    /// Sketch-served quantile: `value`'s true rank is within
    /// `max_rank_error` of `target_rank` (with the sketch's confidence;
    /// see `cgselect_engine::sketch`).
    Approximate {
        /// The estimated element.
        value: T,
        /// The exact query's 0-based target rank.
        target_rank: u64,
        /// The promised absolute rank-error bound (`⌈tolerance·n⌉`).
        max_rank_error: u64,
    },
}

impl<T: Copy> Answer<T> {
    /// The scalar answer, if this is a `Value` or `Approximate` answer.
    pub fn value(&self) -> Option<T> {
        match self {
            Answer::Value(v) | Answer::Approximate { value: v, .. } => Some(*v),
            Answer::Top(_) => None,
        }
    }

    /// The top-k list, if this is a `Top` answer.
    pub fn top(&self) -> Option<&[T]> {
        match self {
            Answer::Top(v) => Some(v),
            _ => None,
        }
    }
}

/// The 0-based rank the engine resolves quantile `q` to over `n` elements
/// (nearest-rank definition: `round(q·(n−1))`).
pub fn quantile_rank(q: f64, n: u64) -> u64 {
    assert!(n > 0, "quantile of an empty set");
    ((q * (n - 1) as f64).round() as u64).min(n - 1)
}

/// Checks one query's domain against a resident population of `n` elements
/// without planning it: the single source of truth for what
/// [`plan`] accepts, also used by the async frontend to reject an invalid
/// query individually instead of failing the whole coalesced batch.
pub(crate) fn validate(query: &Query, n: u64) -> Result<(), crate::EngineError> {
    use crate::EngineError;
    if n == 0 {
        return Err(EngineError::Empty);
    }
    match *query {
        Query::Rank(k) if k >= n => Err(EngineError::RankOutOfRange { rank: k, n }),
        Query::Quantile { q, .. } if !(0.0..=1.0).contains(&q) => {
            Err(EngineError::InvalidQuantile(q))
        }
        // NaN and ±∞ are rejected up front: an infinite tolerance would
        // otherwise satisfy `t >= sketch_bound` even when the bound is ∞
        // (sketches disabled) and send the query into an empty-sketch
        // estimate.
        Query::Quantile { tolerance: Some(t), .. } if !t.is_finite() || t < 0.0 => {
            Err(EngineError::InvalidTolerance(t))
        }
        Query::TopK(k) if k > n => Err(EngineError::TopKTooLarge { k, n }),
        _ => Ok(()),
    }
}

/// How the planner resolved one query.
#[derive(Clone, Debug)]
pub(crate) enum Resolution {
    /// Answer is the element at this exact rank.
    Exact(u64),
    /// Answer is the elements at ranks `0..k`, ascending.
    TopRange(u64),
    /// Answer from the sketches.
    Sketch { target_rank: u64, max_rank_error: u64 },
}

/// A planned batch: per-query resolutions plus the coalesced rank list.
///
/// The rank lists are built behind `Arc`s here, in the planner, so the
/// engine can ship them into its SPMD closure without re-cloning the
/// vectors per batch.
#[derive(Clone, Debug)]
pub(crate) struct Plan {
    pub resolutions: Vec<Resolution>,
    /// Sorted, deduplicated ranks feeding the single multi-select pass.
    pub exact_ranks: Arc<Vec<u64>>,
    /// Target ranks of the sketch-served queries, in resolution order.
    pub sketch_targets: Arc<Vec<u64>>,
}

/// Plans a batch over `n` resident elements. `sketch_bound` is the smallest
/// fractional tolerance the resident sketches can honor
/// ([`crate::sketch::support_bound`]); pass `f64::INFINITY` to disable the
/// approximate path.
///
/// Fails (via `Err`) on out-of-domain queries so the caller can reject the
/// batch before any collective work happens.
pub(crate) fn plan(
    queries: &[Query],
    n: u64,
    sketch_bound: f64,
) -> Result<Plan, crate::EngineError> {
    if n == 0 {
        return Err(crate::EngineError::Empty);
    }
    let mut resolutions = Vec::with_capacity(queries.len());
    let mut exact_ranks = Vec::new();
    let mut sketch_targets = Vec::new();
    for &query in queries {
        validate(&query, n)?;
        let res = match query {
            Query::Rank(k) => Resolution::Exact(k),
            Query::Median => Resolution::Exact((n - 1) / 2),
            Query::Quantile { q, tolerance } => {
                let target = quantile_rank(q, n);
                match tolerance {
                    Some(t) if t >= sketch_bound => {
                        sketch_targets.push(target);
                        Resolution::Sketch {
                            target_rank: target,
                            max_rank_error: (t * n as f64).ceil() as u64,
                        }
                    }
                    // Tolerance too tight for the sketches: exact fallback.
                    Some(_) | None => Resolution::Exact(target),
                }
            }
            Query::TopK(k) => {
                for r in 0..k {
                    exact_ranks.push(r);
                }
                Resolution::TopRange(k)
            }
        };
        if let Resolution::Exact(r) = res {
            exact_ranks.push(r);
        }
        resolutions.push(res);
    }
    exact_ranks.sort_unstable();
    exact_ranks.dedup();
    Ok(Plan {
        resolutions,
        exact_ranks: Arc::new(exact_ranks),
        sketch_targets: Arc::new(sketch_targets),
    })
}

impl Plan {
    /// Assembles per-query answers from the multi-select results (aligned
    /// with `exact_ranks`) and the sketch estimates (aligned with
    /// `sketch_targets`).
    pub(crate) fn assemble<T: Copy + std::fmt::Debug>(
        &self,
        exact_values: &[T],
        sketch_values: &[T],
    ) -> Vec<Answer<T>> {
        debug_assert_eq!(exact_values.len(), self.exact_ranks.len());
        debug_assert_eq!(sketch_values.len(), self.sketch_targets.len());
        let by_rank: HashMap<u64, T> =
            self.exact_ranks.iter().copied().zip(exact_values.iter().copied()).collect();
        let mut next_sketch = 0usize;
        self.resolutions
            .iter()
            .map(|res| match *res {
                Resolution::Exact(r) => Answer::Value(by_rank[&r]),
                Resolution::TopRange(k) => Answer::Top((0..k).map(|r| by_rank[&r]).collect()),
                Resolution::Sketch { target_rank, max_rank_error } => {
                    let value = sketch_values[next_sketch];
                    next_sketch += 1;
                    Answer::Approximate { value, target_rank, max_rank_error }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_rank_nearest() {
        assert_eq!(quantile_rank(0.0, 100), 0);
        assert_eq!(quantile_rank(1.0, 100), 99);
        assert_eq!(quantile_rank(0.5, 101), 50);
        assert_eq!(quantile_rank(0.5, 1), 0);
    }

    #[test]
    fn planner_coalesces_and_dedups() {
        let queries = [
            Query::Rank(5),
            Query::Median, // n=11 -> rank 5, duplicate
            Query::TopK(3),
            Query::quantile(1.0), // rank 10
        ];
        let plan = plan(&queries, 11, f64::INFINITY).unwrap();
        assert_eq!(*plan.exact_ranks, vec![0, 1, 2, 5, 10]);
        assert!(plan.sketch_targets.is_empty());
        let answers = plan.assemble(&[10, 11, 12, 15, 20], &[]);
        assert_eq!(answers[0], Answer::Value(15));
        assert_eq!(answers[1], Answer::Value(15));
        assert_eq!(answers[2], Answer::Top(vec![10, 11, 12]));
        assert_eq!(answers[3], Answer::Value(20));
    }

    #[test]
    fn tolerant_quantiles_route_to_sketch_only_when_supported() {
        let queries = [Query::quantile_within(0.5, 0.05), Query::quantile_within(0.5, 0.001)];
        let plan = plan(&queries, 1000, 0.01).unwrap();
        // 0.05 >= bound 0.01 -> sketch; 0.001 < bound -> exact fallback.
        assert_eq!(*plan.sketch_targets, vec![500]);
        assert_eq!(*plan.exact_ranks, vec![500]);
        match plan.resolutions[0] {
            Resolution::Sketch { target_rank: 500, max_rank_error: 50 } => {}
            ref other => panic!("unexpected resolution {other:?}"),
        }
    }

    #[test]
    fn non_finite_tolerances_are_rejected_not_sketch_routed() {
        // An infinite tolerance must not satisfy `t >= bound` when the
        // bound is itself infinite (sketches disabled / empty).
        for bad in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let queries = [Query::quantile_within(0.5, bad)];
            assert!(
                matches!(
                    plan(&queries, 100, f64::INFINITY),
                    Err(crate::EngineError::InvalidTolerance(_))
                ),
                "tolerance {bad} must be rejected"
            );
        }
    }

    #[test]
    fn domain_errors_reject_the_batch() {
        assert!(matches!(
            plan(&[Query::Rank(10)], 10, f64::INFINITY),
            Err(crate::EngineError::RankOutOfRange { rank: 10, n: 10 })
        ));
        assert!(matches!(
            plan(&[Query::quantile(1.5)], 10, f64::INFINITY),
            Err(crate::EngineError::InvalidQuantile(_))
        ));
        assert!(matches!(
            plan(&[Query::TopK(11)], 10, f64::INFINITY),
            Err(crate::EngineError::TopKTooLarge { k: 11, n: 10 })
        ));
        assert!(matches!(plan(&[Query::Median], 0, f64::INFINITY), Err(crate::EngineError::Empty)));
    }
}
