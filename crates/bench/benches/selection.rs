//! End-to-end wall-clock benchmark: the four parallel selection algorithms
//! on real threads (p = 8), random and sorted inputs, plus the sample-sort
//! ablation for fast randomized selection.
//!
//! Absolute numbers here reflect the host machine, not the CM-5; the
//! *ordering* (randomized beating deterministic) carries over because it
//! is driven by the kernels' real work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cgselect_core::{median_on_machine, Algorithm, Balancer, SampleSortAlgo, SelectionConfig};
use cgselect_runtime::MachineModel;
use cgselect_workloads::{generate, Distribution};

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("selection");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(3));

    let p = 8;
    let n = 1 << 18; // 256k
    g.throughput(Throughput::Elements(n as u64));

    for dist in [Distribution::Random, Distribution::Sorted] {
        let parts = generate(dist, n, p, 11);
        for algo in Algorithm::ALL {
            let balancer = if algo == Algorithm::MedianOfMedians {
                Balancer::GlobalExchange
            } else {
                Balancer::None
            };
            g.bench_with_input(
                BenchmarkId::new(algo.name().replace(' ', "_"), dist.name()),
                &parts,
                |b, parts| {
                    let cfg = SelectionConfig::with_seed(13).balancer(balancer);
                    b.iter(|| {
                        median_on_machine(p, MachineModel::free(), parts, algo, &cfg).unwrap().value
                    });
                },
            );
        }
    }

    // The sample-sort ablation for fast randomized selection.
    let parts = generate(Distribution::Random, n, p, 17);
    for ss in [SampleSortAlgo::Psrs, SampleSortAlgo::Bitonic, SampleSortAlgo::GatherSort] {
        g.bench_with_input(
            BenchmarkId::new("fast_randomized_samplesort", ss.name()),
            &parts,
            |b, parts| {
                let cfg = SelectionConfig::with_seed(19).sample_sort(ss);
                b.iter(|| {
                    median_on_machine(
                        p,
                        MachineModel::free(),
                        parts,
                        Algorithm::FastRandomized,
                        &cfg,
                    )
                    .unwrap()
                    .value
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
