//! The metrics registry: counters, gauges, fixed-bucket histograms, and
//! latency tracks whose percentiles are served by the engine's own quantile
//! machinery.
//!
//! The registry is deliberately boring — `BTreeMap`s behind one `Mutex`,
//! `&'static str` names — because it sits on the engine's batch path and the
//! frontend's delivery path. The one interesting piece is dogfooding:
//! latency tracks feed a [`ReservoirSketch`] and percentiles come out of
//! [`quantile_rank`] + [`estimate_rank`] — the very code the engine uses to
//! answer its callers' quantile queries now answers queries about the engine
//! itself.

use crate::query::quantile_rank;
use crate::sketch::{estimate_rank, ReservoirSketch};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Upper bucket bounds are `2^i` for `i < HISTOGRAM_BUCKETS`, plus an
/// implicit `+inf` overflow bucket — fixed so snapshots from different runs
/// are always comparable.
const HISTOGRAM_BUCKETS: usize = 24;

/// Reservoir capacity of one latency track: enough samples for stable
/// p99 estimates (standard rank error `≈ n/√1024 ≈ 3%·n`) at fixed memory.
const LATENCY_SAMPLES: usize = 1024;

#[derive(Clone, Debug, Default)]
struct Histogram {
    /// `buckets[i]` counts observations `v ≤ 2^i`; the last slot overflows.
    buckets: [u64; HISTOGRAM_BUCKETS + 1],
    count: u64,
    sum: u64,
}

impl Histogram {
    fn observe(&mut self, v: u64) {
        let slot = (64 - u64::leading_zeros(v.max(1)) as usize - 1)
            + usize::from(!v.is_power_of_two() && v > 1);
        self.buckets[slot.min(HISTOGRAM_BUCKETS)] += 1;
        self.count += 1;
        self.sum += v;
    }
}

#[derive(Debug)]
struct LatencyTrack {
    sketch: ReservoirSketch<u64>,
}

impl LatencyTrack {
    fn new(name: &str) -> Self {
        // Seed the reservoir deterministically from the track name so a
        // given workload yields reproducible percentile estimates.
        let seed =
            name.bytes().fold(0xC0FFEE_u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        LatencyTrack { sketch: ReservoirSketch::new(LATENCY_SAMPLES, seed) }
    }

    /// The engine's own quantile machinery, turned on itself: the track's
    /// reservoir is one "shard" of `(samples, population)` and the
    /// percentile is the estimated element of the quantile's target rank.
    fn percentile(&self, q: f64) -> u64 {
        let n = self.sketch.population();
        if n == 0 {
            return 0;
        }
        let target = quantile_rank(q, n);
        estimate_rank(&[(self.sketch.samples().to_vec(), n)], target)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    latencies: BTreeMap<&'static str, LatencyTrack>,
}

/// A process-shared metrics registry.
///
/// Cloned handles (via `Arc`) are held by the engine and the frontend's
/// batcher thread; every operation takes one short mutex section. Names must
/// be `&'static str` — metric names are code, not data.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named monotonic counter.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        *self.inner.lock().expect("metrics lock").counters.entry(name).or_insert(0) += n;
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge_set(&self, name: &'static str, v: f64) {
        self.inner.lock().expect("metrics lock").gauges.insert(name, v);
    }

    /// Records one observation into the named power-of-two-bucket histogram.
    pub fn histogram_observe(&self, name: &'static str, v: u64) {
        self.inner.lock().expect("metrics lock").histograms.entry(name).or_default().observe(v);
    }

    /// Records one latency observation (nanoseconds) into the named track.
    pub fn latency_observe(&self, name: &'static str, nanos: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.latencies.entry(name).or_insert_with(|| LatencyTrack::new(name)).sketch.offer(nanos);
    }

    /// A point-in-time copy of every metric, with latency percentiles
    /// computed by the engine's own sketch/quantile code.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            gauges: inner.gauges.iter().map(|(&k, &v)| (k, v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&name, h)| HistogramSnapshot {
                    name,
                    count: h.count,
                    sum: h.sum,
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            let le = if i < HISTOGRAM_BUCKETS { 1u64 << i } else { u64::MAX };
                            (le, c)
                        })
                        .collect(),
                })
                .collect(),
            latencies: inner
                .latencies
                .iter()
                .map(|(&name, t)| LatencySummary {
                    name,
                    count: t.sketch.population(),
                    p50: t.percentile(0.50),
                    p95: t.percentile(0.95),
                    p99: t.percentile(0.99),
                })
                .collect(),
        }
    }
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty `(upper bound, count)` buckets; `u64::MAX` is the overflow
    /// bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// One latency track in a [`MetricsSnapshot`]; all values in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Track name.
    pub name: &'static str,
    /// Total observations (the track's full population, not just the
    /// retained samples).
    pub count: u64,
    /// Estimated median latency.
    pub p50: u64,
    /// Estimated 95th-percentile latency.
    pub p95: u64,
    /// Estimated 99th-percentile latency.
    pub p99: u64,
}

/// A point-in-time copy of a [`MetricsRegistry`], exportable as aligned
/// text or JSON.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, name-sorted.
    pub counters: Vec<(&'static str, u64)>,
    /// Last-value gauges, name-sorted.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<HistogramSnapshot>,
    /// Latency tracks, name-sorted.
    pub latencies: Vec<LatencySummary>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as line-oriented text (one metric per line,
    /// `prometheus`-flavored but offline-friendly).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("counter {name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("gauge {name} {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!("histogram {} count={} sum={}", h.name, h.count, h.sum));
            for (le, c) in &h.buckets {
                if *le == u64::MAX {
                    out.push_str(&format!(" le=+inf:{c}"));
                } else {
                    out.push_str(&format!(" le={le}:{c}"));
                }
            }
            out.push('\n');
        }
        for l in &self.latencies {
            out.push_str(&format!(
                "latency {} count={} p50={}ns p95={}ns p99={}ns\n",
                l.name, l.count, l.p50, l.p95, l.p99
            ));
        }
        out
    }

    /// Renders the snapshot as a JSON object (hand-rolled: the workspace is
    /// offline and carries no serializer dependency).
    pub fn to_json(&self) -> String {
        fn push_kv_list<V: std::fmt::Display>(out: &mut String, items: &[(&str, V)]) {
            out.push('{');
            for (i, (name, v)) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{v}"));
            }
            out.push('}');
        }
        let mut out = String::from("{\"counters\":");
        push_kv_list(&mut out, &self.counters);
        out.push_str(",\"gauges\":");
        push_kv_list(&mut out, &self.gauges);
        out.push_str(",\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.name, h.count, h.sum
            ));
            for (j, (le, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{le},{c}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"latencies\":{");
        for (i, l) in self.latencies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                l.name, l.count, l.p50, l.p95, l.p99
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_accumulate() {
        let m = MetricsRegistry::new();
        m.counter_add("requests_total", 3);
        m.counter_add("requests_total", 2);
        m.gauge_set("queue_depth", 7.0);
        m.gauge_set("queue_depth", 4.0);
        for v in [1u64, 2, 3, 900] {
            m.histogram_observe("batch_occupancy", v);
        }
        let s = m.snapshot();
        assert_eq!(s.counters, vec![("requests_total", 5)]);
        assert_eq!(s.gauges, vec![("queue_depth", 4.0)]);
        let h = &s.histograms[0];
        assert_eq!((h.count, h.sum), (4, 906));
        // Buckets are `v ≤ 2^i`: 1→le=1, 2→le=2, 3→le=4, 900→le=1024.
        assert_eq!(h.buckets, vec![(1, 1), (2, 1), (4, 1), (1024, 1)]);
    }

    #[test]
    fn latency_percentiles_come_from_the_engines_own_quantile_code() {
        let m = MetricsRegistry::new();
        // 1..=1000 ns, below reservoir capacity: the sketch is lossless, so
        // the dogfooded percentile must be the *exact* order statistic the
        // engine's quantile_rank targets.
        for v in 1..=1000u64 {
            m.latency_observe("request_wall", v);
        }
        let l = m.snapshot().latencies[0];
        assert_eq!(l.count, 1000);
        assert_eq!(l.p50, quantile_rank(0.50, 1000) + 1);
        assert_eq!(l.p95, quantile_rank(0.95, 1000) + 1);
        assert_eq!(l.p99, quantile_rank(0.99, 1000) + 1);
    }

    #[test]
    fn latency_percentiles_stay_close_above_reservoir_capacity() {
        let m = MetricsRegistry::new();
        for v in 1..=100_000u64 {
            m.latency_observe("request_wall", v);
        }
        let l = m.snapshot().latencies[0];
        assert_eq!(l.count, 100_000);
        // 1024 samples → standard rank error ≈ 3%; allow 4 standard errors.
        for (p, q) in [(l.p50, 0.50), (l.p95, 0.95), (l.p99, 0.99)] {
            let target = (q * 100_000.0) as i64;
            assert!((p as i64 - target).abs() < 12_500, "p{q}: estimate {p} too far from {target}");
        }
        assert!(l.p50 < l.p95 && l.p95 < l.p99);
    }

    #[test]
    fn exporters_render_every_section() {
        let m = MetricsRegistry::new();
        m.counter_add("served_histogram", 9);
        m.gauge_set("delta_occupancy", 0.25);
        m.histogram_observe("batch_occupancy", 8);
        m.latency_observe("batch_wall", 1500);
        let s = m.snapshot();
        let text = s.to_text();
        assert!(text.contains("counter served_histogram 9"), "{text}");
        assert!(text.contains("gauge delta_occupancy 0.25"), "{text}");
        assert!(text.contains("histogram batch_occupancy count=1 sum=8 le=8:1"), "{text}");
        assert!(text.contains("latency batch_wall count=1 p50=1500ns"), "{text}");
        let json = s.to_json();
        assert!(json.contains("\"served_histogram\":9"), "{json}");
        assert!(json.contains("\"batch_wall\":{\"count\":1,\"p50\":1500"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
