//! Global exchange load balancing (Algorithm 7).

use cgselect_runtime::{Key, Proc};

use crate::schedule::{execute_transfers, transfer_schedule};
use crate::{target_for, BalanceReport};

/// Global exchange: like [`modified_order_maintaining`] but both the
/// sources (sorted by excess, largest first) and the sinks (sorted by
/// deficit, largest first) are reordered before the prefix matching, so
/// processors holding a lot of excess ship it directly to the processors
/// missing a lot — which tends to reduce the total number of messages
/// relative to rank-order matching.
///
/// Worst-case cost `O(μ·n_avg + τ·p + μ·(n_max − n_avg))`, the same as the
/// modified OMLB; the gain is in the message constant.
///
/// [`modified_order_maintaining`]: crate::modified_order_maintaining
pub fn global_exchange<T: Key>(proc: &mut Proc, data: &mut Vec<T>) -> BalanceReport {
    let p = proc.nprocs();
    let counts: Vec<u64> = proc.all_gather(data.len() as u64);
    let n: u64 = counts.iter().sum();

    let mut sources = Vec::new();
    let mut sinks = Vec::new();
    for (r, &c) in counts.iter().enumerate() {
        let t = target_for(n, p, r);
        if c > t {
            sources.push((r, c - t));
        } else if c < t {
            sinks.push((r, t - c));
        }
    }
    // Largest excess first / largest deficit first; ties by rank for
    // determinism (the paper's Step 4 sorts both diff arrays).
    sources.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    sinks.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    // Scan + two sorts of at most p entries.
    proc.charge_ops(2 * p as u64 + 2 * (p.max(2) as u64) * (p.max(2).ilog2() as u64));

    let schedule = transfer_schedule(&sources, &sinks);
    let tag = proc.fresh_tag();
    execute_transfers(proc, data, &schedule, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel};

    fn run(parts: Vec<Vec<u64>>) -> (Vec<Vec<u64>>, Vec<BalanceReport>) {
        let p = parts.len();
        let both = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut mine = parts[proc.rank()].clone();
                let rep = global_exchange(proc, &mut mine);
                (mine, rep)
            })
            .unwrap();
        both.into_iter().unzip()
    }

    #[test]
    fn balances_exactly_and_preserves_multiset() {
        let profiles: Vec<Vec<Vec<u64>>> = vec![
            vec![(0..40).collect(), vec![], vec![], vec![]],
            vec![(0..3).collect(), (0..9).collect(), (0..1).collect(), (0..27).collect()],
            vec![vec![], vec![], vec![]],
            vec![vec![1], vec![2], vec![3]],
        ];
        for parts in profiles {
            let (out, _) = run(parts.clone());
            let n: u64 = out.iter().map(|v| v.len() as u64).sum();
            for (r, v) in out.iter().enumerate() {
                assert_eq!(v.len() as u64, target_for(n, out.len(), r), "{out:?}");
            }
            let mut a: Vec<u64> = parts.into_iter().flatten().collect();
            let mut b: Vec<u64> = out.into_iter().flatten().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn big_source_feeds_big_sink_first() {
        // Source A (excess 12) and B (excess 2); sink C (deficit 12), D
        // (deficit 2). Largest-to-largest matching means A->C and B->D:
        // exactly 2 messages total.
        // targets: 56/4 = 14 each.
        let parts: Vec<Vec<u64>> = vec![
            (0..26).collect(), // excess 12
            (0..16).collect(), // excess 2
            (0..2).collect(),  // deficit 12
            (0..12).collect(), // deficit 2
        ];
        let (_, reports) = run(parts);
        let total_msgs: u64 = reports.iter().map(|r| r.messages_sent).sum();
        assert_eq!(total_msgs, 2);
    }

    #[test]
    fn rank_order_matching_would_use_more_messages_here() {
        // Same scenario through modified OMLB: source 0's excess (12) is
        // matched against sink slots in rank order: sink 2 needs 12 — also
        // 2 messages... craft an asymmetric case instead:
        // excesses [0]=3, [1]=11; deficits [2]=11, [3]=3; targets 14.
        let parts: Vec<Vec<u64>> = vec![
            (0..17).collect(), // excess 3
            (0..25).collect(), // excess 11
            (0..3).collect(),  // deficit 11
            (0..11).collect(), // deficit 3
        ];
        let (_, ge_reports) = run(parts.clone());
        let ge_msgs: u64 = ge_reports.iter().map(|r| r.messages_sent).sum();
        assert_eq!(ge_msgs, 2, "global exchange pairs 11->11 and 3->3");

        let p = parts.len();
        let mod_reports = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut mine = parts[proc.rank()].clone();
                crate::modified_order_maintaining(proc, &mut mine)
            })
            .unwrap();
        let mod_msgs: u64 = mod_reports.iter().map(|r| r.messages_sent).sum();
        assert_eq!(mod_msgs, 3, "rank-order matching splits the big excess");
    }
}
