//! The paper's parallel primitives (§2.2), built on point-to-point messages.
//!
//! Every collective is implemented with the classical binomial-tree /
//! dissemination / recursive-doubling communication patterns so the modeled
//! costs match the bounds the paper states:
//!
//! * `Broadcast`, `Combine`, `Parallel Prefix` — `O((τ + μ) log p)`
//! * `Gather`, `Global Concatenate` — `O(τ log p + μ p m)`
//! * `Transportation primitive` (all-to-all personalized) — `O(τ p + 2 μ t)`
//!
//! All collectives must be called by **every** processor of the machine in
//! the same order (SPMD discipline). Tags are epoch-scoped internally, so
//! user tags and back-to-back collectives never collide.

use crate::process::Proc;
use crate::wiremsg::WireMsg;

/// Base for internal collective tags (bit 63 set; user tags are < 2^32).
const COLLECTIVE_BASE: u64 = 1 << 63;

impl Proc {
    /// Allocates the tag for the next collective. Epochs advance identically
    /// on every processor because collectives are called in SPMD order.
    fn collective_tag(&mut self) -> u64 {
        let tag = COLLECTIVE_BASE | (self.epoch << 16);
        self.epoch += 1;
        self.note_collective_op();
        tag
    }

    /// Allocates a fresh tag from the runtime's reserved tag space, for
    /// libraries that layer structured communication on top of [`Proc`]
    /// (e.g. the load balancers). Must be called in SPMD order, like a
    /// collective; the low 16 bits of the returned tag are zero and free
    /// for sub-numbering rounds. Never collides with user tags (< 2^32) or
    /// with the runtime's own collectives.
    pub fn fresh_tag(&mut self) -> u64 {
        self.collective_tag()
    }

    /// Sends under a tag obtained from [`fresh_tag`](Proc::fresh_tag)
    /// (user-facing [`send`](Proc::send) rejects reserved tags).
    pub fn send_tagged<T: WireMsg>(&mut self, dst: usize, tag: u64, value: T) {
        self.isend(dst, tag, value);
    }

    /// Vector variant of [`send_tagged`](Proc::send_tagged).
    pub fn send_vec_tagged<T: WireMsg>(&mut self, dst: usize, tag: u64, data: Vec<T>) {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.isend_sized(dst, tag, bytes, data);
    }

    /// Receives under a tag obtained from [`fresh_tag`](Proc::fresh_tag).
    pub fn recv_tagged<T: WireMsg>(&mut self, src: usize, tag: u64) -> T {
        self.irecv(src, tag)
    }

    /// Vector variant of [`recv_tagged`](Proc::recv_tagged).
    pub fn recv_vec_tagged<T: WireMsg>(&mut self, src: usize, tag: u64) -> Vec<T> {
        self.irecv(src, tag)
    }

    /// Synchronizes all processors (dissemination barrier, `⌈log₂ p⌉` rounds).
    ///
    /// Also synchronizes virtual clocks up to the modeled cost of the barrier
    /// itself: afterwards every clock is at least the maximum pre-barrier
    /// clock.
    pub fn barrier(&mut self) {
        let tag = self.collective_tag();
        let p = self.nprocs();
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let mut d = 1;
        while d < p {
            let to = (rank + d) % p;
            let from = (rank + p - d) % p;
            self.isend(to, tag, ());
            let () = self.irecv(from, tag);
            d <<= 1;
        }
    }

    /// Broadcast (paper primitive 1): the `root` supplies `Some(value)`,
    /// everyone else passes `None`; all processors return the value.
    /// Binomial tree, `O((τ + μm) log p)`.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast<T: Clone + WireMsg>(&mut self, root: usize, value: Option<T>) -> T {
        let p = self.nprocs();
        let rank = self.rank();
        assert!(root < p, "broadcast root {root} out of range (p = {p})");
        assert_eq!(
            rank == root,
            value.is_some(),
            "broadcast: exactly the root (rank {root}) must supply Some(value)"
        );
        let tag = self.collective_tag();
        let rel = (rank + p - root) % p;
        let mut val = value;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let src = (rel - mask + root) % p;
                val = Some(self.irecv(src, tag));
                break;
            }
            mask <<= 1;
        }
        // Forward down the binomial tree.
        mask >>= 1;
        let v = val.expect("broadcast value must exist by now");
        while mask > 0 {
            if rel + mask < p {
                let dst = (rel + mask + root) % p;
                self.isend(dst, tag, v.clone());
            }
            mask >>= 1;
        }
        v
    }

    /// Reduction to `root` (binomial tree): returns `Some(result)` on the
    /// root and `None` elsewhere. `op` must be associative and commutative
    /// (the combination order is the tree order, as in the paper).
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: WireMsg,
        F: Fn(T, T) -> T,
    {
        let p = self.nprocs();
        let rank = self.rank();
        assert!(root < p, "reduce root {root} out of range (p = {p})");
        let tag = self.collective_tag();
        let rel = (rank + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        while mask < p {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let other: T = self.irecv(src, tag);
                    acc = op(acc, other);
                }
            } else {
                let dst = (rel - mask + root) % p;
                self.isend(dst, tag, acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Combine (paper primitive 2): reduction whose result is stored on
    /// *every* processor. Implemented as reduce-to-0 followed by broadcast,
    /// `O((τ + μ) log p)` total.
    pub fn combine<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Clone + WireMsg,
        F: Fn(T, T) -> T,
    {
        let reduced = self.reduce(0, value, op);
        self.broadcast(0, reduced)
    }

    /// Parallel Prefix (paper primitive 3): returns the *inclusive* prefix
    /// `x₀ ⊕ x₁ ⊕ … ⊕ x_rank`. Kogge–Stone recursive doubling,
    /// `O((τ + μ) log p)`.
    pub fn scan<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Clone + WireMsg,
        F: Fn(T, T) -> T,
    {
        let p = self.nprocs();
        let rank = self.rank();
        let tag_base = self.collective_tag();
        let mut x = value;
        let mut d = 1usize;
        let mut round = 0u64;
        while d < p {
            let tag = tag_base | round;
            if rank + d < p {
                self.isend(rank + d, tag, x.clone());
            }
            if rank >= d {
                let t: T = self.irecv(rank - d, tag);
                x = op(t, x);
            }
            d <<= 1;
            round += 1;
        }
        x
    }

    /// Exclusive prefix sum of `u64` counts: returns the sum over ranks
    /// strictly below this one. A convenience wrapper over [`scan`](Proc::scan)
    /// used pervasively by the load balancers.
    pub fn exclusive_prefix_sum(&mut self, value: u64) -> u64 {
        self.scan(value, |a, b| a + b) - value
    }

    /// Gather (paper primitive 4): collects one value per processor on
    /// `root`, ordered by rank. Binomial tree, `O(τ log p + μ p m)`.
    /// Returns `Some` on the root, `None` elsewhere.
    pub fn gather<T: WireMsg>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        let p = self.nprocs();
        let rank = self.rank();
        assert!(root < p, "gather root {root} out of range (p = {p})");
        let tag = self.collective_tag();
        let elem_bytes = std::mem::size_of::<T>() as u64;
        let rel = (rank + p - root) % p;
        let mut items: Vec<(usize, T)> = vec![(rank, value)];
        let mut mask = 1usize;
        while mask < p {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let recvd: Vec<(usize, T)> = self.irecv(src, tag);
                    items.extend(recvd);
                }
            } else {
                let dst = (rel - mask + root) % p;
                let bytes = items.len() as u64 * elem_bytes;
                self.isend_sized(dst, tag, bytes, items);
                return None;
            }
            mask <<= 1;
        }
        items.sort_unstable_by_key(|(origin, _)| *origin);
        Some(items.into_iter().map(|(_, v)| v).collect())
    }

    /// Variable-size gather: collects each processor's vector on `root`,
    /// indexed by source rank. Same tree and cost shape as
    /// [`gather`](Proc::gather) with `m` the per-processor payload.
    pub fn gatherv<T: WireMsg>(&mut self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        let p = self.nprocs();
        let rank = self.rank();
        assert!(root < p, "gatherv root {root} out of range (p = {p})");
        let tag = self.collective_tag();
        let elem_bytes = std::mem::size_of::<T>() as u64;
        let rel = (rank + p - root) % p;
        let mut items: Vec<(usize, Vec<T>)> = vec![(rank, data)];
        let mut mask = 1usize;
        while mask < p {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < p {
                    let src = (src_rel + root) % p;
                    let recvd: Vec<(usize, Vec<T>)> = self.irecv(src, tag);
                    items.extend(recvd);
                }
            } else {
                let dst = (rel - mask + root) % p;
                let bytes: u64 = items.iter().map(|(_, v)| v.len() as u64 * elem_bytes).sum();
                self.isend_sized(dst, tag, bytes, items);
                return None;
            }
            mask <<= 1;
        }
        items.sort_unstable_by_key(|(origin, _)| *origin);
        Some(items.into_iter().map(|(_, v)| v).collect())
    }

    /// Gathers every processor's vector on `root` and concatenates them in
    /// rank order. The concatenation copy is charged to the root's clock.
    pub fn gather_flat<T: WireMsg>(&mut self, root: usize, data: Vec<T>) -> Option<Vec<T>> {
        let parts = self.gatherv(root, data)?;
        let total: usize = parts.iter().map(Vec::len).sum();
        self.charge_ops(total as u64);
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        Some(out)
    }

    /// Global Concatenate (paper primitive 5): like [`gather`](Proc::gather)
    /// but the result is stored on all processors. Gather + broadcast,
    /// `O(τ log p + μ p m)`.
    pub fn all_gather<T: Clone + WireMsg>(&mut self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered)
    }

    /// Variable-size Global Concatenate, indexed by source rank.
    pub fn all_gatherv<T: Clone + WireMsg>(&mut self, data: Vec<T>) -> Vec<Vec<T>> {
        let gathered = self.gatherv(0, data);
        self.broadcast(0, gathered)
    }

    /// Scatter: the root distributes one value per processor (the inverse
    /// of [`gather`](Proc::gather)). Binomial tree: the root hands each
    /// subtree its whole slice, halving at each level —
    /// `O(τ log p + μ p m)`.
    ///
    /// # Panics
    /// Panics unless exactly the root passes `Some(values)` with
    /// `values.len() == p`.
    pub fn scatter<T: WireMsg>(&mut self, root: usize, values: Option<Vec<T>>) -> T {
        let mut v = self.scatterv(root, values.map(|vs| vs.into_iter().map(|x| vec![x]).collect()));
        assert_eq!(v.len(), 1, "scatter delivers exactly one value per processor");
        v.pop().expect("length checked above")
    }

    /// Variable-size scatter: the root distributes `chunks[i]` to
    /// processor `i`. Same tree and cost shape as [`scatter`](Proc::scatter).
    ///
    /// # Panics
    /// Panics unless exactly the root passes `Some(chunks)` with
    /// `chunks.len() == p`.
    pub fn scatterv<T: WireMsg>(&mut self, root: usize, chunks: Option<Vec<Vec<T>>>) -> Vec<T> {
        let p = self.nprocs();
        let rank = self.rank();
        assert!(root < p, "scatterv root {root} out of range (p = {p})");
        assert_eq!(
            rank == root,
            chunks.is_some(),
            "scatterv: exactly the root (rank {root}) must supply Some(chunks)"
        );
        let tag = self.collective_tag();
        let elem_bytes = std::mem::size_of::<T>() as u64;
        let rel = (rank + p - root) % p;

        // My bundle holds the chunks for relative ranks [rel, rel + span).
        let mut bundle: Vec<(usize, Vec<T>)> = match chunks {
            Some(cs) => {
                assert_eq!(cs.len(), p, "scatterv needs exactly one chunk per processor");
                // Order by relative rank so splits are contiguous.
                let mut tagged: Vec<(usize, Vec<T>)> = cs.into_iter().enumerate().collect();
                tagged.sort_unstable_by_key(|(dst, _)| (dst + p - root) % p);
                tagged
            }
            None => {
                let mut mask = 1usize;
                loop {
                    debug_assert!(mask < p);
                    if rel & mask != 0 {
                        let src = (rel - mask + root) % p;
                        break self.irecv(src, tag);
                    }
                    mask <<= 1;
                }
            }
        };

        // Forward the upper halves of my bundle down the binomial tree.
        let mut mask = {
            // Highest bit below my received bit (root: highest bit < p).
            let mut m = 1usize;
            while m < p && (rel & m) == 0 {
                m <<= 1;
            }
            if rel == 0 {
                // root: start from the top of the tree
                let mut top = 1usize;
                while top < p {
                    top <<= 1;
                }
                top >> 1
            } else {
                m >> 1
            }
        };
        while mask > 0 {
            if rel + mask < p {
                let dst = (rel + mask + root) % p;
                // Chunks for relative ranks >= rel + mask go to that child.
                let split = bundle.partition_point(|(d, _)| (*d + p - root) % p < rel + mask);
                let sub: Vec<(usize, Vec<T>)> = bundle.split_off(split);
                let bytes: u64 = sub.iter().map(|(_, c)| c.len() as u64 * elem_bytes).sum();
                self.isend_sized(dst, tag, bytes, sub);
            }
            mask >>= 1;
        }

        debug_assert_eq!(bundle.len(), 1, "exactly my own chunk must remain");
        let (dst, chunk) = bundle.pop().expect("own chunk");
        assert_eq!(dst, rank, "scatterv routing failure");
        chunk
    }

    /// Transportation primitive (paper primitive 6): many-to-many
    /// personalized communication. `outgoing[j]` is this processor's message
    /// for processor `j`; the return value's entry `i` is the message
    /// received from processor `i`.
    ///
    /// Implemented with the staggered schedule (round `r` sends to
    /// `rank + r`, receives from `rank - r`), giving the `2 μ t` transfer
    /// bound of Ranka–Shankar–Alsabti for traffic bounded by `t` per
    /// processor (plus `τ (p−1)` start-ups).
    ///
    /// # Panics
    /// Panics if `outgoing.len() != p`.
    pub fn all_to_allv<T: WireMsg>(&mut self, mut outgoing: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.nprocs();
        let rank = self.rank();
        assert_eq!(
            outgoing.len(),
            p,
            "all_to_allv requires exactly one outgoing vector per processor"
        );
        let tag = self.collective_tag();
        let mut incoming: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        incoming[rank] = std::mem::take(&mut outgoing[rank]);
        for r in 1..p {
            let dst = (rank + r) % p;
            let src = (rank + p - r) % p;
            let payload = std::mem::take(&mut outgoing[dst]);
            self.isend_sized(dst, tag, (payload.len() * std::mem::size_of::<T>()) as u64, payload);
            incoming[src] = self.irecv(src, tag);
        }
        incoming
    }

    /// Broadcast from a dynamically determined owner: exactly one processor
    /// passes `Some(value)`; all processors return that value. This is how
    /// the randomized selection algorithms publish the pivot held by
    /// whichever processor owns the randomly chosen global index, at the
    /// same `O((τ + μ) log p)` cost as a rooted broadcast.
    ///
    /// # Panics
    /// Panics (on every processor) unless exactly one processor supplied a
    /// value.
    pub fn bcast_from_owner<T: Clone + WireMsg>(&mut self, value: Option<T>) -> T {
        let mine = u64::from(value.is_some());
        let (v, owners) = self.combine((value, mine), |(a, ca), (b, cb)| (a.or(b), ca + cb));
        assert_eq!(owners, 1, "bcast_from_owner requires exactly one owner, found {owners}");
        v.expect("owner count is 1, value must exist")
    }
}

#[cfg(test)]
mod tests {
    use crate::{Machine, MachineModel};

    const PS: [usize; 8] = [1, 2, 3, 4, 5, 7, 8, 13];

    #[test]
    fn broadcast_every_root_every_p() {
        for &p in &PS {
            for root in 0..p {
                let out = Machine::new(p)
                    .run(|proc| {
                        let v = if proc.rank() == root { Some(99usize + root) } else { None };
                        proc.broadcast(root, v)
                    })
                    .unwrap();
                assert_eq!(out, vec![99 + root; p], "p={p} root={root}");
            }
        }
    }

    #[test]
    fn broadcast_vectors() {
        let out = Machine::new(6)
            .run(|proc| {
                let v = if proc.rank() == 2 { Some(vec![1u64, 2, 3]) } else { None };
                proc.broadcast(2, v)
            })
            .unwrap();
        for v in out {
            assert_eq!(v, vec![1, 2, 3]);
        }
    }

    #[test]
    fn combine_sums_and_maxes() {
        for &p in &PS {
            let sums = Machine::new(p)
                .run(|proc| proc.combine(proc.rank() as u64 + 1, |a, b| a + b))
                .unwrap();
            let expect = (p as u64) * (p as u64 + 1) / 2;
            assert_eq!(sums, vec![expect; p], "p={p}");

            let maxes =
                Machine::new(p).run(|proc| proc.combine(proc.rank(), |a, b| a.max(b))).unwrap();
            assert_eq!(maxes, vec![p - 1; p], "p={p}");
        }
    }

    #[test]
    fn scan_matches_oracle() {
        for &p in &PS {
            let out = Machine::new(p)
                .run(|proc| proc.scan(proc.rank() as u64 + 1, |a, b| a + b))
                .unwrap();
            let expect: Vec<u64> = (0..p as u64).map(|i| (i + 1) * (i + 2) / 2).collect();
            assert_eq!(out, expect, "p={p}");
        }
    }

    #[test]
    fn exclusive_prefix_sum_matches_oracle() {
        for &p in &PS {
            let out = Machine::new(p)
                .run(|proc| proc.exclusive_prefix_sum(10 + proc.rank() as u64))
                .unwrap();
            let mut acc = 0;
            for (i, got) in out.into_iter().enumerate() {
                assert_eq!(got, acc, "p={p} rank={i}");
                acc += 10 + i as u64;
            }
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        for &p in &PS {
            for root in [0, p / 2, p - 1] {
                let out =
                    Machine::new(p).run(|proc| proc.gather(root, proc.rank() as u32 * 2)).unwrap();
                for (rank, res) in out.into_iter().enumerate() {
                    if rank == root {
                        let v = res.expect("root receives the gather");
                        let expect: Vec<u32> = (0..p as u32).map(|i| i * 2).collect();
                        assert_eq!(v, expect, "p={p} root={root}");
                    } else {
                        assert!(res.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn gatherv_variable_sizes() {
        for &p in &PS {
            let out = Machine::new(p)
                .run(|proc| {
                    let data: Vec<u64> = (0..proc.rank() as u64).collect();
                    proc.gatherv(p - 1, data)
                })
                .unwrap();
            let v = out[p - 1].clone().expect("root result");
            assert_eq!(v.len(), p);
            for (i, part) in v.iter().enumerate() {
                assert_eq!(part.len(), i, "p={p} part={i}");
                assert_eq!(*part, (0..i as u64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn gather_flat_concatenates_in_rank_order() {
        let out = Machine::new(4)
            .run(|proc| {
                let base = proc.rank() as u64 * 10;
                proc.gather_flat(0, vec![base, base + 1])
            })
            .unwrap();
        assert_eq!(out[0].clone().unwrap(), vec![0, 1, 10, 11, 20, 21, 30, 31]);
    }

    #[test]
    fn all_gather_everyone_sees_everything() {
        for &p in &PS {
            let out = Machine::new(p).run(|proc| proc.all_gather(proc.rank() as i64 - 1)).unwrap();
            let expect: Vec<i64> = (0..p as i64).map(|i| i - 1).collect();
            for v in out {
                assert_eq!(v, expect, "p={p}");
            }
        }
    }

    #[test]
    fn all_gatherv_round_trip() {
        let out = Machine::new(5)
            .run(|proc| {
                let data = vec![proc.rank() as u8; proc.rank() + 1];
                proc.all_gatherv(data)
            })
            .unwrap();
        for v in out {
            for (i, part) in v.iter().enumerate() {
                assert_eq!(*part, vec![i as u8; i + 1]);
            }
        }
    }

    #[test]
    fn scatter_delivers_one_value_each() {
        for &p in &PS {
            for root in [0, p - 1] {
                let out = Machine::new(p)
                    .run(|proc| {
                        let vs = (proc.rank() == root)
                            .then(|| (0..proc.nprocs() as u64).map(|i| i * 3).collect());
                        proc.scatter(root, vs)
                    })
                    .unwrap();
                let expect: Vec<u64> = (0..p as u64).map(|i| i * 3).collect();
                assert_eq!(out, expect, "p={p} root={root}");
            }
        }
    }

    #[test]
    fn scatterv_variable_chunks() {
        for &p in &PS {
            let out = Machine::new(p)
                .run(|proc| {
                    let chunks = (proc.rank() == 0)
                        .then(|| (0..proc.nprocs()).map(|i| vec![i as u32; i + 1]).collect());
                    proc.scatterv(0, chunks)
                })
                .unwrap();
            for (i, chunk) in out.into_iter().enumerate() {
                assert_eq!(chunk, vec![i as u32; i + 1], "p={p}");
            }
        }
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let p = 7;
        let out = Machine::new(p)
            .run(|proc| {
                let vs = (proc.rank() == 2).then(|| (100..100 + proc.nprocs() as u64).collect());
                let mine = proc.scatter(2, vs);
                proc.gather(2, mine)
            })
            .unwrap();
        assert_eq!(out[2].clone().unwrap(), (100..107u64).collect::<Vec<_>>());
    }

    #[test]
    fn all_to_allv_transposes() {
        for &p in &PS {
            let out = Machine::new(p)
                .run(|proc| {
                    // Message for j encodes (from, to).
                    let outgoing: Vec<Vec<(usize, usize)>> =
                        (0..proc.nprocs()).map(|j| vec![(proc.rank(), j)]).collect();
                    proc.all_to_allv(outgoing)
                })
                .unwrap();
            for (rank, incoming) in out.into_iter().enumerate() {
                for (src, msgs) in incoming.into_iter().enumerate() {
                    assert_eq!(msgs, vec![(src, rank)], "p={p}");
                }
            }
        }
    }

    #[test]
    fn all_to_allv_with_empty_messages() {
        let out = Machine::new(4)
            .run(|proc| {
                // Only send to rank 0.
                let outgoing: Vec<Vec<u64>> = (0..4)
                    .map(|j| if j == 0 { vec![proc.rank() as u64] } else { vec![] })
                    .collect();
                proc.all_to_allv(outgoing)
            })
            .unwrap();
        assert_eq!(out[0], vec![vec![0], vec![1], vec![2], vec![3]]);
        for incoming in &out[1..] {
            assert!(incoming.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn bcast_from_owner_finds_the_owner() {
        for &p in &PS {
            for owner in 0..p {
                let out = Machine::new(p)
                    .run(|proc| {
                        let v = (proc.rank() == owner).then_some(1234u64 + owner as u64);
                        proc.bcast_from_owner(v)
                    })
                    .unwrap();
                assert_eq!(out, vec![1234 + owner as u64; p]);
            }
        }
    }

    #[test]
    fn bcast_from_owner_rejects_two_owners() {
        let err = Machine::new(3)
            .run(|proc| {
                let v = (proc.rank() <= 1).then_some(1u8);
                proc.bcast_from_owner(v)
            })
            .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("exactly one owner"), "got: {msg}");
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        // One processor races ahead; after the barrier everyone's clock is
        // at least its pre-barrier value.
        let model = MachineModel::new(1.0, 0.0, 1.0);
        let out = Machine::with_model(4, model)
            .run(|proc| {
                if proc.rank() == 2 {
                    proc.charge_ops(1000); // 1000 seconds of local work
                }
                proc.barrier();
                proc.now()
            })
            .unwrap();
        for t in out {
            assert!(t >= 1000.0, "clock after barrier: {t}");
        }
    }

    #[test]
    fn broadcast_cost_is_logarithmic() {
        // tau = 1, mu = 0: binomial broadcast on p=8 must finish within
        // depth log2(8) = 3 sends of the root's serialization, i.e. every
        // clock <= 3 + 2 = small, certainly < p-1 (the flat-tree cost).
        let model = MachineModel::new(1.0, 0.0, 0.0);
        let out = Machine::with_model(8, model)
            .run(|proc| {
                let v = (proc.rank() == 0).then_some(7u8);
                proc.broadcast(0, v);
                proc.now()
            })
            .unwrap();
        let max = out.iter().cloned().fold(0.0, f64::max);
        assert!(max <= 3.0 + f64::EPSILON, "binomial broadcast too slow: {max}");
    }

    #[test]
    fn collectives_back_to_back_do_not_collide() {
        // Two identical collectives in a row exercise epoch-scoped tags.
        let out = Machine::new(4)
            .run(|proc| {
                let a = proc.combine(1u64, |a, b| a + b);
                let b = proc.combine(10u64, |a, b| a + b);
                (a, b)
            })
            .unwrap();
        assert_eq!(out, vec![(4, 40); 4]);
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs() {
        let model = MachineModel::cm5();
        let run = || {
            Machine::with_model(8, model)
                .run(|proc| {
                    let s = proc.combine(proc.rank() as u64, |a, b| a + b);
                    let g = proc.all_gather(s + proc.rank() as u64);
                    proc.charge_ops(g.len() as u64 * 3);
                    proc.barrier();
                    proc.now()
                })
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual clocks must be bit-reproducible");
    }
}
