//! Ablations of the design choices the paper (and DESIGN.md) call out:
//!
//! 1. the sample-size exponent ε of fast randomized selection — the paper
//!    says "By experimentation, we found a value of 0.6 to be appropriate";
//!    this sweep regenerates that experiment;
//! 2. the bracket-width coefficient on δ = √(|S| ln n);
//! 3. the parallel sort backing the sample sort (PSRS / bitonic / gather);
//! 4. the sequential-finish threshold coefficient (`n ≤ C·p²`).
//!
//! Run: `cargo run --release -p cgselect-bench --bin ablation [-- --quick]`

use cgselect_bench::chart::{markdown_table, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_core::{median_on_machine, Algorithm, SampleSortAlgo, SelectionConfig};
use cgselect_runtime::MachineModel;
use cgselect_workloads::{generate, Distribution};

fn main() {
    let quick = quick_mode();
    let n = if quick { 1 << 18 } else { 1 << 21 };
    let p = 32;
    let model = MachineModel::cm5();
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3, 4, 5] };

    let measure = |cfg: &SelectionConfig, algo: Algorithm| -> f64 {
        let mut total = 0.0;
        for &s in seeds {
            let parts = generate(Distribution::Random, n, p, s);
            let mut cfg = cfg.clone();
            cfg.seed ^= s;
            total += median_on_machine(p, model, &parts, algo, &cfg).unwrap().makespan();
        }
        total / seeds.len() as f64
    };

    let mut out = format!("Ablations (n = {n}, p = {p}, random data, CM-5 model)\n\n");

    // 1. Epsilon sweep (the paper's tuning experiment).
    let mut rows = Vec::new();
    let mut best = (f64::INFINITY, 0.0);
    for eps in [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let cfg = SelectionConfig { epsilon: eps, ..SelectionConfig::with_seed(7) };
        let t = measure(&cfg, Algorithm::FastRandomized);
        if t < best.0 {
            best = (t, eps);
        }
        rows.push(vec![format!("{eps:.1}"), format!("{t:.4}")]);
        println!("ablation epsilon={eps:.1} -> {t:.4}s");
    }
    out.push_str("### Sample-size exponent ε (fast randomized; paper picked 0.6)\n\n");
    out.push_str(&markdown_table(&["epsilon", "seconds"], &rows));
    out.push_str(&format!("\nBest measured: ε = {:.1} ({:.4}s)\n\n", best.1, best.0));

    // 2. Delta coefficient sweep.
    let mut rows = Vec::new();
    for dc in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let cfg = SelectionConfig { delta_coeff: dc, ..SelectionConfig::with_seed(7) };
        let t = measure(&cfg, Algorithm::FastRandomized);
        let unsucc = {
            let parts = generate(Distribution::Random, n, p, 1);
            median_on_machine(p, model, &parts, Algorithm::FastRandomized, &cfg).unwrap().per_proc
                [0]
            .unsuccessful_iterations
        };
        rows.push(vec![format!("{dc:.2}"), format!("{t:.4}"), unsucc.to_string()]);
        println!("ablation delta_coeff={dc:.2} -> {t:.4}s ({unsucc} unsuccessful)");
    }
    out.push_str("### Bracket width coefficient on δ = √(|S| ln n)\n\n");
    out.push_str(&markdown_table(&["delta coeff", "seconds", "unsuccessful iters"], &rows));
    out.push_str(
        "\nSmall δ risks unsuccessful iterations (target outside the bracket);\n\
         large δ keeps a wider middle zone alive. The default 1.0 balances both.\n\n",
    );

    // 3. Sample sort backend.
    let mut rows = Vec::new();
    for ss in [SampleSortAlgo::Psrs, SampleSortAlgo::Bitonic, SampleSortAlgo::GatherSort] {
        let cfg = SelectionConfig::with_seed(7).sample_sort(ss);
        let t = measure(&cfg, Algorithm::FastRandomized);
        rows.push(vec![ss.name().into(), format!("{t:.4}")]);
        println!("ablation sample_sort={} -> {t:.4}s", ss.name());
    }
    out.push_str("### Parallel sort backing the sample sort\n\n");
    out.push_str(&markdown_table(&["backend", "seconds"], &rows));
    out.push_str(
        "\nThe samples are tiny (~n^0.6), so the τ·p start-ups of a true\n\
         all-to-all sort can exceed the gather-and-sort fallback at large p —\n\
         the trade-off DESIGN.md §5.7 calls out.\n\n",
    );

    // 4. Finish threshold.
    let mut rows = Vec::new();
    for coeff in [1usize, 4, 16, 64] {
        let cfg = SelectionConfig { threshold_coeff: coeff, ..SelectionConfig::with_seed(7) };
        let t_fast = measure(&cfg, Algorithm::FastRandomized);
        let t_rand = measure(&cfg, Algorithm::Randomized);
        rows.push(vec![format!("{coeff}"), format!("{t_rand:.4}"), format!("{t_fast:.4}")]);
        println!("ablation threshold_coeff={coeff} -> rand {t_rand:.4}s fast {t_fast:.4}s");
    }
    out.push_str("### Sequential-finish threshold (iterate while n > C·p²)\n\n");
    out.push_str(&markdown_table(&["C", "randomized (s)", "fast randomized (s)"], &rows));
    out.push_str(
        "\nLarger C trades parallel iterations (collective latency) for a\n\
         bigger sequential tail on P0 — cheap insurance on a high-τ machine.\n",
    );

    let dir = results_dir();
    write_text(&dir.join("ablation.txt"), &out);
    print!("{out}");
    println!("ablation -> {}/ablation.txt", dir.display());
}
