//! Heap-based selection: `O(n log k)` — the classic alternative that wins
//! for very small ranks.

use std::collections::BinaryHeap;

use crate::ops::OpCount;

/// Returns the element of 0-based rank `k` by streaming the data through a
/// max-heap of size `k+1`.
///
/// `O(n log k)` comparisons; unlike the partition-based kernels it does
/// **not** permute `data` (it only reads it). Preferable when
/// `k ≪ n / log n` — e.g. "the 10 smallest of a million"; the benchmark
/// suite quantifies the crossover against quickselect.
///
/// Heap sift costs are charged as `⌈log₂(k+1)⌉ + 1` comparisons per update
/// (the structural bound) plus one move per insertion.
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn heap_select<T: Copy + Ord>(data: &[T], k: usize, ops: &mut OpCount) -> T {
    assert!(k < data.len(), "rank {k} out of range for {} elements", data.len());
    let cap = k + 1;
    let heap_cost = (cap.max(2)).ilog2() as u64 + 1;
    let mut heap: BinaryHeap<T> = BinaryHeap::with_capacity(cap);
    for &v in data {
        if heap.len() < cap {
            heap.push(v);
            ops.cmps += heap_cost;
            ops.moves += 1;
        } else {
            ops.cmps += 1;
            let top = *heap.peek().expect("heap is non-empty at capacity");
            if v < top {
                heap.pop();
                heap.push(v);
                ops.cmps += 2 * heap_cost;
                ops.moves += 1;
            }
        }
    }
    *heap.peek().expect("k < len guarantees a full heap")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quickselect;
    use crate::rng::KernelRng;

    fn oracle(mut v: Vec<i64>, k: usize) -> i64 {
        v.sort_unstable();
        v[k]
    }

    #[test]
    fn selects_every_rank_small() {
        let base = vec![4i64, -1, 9, 9, 0, 3, -7];
        for k in 0..base.len() {
            let mut ops = OpCount::new();
            assert_eq!(heap_select(&base, k, &mut ops), oracle(base.clone(), k), "k={k}");
        }
    }

    #[test]
    fn does_not_mutate_input() {
        let base = vec![5u64, 3, 8, 1];
        let copy = base.clone();
        let mut ops = OpCount::new();
        let _ = heap_select(&base, 2, &mut ops);
        assert_eq!(base, copy);
    }

    #[test]
    fn matches_oracle_large_with_duplicates() {
        let mut rng = KernelRng::new(8);
        let base: Vec<i64> = (0..20_000).map(|_| (rng.next_u64() % 40) as i64).collect();
        for k in [0, 5, 1000, 19_999] {
            let mut ops = OpCount::new();
            assert_eq!(heap_select(&base, k, &mut ops), oracle(base.clone(), k), "k={k}");
        }
    }

    #[test]
    fn cheaper_than_quickselect_for_tiny_k() {
        let mut rng = KernelRng::new(12);
        let n = 1 << 16;
        let base: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();

        let mut heap_ops = OpCount::new();
        let a = heap_select(&base, 5, &mut heap_ops);

        let mut qs_ops = OpCount::new();
        let mut v = base.clone();
        let b = quickselect(&mut v, 5, &mut rng, &mut qs_ops);

        assert_eq!(a, b);
        // For k = 5 the heap streams with ~1 comparison per element while
        // quickselect pays several partition passes.
        assert!(
            heap_ops.total() < qs_ops.total(),
            "heap {} vs quickselect {}",
            heap_ops.total(),
            qs_ops.total()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut ops = OpCount::new();
        let _ = heap_select(&[1, 2, 3], 3, &mut ops);
    }
}
