//! The two-level machine cost model of the paper (§2.1), with optional
//! distance-aware topologies for testing the crossbar assumption.

/// Interconnect topology for the distance term of the cost model.
///
/// The paper's model is [`Topology::Crossbar`]: a fixed cost per message
/// independent of which processors communicate, justified by wormhole
/// routing making distance "less of a determining factor" (§2.1). The
/// other variants add a per-hop charge so that assumption can be tested
/// quantitatively (see the `topology` experiment binary): with a small
/// wormhole-style per-hop cost the curves barely move; with
/// store-and-forward-scale hop costs the mesh visibly penalizes the
/// all-to-all-heavy algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Topology {
    /// Distance-independent virtual crossbar (the paper's model).
    #[default]
    Crossbar,
    /// Hypercube: distance = Hamming distance between ranks (e-cube
    /// routing). Ranks beyond the largest power of two fall back to the
    /// distance of their truncated coordinates plus one.
    Hypercube,
    /// Near-square 2D mesh, dimension-ordered (XY) routing:
    /// distance = |Δrow| + |Δcol|.
    Mesh2D,
}

impl Topology {
    /// Number of network hops between two ranks on a `p`-processor machine.
    /// A direct neighbour (and, for uniformity, a self-send) counts as one
    /// hop; only hops beyond the first incur the model's `hop_cost`.
    pub fn hops(&self, src: usize, dst: usize, p: usize) -> u32 {
        if src == dst {
            return 1;
        }
        match self {
            Topology::Crossbar => 1,
            Topology::Hypercube => ((src ^ dst) as u64).count_ones().max(1),
            Topology::Mesh2D => {
                let cols = (p as f64).sqrt().ceil() as usize;
                let (sr, sc) = (src / cols, src % cols);
                let (dr, dc) = (dst / cols, dst % cols);
                (sr.abs_diff(dr) + sc.abs_diff(dc)).max(1) as u32
            }
        }
    }
}

/// Parameters of the two-level model of parallel computation.
///
/// The paper assumes a fixed cost for an off-processor access independent of
/// the distance between the communicating processors: a message of `m` bytes
/// costs `τ + μ·m` seconds (start-up overhead `τ`, data transfer rate `1/μ`).
/// Local computation is charged per elementary operation (`t_op` seconds per
/// comparison or element move, as *counted* by the sequential kernels).
///
/// Three presets are provided:
///
/// * [`MachineModel::cm5`] — calibrated to the Thinking Machines CM-5 the
///   paper evaluated on (33 MHz SPARC nodes, CMMD message passing);
/// * [`MachineModel::modern`] — a contemporary commodity cluster;
/// * [`MachineModel::free`] — all-zero costs, for correctness-only tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Message start-up overhead in seconds (the paper's `τ`).
    pub tau: f64,
    /// Per-byte transfer time in seconds (the paper's `μ`; bandwidth is `1/μ`).
    pub mu: f64,
    /// Seconds per elementary local operation (one comparison or element move).
    pub t_op: f64,
    /// Interconnect topology (default: the paper's crossbar).
    pub topology: Topology,
    /// Extra seconds per network hop beyond the first (0 for the paper's
    /// distance-independent model; small for wormhole routing; ~τ for
    /// store-and-forward).
    pub hop_cost: f64,
}

impl MachineModel {
    /// Builds a model from explicit parameters (crossbar topology).
    ///
    /// # Panics
    /// Panics if any parameter is negative or not finite.
    pub fn new(tau: f64, mu: f64, t_op: f64) -> Self {
        for (name, v) in [("tau", tau), ("mu", mu), ("t_op", t_op)] {
            assert!(
                v.is_finite() && v >= 0.0,
                "MachineModel parameter {name} must be finite and non-negative, got {v}"
            );
        }
        Self { tau, mu, t_op, topology: Topology::Crossbar, hop_cost: 0.0 }
    }

    /// Replaces the topology and per-hop cost (builder style).
    ///
    /// # Panics
    /// Panics if `hop_cost` is negative or not finite.
    pub fn with_topology(mut self, topology: Topology, hop_cost: f64) -> Self {
        assert!(
            hop_cost.is_finite() && hop_cost >= 0.0,
            "hop_cost must be finite and non-negative, got {hop_cost}"
        );
        self.topology = topology;
        self.hop_cost = hop_cost;
        self
    }

    /// A CM-5-like machine: ~86 µs message start-up (CMMD), ~10 MB/s
    /// per-node bandwidth, and a per-operation cost representative of a
    /// 33 MHz SPARC scanning an array (~16 cycles per compare-or-move
    /// including memory stalls).
    ///
    /// These constants reproduce the *shape and rough magnitude* of the
    /// paper's figures (e.g. randomized selection of n = 2M keys on p = 32
    /// processors lands near 0.2 virtual seconds, as in Figure 1).
    pub fn cm5() -> Self {
        Self::new(86e-6, 1.0 / 10.0e6, 0.5e-6)
    }

    /// A contemporary commodity cluster: 2 µs start-up, 10 Gb/s links,
    /// ~1 ns per elementary operation.
    pub fn modern() -> Self {
        Self::new(2e-6, 8.0 / 10.0e9, 1e-9)
    }

    /// A zero-cost machine. Virtual time stays at zero; useful when only
    /// correctness (not the clock) is under test.
    pub fn free() -> Self {
        Self::new(0.0, 0.0, 0.0)
    }

    /// Time in seconds to push one message of `bytes` onto the network
    /// (`τ + μ·bytes`) — the sender-side cost of a point-to-point message
    /// under the crossbar assumption (distance charged separately via
    /// [`MachineModel::route_cost`]).
    #[inline]
    pub fn send_cost(&self, bytes: u64) -> f64 {
        self.tau + self.mu * bytes as f64
    }

    /// Distance-dependent extra latency for a message from `src` to `dst`
    /// on a `p`-processor machine: `hop_cost × (hops − 1)`. Zero under the
    /// paper's crossbar model.
    #[inline]
    pub fn route_cost(&self, src: usize, dst: usize, p: usize) -> f64 {
        if self.hop_cost == 0.0 {
            return 0.0;
        }
        let hops = self.topology.hops(src, dst, p);
        self.hop_cost * (hops.saturating_sub(1)) as f64
    }

    /// Receiver-side copy cost for a message of `bytes` (`μ·bytes`).
    #[inline]
    pub fn recv_cost(&self, bytes: u64) -> f64 {
        self.mu * bytes as f64
    }

    /// Time to execute `ops` elementary local operations.
    #[inline]
    pub fn compute_cost(&self, ops: u64) -> f64 {
        self.t_op * ops as f64
    }
}

impl Default for MachineModel {
    /// Defaults to the CM-5 preset, matching the paper's testbed.
    fn default() -> Self {
        Self::cm5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for m in [MachineModel::cm5(), MachineModel::modern()] {
            assert!(m.tau > 0.0);
            assert!(m.mu > 0.0);
            assert!(m.t_op > 0.0);
            // Start-up should dominate the per-byte cost for small messages
            // on both machines (coarse-grained assumption).
            assert!(m.tau > m.mu * 8.0);
        }
        let f = MachineModel::free();
        assert_eq!(f.send_cost(1 << 20), 0.0);
        assert_eq!(f.compute_cost(1 << 20), 0.0);
    }

    #[test]
    fn cm5_magnitudes() {
        let m = MachineModel::cm5();
        // one 8-byte message ~ startup-dominated
        let c = m.send_cost(8);
        assert!(c > 80e-6 && c < 100e-6, "send cost {c}");
        // scanning 64k elements at 2 ops each ~ tens of milliseconds
        let scan = m.compute_cost(2 * 64 * 1024);
        assert!(scan > 1e-3 && scan < 1.0, "scan cost {scan}");
    }

    #[test]
    fn cost_accessors_compose() {
        let m = MachineModel::new(10.0, 2.0, 3.0);
        assert_eq!(m.send_cost(4), 10.0 + 8.0);
        assert_eq!(m.recv_cost(4), 8.0);
        assert_eq!(m.compute_cost(5), 15.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn rejects_negative_tau() {
        let _ = MachineModel::new(-1.0, 0.0, 0.0);
    }

    #[test]
    fn default_is_cm5() {
        assert_eq!(MachineModel::default(), MachineModel::cm5());
    }

    #[test]
    fn crossbar_distance_is_flat() {
        let t = Topology::Crossbar;
        for (s, d) in [(0, 1), (0, 63), (31, 32)] {
            assert_eq!(t.hops(s, d, 64), 1);
        }
    }

    #[test]
    fn hypercube_distance_is_hamming() {
        let t = Topology::Hypercube;
        assert_eq!(t.hops(0b000, 0b001, 8), 1);
        assert_eq!(t.hops(0b000, 0b111, 8), 3);
        assert_eq!(t.hops(0b101, 0b010, 8), 3);
        assert_eq!(t.hops(5, 5, 8), 1); // self-send floor
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let t = Topology::Mesh2D;
        // 16 procs -> 4x4 mesh, row-major.
        assert_eq!(t.hops(0, 3, 16), 3); // same row
        assert_eq!(t.hops(0, 12, 16), 3); // same column
        assert_eq!(t.hops(0, 15, 16), 6); // opposite corners
        assert_eq!(t.hops(5, 6, 16), 1);
    }

    #[test]
    fn route_cost_only_beyond_first_hop() {
        let m = MachineModel::new(1.0, 0.0, 0.0).with_topology(Topology::Mesh2D, 0.5);
        assert_eq!(m.route_cost(0, 1, 16), 0.0); // neighbour: 1 hop
        assert_eq!(m.route_cost(0, 15, 16), 2.5); // 6 hops: 5 extra
        let flat = MachineModel::new(1.0, 0.0, 0.0);
        assert_eq!(flat.route_cost(0, 15, 16), 0.0);
    }

    #[test]
    #[should_panic(expected = "hop_cost")]
    fn rejects_negative_hop_cost() {
        let _ = MachineModel::new(1.0, 0.0, 0.0).with_topology(Topology::Hypercube, -1.0);
    }
}
