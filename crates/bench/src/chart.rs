//! Plain-text output: ASCII line charts (the paper's figures are
//! time-vs-processors curves), markdown tables and CSV files.

use std::fmt::Write as _;
use std::path::Path;

/// One labeled series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, typically (p, seconds).
    pub points: Vec<(f64, f64)>,
}

/// Renders labeled series into a fixed-size ASCII chart with the x axis
/// positions taken from the union of the series' x values (equally spaced,
/// which matches the paper's 2,4,8,…,128 processor axis) and a linear y
/// axis from 0 to the maximum.
pub fn ascii_chart(title: &str, xlabel: &str, ylabel: &str, series: &[Series]) -> String {
    const W: usize = 64;
    const H: usize = 20;
    let markers = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    let ymax =
        series.iter().flat_map(|s| s.points.iter().map(|p| p.1)).fold(0.0f64, f64::max).max(1e-12);

    let mut grid = vec![vec![' '; W]; H];
    let x_pos = |x: f64| -> usize {
        let idx = xs.iter().position(|&v| v == x).unwrap_or(0);
        if xs.len() <= 1 {
            0
        } else {
            idx * (W - 1) / (xs.len() - 1)
        }
    };
    let y_pos = |y: f64| -> usize {
        let fr = (y / ymax).clamp(0.0, 1.0);
        H - 1 - ((fr * (H - 1) as f64).round() as usize)
    };

    for (si, s) in series.iter().enumerate() {
        let m = markers[si % markers.len()];
        // Connect consecutive points with linear interpolation across
        // columns so the curve reads as a line.
        let mut pts = s.points.clone();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pts.windows(2) {
            let (c0, c1) = (x_pos(w[0].0), x_pos(w[1].0));
            let (v0, v1) = (w[0].1, w[1].1);
            #[allow(clippy::needless_range_loop)] // columns index two arrays
            for c in c0..=c1 {
                let t = if c1 == c0 { 0.0 } else { (c - c0) as f64 / (c1 - c0) as f64 };
                let y = v0 + t * (v1 - v0);
                grid[y_pos(y)][c] = m;
            }
        }
        if pts.len() == 1 {
            grid[y_pos(pts[0].1)][x_pos(pts[0].0)] = m;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{ylabel} (0 .. {ymax:.4})");
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "  |{line}");
    }
    let _ = writeln!(out, "  +{}", "-".repeat(W));
    let ticks: Vec<String> = xs.iter().map(|x| format!("{x:.0}")).collect();
    let _ = writeln!(out, "   x = {xlabel}: {}", ticks.join(", "));
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "   {} {}", markers[si % markers.len()], s.label);
    }
    out
}

/// Writes rows as CSV with the given header.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) {
    let mut body = String::with_capacity(rows.len() * 64 + header.len() + 1);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    std::fs::write(path, body).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
}

/// Appends a text artifact (chart or table) to a `.txt` report file.
pub fn write_text(path: &Path, content: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(out, "|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_markers_and_legend() {
        let s = vec![
            Series { label: "a".into(), points: vec![(2.0, 0.1), (4.0, 0.2), (8.0, 0.4)] },
            Series { label: "b".into(), points: vec![(2.0, 0.4), (4.0, 0.2), (8.0, 0.1)] },
        ];
        let chart = ascii_chart("test", "p", "seconds", &s);
        assert!(chart.contains('*'));
        assert!(chart.contains('+'));
        assert!(chart.contains("x = p: 2, 4, 8"));
        assert!(chart.contains("* a"));
        assert!(chart.contains("+ b"));
    }

    #[test]
    fn chart_handles_single_point_series() {
        let s = vec![Series { label: "solo".into(), points: vec![(4.0, 1.0)] }];
        let chart = ascii_chart("t", "p", "s", &s);
        assert!(chart.contains('*'));
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("| 1 | 2 |"));
    }
}
