//! Regenerates the paper's table2 (see `cgselect_bench::figs`).
fn main() {
    let quick = cgselect_bench::quick_mode();
    cgselect_bench::figs::table2(quick);
}
