//! Sort-based selection: the baseline and the "solve directly" epilogue.

use crate::ops::OpCount;

/// Sorts `data` and returns the element of 0-based rank `k`.
///
/// `O(n log n)` — used as the correctness oracle in tests, as the baseline
/// in benchmarks, and for the final "gather and solve sequentially" step of
/// the parallel algorithms when the surviving set is small. Comparisons are
/// measured through the sort comparator; moves inside the standard library's
/// pattern-defeating quicksort are not observable and are approximated as
/// one move per element (documented under-count, irrelevant at the sizes
/// this is used for).
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn sort_select<T: Copy + Ord>(data: &mut [T], k: usize, ops: &mut OpCount) -> T {
    assert!(k < data.len(), "rank {k} out of range for {} elements", data.len());
    let mut cmps = 0u64;
    data.sort_unstable_by(|a, b| {
        cmps += 1;
        a.cmp(b)
    });
    ops.cmps += cmps;
    ops.moves += data.len() as u64;
    data[k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_correctly() {
        let mut v = vec![5, 2, 9, 2, 7];
        let mut ops = OpCount::new();
        assert_eq!(sort_select(&mut v, 0, &mut ops), 2);
        assert_eq!(v, vec![2, 2, 5, 7, 9]); // side effect: sorted
        assert_eq!(sort_select(&mut v, 4, &mut ops), 9);
        assert!(ops.cmps > 0);
    }

    #[test]
    fn comparison_count_is_n_log_n_ish() {
        // Shuffled data (descending runs would be pattern-detected by
        // pdqsort and sorted in ~n comparisons).
        let n = 4096u64;
        let mut rng = crate::KernelRng::new(2);
        let mut v: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut ops = OpCount::new();
        let _ = sort_select(&mut v, 0, &mut ops);
        // Comfortably below 4 * n * log2(n) and above n.
        assert!(ops.cmps > n);
        assert!(ops.cmps < 4 * n * 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut v: Vec<u8> = vec![];
        let mut ops = OpCount::new();
        let _ = sort_select(&mut v, 0, &mut ops);
    }
}
