//! Property tests: on arbitrary imbalance profiles every balancer preserves
//! the multiset, the prefix-based balancers balance exactly, and the global
//! accounting (sent == received) holds.

use cgselect_balance::{rebalance, BalanceReport, Balancer};
use cgselect_runtime::{Machine, MachineModel, PHASE_LOAD_BALANCE};
use proptest::prelude::*;

/// Builds per-processor vectors with the given sizes; values are distinct
/// so order checks are possible.
fn make_parts(sizes: &[usize]) -> Vec<Vec<u64>> {
    let mut next = 0u64;
    sizes
        .iter()
        .map(|&s| {
            let v: Vec<u64> = (next..next + s as u64).collect();
            next += s as u64;
            v
        })
        .collect()
}

fn run_balancer(
    balancer: Balancer,
    parts: &[Vec<u64>],
) -> (Vec<Vec<u64>>, Vec<BalanceReport>, Vec<f64>) {
    let p = parts.len();
    let results = Machine::with_model(p, MachineModel::cm5())
        .run(|proc| {
            let mut mine = parts[proc.rank()].clone();
            let rep = rebalance(balancer, proc, &mut mine);
            let lb_time = proc.phase_time(PHASE_LOAD_BALANCE);
            (mine, rep, lb_time)
        })
        .unwrap();
    let mut out = Vec::new();
    let mut reps = Vec::new();
    let mut times = Vec::new();
    for (a, b, c) in results {
        out.push(a);
        reps.push(b);
        times.push(c);
    }
    (out, reps, times)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefix_balancers_balance_exactly(
        sizes in prop::collection::vec(0usize..60, 1..10),
        which in prop::sample::select(vec![Balancer::Omlb, Balancer::ModOmlb, Balancer::GlobalExchange]),
    ) {
        let parts = make_parts(&sizes);
        let n: usize = sizes.iter().sum();
        let p = sizes.len();
        let (out, reps, times) = run_balancer(which, &parts);

        // Exact balance.
        for (r, v) in out.iter().enumerate() {
            let target = n / p + usize::from(r < n % p);
            prop_assert_eq!(v.len(), target, "balancer {:?}", which);
        }
        // Multiset preserved.
        let mut a: Vec<u64> = parts.into_iter().flatten().collect();
        let mut b: Vec<u64> = out.into_iter().flatten().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Conservation.
        let sent: u64 = reps.iter().map(|r| r.elements_sent).sum();
        let recv: u64 = reps.iter().map(|r| r.elements_recv).sum();
        prop_assert_eq!(sent, recv);
        // Phase accounting recorded the same seconds the report saw.
        for (rep, t) in reps.iter().zip(&times) {
            prop_assert!((rep.seconds - t).abs() < 1e-12);
        }
    }

    #[test]
    fn dimension_exchange_preserves_multiset_any_p(
        sizes in prop::collection::vec(0usize..60, 1..10),
    ) {
        let parts = make_parts(&sizes);
        let (out, reps, _) = run_balancer(Balancer::DimExchange, &parts);
        let mut a: Vec<u64> = parts.into_iter().flatten().collect();
        let mut b: Vec<u64> = out.into_iter().flatten().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        let sent: u64 = reps.iter().map(|r| r.elements_sent).sum();
        let recv: u64 = reps.iter().map(|r| r.elements_recv).sum();
        prop_assert_eq!(sent, recv);
    }

    #[test]
    fn dimension_exchange_power_of_two_spread(
        sizes in prop::collection::vec(0usize..60, 1..4usize).prop_map(|v| {
            // Blow the size vector up to the next power of two length.
            let p = v.len().next_power_of_two() * 2;
            let mut out = vec![0usize; p];
            for (i, s) in v.into_iter().enumerate() { out[i % p] += s; }
            out
        }),
    ) {
        let p = sizes.len();
        prop_assume!(p.is_power_of_two());
        let parts = make_parts(&sizes);
        let (out, _, _) = run_balancer(Balancer::DimExchange, &parts);
        let lens: Vec<usize> = out.iter().map(Vec::len).collect();
        let (mn, mx) = (*lens.iter().min().unwrap(), *lens.iter().max().unwrap());
        let log_p = (p as f64).log2().ceil() as usize;
        prop_assert!(mx - mn <= log_p.max(1), "spread {} on p={p}: {lens:?}", mx - mn);
    }

    #[test]
    fn order_maintaining_preserves_global_order(
        sizes in prop::collection::vec(0usize..40, 1..9),
    ) {
        let parts = make_parts(&sizes); // globally increasing by construction
        let (out, _, _) = run_balancer(Balancer::Omlb, &parts);
        let flat: Vec<u64> = out.into_iter().flatten().collect();
        let n: usize = sizes.iter().sum();
        prop_assert_eq!(flat, (0..n as u64).collect::<Vec<_>>());
    }

    #[test]
    fn none_is_a_noop(sizes in prop::collection::vec(0usize..40, 1..9)) {
        let parts = make_parts(&sizes);
        let (out, reps, _) = run_balancer(Balancer::None, &parts);
        prop_assert_eq!(out, parts);
        prop_assert!(reps.iter().all(|r| r.elements_sent == 0 && r.messages_sent == 0));
    }
}
