//! Property-based tests: every sequential kernel must agree with the
//! sort-based oracle on arbitrary inputs, and the structural primitives
//! must satisfy their postconditions.

use cgselect_seqsel::{
    floyd_rivest_select, median_of_medians_select, partition3, partition_le, quickselect,
    sort_select, weighted_median, Buckets, KernelRng, LocalKernel, OpCount,
};
use proptest::prelude::*;

fn oracle(mut v: Vec<i64>, k: usize) -> i64 {
    v.sort_unstable();
    v[k]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn quickselect_matches_oracle(
        v in prop::collection::vec(-1000i64..1000, 1..400),
        k_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let k = ((v.len() as f64) * k_frac) as usize % v.len();
        let mut rng = KernelRng::new(seed);
        let mut ops = OpCount::new();
        let mut w = v.clone();
        prop_assert_eq!(quickselect(&mut w, k, &mut rng, &mut ops), oracle(v, k));
    }

    #[test]
    fn median_of_medians_matches_oracle(
        v in prop::collection::vec(-1000i64..1000, 1..400),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((v.len() as f64) * k_frac) as usize % v.len();
        let mut ops = OpCount::new();
        let mut w = v.clone();
        prop_assert_eq!(median_of_medians_select(&mut w, k, &mut ops), oracle(v, k));
    }

    #[test]
    fn floyd_rivest_matches_oracle(
        v in prop::collection::vec(-1000i64..1000, 1..400),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((v.len() as f64) * k_frac) as usize % v.len();
        let mut ops = OpCount::new();
        let mut w = v.clone();
        prop_assert_eq!(floyd_rivest_select(&mut w, k, &mut ops), oracle(v, k));
    }

    #[test]
    fn floyd_rivest_matches_oracle_large(
        seed in any::<u64>(),
        k_frac in 0.0f64..1.0,
        modulus in prop::sample::select(vec![3u64, 100, u64::MAX]),
    ) {
        // Exercise the sampling path (> 600 elements) with varying tie density.
        let mut rng = KernelRng::new(seed);
        let v: Vec<i64> = (0..3000).map(|_| (rng.next_u64() % modulus) as i64).collect();
        let k = ((v.len() as f64) * k_frac) as usize % v.len();
        let mut ops = OpCount::new();
        let mut w = v.clone();
        prop_assert_eq!(floyd_rivest_select(&mut w, k, &mut ops), oracle(v, k));
    }

    #[test]
    fn sort_select_matches_oracle(
        v in prop::collection::vec(any::<i64>(), 1..200),
        k_frac in 0.0f64..1.0,
    ) {
        let k = ((v.len() as f64) * k_frac) as usize % v.len();
        let mut ops = OpCount::new();
        let mut w = v.clone();
        prop_assert_eq!(sort_select(&mut w, k, &mut ops), oracle(v, k));
    }

    #[test]
    fn partition_le_postconditions(
        v in prop::collection::vec(-50i64..50, 0..200),
        pivot in -60i64..60,
    ) {
        let mut w = v.clone();
        let mut ops = OpCount::new();
        let idx = partition_le(&mut w, pivot, &mut ops);
        prop_assert!(w[..idx].iter().all(|&x| x <= pivot));
        prop_assert!(w[idx..].iter().all(|&x| x > pivot));
        let mut a = v; a.sort_unstable();
        let mut b = w; b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn partition3_postconditions(
        v in prop::collection::vec(-50i64..50, 0..200),
        bounds in (-60i64..60, -60i64..60),
    ) {
        let (lo, hi) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let mut w = v.clone();
        let mut ops = OpCount::new();
        let (a, b) = partition3(&mut w, lo, hi, &mut ops);
        prop_assert!(a <= b && b <= w.len());
        prop_assert!(w[..a].iter().all(|&x| x < lo));
        prop_assert!(w[a..b].iter().all(|&x| (lo..=hi).contains(&x)));
        prop_assert!(w[b..].iter().all(|&x| x > hi));
        let mut s1 = v; s1.sort_unstable();
        let mut s2 = w; s2.sort_unstable();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn weighted_median_halves_the_weight(
        items in prop::collection::vec((-100i64..100, 1u64..20), 1..60),
    ) {
        let mut ops = OpCount::new();
        let m = weighted_median(&items, &mut ops);
        let total: u64 = items.iter().map(|(_, w)| w).sum();
        let below: u64 = items.iter().filter(|(v, _)| *v < m).map(|(_, w)| w).sum();
        let up_to: u64 = items.iter().filter(|(v, _)| *v <= m).map(|(_, w)| w).sum();
        prop_assert!(below < total.div_ceil(2));
        prop_assert!(up_to >= total.div_ceil(2));
    }

    #[test]
    fn buckets_preserve_multiset_and_order(
        v in prop::collection::vec(0u64..64, 0..300),
        nb in 1usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = KernelRng::new(seed);
        let mut ops = OpCount::new();
        let b = Buckets::build(v.clone(), nb, LocalKernel::Randomized, &mut rng, &mut ops);
        b.debug_validate();
        let mut got = b.data().to_vec();
        got.sort_unstable();
        let mut want = v;
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn buckets_split_le_counts_exactly(
        v in prop::collection::vec(0u64..64, 1..300),
        nb in 1usize..8,
        splits in prop::collection::vec(0u64..70, 1..6),
        seed in any::<u64>(),
    ) {
        let mut rng = KernelRng::new(seed);
        let mut ops = OpCount::new();
        let mut b = Buckets::build(v.clone(), nb, LocalKernel::Randomized, &mut rng, &mut ops);
        for s in splits {
            let w = b.full_window();
            let cnt = b.split_le(w, s, &mut ops);
            let want = v.iter().filter(|&&x| x <= s).count();
            prop_assert_eq!(cnt, want);
            b.debug_validate();
        }
    }

    #[test]
    fn buckets_select_rank_matches_oracle(
        v in prop::collection::vec(-500i64..500, 1..300),
        nb in 1usize..8,
        k_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let k = ((v.len() as f64) * k_frac) as usize % v.len();
        let mut rng = KernelRng::new(seed);
        let mut ops = OpCount::new();
        let mut b = Buckets::build(v.clone(), nb, LocalKernel::Randomized, &mut rng, &mut ops);
        let w = b.full_window();
        let got = b.select_rank(w, k, LocalKernel::Randomized, &mut rng, &mut ops);
        prop_assert_eq!(got, oracle(v, k));
    }
}
