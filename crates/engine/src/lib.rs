//! # cgselect-engine — a persistent sharded selection/quantile query engine
//!
//! The paper's algorithms are one-shot: build a machine, select one rank,
//! tear everything down. This crate turns them into a long-lived service:
//! data is ingested once, stays **resident in shards on the `p` virtual
//! processors** (a [`cgselect_runtime::Session`], whose worker threads
//! survive between calls), and an unbounded stream of query batches is
//! served against it.
//!
//! What the engine adds over raw `parallel_select`:
//!
//! * **Batched execution** — a batch's [`Query::Rank`] / [`Query::Quantile`]
//!   / [`Query::Median`] / [`Query::TopK`] queries are coalesced into *one*
//!   sorted, deduplicated rank list and resolved by a single
//!   [`cgselect_core::parallel_multi_select`] collective pass: `R` rank
//!   queries cost `O(log n + R)` pivot rounds instead of `O(R·log n)`.
//!   Per-batch [`BatchReport`] carries the measured
//!   [`cgselect_runtime::CommStats`], the collective-operation count and the
//!   virtual-time makespan.
//! * **Incremental ingest/delete** with an **imbalance watermark**: shard
//!   sizes are tracked, and when `max/mean` exceeds
//!   [`EngineConfig::imbalance_watermark`] the engine re-balances with the
//!   configured [`cgselect_balance::Balancer`] — amortized, not per
//!   operation.
//! * **An approximate fast path** — every shard maintains a mergeable
//!   reservoir sketch of its data on ingest; quantile queries carrying a
//!   rank-error tolerance the sketches can honor are answered from the
//!   sketches alone, never touching the full data, and fall back to the
//!   exact paper algorithms otherwise.
//! * **An async frontend** ([`frontend`]) — concurrent clients submit
//!   single queries into a bounded [`SubmissionQueue`] and await
//!   [`Ticket`]s, while a dedicated batcher thread forms batches by
//!   deadline (micro-batching window + max batch size) so the coalescing
//!   above happens *across* clients, not just within one caller's slice.
//!
//! ```
//! use cgselect_engine::{Engine, EngineConfig, Query, Answer};
//!
//! let mut engine: Engine<u64> = Engine::new(EngineConfig::new(4)).unwrap();
//! engine.ingest((0..1000u64).rev().collect()).unwrap();
//!
//! let report = engine
//!     .execute(&[Query::Median, Query::Rank(10), Query::TopK(3)])
//!     .unwrap();
//! assert_eq!(report.answers[0], Answer::Value(499));
//! assert_eq!(report.answers[1], Answer::Value(10));
//! assert_eq!(report.answers[2], Answer::Top(vec![0, 1, 2]));
//! assert!(report.comm.collective_ops > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod frontend;
mod measure;
mod query;
pub mod sketch;

pub use frontend::{
    AsyncError, FrontendConfig, FrontendStats, MutationTicket, QueryTicket, SubmissionQueue,
    SubmitError, Ticket,
};
pub use measure::{measure_rounds, ExecutionMode, RoundsMeasurement};
pub use query::{quantile_rank, Answer, Query};
pub use sketch::ReservoirSketch;

use std::sync::Arc;

use cgselect_balance::{rebalance, Balancer};
use cgselect_core::{parallel_multi_select, SelectionConfig};
use cgselect_runtime::{CommStats, Key, MachineModel, RunError, Session, ShardStore};

/// Configuration of a persistent engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of virtual processors (shards).
    pub nprocs: usize,
    /// Machine cost model for the virtual-time accounting.
    pub model: MachineModel,
    /// Tuning of the underlying selection algorithms (the multi-select
    /// pivot seed is re-derived per batch from `selection.seed`).
    pub selection: SelectionConfig,
    /// Strategy used when the imbalance watermark triggers a re-balance.
    pub balancer: Balancer,
    /// Re-balance when `max(shard)/mean(shard)` exceeds this (≥ 1.0).
    pub imbalance_watermark: f64,
    /// Per-shard reservoir capacity for the approximate path (0 disables
    /// the sketches, forcing every quantile to the exact path).
    pub sketch_capacity: usize,
}

impl EngineConfig {
    /// Defaults for a `p`-shard engine: CM-5 cost model, global-exchange
    /// re-balancing at watermark 1.5, 2048-sample sketches.
    pub fn new(nprocs: usize) -> Self {
        EngineConfig {
            nprocs,
            model: MachineModel::cm5(),
            selection: SelectionConfig::default(),
            balancer: Balancer::GlobalExchange,
            imbalance_watermark: 1.5,
            sketch_capacity: 2048,
        }
    }

    /// Builder-style cost model choice.
    pub fn model(mut self, model: MachineModel) -> Self {
        self.model = model;
        self
    }

    /// Builder-style balancer choice.
    pub fn balancer(mut self, balancer: Balancer) -> Self {
        self.balancer = balancer;
        self
    }

    /// Builder-style watermark choice.
    pub fn imbalance_watermark(mut self, ratio: f64) -> Self {
        self.imbalance_watermark = ratio;
        self
    }

    /// Builder-style sketch capacity choice.
    pub fn sketch_capacity(mut self, capacity: usize) -> Self {
        self.sketch_capacity = capacity;
        self
    }

    fn validate(&self) {
        assert!(self.nprocs >= 1, "an engine needs at least one shard");
        assert!(
            self.imbalance_watermark >= 1.0,
            "imbalance watermark must be >= 1.0 (max/mean ratio), got {}",
            self.imbalance_watermark
        );
        self.selection.validate();
    }
}

/// Errors surfaced to engine callers.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A query was submitted while no data is resident.
    Empty,
    /// `Query::Rank` beyond the resident population.
    RankOutOfRange {
        /// The requested 0-based rank.
        rank: u64,
        /// The resident population.
        n: u64,
    },
    /// `Query::Quantile` outside `[0, 1]`.
    InvalidQuantile(f64),
    /// A rank-error tolerance that is negative, NaN, or infinite.
    InvalidTolerance(f64),
    /// `Query::TopK` larger than the resident population.
    TopKTooLarge {
        /// The requested k.
        k: u64,
        /// The resident population.
        n: u64,
    },
    /// The underlying SPMD session failed (and is now poisoned).
    Runtime(RunError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Empty => write!(f, "query on an empty engine"),
            EngineError::RankOutOfRange { rank, n } => {
                write!(f, "rank {rank} out of range for {n} resident elements")
            }
            EngineError::InvalidQuantile(q) => {
                write!(f, "quantile {q} outside [0, 1]")
            }
            EngineError::InvalidTolerance(t) => {
                write!(f, "invalid rank-error tolerance {t} (must be finite and >= 0)")
            }
            EngineError::TopKTooLarge { k, n } => {
                write!(f, "top-k of {k} exceeds the {n} resident elements")
            }
            EngineError::Runtime(e) => write!(f, "runtime failure: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RunError> for EngineError {
    fn from(e: RunError) -> Self {
        EngineError::Runtime(e)
    }
}

/// What one batch execution did and cost.
#[derive(Clone, Debug)]
pub struct BatchReport<T> {
    /// Per-query answers, aligned with the submitted batch.
    pub answers: Vec<Answer<T>>,
    /// Communication this batch moved, summed over all processors
    /// (`collective_ops` is summed too; divide by `nprocs` for the
    /// per-processor SPMD count).
    pub comm: CommStats,
    /// Collective operations the batch started, per processor (identical
    /// on every rank by SPMD discipline) — the "collective rounds" to
    /// compare batched against per-query execution.
    pub collective_ops: u64,
    /// Virtual-time makespan of the batch under the engine's cost model.
    pub makespan: f64,
    /// How many distinct ranks the coalesced multi-select pass resolved.
    pub exact_ranks: usize,
    /// How many queries were served from the sketches.
    pub sketch_answers: usize,
}

/// What one ingest/delete did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationReport {
    /// Elements added (ingest) or removed (delete).
    pub elements: u64,
    /// Whether the imbalance watermark triggered a re-balance afterwards.
    pub rebalanced: bool,
}

/// Per-shard resident data plus its sketch; lives in each worker's
/// [`ShardStore`] between calls.
struct Shard<T> {
    data: Vec<T>,
    sketch: ReservoirSketch<T>,
}

/// A persistent sharded selection/quantile engine over element type `T`.
///
/// See the crate docs for the architecture; construction spawns the `p`
/// worker threads, which stay alive until the engine is dropped.
pub struct Engine<T: Key> {
    session: Session,
    cfg: EngineConfig,
    shard_sizes: Vec<u64>,
    total: u64,
    rebalances: u64,
    batches: u64,
    ingest_cursor: usize,
    _elem: std::marker::PhantomData<T>,
}

impl<T: Key> Engine<T> {
    /// Starts an engine: spawns the session and installs empty shards.
    pub fn new(cfg: EngineConfig) -> Result<Self, EngineError> {
        cfg.validate();
        let mut session = Session::with_model(cfg.nprocs, cfg.model);
        let capacity = cfg.sketch_capacity;
        let seed = cfg.selection.seed;
        session.run(move |proc, store| {
            let shard_seed = seed ^ (proc.rank() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            store.insert(Shard::<T> {
                data: Vec::new(),
                sketch: ReservoirSketch::new(capacity, shard_seed),
            });
        })?;
        Ok(Engine {
            shard_sizes: vec![0; cfg.nprocs],
            total: 0,
            rebalances: 0,
            batches: 0,
            ingest_cursor: 0,
            session,
            cfg,
            _elem: std::marker::PhantomData,
        })
    }

    /// Number of shards (= virtual processors).
    pub fn nprocs(&self) -> usize {
        self.cfg.nprocs
    }

    /// Resident population.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no data is resident.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Current per-shard element counts.
    pub fn shard_sizes(&self) -> &[u64] {
        &self.shard_sizes
    }

    /// How many watermark-triggered re-balances have run.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// How many query batches have executed.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Current `max/mean` shard-size ratio (1.0 when empty or perfectly
    /// balanced).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let max = *self.shard_sizes.iter().max().expect("nprocs >= 1") as f64;
        let mean = self.total as f64 / self.cfg.nprocs as f64;
        max / mean
    }

    /// Ingests `items`, spread round-robin across the shards (the cursor
    /// persists, so successive small ingests stay balanced). Sketches are
    /// maintained incrementally; the watermark is checked afterwards.
    pub fn ingest(&mut self, items: Vec<T>) -> Result<MutationReport, EngineError> {
        let p = self.cfg.nprocs;
        let count = items.len();
        let mut chunks: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (i, x) in items.into_iter().enumerate() {
            chunks[(self.ingest_cursor + i) % p].push(x);
        }
        self.ingest_cursor = (self.ingest_cursor + count) % p;
        self.ingest_chunks(chunks)
    }

    /// Ingests `items` entirely into shard `rank` — the "hot receiver"
    /// pattern (data arriving on one node). This is what drives the
    /// imbalance watermark in practice.
    ///
    /// # Panics
    /// Panics if `rank >= nprocs()`.
    pub fn ingest_pinned(
        &mut self,
        rank: usize,
        items: Vec<T>,
    ) -> Result<MutationReport, EngineError> {
        assert!(rank < self.cfg.nprocs, "shard {rank} out of range");
        let mut chunks: Vec<Vec<T>> = (0..self.cfg.nprocs).map(|_| Vec::new()).collect();
        chunks[rank] = items;
        self.ingest_chunks(chunks)
    }

    fn ingest_chunks(&mut self, chunks: Vec<Vec<T>>) -> Result<MutationReport, EngineError> {
        let added: u64 = chunks.iter().map(|c| c.len() as u64).sum();
        // Each worker takes (moves) its own chunk out of the shared slots —
        // ingest is the engine's primary data path and must not copy the
        // batch a second time.
        let chunks: Arc<Vec<std::sync::Mutex<Option<Vec<T>>>>> =
            Arc::new(chunks.into_iter().map(|c| std::sync::Mutex::new(Some(c))).collect());
        let sizes = self.session.run(move |proc, store| {
            let mine: Vec<T> = chunks[proc.rank()]
                .lock()
                .expect("ingest chunk lock")
                .take()
                .expect("each rank takes its chunk exactly once");
            proc.charge_ops(mine.len() as u64);
            let shard = shard_mut::<T>(store);
            shard.data.reserve(mine.len());
            for x in mine {
                shard.sketch.offer(x);
                shard.data.push(x);
            }
            shard.data.len() as u64
        })?;
        self.set_sizes(sizes);
        let rebalanced = self.maybe_rebalance()?;
        Ok(MutationReport { elements: added, rebalanced })
    }

    /// Deletes **all** resident occurrences of the given values, returning
    /// how many elements were removed. Shard sketches are rebuilt and the
    /// watermark is checked afterwards.
    pub fn delete(&mut self, values: &[T]) -> Result<MutationReport, EngineError> {
        if values.is_empty() || self.total == 0 {
            return Ok(MutationReport { elements: 0, rebalanced: false });
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let sorted = Arc::new(sorted);
        let sizes = self.session.run(move |proc, store| {
            let shard = shard_mut::<T>(store);
            let before = shard.data.len();
            // One pass over the shard, with a log-factor for the binary
            // search each element performs against the delete list.
            proc.charge_ops((before as u64) * (1 + sorted.len().ilog2() as u64));
            shard.data.retain(|x| sorted.binary_search(x).is_err());
            if shard.data.len() != before {
                shard.sketch.rebuild(&shard.data);
                proc.charge_ops(shard.data.len() as u64);
            }
            shard.data.len() as u64
        })?;
        let before = self.total;
        self.set_sizes(sizes);
        let removed = before - self.total;
        let rebalanced = self.maybe_rebalance()?;
        Ok(MutationReport { elements: removed, rebalanced })
    }

    /// Checks one query's domain against the current resident population
    /// without executing it — exactly the validation [`Engine::execute`]
    /// applies to a whole batch, exposed per query so the async frontend
    /// can fail an invalid query's ticket without failing its batch.
    pub fn validate_query(&self, query: &Query) -> Result<(), EngineError> {
        query::validate(query, self.total)
    }

    /// Hands this engine (and its persistent session) to a dedicated
    /// batcher thread and returns the async [`SubmissionQueue`] frontend.
    /// Shorthand for [`SubmissionQueue::start`].
    pub fn into_frontend(self, cfg: FrontendConfig) -> SubmissionQueue<T> {
        SubmissionQueue::start(self, cfg)
    }

    /// Executes one batch of queries against the resident data.
    ///
    /// All rank-type queries (ranks, exact quantiles, medians, top-k) are
    /// coalesced into a single `parallel_multi_select` pass; quantiles with
    /// a tolerance the sketches can honor are answered without touching
    /// the full data. Answers are aligned with `queries`.
    pub fn execute(&mut self, queries: &[Query]) -> Result<BatchReport<T>, EngineError> {
        let sketch_bound = if self.cfg.sketch_capacity == 0 {
            f64::INFINITY
        } else {
            let shards: Vec<(usize, u64)> = self
                .shard_sizes
                .iter()
                .map(|&n| (self.cfg.sketch_capacity.min(n as usize), n))
                .collect();
            sketch::support_bound(&shards)
        };
        let plan = query::plan(queries, self.total, sketch_bound)?;

        // Per-batch pivot seed: deterministic, but decorrelated across
        // batches so one unlucky stream cannot haunt every batch.
        let mut sel_cfg = self.cfg.selection.clone();
        sel_cfg.seed ^= (self.batches + 1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        self.batches += 1;

        let exact_ranks = Arc::new(plan.exact_ranks.clone());
        let sketch_targets = Arc::new(plan.sketch_targets.clone());
        let results = self.session.run(move |proc, store| {
            // Synchronize clocks so the elapsed virtual time is a makespan.
            proc.barrier();
            let comm0 = proc.comm_stats();
            let t0 = proc.now();

            let shard = shard_mut::<T>(store);
            let exact_values: Vec<T> = if exact_ranks.is_empty() {
                Vec::new()
            } else {
                // multi-select consumes its input; queries must not, so a
                // working copy is made (and its cost charged).
                proc.charge_ops(shard.data.len() as u64);
                parallel_multi_select(proc, shard.data.clone(), &exact_ranks, &sel_cfg)
            };

            let sketch_values: Vec<T> = if sketch_targets.is_empty() {
                Vec::new()
            } else {
                // The approximate path moves only the sketches: every rank
                // learns all reservoirs + populations and computes the
                // same deterministic estimates.
                let samples = proc.all_gatherv(shard.sketch.samples().to_vec());
                let pops = proc.all_gather(shard.sketch.population());
                let merged: Vec<(Vec<T>, u64)> = samples.into_iter().zip(pops).collect();
                let sample_count: u64 = merged.iter().map(|(s, _)| s.len() as u64).sum();
                proc.charge_ops(sample_count * (1 + sample_count.max(2).ilog2() as u64));
                sketch_targets
                    .iter()
                    .map(|&target| sketch::estimate_rank(&merged, target))
                    .collect()
            };

            (exact_values, sketch_values, proc.comm_stats().since(&comm0), proc.now() - t0)
        })?;

        let mut comm = CommStats::default();
        let mut makespan = 0.0f64;
        for (_, _, delta, elapsed) in &results {
            comm = comm.merged(delta);
            makespan = makespan.max(*elapsed);
        }
        let (exact_values, sketch_values, rank0_delta, _) = &results[0];
        let answers = plan.assemble(exact_values, sketch_values);
        Ok(BatchReport {
            answers,
            comm,
            collective_ops: rank0_delta.collective_ops,
            makespan,
            exact_ranks: plan.exact_ranks.len(),
            sketch_answers: plan.sketch_targets.len(),
        })
    }

    fn set_sizes(&mut self, sizes: Vec<u64>) {
        self.total = sizes.iter().sum();
        self.shard_sizes = sizes;
    }

    /// Runs the configured balancer if the watermark is exceeded.
    fn maybe_rebalance(&mut self) -> Result<bool, EngineError> {
        if self.cfg.nprocs == 1 || self.total < self.cfg.nprocs as u64 {
            return Ok(false);
        }
        if self.imbalance_ratio() <= self.cfg.imbalance_watermark {
            return Ok(false);
        }
        let balancer = self.cfg.balancer;
        let sizes = self.session.run(move |proc, store| {
            let shard = shard_mut::<T>(store);
            rebalance(balancer, proc, &mut shard.data);
            shard.sketch.rebuild(&shard.data);
            proc.charge_ops(shard.data.len() as u64);
            shard.data.len() as u64
        })?;
        self.set_sizes(sizes);
        self.rebalances += 1;
        Ok(true)
    }
}

/// The shard installed at engine construction; its absence means the store
/// was tampered with, which is a bug.
fn shard_mut<T: Key>(store: &mut ShardStore) -> &mut Shard<T> {
    store.get_mut::<Shard<T>>().expect("engine shard must be installed")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn free_cfg(p: usize) -> EngineConfig {
        EngineConfig::new(p).model(MachineModel::free())
    }

    fn oracle_sorted(data: &[u64]) -> Vec<u64> {
        let mut v = data.to_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn exact_queries_match_oracle_across_batches() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        let data: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9E3779B9) % 100_000).collect();
        engine.ingest(data.clone()).unwrap();
        let sorted = oracle_sorted(&data);
        let n = sorted.len() as u64;

        // Several batches against the same session: state persistence.
        for batch in 0..3u64 {
            let queries = vec![
                Query::Rank(batch * 100),
                Query::Median,
                Query::quantile(0.25),
                Query::quantile(0.99),
                Query::TopK(5),
            ];
            let report = engine.execute(&queries).unwrap();
            assert_eq!(report.answers[0], Answer::Value(sorted[(batch * 100) as usize]));
            assert_eq!(report.answers[1], Answer::Value(sorted[((n - 1) / 2) as usize]));
            assert_eq!(report.answers[2], Answer::Value(sorted[quantile_rank(0.25, n) as usize]));
            assert_eq!(report.answers[3], Answer::Value(sorted[quantile_rank(0.99, n) as usize]));
            assert_eq!(report.answers[4], Answer::Top(sorted[..5].to_vec()));
            assert!(report.collective_ops > 0);
            assert!(report.comm.msgs_sent > 0);
        }
        assert_eq!(engine.batches(), 3);
    }

    #[test]
    fn ingest_round_robin_stays_balanced() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        for _ in 0..10 {
            engine.ingest((0..25u64).collect()).unwrap();
        }
        assert_eq!(engine.len(), 250);
        let (mn, mx) = (
            *engine.shard_sizes().iter().min().unwrap(),
            *engine.shard_sizes().iter().max().unwrap(),
        );
        assert!(mx - mn <= 1, "round-robin drifted: {:?}", engine.shard_sizes());
        assert_eq!(engine.rebalances(), 0);
    }

    #[test]
    fn pinned_ingest_trips_the_watermark_exactly_once() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4).imbalance_watermark(1.5)).unwrap();
        engine.ingest((0..4000u64).collect()).unwrap();
        assert_eq!(engine.rebalances(), 0);
        // A hot shard: +4000 elements on shard 0 -> ratio (1000+4000)/2000 = 2.5.
        let rep = engine.ingest_pinned(0, (10_000..14_000u64).collect()).unwrap();
        assert!(rep.rebalanced);
        assert_eq!(engine.rebalances(), 1);
        assert!(engine.imbalance_ratio() <= 1.05, "ratio {}", engine.imbalance_ratio());
        // Queries still correct after the move.
        let report = engine.execute(&[Query::Rank(0), Query::quantile(1.0)]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(0));
        assert_eq!(report.answers[1], Answer::Value(13_999));
    }

    #[test]
    fn delete_removes_all_occurrences_and_updates_queries() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(3)).unwrap();
        engine.ingest(vec![5, 1, 5, 3, 5, 2, 4, 5]).unwrap();
        let rep = engine.delete(&[5, 99]).unwrap();
        assert_eq!(rep.elements, 4);
        assert_eq!(engine.len(), 4);
        let report = engine.execute(&[Query::TopK(4)]).unwrap();
        assert_eq!(report.answers[0], Answer::Top(vec![1, 2, 3, 4]));
    }

    #[test]
    fn approximate_quantile_stays_within_tolerance() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4).sketch_capacity(2048)).unwrap();
        // 0..80000 shuffled deterministically: value == rank.
        let n = 80_000u64;
        let data: Vec<u64> = {
            let mut v: Vec<u64> = (0..n).collect();
            let mut rng = cgselect_seqsel::KernelRng::new(9);
            for i in (1..v.len()).rev() {
                v.swap(i, rng.below(i as u64 + 1) as usize);
            }
            v
        };
        engine.ingest(data).unwrap();
        let tol = 0.05;
        let report = engine
            .execute(&[Query::quantile_within(0.5, tol), Query::quantile_within(0.9, tol)])
            .unwrap();
        assert_eq!(report.sketch_answers, 2);
        assert_eq!(report.exact_ranks, 0);
        for (answer, q) in report.answers.iter().zip([0.5, 0.9]) {
            match *answer {
                Answer::Approximate { value, target_rank, max_rank_error } => {
                    assert_eq!(target_rank, quantile_rank(q, n));
                    assert_eq!(max_rank_error, (tol * n as f64).ceil() as u64);
                    let err = value.abs_diff(target_rank);
                    assert!(
                        err <= max_rank_error,
                        "q={q}: estimate {value} vs target {target_rank} (err {err})"
                    );
                }
                ref other => panic!("expected an approximate answer, got {other:?}"),
            }
        }
        // A tolerance tighter than the sketch bound must fall back to exact.
        let report = engine.execute(&[Query::quantile_within(0.5, 1e-9)]).unwrap();
        assert_eq!(report.sketch_answers, 0);
        assert_eq!(report.answers[0], Answer::Value(quantile_rank(0.5, n)));
    }

    #[test]
    fn batching_uses_fewer_collective_ops_than_single_queries() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(4)).unwrap();
        let data: Vec<u64> =
            (0..40_000u64).map(|i| i.wrapping_mul(2654435761) % 1_000_000).collect();
        engine.ingest(data).unwrap();
        let ranks: Vec<u64> = (1..=16).map(|i| i * 2000).collect();

        let batch: Vec<Query> = ranks.iter().map(|&r| Query::Rank(r)).collect();
        let batched = engine.execute(&batch).unwrap();

        let mut single_total = 0u64;
        for &r in &ranks {
            single_total += engine.execute(&[Query::Rank(r)]).unwrap().collective_ops;
        }
        assert!(
            batched.collective_ops < single_total,
            "batched {} vs {} summed single-query collective ops",
            batched.collective_ops,
            single_total
        );
    }

    #[test]
    fn errors_reject_bad_batches_without_poisoning() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(2)).unwrap();
        assert_eq!(engine.execute(&[Query::Median]).unwrap_err(), EngineError::Empty);
        engine.ingest(vec![1, 2, 3]).unwrap();
        assert_eq!(
            engine.execute(&[Query::Rank(3)]).unwrap_err(),
            EngineError::RankOutOfRange { rank: 3, n: 3 }
        );
        assert_eq!(
            engine.execute(&[Query::quantile(-0.1)]).unwrap_err(),
            EngineError::InvalidQuantile(-0.1)
        );
        // The session is still healthy.
        let report = engine.execute(&[Query::Median]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(2));
    }

    #[test]
    fn single_shard_engine_works() {
        let mut engine: Engine<u64> = Engine::new(free_cfg(1)).unwrap();
        engine.ingest((0..100u64).rev().collect()).unwrap();
        let report = engine.execute(&[Query::Median, Query::TopK(2)]).unwrap();
        assert_eq!(report.answers[0], Answer::Value(49));
        assert_eq!(report.answers[1], Answer::Top(vec![0, 1]));
    }

    #[test]
    fn virtual_time_advances_across_batches() {
        let mut engine: Engine<u64> = Engine::new(EngineConfig::new(4)).unwrap();
        engine.ingest((0..10_000u64).collect()).unwrap();
        let a = engine.execute(&[Query::Median]).unwrap();
        let b = engine.execute(&[Query::Median]).unwrap();
        assert!(a.makespan > 0.0);
        assert!(b.makespan > 0.0);
    }
}
