//! The resident bucket index: copy-free, scan-free batch execution.
//!
//! The engine's exact path originally cloned every shard and re-partitioned
//! the raw data from scratch on every batch — `O(n/p)` copy + scan whose
//! partitioning work was then thrown away. This module keeps that work:
//!
//! * **Shared splitters** — at (re)build time the shards agree, through one
//!   collective over their ingest-maintained sample sketches, on a vector
//!   of [`SepBound`] splitters (Nowicki-style regular sampling). Every
//!   shard partitions its resident data into the *same* value-range buckets
//!   ([`ShardIndex`]), so "bucket `b`" means one global value interval.
//! * **A cached global histogram** — the engine host caches the per-bucket
//!   global counts (plus per-bucket min/max) in a [`GlobalIndex`]. A rank
//!   query then *localizes* without touching data: binary search over the
//!   cached prefix sums yields the small window of candidate buckets that
//!   must contain the target ([`GlobalIndex::window`]).
//! * **Copy-free execution** — the multi-select recursion runs over the
//!   candidate buckets *borrowed in place*
//!   ([`cgselect_core::parallel_multi_select_in`]); the only per-batch copy
//!   is the small unindexed delta run.
//! * **A histogram-only fast path** — a rank whose candidate window is a
//!   single bucket of one repeated value (tracked min == max) is answered
//!   from the cached histogram alone: zero element scans, zero extra
//!   collectives. Refinement (below) makes this the steady state for
//!   repeated and near-repeated quantiles.
//! * **Adaptive refinement** — after a batch resolves its answers, each
//!   candidate window is re-partitioned by the answer values, inserting
//!   `(v, exclusive), (v, inclusive)` splitter pairs that carve out each
//!   answer's exact equality class. The next batch asking the same (or a
//!   nearby) quantile finds a constant candidate bucket and takes the fast
//!   path.
//! * **Delta runs, rebased host-side** — ingest appends to an unindexed
//!   tail on the shards *and* into a sorted host mirror
//!   ([`GlobalIndex::delta_vals`]) that classifies each pending element
//!   into its value bucket with zero collectives. Localization, the
//!   histogram fast path and value-probe brackets all read the *merged*
//!   (indexed + delta) prefix sums, so answers stay exact — and candidate
//!   windows stay single-bucket tight — between the amortized merges that
//!   fold the tail into the buckets. This is what lets a standing query
//!   re-serve from the cache while ingest streams in.

use cgselect_runtime::Key;
use cgselect_seqsel::{partition_by_bounds, OpCount, SepBound};

/// Per-shard half of the index, resident in the worker's `ShardStore`
/// alongside the data: the shard's `data[..delta_start()]` prefix is
/// bucket-ordered under the shared `bounds`; the tail is the unindexed
/// delta run.
pub(crate) struct ShardIndex<T> {
    /// The shared splitters — identical on every shard by construction.
    pub bounds: Vec<SepBound<T>>,
    /// Bucket offsets into the indexed prefix: `bounds.len() + 2` entries,
    /// non-decreasing, `offsets[0] == 0`; bucket `b` is
    /// `data[offsets[b]..offsets[b + 1]]`.
    pub offsets: Vec<usize>,
}

impl<T: Key> ShardIndex<T> {
    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Where the unindexed delta run begins in the shard's data vector.
    pub fn delta_start(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }
}

/// Per-bucket shard-local summary: `(count, Some((min, max)))` —
/// `None` for an empty bucket. Public because execution backends report it
/// across the [`crate::ExecBackend`] boundary.
pub type BucketStats<T> = Vec<(u64, Option<(T, T)>)>;

/// Scans `offsets`-delimited buckets of `data` and summarizes each.
/// Cost: one pass over `data` (caller charges `data.len()` ops).
pub(crate) fn bucket_stats<T: Key>(data: &[T], offsets: &[usize]) -> BucketStats<T> {
    offsets
        .windows(2)
        .map(|w| {
            let s = &data[w[0]..w[1]];
            let mm = s.iter().fold(None, |acc: Option<(T, T)>, &x| match acc {
                None => Some((x, x)),
                Some((lo, hi)) => Some((lo.min(x), hi.max(x))),
            });
            (s.len() as u64, mm)
        })
        .collect()
}

/// The window's refined splitters: the old internal splitters plus an
/// equality-class pair around every resolved answer value, sorted and
/// deduplicated — identical on every shard because both inputs are.
///
/// Bounds at or beyond the window's *outer* bounds (`lower`, `upper`) are
/// dropped: they would only carve empty sub-buckets (no window element
/// lies outside the outer bounds) and would violate the strictly
/// increasing invariant of the shard's stored splitter vector.
pub(crate) fn refined_bounds<T: Key>(
    old_internal: &[SepBound<T>],
    answers: &[T],
    lower: Option<SepBound<T>>,
    upper: Option<SepBound<T>>,
) -> Vec<SepBound<T>> {
    let mut v: Vec<SepBound<T>> = old_internal.to_vec();
    for &a in answers {
        v.push(SepBound::lt(a));
        v.push(SepBound::le(a));
    }
    v.sort_unstable();
    v.dedup();
    v.retain(|&b| lower.is_none_or(|lo| b > lo) && upper.is_none_or(|hi| b < hi));
    v
}

/// One contiguous window of candidate buckets and the batch ranks routed
/// into it. Windows of distinct groups are disjoint; ranks are expressed
/// relative to the window's subset (candidate buckets + the whole delta).
/// Public because batch plans carry it across the [`crate::ExecBackend`]
/// boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    /// First candidate bucket.
    pub lo: usize,
    /// Last candidate bucket (inclusive).
    pub hi: usize,
    /// Exact global population of the window's subset:
    /// `prefix[hi + 1] - prefix[lo] + delta_total`.
    pub n: u64,
    /// Within-subset ranks (sorted, distinct).
    pub ranks: Vec<u64>,
    /// For each rank, its slot in the batch's coalesced rank list.
    pub out: Vec<usize>,
}

/// Routing of a batch's coalesced exact ranks against the cached histogram.
pub(crate) struct Routing<T> {
    /// Candidate-window groups, ascending and disjoint.
    pub groups: Vec<Group>,
    /// Histogram-only answers: `(slot, value)` pairs resolved with zero
    /// element scans.
    pub fast: Vec<(usize, T)>,
}

/// Host-side cached global histogram of the shared buckets, plus a sorted
/// mirror of the pending delta run that *rebases* the histogram after
/// every ingest/delete: the host classifies each unindexed element into
/// its value bucket without any collective, so rank localization, the
/// histogram fast path and value-probe brackets all stay **exact** while
/// a delta is pending — the mechanism that lets a standing query re-serve
/// from the cache at zero collectives between merges.
#[derive(Clone, Debug)]
pub(crate) struct GlobalIndex<T> {
    /// The shared splitters, mirrored host-side (identical to every
    /// shard's by construction) so the host can replay refinement and
    /// classify delta elements itself.
    pub bounds: Vec<SepBound<T>>,
    /// Global per-bucket counts of *indexed* elements.
    pub counts: Vec<u64>,
    /// Prefix sums of `counts` (`counts.len() + 1` entries, first 0).
    pub prefix: Vec<u64>,
    /// Global per-bucket `(min, max)` of indexed elements (`None` = empty).
    pub minmax: Vec<Option<(T, T)>>,
    /// Sorted multiset of the unindexed delta elements across all shards —
    /// the host-side mirror fed by ingest and pruned by delete.
    pub delta_vals: Vec<T>,
    /// Per-bucket prefix counts of `delta_vals` (`counts.len() + 1`
    /// entries, first 0): `delta_offsets[b]` delta elements fall in
    /// buckets `< b`, so bucket `b`'s delta slice is
    /// `delta_vals[delta_offsets[b]..delta_offsets[b + 1]]`.
    pub delta_offsets: Vec<u64>,
    /// Global number of unindexed delta elements across all shards
    /// (always `delta_vals.len()`).
    pub delta_total: u64,
}

impl<T: Key> GlobalIndex<T> {
    /// Assembles the host cache from the shared splitters and the
    /// per-shard summaries returned by the build run.
    pub fn from_shard_stats(bounds: Vec<SepBound<T>>, per_shard: &[BucketStats<T>]) -> Self {
        let nb = per_shard.first().map_or(0, Vec::len);
        debug_assert_eq!(nb, bounds.len() + 1, "splitters disagree with the bucket count");
        let mut acc: BucketStats<T> = vec![(0, None); nb];
        for stats in per_shard {
            merge_stats(&mut acc, stats);
        }
        let mut idx = GlobalIndex {
            bounds,
            counts: acc.iter().map(|&(c, _)| c).collect(),
            prefix: Vec::new(),
            minmax: acc.into_iter().map(|(_, mm)| mm).collect(),
            delta_vals: Vec::new(),
            delta_offsets: vec![0; nb + 1],
            delta_total: 0,
        };
        idx.rebuild_prefix();
        idx
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }

    /// Recomputes the prefix sums after counts changed.
    pub fn rebuild_prefix(&mut self) {
        self.prefix = std::iter::once(0)
            .chain(self.counts.iter().scan(0u64, |acc, &c| {
                *acc += c;
                Some(*acc)
            }))
            .collect();
    }

    /// Merged (indexed + pending delta) count of elements in buckets
    /// `< b` — the rebased prefix sum the localization below searches.
    fn merged_prefix(&self, b: usize) -> u64 {
        self.prefix[b] + self.delta_offsets[b]
    }

    /// Min/max over bucket `b`'s indexed elements *and* its pending delta
    /// slice (`None` when both are empty). The mirror is sorted, so the
    /// slice's endpoints are its extrema.
    fn merged_minmax(&self, b: usize) -> Option<(T, T)> {
        let d =
            &self.delta_vals[self.delta_offsets[b] as usize..self.delta_offsets[b + 1] as usize];
        let dm = (!d.is_empty()).then(|| (d[0], d[d.len() - 1]));
        merge_minmax(self.minmax[b], dm)
    }

    /// The single bucket `(b, b)` that contains global rank `r` in the
    /// merged (indexed + delta) order. Buckets are value-disjoint and the
    /// host mirror classifies every pending delta element exactly, so a
    /// pending delta no longer widens the window — localization stays
    /// single-bucket exact between merges.
    pub fn window(&self, r: u64) -> (usize, usize) {
        let last = self.counts.len() - 1;
        // Largest b with merged_prefix(b) <= r: r then falls strictly
        // inside bucket b's merged population.
        let (mut lo, mut hi) = (0usize, self.counts.len());
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.merged_prefix(mid) <= r {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let b = lo.min(last);
        (b, b)
    }

    /// Histogram-only resolution: `Some(v)` when rank `r`'s bucket holds
    /// one repeated value across both its indexed elements and its pending
    /// delta slice — the answer needs zero element scans, delta or not.
    pub fn fast_value(&self, r: u64) -> Option<T> {
        if self.counts.is_empty() {
            return None;
        }
        let (b, _) = self.window(r);
        match self.merged_minmax(b) {
            Some((mn, mx)) if mn == mx => Some(mn),
            _ => None,
        }
    }

    /// Routes the batch's sorted, deduplicated rank sequence (ascending —
    /// a [`crate::RankSet`] iteration): fast-path ranks are answered from
    /// the histogram; the rest coalesce into disjoint candidate-window
    /// groups (overlapping windows merge).
    pub fn route(&self, ranks: impl Iterator<Item = u64>) -> Routing<T> {
        /// An under-construction group: window bounds plus its
        /// `(global rank, slot)` members, ascending.
        type OpenGroup = (usize, usize, Vec<(u64, usize)>);
        let mut routing = Routing { groups: Vec::new(), fast: Vec::new() };
        let mut open: Vec<OpenGroup> = Vec::new();
        for (slot, r) in ranks.enumerate() {
            if let Some(v) = self.fast_value(r) {
                routing.fast.push((slot, v));
                continue;
            }
            let (lo, hi) = self.window(r);
            match open.last_mut() {
                // Ranks ascend, so windows ascend: overlap can only happen
                // with the most recent group.
                Some(last) if lo <= last.1 => {
                    last.1 = last.1.max(hi);
                    last.2.push((r, slot));
                }
                _ => open.push((lo, hi, vec![(r, slot)])),
            }
        }
        for (lo, hi, members) in open {
            let base = self.prefix[lo];
            let n = self.prefix[hi + 1] - base + self.delta_total;
            let (ranks, out) = members.into_iter().map(|(r, s)| (r - base, s)).unzip();
            routing.groups.push(Group { lo, hi, n, ranks, out });
        }
        routing
    }

    /// Histogram-only *rank-direction* resolution under a loosened
    /// contract: `Some((value, max_rank_error))` for rank `r`'s merged
    /// bucket. A constant bucket yields the exact element
    /// (`max_rank_error = 0`, the [`fast_value`](Self::fast_value) case);
    /// otherwise the bucket's merged minimum is returned with the error
    /// bounded by the target's offset into the bucket — zero element
    /// scans either way, pending delta included (the mirror rebases the
    /// bucket's base rank and extrema exactly).
    pub fn approx_value(&self, r: u64) -> Option<(T, u64)> {
        if self.counts.is_empty() {
            return None;
        }
        let (b, _) = self.window(r);
        match self.merged_minmax(b) {
            Some((mn, mx)) if mn == mx => Some((mn, 0)),
            // `mn`'s first occurrence sits at the bucket's merged base
            // rank, so its rank distance to `r` is at most the offset
            // into the bucket.
            Some((mn, _)) => Some((mn, r - self.merged_prefix(b))),
            None => None,
        }
    }

    /// Histogram-only bracket `[lo, hi]` on the prefix count of elements
    /// admitted by the probe `(v, inclusive)` (`x < v`, or `x ≤ v` when
    /// inclusive) — zero element scans, zero collectives.
    ///
    /// Buckets are value-disjoint under the shared splitters, so at most
    /// one bucket's contribution is ambiguous, and only when its tracked
    /// `min`/`max` straddle the probe; refined equality-class buckets
    /// (`min == max`) always resolve exactly. The pending delta
    /// contributes **exactly** — the sorted mirror answers the probe with
    /// one binary search — so the bracket is exact (`lo == hi`) precisely
    /// when every indexed bucket resolves: "the splitters bound the
    /// answer", delta or no delta.
    pub fn count_bounds(&self, v: T, inclusive: bool) -> (u64, u64) {
        let mut below = 0u64;
        let mut ambiguous = 0u64;
        for (&count, &mm) in self.counts.iter().zip(&self.minmax) {
            let Some((mn, mx)) = mm else { continue };
            let all_below = if inclusive { mx <= v } else { mx < v };
            let none_below = if inclusive { mn > v } else { mn >= v };
            if all_below {
                below += count;
            } else if !none_below {
                ambiguous += count;
            }
        }
        let d_below =
            self.delta_vals.partition_point(|&x| if inclusive { x <= v } else { x < v }) as u64;
        (below + d_below, below + ambiguous + d_below)
    }

    /// Records freshly ingested elements into the delta mirror and
    /// reclassifies — the rebase that keeps localization exact while the
    /// elements sit in the shards' unindexed delta runs.
    pub fn note_ingest(&mut self, items: impl IntoIterator<Item = T>) {
        self.delta_vals.extend(items);
        self.delta_vals.sort_unstable();
        self.delta_total = self.delta_vals.len() as u64;
        self.reclassify_delta();
    }

    /// Drops every occurrence of the (sorted, deduplicated) deleted values
    /// from the delta mirror — the twin of the shards' delta-run
    /// compaction. Call after [`apply_removals`](Self::apply_removals);
    /// the mirror must land on the same population the shards reported.
    pub fn note_delete(&mut self, sorted: &[T]) {
        self.delta_vals.retain(|x| sorted.binary_search(x).is_err());
        self.reclassify_delta();
        debug_assert_eq!(
            self.delta_total,
            self.delta_vals.len() as u64,
            "delta mirror out of sync with the shards' removal reports"
        );
    }

    /// Recomputes `delta_offsets` after the mirror or the bounds changed:
    /// one binary search per splitter over the sorted mirror.
    pub fn reclassify_delta(&mut self) {
        let mut off = Vec::with_capacity(self.counts.len() + 1);
        off.push(0u64);
        for b in &self.bounds {
            off.push(self.delta_vals.partition_point(|x| b.admits(x)) as u64);
        }
        off.push(self.delta_vals.len() as u64);
        debug_assert_eq!(off.len(), self.counts.len() + 1, "splitters/bucket mismatch");
        self.delta_offsets = off;
    }

    /// Host replay of one resolved window's splitter refinement — the
    /// exact twin of the shard-side refinement in
    /// `backend::ops::execute_shard`, so the mirrored `bounds` stay
    /// identical to every shard's stored splitter vector. Splices `bounds`
    /// only; the caller splices counts/minmax via
    /// [`splice_window`](Self::splice_window) with the shards' merged
    /// stats, then calls [`rebuild_prefix`](Self::rebuild_prefix) and
    /// [`reclassify_delta`](Self::reclassify_delta) once all windows (in
    /// descending order) are done.
    pub fn refine_window_bounds(&mut self, lo: usize, hi: usize, answers: &[T]) {
        let lower = (lo > 0).then(|| self.bounds[lo - 1]);
        let upper = (hi < self.bounds.len()).then(|| self.bounds[hi]);
        let new_bounds = refined_bounds(&self.bounds[lo..hi], answers, lower, upper);
        self.bounds.splice(lo..hi, new_bounds);
    }

    /// Host replay of one resolved value probe's equality-class
    /// refinement: carves `(v, <)(v, ≤)` into `v`'s bucket exactly like
    /// the shards do after their probe Combine. Returns the refined
    /// bucket's index (for the caller's counts/minmax splice), or `None`
    /// when the class is already carved — the shards skipped it too, by
    /// the same deterministic test.
    pub fn refine_probe_bounds(&mut self, v: T) -> Option<usize> {
        let b = self.bounds.partition_point(|sb| !sb.admits(&v));
        let lower = (b > 0).then(|| self.bounds[b - 1]);
        let upper = (b < self.bounds.len()).then(|| self.bounds[b]);
        let inserted = refined_bounds(&[], &[v], lower, upper);
        if inserted.is_empty() {
            return None;
        }
        self.bounds.splice(b..b, inserted);
        Some(b)
    }

    /// Applies one refined window: buckets `lo..=hi` are replaced by the
    /// refreshed per-bucket stats. Call in descending `lo` order so earlier
    /// windows' indices stay valid; call [`rebuild_prefix`](Self::rebuild_prefix)
    /// and [`reclassify_delta`](Self::reclassify_delta) once afterwards.
    pub fn splice_window(&mut self, lo: usize, hi: usize, stats: &BucketStats<T>) {
        self.counts.splice(lo..=hi, stats.iter().map(|&(c, _)| c));
        self.minmax.splice(lo..=hi, stats.iter().map(|&(_, mm)| mm));
    }

    /// Folds per-shard delta-merge summaries into the cached histogram
    /// (delta elements joined their buckets; the delta run — and its host
    /// mirror — is empty again).
    pub fn absorb_delta(&mut self, per_shard: &[BucketStats<T>]) {
        let mut acc: BucketStats<T> =
            self.counts.iter().zip(&self.minmax).map(|(&c, &mm)| (c, mm)).collect();
        for stats in per_shard {
            merge_stats(&mut acc, stats);
        }
        self.counts = acc.iter().map(|&(c, _)| c).collect();
        self.minmax = acc.into_iter().map(|(_, mm)| mm).collect();
        self.delta_total = 0;
        self.delta_vals.clear();
        self.delta_offsets = vec![0; self.counts.len() + 1];
        self.rebuild_prefix();
    }

    /// Applies per-shard deletion summaries (`removed[b]` per bucket plus a
    /// final delta-run entry). Min/max are deliberately kept: removal can
    /// only shrink a bucket's value range, and the fast path reads min/max
    /// only when they are equal — which deletion cannot falsify.
    pub fn apply_removals(&mut self, per_shard: &[Vec<u64>]) {
        for removed in per_shard {
            debug_assert_eq!(removed.len(), self.counts.len() + 1);
            for (b, &c) in removed[..self.counts.len()].iter().enumerate() {
                self.counts[b] -= c;
            }
            self.delta_total -= removed[self.counts.len()];
        }
        self.rebuild_prefix();
    }
}

/// Elementwise merge of two shards' per-bucket summaries (counts sum,
/// min/max widen) — how the host folds a refined window's per-shard stats.
pub(crate) fn merge_stats<T: Key>(into: &mut BucketStats<T>, other: &BucketStats<T>) {
    debug_assert_eq!(into.len(), other.len(), "shards disagree on refined bucket count");
    for ((c, mm), &(oc, omm)) in into.iter_mut().zip(other) {
        *c += oc;
        *mm = merge_minmax(*mm, omm);
    }
}

fn merge_minmax<T: Key>(a: Option<(T, T)>, b: Option<(T, T)>) -> Option<(T, T)> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some((alo, ahi)), Some((blo, bhi))) => Some((alo.min(blo), ahi.max(bhi))),
    }
}

/// Shard-side (re)build: partitions the whole data vector (delta included)
/// by the shared `bounds` and installs the index. Returns the per-bucket
/// summary for the host cache. Measured costs land in `ops`; the caller
/// charges them plus one pass for the summary scan.
pub(crate) fn build_shard_index<T: Key>(
    data: &mut [T],
    bounds: Vec<SepBound<T>>,
    ops: &mut OpCount,
) -> (ShardIndex<T>, BucketStats<T>) {
    let offsets = partition_by_bounds(data, &bounds, ops);
    let stats = bucket_stats(data, &offsets);
    (ShardIndex { bounds, offsets }, stats)
}

/// Picks up to `nb - 1` splitters from the pooled (sorted) sample values:
/// evenly spaced sample quantiles, deduplicated, all inclusive. Identical
/// on every shard because the pool is.
pub(crate) fn splitters_from_samples<T: Key>(pool: &[T], nb: usize) -> Vec<SepBound<T>> {
    if pool.is_empty() || nb < 2 {
        return Vec::new();
    }
    let mut values: Vec<T> = (1..nb).map(|i| pool[i * pool.len() / nb]).collect();
    values.dedup();
    values.into_iter().map(SepBound::le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(counts: &[u64], values: &[u64]) -> GlobalIndex<u64> {
        // Bucket b holds counts[b] copies of values[b] (min == max). Tests
        // that exercise the delta mirror set `delta_vals`/`delta_offsets`
        // explicitly; tests that exercise refinement replay set `bounds`.
        let minmax = counts
            .iter()
            .zip(values)
            .map(|(&c, &v)| if c == 0 { None } else { Some((v, v)) })
            .collect();
        let mut g = GlobalIndex {
            bounds: Vec::new(),
            counts: counts.to_vec(),
            prefix: Vec::new(),
            minmax,
            delta_vals: Vec::new(),
            delta_offsets: vec![0; counts.len() + 1],
            delta_total: 0,
        };
        g.rebuild_prefix();
        g
    }

    /// Installs a pending delta mirror: `vals` sorted, classified by the
    /// explicit per-bucket `offsets` (tests pick them by hand so the
    /// helper stays independent of `reclassify_delta`).
    fn with_delta(g: &mut GlobalIndex<u64>, vals: &[u64], offsets: &[u64]) {
        assert_eq!(offsets.len(), g.counts.len() + 1);
        g.delta_vals = vals.to_vec();
        g.delta_offsets = offsets.to_vec();
        g.delta_total = vals.len() as u64;
    }

    #[test]
    fn window_localizes_without_delta() {
        let g = idx(&[10, 0, 5, 5], &[1, 0, 3, 4]);
        assert_eq!(g.window(0), (0, 0));
        assert_eq!(g.window(9), (0, 0));
        assert_eq!(g.window(10), (2, 2)); // bucket 1 is empty
        assert_eq!(g.window(14), (2, 2));
        assert_eq!(g.window(15), (3, 3));
        assert_eq!(g.window(19), (3, 3));
    }

    #[test]
    fn delta_mirror_keeps_windows_single_bucket_exact() {
        let mut g = idx(&[10, 10], &[1, 2]);
        // Pending delta {1, 2, 2}: one element rebases bucket 0, two
        // rebase bucket 1 — merged populations 11 and 12.
        with_delta(&mut g, &[1, 2, 2], &[0, 1, 3]);
        assert_eq!(g.window(10), (0, 0));
        assert_eq!(g.window(11), (1, 1));
        assert_eq!(g.window(22), (1, 1));
        // The fast path serves straight through the pending delta: the
        // mirror proves each bucket stays a single equality class.
        assert_eq!(g.fast_value(0), Some(1));
        assert_eq!(g.fast_value(10), Some(1));
        assert_eq!(g.fast_value(11), Some(2));
        // A delta value that breaks a bucket's constancy refuses it.
        with_delta(&mut g, &[0, 2, 2], &[0, 1, 3]);
        assert_eq!(g.fast_value(0), None);
        assert_eq!(g.fast_value(12), Some(2));
    }

    #[test]
    fn fast_path_requires_singleton_constant_bucket() {
        let mut g = idx(&[4, 6, 2], &[7, 9, 11]);
        assert_eq!(g.fast_value(0), Some(7));
        assert_eq!(g.fast_value(5), Some(9));
        assert_eq!(g.fast_value(10), Some(11));
        g.minmax[1] = Some((8, 9)); // bucket 1 no longer constant
        assert_eq!(g.fast_value(5), None);
    }

    #[test]
    fn route_merges_overlapping_windows_and_splits_fast_ranks() {
        let mut g = idx(&[10, 10, 10], &[1, 2, 3]);
        g.minmax[1] = Some((2, 5)); // middle bucket not constant
        let routing = g.route([0, 12, 15, 25].into_iter());
        // Ranks 0 and 25 hit constant singleton buckets -> fast.
        assert_eq!(routing.fast, vec![(0, 1), (3, 3)]);
        // Ranks 12 and 15 share bucket-1's window -> one group.
        assert_eq!(routing.groups.len(), 1);
        let grp = &routing.groups[0];
        assert_eq!((grp.lo, grp.hi, grp.n), (1, 1, 10));
        assert_eq!(grp.ranks, vec![2, 5]); // relative to prefix[1] = 10
        assert_eq!(grp.out, vec![1, 2]);
    }

    #[test]
    fn count_bounds_are_exact_when_splitters_bound_the_probe() {
        // Buckets: 10×1 | 5 in [3,6] | 4×9.
        let mut g = idx(&[10, 5, 4], &[1, 0, 9]);
        g.minmax[1] = Some((3, 6));
        // Probes resolved by constant buckets alone are exact.
        assert_eq!(g.count_bounds(1, false), (0, 0));
        assert_eq!(g.count_bounds(1, true), (10, 10));
        assert_eq!(g.count_bounds(2, false), (10, 10));
        assert_eq!(g.count_bounds(9, false), (15, 15));
        assert_eq!(g.count_bounds(9, true), (19, 19));
        // A probe inside the straddling bucket brackets by its count.
        assert_eq!(g.count_bounds(5, false), (10, 15));
        assert_eq!(g.count_bounds(6, true), (15, 15)); // mx <= v resolves
        assert_eq!(g.count_bounds(6, false), (10, 15));
        // A pending delta contributes exactly through the sorted mirror:
        // brackets shift, they do not widen.
        with_delta(&mut g, &[0, 1, 7], &[0, 2, 3, 3]);
        assert_eq!(g.count_bounds(1, true), (12, 12));
        assert_eq!(g.count_bounds(1, false), (1, 1));
        assert_eq!(g.count_bounds(9, false), (18, 18));
        assert_eq!(g.count_bounds(5, false), (12, 17)); // straddle remains
    }

    #[test]
    fn approx_value_serves_single_bucket_windows() {
        let mut g = idx(&[4, 6], &[7, 0]);
        g.minmax[1] = Some((9, 20));
        // Constant bucket: exact, zero error.
        assert_eq!(g.approx_value(0), Some((7, 0)));
        // Straddling bucket: its min, error = offset into the bucket.
        assert_eq!(g.approx_value(4), Some((9, 0)));
        assert_eq!(g.approx_value(8), Some((9, 4)));
        // Delta pending: the mirror rebases the bucket's base rank and
        // extrema, so serving continues with the merged bounds.
        with_delta(&mut g, &[30], &[0, 0, 1]);
        assert_eq!(g.approx_value(0), Some((7, 0)));
        assert_eq!(g.approx_value(10), Some((9, 6)));
    }

    #[test]
    fn splice_and_absorb_keep_the_histogram_consistent() {
        let mut g = idx(&[10, 10], &[1, 5]);
        // Refine bucket 1 into three sub-buckets (e.g. around answer 5).
        g.splice_window(1, 1, &vec![(4, Some((4, 4))), (5, Some((5, 5))), (1, Some((6, 6)))]);
        g.rebuild_prefix();
        g.delta_offsets = vec![0; g.counts.len() + 1]; // reclassified (empty mirror)
        assert_eq!(g.counts, vec![10, 4, 5, 1]);
        assert_eq!(g.prefix, vec![0, 10, 14, 19, 20]);
        assert_eq!(g.fast_value(14), Some(5));
        // A delta merge adds counts in place.
        g.delta_total = 3;
        g.absorb_delta(&[vec![(0, None), (2, Some((3, 4))), (1, Some((5, 5))), (0, None)]]);
        assert_eq!(g.counts, vec![10, 6, 6, 1]);
        assert_eq!(g.delta_total, 0);
        assert_eq!(g.fast_value(14), None); // bucket 1 now spans 3..=4... rank 14 is in bucket 1
        assert_eq!(g.fast_value(16), Some(5));
    }

    #[test]
    fn removals_update_counts_and_delta() {
        let mut g = idx(&[5, 5], &[1, 2]);
        g.delta_total = 4;
        g.apply_removals(&[vec![2, 0, 1], vec![1, 5, 3]]);
        assert_eq!(g.counts, vec![2, 0]);
        assert_eq!(g.delta_total, 0);
        assert_eq!(g.prefix, vec![0, 2, 2]);
    }

    #[test]
    fn splitters_are_deduplicated_sample_quantiles() {
        let pool: Vec<u64> = (0..100).collect();
        let s = splitters_from_samples(&pool, 4);
        assert_eq!(s, vec![SepBound::le(25u64), SepBound::le(50), SepBound::le(75)]);
        assert!(splitters_from_samples(&[7u64; 50], 8).len() <= 1);
        assert!(splitters_from_samples::<u64>(&[], 8).is_empty());
        assert!(splitters_from_samples(&pool, 1).is_empty());
    }

    #[test]
    fn refined_bounds_carve_equality_classes() {
        let old = vec![SepBound::le(10u64)];
        let b = refined_bounds(&old, &[7, 10], None, None);
        assert_eq!(
            b,
            vec![SepBound::lt(7u64), SepBound::le(7), SepBound::lt(10), SepBound::le(10)]
        );
    }

    #[test]
    fn note_ingest_and_delete_keep_the_mirror_classified() {
        // Buckets: ≤10 | (10, 20] | >20.
        let mut g = idx(&[3, 3, 3], &[5, 15, 25]);
        g.bounds = vec![SepBound::le(10u64), SepBound::le(20)];
        g.note_ingest(vec![25, 10, 11, 5, 20]);
        assert_eq!(g.delta_vals, vec![5, 10, 11, 20, 25]);
        assert_eq!(g.delta_offsets, vec![0, 2, 4, 5]);
        assert_eq!(g.delta_total, 5);
        assert_eq!(g.window(0), (0, 0));
        assert_eq!(g.window(4), (0, 0)); // merged bucket 0 holds 5
        assert_eq!(g.window(5), (1, 1));
        // Deleting value classes prunes the mirror in place. The shards
        // would report one removal per deleted delta element, so the
        // engine's `apply_removals` decrements delta_total first.
        g.delta_total -= 2;
        g.note_delete(&[10, 20]);
        assert_eq!(g.delta_vals, vec![5, 11, 25]);
        assert_eq!(g.delta_offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn refine_window_bounds_mirrors_the_shard_refinement() {
        // One window over buckets 1..=2 (internal splitter lt(30)),
        // refined by answer 25: the host must land on the same splitter
        // vector the shards compute from the identical inputs.
        let mut g = idx(&[2, 2, 2, 2], &[10, 20, 30, 40]);
        g.bounds = vec![SepBound::le(10u64), SepBound::lt(30), SepBound::le(30)];
        g.refine_window_bounds(1, 2, &[25]);
        assert_eq!(
            g.bounds,
            vec![
                SepBound::le(10u64),
                SepBound::lt(25),
                SepBound::le(25),
                SepBound::lt(30),
                SepBound::le(30)
            ]
        );
        // An answer equal to an inclusive outer bound still carves its
        // exclusive twin (class {10} splits off), but never re-inserts
        // the outer bound itself.
        g.refine_window_bounds(0, 0, &[10]);
        assert_eq!(g.bounds[..2], [SepBound::lt(10u64), SepBound::le(10)]);
    }

    #[test]
    fn refine_probe_bounds_carves_once_then_skips() {
        let mut g = idx(&[4, 4], &[10, 30]);
        g.bounds = vec![SepBound::le(20u64)];
        // Probe 15 lands in bucket 0: carve its equality class.
        assert_eq!(g.refine_probe_bounds(15), Some(0));
        assert_eq!(g.bounds, vec![SepBound::lt(15u64), SepBound::le(15), SepBound::le(20)]);
        // Already carved: the deterministic skip the shards also take.
        assert_eq!(g.refine_probe_bounds(15), None);
        // A probe in the last bucket carves there.
        assert_eq!(g.refine_probe_bounds(30), Some(3));
        assert_eq!(
            g.bounds,
            vec![
                SepBound::lt(15u64),
                SepBound::le(15),
                SepBound::le(20),
                SepBound::lt(30),
                SepBound::le(30)
            ]
        );
    }

    #[test]
    fn refined_bounds_respect_the_outer_bounds() {
        // An answer equal to an outer bound must not re-insert it: the
        // shard's stored splitter vector has to stay strictly increasing.
        let b = refined_bounds(&[], &[5u64, 20], Some(SepBound::lt(5)), Some(SepBound::le(20)));
        assert_eq!(b, vec![SepBound::le(5u64), SepBound::lt(20)]);
    }
}
