//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! small randomized-property-testing harness with the API surface its test
//! suites use: the [`proptest!`] macro (with `#![proptest_config]`),
//! integer/float range strategies, tuples, [`collection::vec`],
//! [`sample::select`], [`any`], and the `prop_map` / `prop_filter`
//! combinators, plus the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case reports the generated inputs via the
//!   assertion message only;
//! * **deterministic seeding** — each test's RNG is seeded from its name, so
//!   failures reproduce exactly across runs and machines;
//! * rejection sampling (`prop_filter` / `prop_assume!`) retries the whole
//!   case, with a global cap.
//!
//! **Registry swap note.** Mirrors `proptest` 1.x: the `proptest!` macro
//! with `#![proptest_config(ProptestConfig { cases, .. })]`, `any::<T>()`,
//! range strategies, `collection::vec`, `sample::select`,
//! `prop_map`/`prop_filter`, and `prop_assert*`/`prop_assume!`. The real
//! crate is a drop-in at these call sites and adds shrinking for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Why a generated test case did not produce a pass/fail verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (filter/assume); it is retried, not failed.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

/// Runner configuration; construct with [`ProptestConfig::with_cases`].
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
    /// Cap on rejected cases per property before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Self::default() }
    }
}

/// The harness RNG (SplitMix64), seeded deterministically per test.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values. `Err` carries a rejection reason
/// (from `prop_filter`), which makes the runner retry the case.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, String>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values for which `pred` is false; the runner
    /// retries with fresh draws.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> Result<U, String> {
        Ok((self.f)(self.inner.new_value(rng)?))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, String> {
        let v = self.inner.new_value(rng)?;
        if (self.pred)(&v) {
            Ok(v)
        } else {
            Err(self.reason.clone())
        }
    }
}

macro_rules! impl_strategy_for_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, String> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                Ok(self.start + rng.below(span) as $t)
            }
        }
    )*};
}

impl_strategy_for_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> Result<$t, String> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

impl_strategy_for_int_range!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> Result<f64, String> {
        assert!(self.start < self.end, "empty strategy range");
        Ok(self.start + rng.next_f64() * (self.end - self.start))
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> Result<f64, String> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        // Map [0, 1) onto [lo, hi] with the endpoint reachable by rounding.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        Ok(lo + u * (hi - lo))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, String> {
        Ok((self.0.new_value(rng)?, self.1.new_value(rng)?))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, String> {
        Ok((self.0.new_value(rng)?, self.1.new_value(rng)?, self.2.new_value(rng)?))
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> Result<T, String> {
        Ok(T::arbitrary(rng))
    }
}

/// The full-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec()`]; build from a `Range<usize>` or an exact
    /// `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, String> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy that picks one of the given options uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> Result<T, String> {
            let i = rng.below(self.options.len() as u64) as usize;
            Ok(self.options[i].clone())
        }
    }
}

/// The glob import every test file starts with.
pub mod prelude {
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module path (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body for `config.cases` accepted
/// random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(::std::concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(
                        let $arg = match $crate::Strategy::new_value(&($strat), &mut rng) {
                            ::std::result::Result::Ok(v) => v,
                            ::std::result::Result::Err(why) => {
                                return ::std::result::Result::Err(
                                    $crate::TestCaseError::Reject(why),
                                );
                            }
                        };
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        ::std::assert!(
                            rejected <= config.max_global_rejects,
                            "proptest: too many rejected cases ({rejected}); last: {why}"
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        ::std::panic!(
                            "proptest property {} failed on case {}: {}",
                            ::std::stringify!($name), accepted, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body; failure reports the case
/// instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}", left, right, ::std::format!($($fmt)+)
        );
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// Rejects the current case unless `cond` holds; the runner retries with
/// fresh draws (does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(::std::format!(
                "assumption failed: {}",
                ::std::stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("self-test");
        for _ in 0..500 {
            let v = Strategy::new_value(&(10u64..20), &mut rng).unwrap();
            assert!((10..20).contains(&v));
            let w = Strategy::new_value(&(-5i64..5), &mut rng).unwrap();
            assert!((-5..5).contains(&w));
            let f = Strategy::new_value(&(0.0f64..1.0), &mut rng).unwrap();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_select_and_combinators() {
        let mut rng = crate::TestRng::from_name("combinators");
        let strat = prop::collection::vec(0u64..10, 2..5)
            .prop_map(|v| v.len())
            .prop_filter("never empty", |&n| n >= 2);
        for _ in 0..100 {
            let n = Strategy::new_value(&strat, &mut rng).unwrap();
            assert!((2..5).contains(&n));
        }
        let sel = prop::sample::select(vec!['a', 'b']);
        let c = Strategy::new_value(&sel, &mut rng).unwrap();
        assert!(c == 'a' || c == 'b');
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn harness_runs_properties(
            v in prop::collection::vec(0u64..100, 1..20),
            x in any::<u64>(),
        ) {
            prop_assume!(!v.is_empty());
            let max = *v.iter().max().unwrap();
            prop_assert!(max < 100, "max {} out of domain", max);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x ^ 1, x);
        }
    }

    proptest! {
        #[test]
        fn tuples_and_filters(
            pair in (0i64..50, 50i64..100),
            n in (0usize..40).prop_filter("even only", |n| n % 2 == 0),
        ) {
            prop_assert!(pair.0 < pair.1);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
