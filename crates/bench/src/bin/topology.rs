//! Testing the paper's crossbar assumption (§2.1).
//!
//! The paper models the CM-5's network as a virtual crossbar — message
//! cost independent of distance — arguing that wormhole routing makes
//! distance a minor factor. This experiment runs the selection algorithms
//! under distance-aware variants of the same machine:
//!
//! * crossbar (the paper's model);
//! * hypercube and 2D mesh with a **wormhole-scale** per-hop cost (τ/50);
//! * the same with a **store-and-forward-scale** per-hop cost (τ).
//!
//! If the paper's assumption is sound, the wormhole rows should sit within
//! a few percent of the crossbar row, while store-and-forward meshes
//! should visibly penalize the communication-heavy algorithms.
//!
//! Run: `cargo run --release -p cgselect-bench --bin topology [-- --quick]`

use cgselect_bench::chart::{markdown_table, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_core::{median_on_machine, Algorithm, Balancer, SelectionConfig};
use cgselect_runtime::{MachineModel, Topology};
use cgselect_workloads::{generate, Distribution};

fn main() {
    let quick = quick_mode();
    let n = if quick { 1 << 18 } else { 1 << 21 };
    let p = 64; // square mesh, cube-friendly

    let base = MachineModel::cm5();
    let wormhole = base.tau / 50.0;
    let safo = base.tau;
    let nets: [(&str, MachineModel); 5] = [
        ("crossbar (paper)", base),
        ("hypercube, wormhole", base.with_topology(Topology::Hypercube, wormhole)),
        ("mesh 8x8, wormhole", base.with_topology(Topology::Mesh2D, wormhole)),
        ("hypercube, store&fwd", base.with_topology(Topology::Hypercube, safo)),
        ("mesh 8x8, store&fwd", base.with_topology(Topology::Mesh2D, safo)),
    ];

    let mut rows = Vec::new();
    let mut baseline: Option<(f64, f64)> = None;
    println!("Topology study: n = {n}, p = {p}, random data\n");
    for (name, model) in nets {
        let time = |algo: Algorithm, bal: Balancer| -> f64 {
            let parts = generate(Distribution::Random, n, p, 17);
            let cfg = SelectionConfig::with_seed(18).balancer(bal);
            median_on_machine(p, model, &parts, algo, &cfg).unwrap().makespan()
        };
        let rnd = time(Algorithm::Randomized, Balancer::None);
        let fast = time(Algorithm::FastRandomized, Balancer::None);
        if baseline.is_none() {
            baseline = Some((rnd, fast));
        }
        let (b_rnd, b_fast) = baseline.unwrap();
        rows.push(vec![
            name.to_string(),
            format!("{rnd:.4}"),
            format!("{:+.1}%", 100.0 * (rnd - b_rnd) / b_rnd),
            format!("{fast:.4}"),
            format!("{:+.1}%", 100.0 * (fast - b_fast) / b_fast),
        ]);
        println!(
            "{name:>22}: randomized {rnd:.4}s ({:+.1}%) | fast {fast:.4}s ({:+.1}%)",
            100.0 * (rnd - b_rnd) / b_rnd,
            100.0 * (fast - b_fast) / b_fast
        );
    }

    let out = format!(
        "Crossbar-assumption study (n = {n}, p = {p}, random data)\n\n{}\n\
         Expected: wormhole-scale per-hop costs leave the times within a few\n\
         percent of the crossbar model (the paper's justification for the\n\
         two-level model); store-and-forward-scale hops penalize the mesh,\n\
         especially fast randomized selection, whose sample sort performs an\n\
         all-to-all across the full diameter.\n",
        markdown_table(
            &["network", "randomized (s)", "vs crossbar", "fast rand (s)", "vs crossbar"],
            &rows
        )
    );
    let dir = results_dir();
    write_text(&dir.join("topology.txt"), &out);
    println!("\ntopology -> {}/topology.txt", dir.display());
}
