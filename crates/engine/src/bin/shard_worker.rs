//! The shard worker process behind the `SocketMp` backend: connects the
//! control socket named by `argv[1]`, receives its deployment
//! configuration, and serves shard commands until told to exit (see
//! `cgselect_engine::backend::socket_mp`).

fn main() {
    std::process::exit(cgselect_engine::backend::socket_mp::worker_main());
}
