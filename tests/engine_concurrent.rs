//! Concurrency harness for the engine's async frontend: N client threads
//! submitting interleaved rank/quantile/top-k queries (and mutations)
//! through the `SubmissionQueue`, every answer oracle-checked; admission
//! control under saturation; and the micro-batching coalescing claim —
//! collective rounds per query drop as the window widens.
//!
//! Determinism notes:
//! * Static-data tests check answers against an exact sorted oracle.
//! * The mutation test confines concurrent ingests/deletes to values
//!   strictly above the base data's maximum, which leaves every rank below
//!   the base population invariant — so exact oracle checks survive
//!   arbitrary interleavings, and quantile answers are checked against the
//!   rank interval induced by the population bounds.
//! * The coalescing tests come in two flavours: a paused-prefill test whose
//!   batch boundaries are scheduling-independent, and a paced-producer test
//!   whose window sweep is given wide margins (windows 0 / 20 ms / 150 ms
//!   against a ~2 ms submission pace).

use std::time::Duration;

use cgselect::seqsel::KernelRng;
use cgselect::{
    quantile_rank, Answer, Distribution, Engine, EngineConfig, FrontendConfig, MachineModel, Query,
    SubmitError,
};

/// Generous ticket deadline: a lost wakeup or dropped ticket fails the test
/// instead of hanging the suite.
const TICKET_TIMEOUT: Duration = Duration::from_secs(60);

fn free_engine(p: usize) -> Engine<u64> {
    Engine::new(EngineConfig::new(p).model(MachineModel::free())).unwrap()
}

fn sorted(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

/// The expected exact answer for `query` over static sorted data.
fn oracle_answer(oracle: &[u64], query: &Query) -> Answer<u64> {
    let n = oracle.len() as u64;
    match *query {
        Query::Rank(k) => Answer::Value(oracle[k as usize]),
        Query::Median => Answer::Value(oracle[((n - 1) / 2) as usize]),
        Query::Quantile { q, .. } => Answer::Value(oracle[quantile_rank(q, n) as usize]),
        Query::TopK(k) => Answer::Top(oracle[..k as usize].to_vec()),
    }
}

/// A deterministic per-thread query mix over `n` resident elements.
fn query_mix(seed: u64, count: usize, n: u64) -> Vec<Query> {
    let mut rng = KernelRng::new(seed);
    (0..count)
        .map(|_| match rng.below(4) {
            0 => Query::Rank(rng.below(n)),
            1 => Query::quantile(rng.below(1000) as f64 / 999.0),
            2 => Query::Median,
            _ => Query::TopK(1 + rng.below(32.min(n))),
        })
        .collect()
}

#[test]
fn concurrent_clients_match_oracle_on_three_distributions() {
    let p = 4;
    let n = 20_000;
    let clients = 4;
    let queries_per_client = 40;
    for (di, dist) in
        [Distribution::Random, Distribution::Zipf, Distribution::OrganPipe].into_iter().enumerate()
    {
        let data: Vec<u64> =
            cgselect::generate(dist, n, p, 41 + di as u64).into_iter().flatten().collect();
        let oracle = sorted(data.clone());
        let mut engine = free_engine(p);
        engine.ingest(data).unwrap();
        let queue = engine.into_frontend(
            FrontendConfig::new().window(Duration::from_millis(2)).queue_capacity(4096),
        );

        std::thread::scope(|s| {
            for c in 0..clients {
                let queue = queue.clone();
                let oracle = &oracle;
                s.spawn(move || {
                    let queries =
                        query_mix(1000 * (di as u64 + 1) + c as u64, queries_per_client, n as u64);
                    // Fire everything, then await: maximizes interleaving
                    // across the client threads.
                    let tickets: Vec<_> = queries
                        .iter()
                        .map(|&q| (q, queue.submit(q).expect("queue sized for the test")))
                        .collect();
                    for (q, t) in tickets {
                        let got = t
                            .wait_for(TICKET_TIMEOUT)
                            .unwrap_or_else(|| panic!("ticket timed out for {q:?}"))
                            .unwrap_or_else(|e| panic!("{q:?} failed: {e}"));
                        assert_eq!(got, oracle_answer(oracle, &q), "{dist:?}: {q:?}");
                    }
                });
            }
        });

        let stats = queue.stats();
        let expected = (clients * queries_per_client) as u64;
        assert_eq!(stats.submitted, expected, "{dist:?}");
        assert_eq!(stats.queries_executed, expected, "{dist:?}");
        assert_eq!(stats.failures, 0, "{dist:?}");
        assert_eq!(stats.rejected, 0, "{dist:?}");
        assert!(stats.batches <= expected, "{dist:?}");
        assert!(stats.collective_ops > 0, "{dist:?}");
        // Hand the engine back: the session must still be healthy.
        let mut engine = queue.shutdown().expect("first shutdown claims the engine");
        let report = engine.execute(&[Query::Median]).unwrap();
        assert_eq!(report.answers[0], oracle_answer(&oracle, &Query::Median));
    }
}

#[test]
fn queries_interleaved_with_ingest_delete_stay_correct() {
    let p = 4;
    let n_base = 30_000usize;
    let burst = 400u64; // mutator in-flight bound
    let bursts = 12;
    for (di, dist) in [Distribution::Random, Distribution::FewDistinct(17)].into_iter().enumerate()
    {
        let data: Vec<u64> =
            cgselect::generate(dist, n_base, p, 97 + di as u64).into_iter().flatten().collect();
        let oracle = sorted(data.clone());
        // Mutations live strictly above the base maximum: every rank below
        // n_base is invariant under them, whatever the interleaving.
        let hot_base = oracle[n_base - 1] + 1;
        let (n_lo, n_hi) = (n_base as u64, n_base as u64 + burst);

        let mut engine = free_engine(p);
        engine.ingest(data).unwrap();
        let queue = engine.into_frontend(
            FrontendConfig::new().window(Duration::from_millis(1)).queue_capacity(4096),
        );

        std::thread::scope(|s| {
            // The mutator: ingest a burst of fresh values, await it, delete
            // exactly that burst, await it — so at most `burst` foreign
            // elements are ever resident.
            {
                let queue = queue.clone();
                s.spawn(move || {
                    for round in 0..bursts {
                        let values: Vec<u64> =
                            (0..burst).map(|i| hot_base + round * burst + i).collect();
                        let rep = queue
                            .submit_ingest(values.clone())
                            .expect("queue sized for the test")
                            .wait_for(TICKET_TIMEOUT)
                            .expect("ingest ticket timed out")
                            .expect("ingest failed");
                        assert_eq!(rep.elements, burst);
                        let rep = queue
                            .submit_delete(values)
                            .expect("queue sized for the test")
                            .wait_for(TICKET_TIMEOUT)
                            .expect("delete ticket timed out")
                            .expect("delete failed");
                        assert_eq!(rep.elements, burst, "mutator values are unique");
                    }
                });
            }
            // Query clients, concurrent with the mutator.
            for c in 0..3u64 {
                let queue = queue.clone();
                let oracle = &oracle;
                s.spawn(move || {
                    let mut rng = KernelRng::new(500 + 77 * c + di as u64);
                    for _ in 0..60 {
                        match rng.below(3) {
                            0 => {
                                // Exact: ranks below the base population
                                // are invariant under the mutator.
                                let k = rng.below(n_lo);
                                let got = queue
                                    .submit(Query::Rank(k))
                                    .expect("queue sized for the test")
                                    .wait_for(TICKET_TIMEOUT)
                                    .expect("rank ticket timed out")
                                    .expect("rank query failed");
                                assert_eq!(got, Answer::Value(oracle[k as usize]), "rank {k}");
                            }
                            1 => {
                                // Exact: the k smallest never change.
                                let k = 1 + rng.below(64);
                                let got = queue
                                    .submit(Query::TopK(k))
                                    .expect("queue sized for the test")
                                    .wait_for(TICKET_TIMEOUT)
                                    .expect("top-k ticket timed out")
                                    .expect("top-k query failed");
                                assert_eq!(got, Answer::Top(oracle[..k as usize].to_vec()));
                            }
                            _ => {
                                // Interval-checked: the population is
                                // somewhere in [n_lo, n_hi], so the answer
                                // must fall in the induced rank interval.
                                let q = rng.below(900) as f64 / 999.0;
                                let got = queue
                                    .submit(Query::quantile(q))
                                    .expect("queue sized for the test")
                                    .wait_for(TICKET_TIMEOUT)
                                    .expect("quantile ticket timed out")
                                    .expect("quantile query failed");
                                let (r_lo, r_hi) = (quantile_rank(q, n_lo), quantile_rank(q, n_hi));
                                assert!(
                                    r_hi < n_lo,
                                    "test invariant: quantile targets stay in the base prefix"
                                );
                                let Answer::Value(v) = got else {
                                    panic!("expected a value answer, got {got:?}");
                                };
                                assert!(
                                    (oracle[r_lo as usize]..=oracle[r_hi as usize]).contains(&v),
                                    "quantile {q}: {v} outside oracle[{r_lo}..={r_hi}] = \
                                     [{}, {}]",
                                    oracle[r_lo as usize],
                                    oracle[r_hi as usize]
                                );
                            }
                        }
                    }
                });
            }
        });

        let stats = queue.stats();
        assert_eq!(stats.mutations, 2 * bursts, "{dist:?}");
        assert_eq!(stats.queries_executed, 3 * 60, "{dist:?}");
        assert_eq!(stats.failures, 0, "{dist:?}");
        // All mutator values were deleted again: the engine is back to the
        // base population, bit-for-bit checkable.
        let engine = queue.shutdown().expect("first shutdown claims the engine");
        assert_eq!(engine.len(), n_base as u64, "{dist:?}");
    }
}

#[test]
fn saturation_rejects_with_typed_error_then_recovers() {
    let capacity = 8;
    let mut engine = free_engine(2);
    engine.ingest((0..1000u64).collect()).unwrap();
    // Paused start: the batcher provably pops nothing while we fill the
    // queue, making the saturation point exact.
    let queue =
        engine.into_frontend(FrontendConfig::new().queue_capacity(capacity).start_paused(true));

    let tickets: Vec<_> =
        (0..capacity as u64).map(|i| queue.submit(Query::Rank(i)).unwrap()).collect();
    assert_eq!(queue.queue_depth(), capacity);

    // The queue is full: admission control must reject, not block or panic.
    match queue.submit(Query::Median) {
        Err(SubmitError::Saturated { capacity: c }) => assert_eq!(c, capacity),
        other => panic!("expected Saturated, got {other:?}"),
    }
    match queue.submit_ingest(vec![1, 2, 3]) {
        Err(SubmitError::Saturated { .. }) => {}
        other => panic!("expected Saturated for mutations too, got {other:?}"),
    }
    assert_eq!(queue.stats().rejected, 2);

    // Drain: everything accepted before saturation is answered correctly.
    queue.resume();
    for (i, t) in tickets.into_iter().enumerate() {
        let got = t
            .wait_for(TICKET_TIMEOUT)
            .expect("drained ticket timed out")
            .expect("drained query failed");
        assert_eq!(got, Answer::Value(i as u64));
    }

    // Recovered: new submissions are accepted and answered again.
    let t = queue.submit(Query::Median).expect("queue must recover after draining");
    assert_eq!(t.wait_for(TICKET_TIMEOUT).unwrap(), Ok(Answer::Value(499)));
    let stats = queue.stats();
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.submitted, capacity as u64 + 1);
    assert_eq!(stats.rejected, 2);
}

#[test]
fn prefilled_queue_coalesces_into_size_capped_batches() {
    // Scheduling-independent coalescing proof: 32 queries staged while
    // paused must form exactly ceil(32/8) = 4 batches of occupancy 8.
    let max_batch = 8;
    let submissions = 32u64;
    let mut engine = free_engine(4);
    engine.ingest((0..10_000u64).collect()).unwrap();
    let queue = engine.into_frontend(
        FrontendConfig::new()
            .queue_capacity(64)
            .max_batch(max_batch)
            .window(Duration::from_millis(5))
            .start_paused(true),
    );
    let tickets: Vec<_> =
        (0..submissions).map(|i| queue.submit(Query::Rank(i * 100)).unwrap()).collect();
    queue.resume();
    for (i, t) in tickets.into_iter().enumerate() {
        assert_eq!(
            t.wait_for(TICKET_TIMEOUT).expect("ticket timed out"),
            Ok(Answer::Value(i as u64 * 100))
        );
    }
    let stats = queue.stats();
    assert_eq!(stats.batches, submissions / max_batch as u64);
    assert_eq!(stats.max_occupancy, max_batch);
    assert_eq!(stats.mean_occupancy(), max_batch as f64);
    assert_eq!(stats.queries_executed, submissions);
}

#[test]
fn rounds_per_query_drop_monotonically_as_the_window_widens() {
    // The acceptance claim: with a paced stream of single-query
    // submissions, widening the micro-batch window strictly increases
    // coalescing and strictly decreases collective rounds per query
    // (measured via CommStats.collective_ops accumulated per batch).
    // Windows are separated by ~an order of magnitude against a ~2 ms
    // submission pace, so the ordering survives scheduler noise.
    let windows = [Duration::ZERO, Duration::from_millis(20), Duration::from_millis(150)];
    let submissions = 56u64;
    let pace = Duration::from_millis(2);

    let mut rounds_per_query = Vec::new();
    let mut occupancy = Vec::new();
    for window in windows {
        let mut engine = free_engine(4);
        engine.ingest((0..20_000u64).collect()).unwrap();
        let queue = engine.into_frontend(FrontendConfig::new().window(window).queue_capacity(4096));
        let tickets: Vec<_> = (0..submissions)
            .map(|i| {
                let t = queue.submit(Query::Rank((i * 311) % 20_000)).unwrap();
                std::thread::sleep(pace);
                t
            })
            .collect();
        for t in tickets {
            t.wait_for(TICKET_TIMEOUT).expect("ticket timed out").expect("query failed");
        }
        let stats = queue.stats();
        assert_eq!(stats.queries_executed, submissions);
        rounds_per_query.push(stats.rounds_per_query());
        occupancy.push(stats.mean_occupancy());
    }

    println!(
        "windows {:?} -> rounds/query {rounds_per_query:?}, occupancy {occupancy:?}",
        windows.map(|w| w.as_millis())
    );
    for i in 1..windows.len() {
        assert!(
            occupancy[i] > occupancy[i - 1],
            "occupancy must rise with the window: {occupancy:?} for windows {windows:?}"
        );
        assert!(
            rounds_per_query[i] < rounds_per_query[i - 1],
            "collective rounds per query must drop as the window widens: \
             {rounds_per_query:?} for windows {windows:?}"
        );
    }
}
