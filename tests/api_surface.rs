//! Public-API surface snapshot: future drift must be deliberate.
//!
//! A lightweight, offline stand-in for `cargo public-api`: every `pub`
//! item declaration in the facade (`src/lib.rs`) and the engine crate
//! (`crates/engine/src/**.rs`, the surface this repository evolves
//! fastest) is extracted and compared against the golden file
//! `results/public_api.txt`. CI runs this test, so adding, removing or
//! renaming a public item fails the build until the snapshot is
//! regenerated — run with `UPDATE_API_SNAPSHOT=1` to accept the new
//! surface and commit the diff alongside the code change.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

const GOLDEN: &str = "results/public_api.txt";

/// Files whose public declarations constitute the tracked surface.
fn tracked_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![root.join("src/lib.rs")];
    let engine = root.join("crates/engine/src");
    let mut stack = vec![engine];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
            .map(|e| e.expect("dir entry").path())
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

/// Extracts the declaration lines of public items from one source file:
/// the first line of anything starting with `pub fn|struct|enum|...`,
/// outside `#[cfg(test)]` modules, trimmed. Public *fields* and enum
/// variants ride with their item (a change inside an item body does not
/// show here — the snapshot tracks the item list, not full signatures of
/// every field).
fn public_items(path: &Path) -> Vec<String> {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let mut items = Vec::new();
    let mut depth_at_test_mod: Option<usize> = None;
    let mut depth: usize = 0;
    let mut pending_test_attr = false;
    for raw in src.lines() {
        let line = raw.trim();
        // Depth tracking must not count braces in comment prose (the
        // common way an unbalanced brace sneaks into source text), or the
        // cfg(test) exclusion would silently desynchronize. String
        // literals are rustfmt'd onto code lines whose braces pair up, so
        // comment stripping covers the realistic drift cases.
        let code = line.split("//").next().unwrap_or(line);
        // Track `#[cfg(test)] mod …` regions so test-only helpers stay out.
        if line.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
        } else if pending_test_attr && line.starts_with("mod ") {
            depth_at_test_mod = Some(depth);
            pending_test_attr = false;
        } else if !line.starts_with("#[") && !line.is_empty() {
            pending_test_attr = false;
        }
        let inside_test = depth_at_test_mod.is_some();
        if !inside_test {
            let decl = line.strip_prefix("pub ").map(|rest| {
                rest.starts_with("fn ")
                    || rest.starts_with("struct ")
                    || rest.starts_with("enum ")
                    || rest.starts_with("trait ")
                    || rest.starts_with("type ")
                    || rest.starts_with("const ")
                    || rest.starts_with("mod ")
                    || rest.starts_with("use ")
            });
            if decl == Some(true) {
                let first = line
                    .split(" where")
                    .next()
                    .unwrap_or(line)
                    .trim_end_matches([' ', '{', '('])
                    .trim_end();
                items.push(first.to_string());
            }
        }
        depth += code.matches('{').count();
        depth = depth.saturating_sub(code.matches('}').count());
        if let Some(d) = depth_at_test_mod {
            if depth <= d {
                depth_at_test_mod = None;
            }
        }
    }
    items
}

fn snapshot(root: &Path) -> String {
    let mut out = String::from(
        "# Public API surface (facade + engine crate). Regenerate with\n\
         # UPDATE_API_SNAPSHOT=1 cargo test --test api_surface\n",
    );
    for file in tracked_files(root) {
        let rel = file.strip_prefix(root).expect("tracked file under root");
        let items = public_items(&file);
        if items.is_empty() {
            continue;
        }
        let _ = writeln!(out, "\n[{}]", rel.display());
        for item in items {
            let _ = writeln!(out, "{item}");
        }
    }
    out
}

#[test]
fn public_api_surface_matches_the_golden_snapshot() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let current = snapshot(&root);
    let golden_path = root.join(GOLDEN);
    if std::env::var_os("UPDATE_API_SNAPSHOT").is_some() {
        std::fs::write(&golden_path, &current).expect("write golden snapshot");
        eprintln!("api_surface: regenerated {GOLDEN}");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("{GOLDEN} missing ({e}); regenerate with UPDATE_API_SNAPSHOT=1")
    });
    if golden != current {
        let diff: Vec<String> = {
            let old: std::collections::BTreeSet<&str> = golden.lines().collect();
            let new: std::collections::BTreeSet<&str> = current.lines().collect();
            old.symmetric_difference(&new)
                .map(|l| if new.contains(l) { format!("+ {l}") } else { format!("- {l}") })
                .collect()
        };
        panic!(
            "public API surface drifted from {GOLDEN} — if deliberate, regenerate with \
             UPDATE_API_SNAPSHOT=1 cargo test --test api_surface and commit the diff:\n{}",
            diff.join("\n")
        );
    }
}
