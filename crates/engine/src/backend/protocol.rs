//! The host↔worker command/reply protocol shared by the message-passing
//! backends ([`super::ChannelMp`] and [`super::SocketMp`]).
//!
//! # Framing
//!
//! Every command and reply travels as one frame:
//!
//! ```text
//! [ version: u8 = 1 ][ seq: u64 LE ][ body ... ]
//! ```
//!
//! * `version` pins the protocol revision; a mismatch is a typed
//!   [`RunError::WireProtocol`] error, never a misparse.
//! * `seq` is the **batch sequence number**: the host stamps every command
//!   round with a fresh value and workers echo it in their reply. The
//!   collect loop discards replies whose `seq` doesn't match the current
//!   round, so a slow-but-alive worker that was declared unresponsive can
//!   never deliver its stale reply into a later round's collect.
//! * `body` starts with a one-byte command tag (host → worker) or reply
//!   status (worker → host), followed by fields in the [`super::wire`]
//!   codec.
//!
//! On a byte stream (the socket backend) each frame is additionally length-
//! prefixed with a `u32` LE. The in-process channel backend sends one frame
//! per channel message, so no length prefix is needed there.
//!
//! # Reply collection
//!
//! [`collect_frame`] applies **one shared deadline** across all workers of a
//! round: the worst-case host stall for a round is `reply_timeout`, not
//! `p × reply_timeout`, no matter how many shards straggle.

use std::time::Instant;

use cgselect_balance::Balancer;
use cgselect_core::SelectionConfig;
use cgselect_runtime::{Key, Proc, RunError, WireMsgError};
use crossbeam::channel::Receiver;

use super::ops::{self, Shard};
use super::wire::{Reader, WireResult, Writer};
use super::{BackendError, BatchPlan, PhaseOps, ShardBatchOutcome, ShardDeletion};

/// Protocol revision carried in every frame header. Revision 2 added the
/// splitter bounds to the BUILD_INDEX reply and the probe-refinement stats
/// to the EXECUTE reply.
pub(crate) const WIRE_VERSION: u8 = 2;

/// Size of the frame header (`version` byte + `seq` u64).
pub(crate) const FRAME_HEADER_BYTES: usize = 9;

// Command frame tags (host -> worker), shared by both message-passing
// backends. 0–15 are the data-plane verbs; 16+ are the socket backend's
// control-plane verbs (membership, migration, liveness).
pub(crate) const CMD_EXIT: u8 = 0;
pub(crate) const CMD_INGEST: u8 = 1;
pub(crate) const CMD_DELETE: u8 = 2;
pub(crate) const CMD_REBALANCE: u8 = 3;
pub(crate) const CMD_BUILD_INDEX: u8 = 4;
pub(crate) const CMD_MERGE_DELTA: u8 = 5;
pub(crate) const CMD_EXECUTE: u8 = 6;
pub(crate) const CMD_EXPORT_SKETCH: u8 = 7;
pub(crate) const CMD_FABRIC_BIND: u8 = 16;
pub(crate) const CMD_FABRIC_CONNECT: u8 = 17;
pub(crate) const CMD_EXPORT: u8 = 18;
pub(crate) const CMD_IMPORT: u8 = 19;
pub(crate) const CMD_PING: u8 = 20;
pub(crate) const CMD_INIT: u8 = 21;

// Reply frame status bytes (worker -> host).
pub(crate) const REPLY_OK: u8 = 0;
pub(crate) const REPLY_PANICKED: u8 = 1;
pub(crate) const REPLY_PENDING_MESSAGES: u8 = 2;
pub(crate) const REPLY_UNBALANCED_PHASES: u8 = 3;
pub(crate) const REPLY_WIRE_ERROR: u8 = 4;

/// Wraps a body in the versioned, sequence-numbered frame header.
pub(crate) fn encode_framed(seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    out.push(WIRE_VERSION);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Splits a frame into its sequence number and body, verifying the version
/// byte.
pub(crate) fn split_framed(frame: &[u8]) -> Result<(u64, &[u8]), WireMsgError> {
    if frame.len() < FRAME_HEADER_BYTES {
        return Err(WireMsgError::new(format!(
            "frame of {} bytes is shorter than the {FRAME_HEADER_BYTES}-byte header",
            frame.len()
        )));
    }
    if frame[0] != WIRE_VERSION {
        return Err(WireMsgError::new(format!(
            "wire version mismatch: got {}, this build speaks {WIRE_VERSION}",
            frame[0]
        )));
    }
    let seq = u64::from_le_bytes(frame[1..9].try_into().expect("length checked"));
    Ok((seq, &frame[FRAME_HEADER_BYTES..]))
}

/// Collects one reply body for `rank` from its reply port, under a deadline
/// **shared across the whole round**: the caller computes `deadline` once
/// and passes it to every rank's collect, so stragglers overlap instead of
/// serializing their timeouts.
///
/// Frames whose sequence number doesn't match `seq` are stale replies from
/// an earlier round (a worker that was declared unresponsive but was merely
/// slow); they are discarded without ending the wait.
pub(crate) fn collect_frame(
    rx: &Receiver<Vec<u8>>,
    deadline: Instant,
    seq: u64,
    rank: usize,
) -> Result<Vec<u8>, BackendError> {
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(frame) => {
                let (frame_seq, body) =
                    split_framed(&frame).map_err(|e| wire_protocol_error(rank, e))?;
                if frame_seq == seq {
                    return Ok(body.to_vec());
                }
                // Stale (or future — impossible for a correct worker) reply:
                // discard and keep waiting within the same deadline.
            }
            // Timeout or disconnect: the reply was lost or the worker died
            // without reporting.
            Err(_) => return Err(BackendError::WorkerUnresponsive { rank }),
        }
    }
}

/// Converts a decode failure on `rank`'s frame into the typed backend error.
pub(crate) fn wire_protocol_error(rank: usize, e: WireMsgError) -> BackendError {
    BackendError::Runtime(RunError::WireProtocol { rank, detail: e.detail })
}

/// Root-cause triage over all failed ranks of one round trip: a failure a
/// worker *reported* (panic, protocol violation) beats a silent rank —
/// silence is usually fallout of someone else's death racing the reply
/// deadline, and must never mask the reported root cause no matter which
/// rank the host happened to poll first. Within the reported failures,
/// non-secondary beats timeout/disconnect fallout; a silent rank beats
/// pure secondary fallout (a dropped reply can itself be the root cause).
pub(crate) fn triage(failures: Vec<BackendError>) -> BackendError {
    debug_assert!(!failures.is_empty());
    let reported = failures
        .iter()
        .find(|e| !e.is_secondary() && !matches!(e, BackendError::WorkerUnresponsive { .. }));
    let unresponsive =
        failures.iter().find(|e| matches!(e, BackendError::WorkerUnresponsive { .. }));
    reported.or(unresponsive).or_else(|| failures.first()).cloned().expect("failures is non-empty")
}

/// Splits a reply body into its ok-payload or typed error.
pub(crate) fn decode_reply_status(rank: usize, body: Vec<u8>) -> Result<Vec<u8>, BackendError> {
    let typed = |r: WireResult<BackendError>| match r {
        Ok(e) => e,
        Err(e) => wire_protocol_error(rank, e),
    };
    match body.first().copied() {
        Some(REPLY_OK) => Ok(body),
        Some(REPLY_PANICKED) => Err(typed((|| {
            let mut r = Reader::new(&body);
            let message = r.str()?;
            r.finish()?;
            Ok(BackendError::WorkerPanicked { rank, message })
        })())),
        Some(REPLY_PENDING_MESSAGES) => Err(typed((|| {
            let mut r = Reader::new(&body);
            let detail = r.str()?;
            r.finish()?;
            Ok(BackendError::Runtime(RunError::PendingMessages { rank, detail }))
        })())),
        Some(REPLY_UNBALANCED_PHASES) => {
            Err(BackendError::Runtime(RunError::UnbalancedPhases { rank }))
        }
        Some(REPLY_WIRE_ERROR) => Err(typed((|| {
            let mut r = Reader::new(&body);
            let detail = r.str()?;
            r.finish()?;
            Ok(BackendError::Runtime(RunError::WireProtocol { rank, detail }))
        })())),
        other => Err(BackendError::WorkerPanicked {
            rank,
            message: format!("malformed reply frame (status {other:?})"),
        }),
    }
}

// ---------------------------------------------------------------------
// Per-verb body codecs (shared by both backends' ExecBackend impls and
// worker loops).
// ---------------------------------------------------------------------

pub(crate) fn encode_ingest<T: Key>(chunk: &[T]) -> Vec<u8> {
    let mut w = Writer::new(CMD_INGEST);
    w.keys(chunk);
    w.into_frame()
}

pub(crate) fn encode_delete<T: Key>(values: &[T]) -> Vec<u8> {
    let mut w = Writer::new(CMD_DELETE);
    w.keys(values);
    w.into_frame()
}

pub(crate) fn encode_build_index(buckets: usize) -> Vec<u8> {
    let mut w = Writer::new(CMD_BUILD_INDEX);
    w.usize(buckets);
    w.into_frame()
}

pub(crate) fn encode_export_sketch() -> Vec<u8> {
    Writer::new(CMD_EXPORT_SKETCH).into_frame()
}

pub(crate) fn decode_sketch_reply<T: Key>(
    rank: usize,
    body: &[u8],
) -> Result<crate::sketch::EpsSketch<T>, BackendError> {
    (|| {
        let mut r = Reader::new(body);
        let sketch = r.eps_sketch::<T>()?;
        r.finish()?;
        Ok(sketch)
    })()
    .map_err(|e| wire_protocol_error(rank, e))
}

pub(crate) fn decode_u64_reply(rank: usize, body: &[u8]) -> Result<u64, BackendError> {
    (|| {
        let mut r = Reader::new(body);
        let v = r.u64()?;
        r.finish()?;
        Ok(v)
    })()
    .map_err(|e| wire_protocol_error(rank, e))
}

pub(crate) fn decode_deletion_reply(
    rank: usize,
    body: &[u8],
) -> Result<ShardDeletion, BackendError> {
    (|| {
        let mut r = Reader::new(body);
        let remaining = r.u64()?;
        let removed = r.u64s()?;
        r.finish()?;
        Ok(ShardDeletion { remaining, removed })
    })()
    .map_err(|e| wire_protocol_error(rank, e))
}

pub(crate) fn decode_bucket_stats_reply<T: Key>(
    rank: usize,
    body: &[u8],
) -> Result<crate::index::BucketStats<T>, BackendError> {
    (|| {
        let mut r = Reader::new(body);
        let stats = r.bucket_stats::<T>()?;
        r.finish()?;
        Ok(stats)
    })()
    .map_err(|e| wire_protocol_error(rank, e))
}

/// BUILD_INDEX replies carry the agreed splitter bounds alongside the
/// shard's bucket stats so the host can mirror the shared splitter array
/// without re-deriving it.
#[allow(clippy::type_complexity)]
pub(crate) fn decode_index_build_reply<T: Key>(
    rank: usize,
    body: &[u8],
) -> Result<(Vec<cgselect_seqsel::SepBound<T>>, crate::index::BucketStats<T>), BackendError> {
    (|| {
        let mut r = Reader::new(body);
        let bounds = r.sep_bounds::<T>()?;
        let stats = r.bucket_stats::<T>()?;
        r.finish()?;
        Ok((bounds, stats))
    })()
    .map_err(|e| wire_protocol_error(rank, e))
}

/// Serializes one batch plan. Only the per-batch pivot seed crosses the
/// wire; workers rebuild the full `SelectionConfig` from their deployment
/// copy. The coalesced rank set rides as runs and the value probes as
/// `(key, inclusive)` pairs.
pub(crate) fn encode_execute<T: Key>(plan: &BatchPlan<T>) -> Vec<u8> {
    let mut w = Writer::new(CMD_EXECUTE);
    w.u64(plan.selection.seed);
    w.bool(plan.use_index);
    w.u64(plan.full_total);
    w.u64(plan.delta_total);
    w.rank_set(&plan.exact_ranks);
    w.probes(&plan.value_probes);
    w.usize(plan.groups.len());
    for g in plan.groups.iter() {
        w.group(g);
    }
    w.trace_context(&plan.trace);
    w.into_frame()
}

pub(crate) fn decode_execute<T: Key>(
    r: &mut Reader<'_>,
    base: &SelectionConfig,
) -> WireResult<BatchPlan<T>> {
    let mut selection = base.clone();
    selection.seed = r.u64()?;
    let use_index = r.bool()?;
    let full_total = r.u64()?;
    let delta_total = r.u64()?;
    let exact_ranks = r.rank_set()?;
    let value_probes = r.probes::<T>()?;
    let group_count = r.usize()?;
    let groups = (0..group_count).map(|_| r.group()).collect::<WireResult<_>>()?;
    let trace = r.trace_context()?;
    Ok(BatchPlan {
        groups: std::sync::Arc::new(groups),
        exact_ranks: std::sync::Arc::new(exact_ranks),
        value_probes: std::sync::Arc::new(value_probes),
        selection,
        use_index,
        full_total,
        delta_total,
        trace,
    })
}

pub(crate) fn encode_outcome<T: Key>(w: &mut Writer, o: &ShardBatchOutcome<T>) {
    w.usize(o.exact.len());
    for v in &o.exact {
        w.opt_key(*v);
    }
    w.usize(o.refines.len());
    for stats in &o.refines {
        w.bucket_stats(stats);
    }
    w.usize(o.probe_refines.len());
    for stats in &o.probe_refines {
        w.bucket_stats(stats);
    }
    w.u64s(&o.probe_counts);
    w.u64(o.phase_ops.probes);
    w.u64(o.phase_ops.exact);
    w.u64(o.phase_ops.sketch);
    w.comm_stats(&o.comm);
    w.f64(o.elapsed);
    w.phase_spans(&o.spans);
}

pub(crate) fn decode_outcome<T: Key>(
    rank: usize,
    body: &[u8],
) -> Result<ShardBatchOutcome<T>, BackendError> {
    (|| {
        let mut r = Reader::new(body);
        let exact_len = r.usize()?;
        let exact = (0..exact_len).map(|_| r.opt_key::<T>()).collect::<WireResult<_>>()?;
        let refines_len = r.usize()?;
        let refines = (0..refines_len).map(|_| r.bucket_stats::<T>()).collect::<WireResult<_>>()?;
        let probe_refines_len = r.usize()?;
        let probe_refines =
            (0..probe_refines_len).map(|_| r.bucket_stats::<T>()).collect::<WireResult<_>>()?;
        let probe_counts = r.u64s()?;
        let phase_ops = PhaseOps { probes: r.u64()?, exact: r.u64()?, sketch: r.u64()? };
        let comm = r.comm_stats()?;
        let elapsed = r.f64()?;
        let spans = r.phase_spans()?;
        r.finish()?;
        Ok(ShardBatchOutcome {
            exact,
            refines,
            probe_refines,
            probe_counts,
            phase_ops,
            comm,
            elapsed,
            spans,
        })
    })()
    .map_err(|e| wire_protocol_error(rank, e))
}

/// Deployment configuration a worker needs to serve the shared command set
/// — what reaches a remote shard process as argv/config, never per-command.
#[derive(Clone)]
pub(crate) struct WorkerConfig {
    pub rank: usize,
    pub sketch_capacity: usize,
    pub selection: SelectionConfig,
    pub balancer: Balancer,
}

/// Dispatches one data-plane command body against the worker's shard and
/// returns the reply body. Malformed commands surface as
/// [`RunError::WireProtocol`]; every served program ends with the
/// [`Proc::finish_program`] protocol check.
pub(crate) fn run_command<T: Key>(
    proc: &mut Proc,
    shard: &mut Shard<T>,
    cfg: &WorkerConfig,
    body: &[u8],
    panic_now: bool,
) -> Result<Vec<u8>, RunError> {
    let wire = |e: WireMsgError| RunError::WireProtocol { rank: cfg.rank, detail: e.detail };
    let mut r = Reader::new(body);
    let mut w = Writer::new(REPLY_OK);
    match body.first().copied() {
        Some(CMD_INGEST) => {
            let items = r.keys::<T>().map_err(wire)?;
            r.finish().map_err(wire)?;
            w.u64(ops::ingest_shard(proc, shard, items));
        }
        Some(CMD_DELETE) => {
            let values = r.keys::<T>().map_err(wire)?;
            r.finish().map_err(wire)?;
            let d = ops::delete_shard(proc, shard, &values);
            w.u64(d.remaining);
            w.u64s(&d.removed);
        }
        Some(CMD_REBALANCE) => {
            r.finish().map_err(wire)?;
            w.u64(ops::rebalance_shard(proc, shard, cfg.balancer));
        }
        Some(CMD_BUILD_INDEX) => {
            let buckets = r.usize().map_err(wire)?;
            r.finish().map_err(wire)?;
            let (bounds, stats) = ops::build_index_shard(proc, shard, buckets);
            w.sep_bounds(&bounds);
            w.bucket_stats(&stats);
        }
        Some(CMD_MERGE_DELTA) => {
            r.finish().map_err(wire)?;
            w.bucket_stats(&ops::merge_delta_shard(proc, shard));
        }
        Some(CMD_EXPORT_SKETCH) => {
            // Pure local read: the shard ships its ε-sketch bytes and no
            // collective fires — the host merges exports by itself.
            r.finish().map_err(wire)?;
            w.eps_sketch(&shard.sketch);
        }
        Some(CMD_EXECUTE) => {
            let plan = decode_execute::<T>(&mut r, &cfg.selection).map_err(wire)?;
            r.finish().map_err(wire)?;
            if panic_now {
                // Mid-batch: enter the batch's opening barrier (so the
                // peers are committed to the collective pass), then die.
                proc.barrier();
                panic!("injected fault: shard worker {} panicked mid-batch", cfg.rank);
            }
            // Message-passing workers stay single-threaded: scan fan-out is
            // a LocalSpmd-only knob (counts are thread-count-independent,
            // so conformance across backends is unaffected).
            let o = ops::execute_shard(proc, shard, &plan, 1);
            encode_outcome(&mut w, &o);
        }
        other => {
            return Err(RunError::WireProtocol {
                rank: cfg.rank,
                detail: format!("unknown command tag {other:?}"),
            })
        }
    }
    proc.finish_program()?;
    Ok(w.into_frame())
}

/// Encodes a non-panic failure (`finish_program` violation or wire decode
/// error) as a reply body.
pub(crate) fn encode_protocol_error(err: &RunError) -> Vec<u8> {
    match err {
        RunError::PendingMessages { detail, .. } => {
            let mut w = Writer::new(REPLY_PENDING_MESSAGES);
            w.str(detail);
            w.into_frame()
        }
        RunError::UnbalancedPhases { .. } => Writer::new(REPLY_UNBALANCED_PHASES).into_frame(),
        RunError::WireProtocol { detail, .. } => {
            let mut w = Writer::new(REPLY_WIRE_ERROR);
            w.str(detail);
            w.into_frame()
        }
        // run_command only produces the variants above.
        other => {
            let mut w = Writer::new(REPLY_PANICKED);
            w.str(&format!("unexpected protocol error: {other}"));
            w.into_frame()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    #[test]
    fn frame_header_round_trips() {
        let frame = encode_framed(0xDEAD_BEEF, b"payload");
        let (seq, body) = split_framed(&frame).unwrap();
        assert_eq!(seq, 0xDEAD_BEEF);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let mut frame = encode_framed(1, b"x");
        frame[0] = 99;
        let err = split_framed(&frame).unwrap_err();
        assert!(err.detail.contains("version mismatch"), "{err}");
    }

    #[test]
    fn short_frames_are_a_typed_error() {
        assert!(split_framed(&[WIRE_VERSION, 0, 0]).is_err());
        assert!(split_framed(&[]).is_err());
    }

    #[test]
    fn collect_discards_stale_sequence_numbers() {
        let (tx, rx) = unbounded::<Vec<u8>>();
        // A late reply from batch 6 sits queued when the host collects
        // batch 7: it must be discarded, and the genuine reply returned.
        tx.send(encode_framed(6, &[REPLY_OK, 0xAA])).unwrap();
        tx.send(encode_framed(7, &[REPLY_OK, 0xBB])).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let body = collect_frame(&rx, deadline, 7, 0).unwrap();
        assert_eq!(body, vec![REPLY_OK, 0xBB]);
        // The stale frame is gone, not deferred.
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn collect_times_out_as_unresponsive() {
        let (_tx, rx) = unbounded::<Vec<u8>>();
        let deadline = Instant::now() + Duration::from_millis(20);
        let err = collect_frame(&rx, deadline, 1, 3).unwrap_err();
        assert_eq!(err, BackendError::WorkerUnresponsive { rank: 3 });
    }

    #[test]
    fn collect_rejects_corrupt_headers() {
        let (tx, rx) = unbounded::<Vec<u8>>();
        tx.send(vec![0xFF; 12]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(1);
        let err = collect_frame(&rx, deadline, 1, 2).unwrap_err();
        assert!(
            matches!(err, BackendError::Runtime(RunError::WireProtocol { rank: 2, .. })),
            "{err:?}"
        );
    }

    fn panicked(rank: usize, message: &str) -> BackendError {
        BackendError::WorkerPanicked { rank, message: message.into() }
    }

    #[test]
    fn triage_prefers_reported_root_cause_over_silence() {
        // The regression shape: a lower rank's reply misses the deadline
        // (silence) while a higher rank's genuine panic sits queued — the
        // panic must win regardless of the host's rank-order polling.
        let err = triage(vec![
            BackendError::WorkerUnresponsive { rank: 0 },
            panicked(1, "proc 1 timed out after 30s waiting for (src=2, tag=0x1)"),
            panicked(2, "injected fault: shard worker 2 panicked mid-batch"),
        ]);
        assert_eq!(err, panicked(2, "injected fault: shard worker 2 panicked mid-batch"));
    }

    #[test]
    fn triage_prefers_silence_over_pure_secondary_fallout() {
        // Only timeout fallout + a silent rank: the dropped reply is the
        // best root-cause candidate available.
        let err = triage(vec![
            panicked(0, "proc 0 timed out after 1s waiting for (src=2, tag=0x1)"),
            BackendError::WorkerUnresponsive { rank: 2 },
        ]);
        assert_eq!(err, BackendError::WorkerUnresponsive { rank: 2 });
    }

    #[test]
    fn triage_falls_back_to_secondary_fallout() {
        let secondary = panicked(1, "all senders disconnected");
        assert_eq!(triage(vec![secondary.clone()]), secondary);
    }

    #[test]
    fn triage_prefers_protocol_errors_over_silence() {
        let protocol =
            BackendError::Runtime(RunError::PendingMessages { rank: 1, detail: "x".into() });
        let err = triage(vec![BackendError::WorkerUnresponsive { rank: 0 }, protocol.clone()]);
        assert_eq!(err, protocol);
    }

    mod stale_reply_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Late replies never cross batch boundaries: whatever mix of
            /// stale (earlier-sequence) and future frames sits queued ahead
            /// of the current round's reply, the collect loop hands back
            /// exactly the frame stamped with the current sequence number.
            #[test]
            fn late_replies_never_cross_batch_boundaries(
                current_seq in 1u64..50,
                offsets in prop::collection::vec((0u64..60, any::<u8>()), 0..12),
            ) {
                let (tx, rx) = unbounded::<Vec<u8>>();
                for (seq, marker) in &offsets {
                    if *seq != current_seq {
                        tx.send(encode_framed(*seq, &[REPLY_OK, *marker])).unwrap();
                    }
                }
                tx.send(encode_framed(current_seq, &[REPLY_OK, 0x42])).unwrap();
                let deadline = Instant::now() + Duration::from_secs(5);
                let body = collect_frame(&rx, deadline, current_seq, 0).unwrap();
                prop_assert_eq!(body, vec![REPLY_OK, 0x42]);
            }

            /// If only mismatched-sequence frames ever arrive, the worker is
            /// reported unresponsive — a stale reply must not masquerade as
            /// this round's answer.
            #[test]
            fn stale_only_queues_time_out(
                current_seq in 1u64..50,
                stale in prop::collection::vec(0u64..60, 1..8),
            ) {
                let (tx, rx) = unbounded::<Vec<u8>>();
                for seq in &stale {
                    if *seq != current_seq {
                        tx.send(encode_framed(*seq, &[REPLY_OK])).unwrap();
                    }
                }
                drop(tx);
                let deadline = Instant::now() + Duration::from_millis(50);
                let err = collect_frame(&rx, deadline, current_seq, 7).unwrap_err();
                prop_assert_eq!(err, BackendError::WorkerUnresponsive { rank: 7 });
            }
        }
    }

    #[test]
    fn truncated_reply_bodies_become_typed_errors() {
        // A half-written panic report from a dying worker must not abort
        // the host: the status decode itself is fallible.
        let mut w = Writer::new(REPLY_PANICKED);
        w.str("the full panic message");
        let mut body = w.into_frame();
        body.truncate(body.len() - 5);
        let err = decode_reply_status(4, body).unwrap_err();
        assert!(
            matches!(err, BackendError::Runtime(RunError::WireProtocol { rank: 4, .. })),
            "{err:?}"
        );
    }
}
