//! Machine-sensitivity study: which of the paper's conclusions are
//! properties of the *algorithms*, and which are properties of the CM-5?
//!
//! The paper argues its algorithms are architecture-independent (§2.1);
//! this experiment re-evaluates the headline comparisons under three cost
//! models — the CM-5 preset, a modern cluster (µs-scale latency, GB/s
//! links, ~1 ns ops), and a bandwidth-starved hypothetical — and reports
//! which orderings persist.
//!
//! Run: `cargo run --release -p cgselect-bench --bin whatif [-- --quick]`

use cgselect_bench::chart::{markdown_table, write_text};
use cgselect_bench::{quick_mode, results_dir};
use cgselect_core::{median_on_machine, Algorithm, Balancer, SelectionConfig};
use cgselect_runtime::MachineModel;
use cgselect_workloads::{generate, Distribution};

fn main() {
    let quick = quick_mode();
    let n = if quick { 1 << 18 } else { 1 << 21 };
    let p = 32;

    let models: [(&str, MachineModel); 3] = [
        ("CM-5 (1996)", MachineModel::cm5()),
        ("modern cluster", MachineModel::modern()),
        // High latency relative to bandwidth AND compute: a WAN-ish setup.
        ("high-latency", MachineModel::new(1e-3, 1e-9, 1e-9)),
    ];

    let mut rows = Vec::new();
    println!("What-if study: n = {n}, p = {p}, random + sorted inputs\n");
    for (name, model) in models {
        let time = |algo: Algorithm, bal: Balancer, dist: Distribution| -> f64 {
            let parts = generate(dist, n, p, 13);
            let cfg = SelectionConfig::with_seed(14).balancer(bal);
            median_on_machine(p, model, &parts, algo, &cfg).unwrap().makespan()
        };
        let mom = time(Algorithm::MedianOfMedians, Balancer::GlobalExchange, Distribution::Random);
        let rnd = time(Algorithm::Randomized, Balancer::None, Distribution::Random);
        let fast = time(Algorithm::FastRandomized, Balancer::None, Distribution::Random);
        let rnd_srt = time(Algorithm::Randomized, Balancer::None, Distribution::Sorted);
        let fast_srt_lb = time(Algorithm::FastRandomized, Balancer::ModOmlb, Distribution::Sorted);
        let fast_srt = time(Algorithm::FastRandomized, Balancer::None, Distribution::Sorted);

        rows.push(vec![
            name.to_string(),
            format!("{:.1}x", mom / rnd),
            format!("{:.2}x", fast / rnd),
            if fast_srt_lb < fast_srt { "helps".into() } else { "hurts".into() },
            format!("{:.2}x", rnd_srt / rnd),
        ]);
        println!(
            "{name:>16}: MoM/rand {:.1}x | fast/rand {:.2}x | LB on fast+sorted: {} | rand sorted/random {:.2}x",
            mom / rnd,
            fast / rnd,
            if fast_srt_lb < fast_srt { "helps" } else { "hurts" },
            rnd_srt / rnd
        );
    }

    let out = format!(
        "Machine-sensitivity of the paper's conclusions (n = {n}, p = {p})\n\n{}\n\
         Reading:\n\
         * the deterministic-vs-randomized gap (column 2) is a *kernel* property\n\
           and survives every machine;\n\
         * the fast-vs-plain randomized ordering (column 3) and the value of load\n\
           balancing on sorted data (column 4) depend on the τ/μ/t_op balance —\n\
           they are 1996-machine conclusions that a modern deployment should\n\
           re-measure (and now can, by swapping the MachineModel);\n\
         * the sorted-data penalty of randomized selection (column 5) shrinks as\n\
           compute gets cheap relative to latency.\n",
        markdown_table(
            &["machine", "MoM/rand", "fast/rand", "LB on fast+sorted", "rand sorted/random"],
            &rows
        )
    );
    let dir = results_dir();
    write_text(&dir.join("whatif.txt"), &out);
    println!("\nwhatif -> {}/whatif.txt", dir.display());
}
