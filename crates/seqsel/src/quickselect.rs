//! Randomized quickselect (the sequential kernel of the paper's Algorithm 3).

use crate::ops::OpCount;
use crate::partition::{insertion_sort, partition3};
use crate::rng::KernelRng;

/// Below this window size the kernel sorts directly (the paper's "once the
/// number of elements falls below a constant, solve directly by sorting").
const SMALL: usize = 24;

/// Returns the element of 0-based rank `k` in `data` in expected `O(n)` time.
///
/// Uses a uniformly random pivot and a three-way partition, so heavy
/// duplicate keys cannot degrade it to quadratic behaviour. The slice is
/// permuted. Comparisons and moves are accumulated into `ops`.
///
/// ```
/// use cgselect_seqsel::{quickselect, KernelRng, OpCount};
///
/// let mut data = vec![9, 2, 7, 4, 1, 8];
/// let mut ops = OpCount::new();
/// let median = quickselect(&mut data, 2, &mut KernelRng::new(1), &mut ops);
/// assert_eq!(median, 4);
/// ```
///
/// # Panics
/// Panics if `k >= data.len()`.
pub fn quickselect<T: Copy + Ord>(
    data: &mut [T],
    k: usize,
    rng: &mut KernelRng,
    ops: &mut OpCount,
) -> T {
    assert!(k < data.len(), "rank {k} out of range for {} elements", data.len());
    let mut lo = 0usize;
    let mut hi = data.len();
    loop {
        if hi - lo <= SMALL {
            insertion_sort(&mut data[lo..hi], ops);
            return data[k];
        }
        let pivot = data[lo + rng.below((hi - lo) as u64) as usize];
        let (a, b) = partition3(&mut data[lo..hi], pivot, pivot, ops);
        let (a, b) = (lo + a, lo + b);
        if k < a {
            hi = a;
        } else if k < b {
            return pivot;
        } else {
            lo = b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(mut v: Vec<i64>, k: usize) -> i64 {
        v.sort_unstable();
        v[k]
    }

    #[test]
    fn selects_every_rank_small() {
        let base = vec![9i64, -3, 7, 7, 0, 42, 5, -3, 8, 1, 2];
        for k in 0..base.len() {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            let mut rng = KernelRng::new(k as u64);
            assert_eq!(
                quickselect(&mut v, k, &mut rng, &mut ops),
                oracle(base.clone(), k),
                "k={k}"
            );
        }
    }

    #[test]
    fn selects_on_large_random_input() {
        let mut rng = KernelRng::new(11);
        let base: Vec<i64> = (0..50_000).map(|_| rng.next_u64() as i64).collect();
        for k in [0, 1, 24_999, 49_998, 49_999] {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            assert_eq!(quickselect(&mut v, k, &mut rng, &mut ops), oracle(base.clone(), k));
        }
    }

    #[test]
    fn all_duplicates_terminate_quickly() {
        let mut v = vec![7u64; 100_000];
        let mut ops = OpCount::new();
        let mut rng = KernelRng::new(1);
        assert_eq!(quickselect(&mut v, 50_000, &mut rng, &mut ops), 7);
        // One 3-way partition pass should settle it: ~2 comparisons per
        // element, far below the quadratic blowup a 2-way partition gives.
        assert!(ops.cmps < 400_000, "cmps = {}", ops.cmps);
    }

    #[test]
    fn sorted_and_reversed_inputs() {
        let asc: Vec<i64> = (0..10_000).collect();
        let desc: Vec<i64> = (0..10_000).rev().collect();
        for base in [asc, desc] {
            let mut v = base.clone();
            let mut ops = OpCount::new();
            let mut rng = KernelRng::new(5);
            assert_eq!(quickselect(&mut v, 1234, &mut rng, &mut ops), 1234);
        }
    }

    #[test]
    fn expected_linear_cost_on_random_data() {
        // Expected comparisons for quickselect ~ c*n with c around 3-4;
        // allow generous headroom but reject superlinear behaviour.
        let mut rng = KernelRng::new(99);
        let n = 1 << 17;
        let mut v: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut ops = OpCount::new();
        let _ = quickselect(&mut v, (n / 2) as usize, &mut rng, &mut ops);
        assert!(ops.cmps < 12 * n, "quickselect did {} cmps on n={n}", ops.cmps);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let mut v = vec![1, 2, 3];
        let mut ops = OpCount::new();
        let mut rng = KernelRng::new(0);
        let _ = quickselect(&mut v, 3, &mut rng, &mut ops);
    }
}
