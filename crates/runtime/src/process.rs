//! The per-processor handle: point-to-point messaging and the virtual clock.

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::envelope::{Envelope, Payload, USER_TAG_LIMIT};
use crate::fabric::{FabricLink, FabricPoll, FabricRecvError, WireEnvelope};
use crate::machine::RunError;
use crate::model::MachineModel;
use crate::stats::{CommStats, PhaseTimer};
use crate::trace::{Trace, TraceEvent, TraceEventKind};
use crate::wiremsg::{decode_frame, WireMsg};

/// The transport a [`Proc`] sends and receives through: in-process channels
/// (the [`crate::Machine::procs`] crossbar) or an out-of-process
/// [`FabricLink`]. The virtual-clock accounting above this seam is identical
/// for both, which is what keeps virtual time transport-invariant.
enum Link {
    Local {
        peers: Vec<Sender<Envelope>>,
        rx: Receiver<Envelope>,
    },
    Fabric {
        link: Box<dyn FabricLink>,
        /// Peers whose stream has ended (their `PeerDown` marker was seen).
        down: Vec<bool>,
    },
}

/// Handle to one virtual processor inside a [`crate::Machine::run`] region.
///
/// A `Proc` provides:
/// * identity ([`rank`](Proc::rank), [`nprocs`](Proc::nprocs));
/// * typed point-to-point messaging ([`send`](Proc::send),
///   [`recv`](Proc::recv) and the `_vec` variants) matched by
///   `(source, tag)` with out-of-order stashing;
/// * the deterministic virtual clock ([`now`](Proc::now),
///   [`charge_ops`](Proc::charge_ops));
/// * the paper's collectives (see the methods defined in the
///   `collectives` module);
/// * counters and phase timers for the experiment harness.
pub struct Proc {
    rank: usize,
    p: usize,
    model: MachineModel,
    now: f64,
    link: Link,
    stash: Vec<Envelope>,
    pub(crate) epoch: u64,
    timeout: Duration,
    stats: CommStats,
    ops: u64,
    phases: PhaseTimer,
    tracing: bool,
    trace: Trace,
}

impl Proc {
    pub(crate) fn new(
        rank: usize,
        p: usize,
        model: MachineModel,
        peers: Vec<Sender<Envelope>>,
        rx: Receiver<Envelope>,
        timeout: Duration,
    ) -> Self {
        Self::with_link(rank, p, model, Link::Local { peers, rx }, timeout)
    }

    pub(crate) fn new_fabric(
        rank: usize,
        p: usize,
        model: MachineModel,
        link: Box<dyn FabricLink>,
        timeout: Duration,
    ) -> Self {
        Self::with_link(rank, p, model, Link::Fabric { link, down: vec![false; p] }, timeout)
    }

    fn with_link(
        rank: usize,
        p: usize,
        model: MachineModel,
        link: Link,
        timeout: Duration,
    ) -> Self {
        Proc {
            rank,
            p,
            model,
            now: 0.0,
            link,
            stash: Vec::new(),
            epoch: 0,
            timeout,
            stats: CommStats::default(),
            ops: 0,
            phases: PhaseTimer::new(),
            tracing: false,
            trace: Trace { rank, events: Vec::new() },
        }
    }

    /// Turns on event tracing for this processor (see [`crate::trace`]).
    pub fn trace_enable(&mut self) {
        self.tracing = true;
    }

    /// Takes the accumulated trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::replace(&mut self.trace, Trace { rank: self.rank, events: Vec::new() })
    }

    #[inline]
    fn trace_event(&mut self, kind: TraceEventKind) {
        if self.tracing {
            self.trace.events.push(TraceEvent { at: self.now, kind });
        }
    }

    /// This processor's id in `0..nprocs()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of virtual processors `p`.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.p
    }

    /// The machine cost model this run executes under.
    #[inline]
    pub fn model(&self) -> MachineModel {
        self.model
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Elementary operations charged so far via [`charge_ops`](Proc::charge_ops).
    #[inline]
    pub fn ops_charged(&self) -> u64 {
        self.ops
    }

    /// Communication counters so far.
    #[inline]
    pub fn comm_stats(&self) -> CommStats {
        self.stats
    }

    /// Bumps the collective-operation counter (called by the collectives
    /// module once per epoch-tag allocation).
    #[inline]
    pub(crate) fn note_collective_op(&mut self) {
        self.stats.collective_ops += 1;
        self.trace_event(TraceEventKind::Collective);
    }

    /// Advances the virtual clock by `n` elementary operations
    /// (`n × t_op` seconds) and bumps the operation counter.
    ///
    /// The sequential kernels report *measured* comparison + move counts
    /// here, so deterministic-vs-randomized constant factors in the
    /// reproduced figures are real, not assumed.
    #[inline]
    pub fn charge_ops(&mut self, n: u64) {
        self.ops += n;
        self.now += self.model.compute_cost(n);
        self.trace_event(TraceEventKind::Compute { ops: n });
    }

    /// Advances the virtual clock by `seconds` directly (rarely needed;
    /// prefer [`charge_ops`](Proc::charge_ops)).
    pub fn charge_seconds(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "charge_seconds requires a finite non-negative duration, got {seconds}"
        );
        self.now += seconds;
    }

    // ------------------------------------------------------------------
    // Point-to-point messaging
    // ------------------------------------------------------------------

    /// Sends a single value to `dst` under `tag`.
    ///
    /// The modeled message size is `size_of::<T>()` — computed *before* any
    /// wire encoding, so virtual time is identical on every transport. User
    /// tags must be below `2^32`; higher tags are reserved for the runtime's
    /// collectives.
    pub fn send<T: WireMsg>(&mut self, dst: usize, tag: u64, value: T) {
        assert!(tag < USER_TAG_LIMIT, "user tags must be < 2^32, got {tag:#x}");
        self.send_msg(dst, tag, std::mem::size_of::<T>() as u64, value);
    }

    /// Sends a vector of values to `dst` under `tag`; the modeled size is
    /// `len × size_of::<T>()`.
    pub fn send_vec<T: WireMsg>(&mut self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(tag < USER_TAG_LIMIT, "user tags must be < 2^32, got {tag:#x}");
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        self.send_msg(dst, tag, bytes, data);
    }

    /// Receives the value sent by `src` under `tag`, blocking until it
    /// arrives (subject to the machine's receive timeout).
    ///
    /// # Panics
    /// Panics if the payload type differs from `T`, or on timeout (which
    /// almost always indicates mismatched SPMD communication).
    pub fn recv<T: WireMsg>(&mut self, src: usize, tag: u64) -> T {
        assert!(tag < USER_TAG_LIMIT, "user tags must be < 2^32, got {tag:#x}");
        self.recv_raw(src, tag)
    }

    /// Receives a vector sent with [`send_vec`](Proc::send_vec).
    pub fn recv_vec<T: WireMsg>(&mut self, src: usize, tag: u64) -> Vec<T> {
        self.recv::<Vec<T>>(src, tag)
    }

    // Internal (collective) variants: no user-tag validation.

    pub(crate) fn isend<T: WireMsg>(&mut self, dst: usize, tag: u64, value: T) {
        self.send_msg(dst, tag, std::mem::size_of::<T>() as u64, value);
    }

    pub(crate) fn isend_sized<T: WireMsg>(&mut self, dst: usize, tag: u64, bytes: u64, value: T) {
        self.send_msg(dst, tag, bytes, value);
    }

    pub(crate) fn irecv<T: WireMsg>(&mut self, src: usize, tag: u64) -> T {
        self.recv_raw(src, tag)
    }

    fn send_msg<T: WireMsg>(&mut self, dst: usize, tag: u64, bytes: u64, value: T) {
        assert!(dst < self.p, "proc {} attempted to send to {} but p = {}", self.rank, dst, self.p);
        let sent_at = self.now;
        self.now += self.model.send_cost(bytes);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes;
        self.trace_event(TraceEventKind::Send { to: dst, tag, bytes });
        let rank = self.rank;
        match &mut self.link {
            Link::Local { peers, .. } => {
                let env = Envelope {
                    src: rank,
                    tag,
                    sent_at,
                    bytes,
                    payload: Payload::Local(Box::new(value)),
                };
                peers[dst]
                    .send(env)
                    .unwrap_or_else(|_| panic!("proc {rank} -> {dst}: receiver hung up"));
            }
            Link::Fabric { link, .. } => {
                let mut payload = Vec::new();
                value.wire_encode(&mut payload);
                let env = WireEnvelope { src: rank, tag, sent_at, bytes, payload };
                link.deliver(dst, env)
                    .unwrap_or_else(|e| panic!("proc {rank} -> {dst}: receiver hung up ({e})"));
            }
        }
    }

    fn recv_raw<T: WireMsg>(&mut self, src: usize, tag: u64) -> T {
        let env = self.recv_envelope(src, tag);
        let arrival = env.sent_at
            + self.model.send_cost(env.bytes)
            + self.model.route_cost(env.src, self.rank, self.p);
        self.now = self.now.max(arrival) + self.model.recv_cost(env.bytes);
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.bytes;
        self.trace_event(TraceEventKind::Recv { from: src, tag, bytes: env.bytes });
        match env.payload {
            Payload::Local(payload) => match payload.downcast::<T>() {
                Ok(v) => *v,
                Err(_) => panic!(
                    "proc {} received (src={src}, tag={tag:#x}) with unexpected payload type; \
                     expected {}",
                    self.rank,
                    std::any::type_name::<T>()
                ),
            },
            Payload::Wire(bytes) => decode_frame::<T>(&bytes).unwrap_or_else(|e| {
                panic!(
                    "proc {} received (src={src}, tag={tag:#x}) with unexpected payload type; \
                     expected {} but decoding failed: {e}",
                    self.rank,
                    std::any::type_name::<T>()
                )
            }),
        }
    }

    fn recv_envelope(&mut self, src: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.stash.iter().position(|e| e.src == src && e.tag == tag) {
            return self.stash.swap_remove(pos);
        }
        let rank = self.rank;
        let timeout = self.timeout;
        match &mut self.link {
            Link::Local { rx, .. } => loop {
                match rx.recv_timeout(timeout) {
                    Ok(e) if e.src == src && e.tag == tag => return e,
                    Ok(e) => self.stash.push(e),
                    Err(RecvTimeoutError::Timeout) => {
                        panic_recv_timeout(rank, src, tag, timeout, self.now, &self.stash)
                    }
                    Err(RecvTimeoutError::Disconnected) => panic_recv_disconnected(rank, src, tag),
                }
            },
            Link::Fabric { link, down } => loop {
                // A dead peer can never satisfy this receive (per-peer FIFO:
                // its last envelopes were surfaced before the Down marker).
                if down[src] {
                    panic_recv_disconnected(rank, src, tag);
                }
                match link.poll(timeout) {
                    Ok(FabricPoll::Message(w)) => {
                        let e = Envelope {
                            src: w.src,
                            tag: w.tag,
                            sent_at: w.sent_at,
                            bytes: w.bytes,
                            payload: Payload::Wire(w.payload),
                        };
                        if e.src == src && e.tag == tag {
                            return e;
                        }
                        self.stash.push(e);
                    }
                    Ok(FabricPoll::PeerDown(peer)) => down[peer] = true,
                    Err(FabricRecvError::Timeout) => {
                        panic_recv_timeout(rank, src, tag, timeout, self.now, &self.stash)
                    }
                    Err(FabricRecvError::Closed) => panic_recv_disconnected(rank, src, tag),
                }
            },
        }
    }

    /// Runs the end-of-program protocol every execution backend must apply
    /// after each SPMD program: a final barrier, then a check that no
    /// unconsumed messages remain and that all phase timers are closed.
    ///
    /// [`crate::Machine::run`] and the [`crate::Session`] worker loop call
    /// this internally; external backends that own their worker threads
    /// (obtained via [`crate::Machine::procs`]) must call it themselves at
    /// the end of every program so protocol bugs become hard errors instead
    /// of silently corrupting the next program — and so communication
    /// counters advance identically no matter which backend ran the program.
    pub fn finish_program(&mut self) -> Result<(), RunError> {
        self.barrier();
        if !self.no_pending_messages() {
            return Err(RunError::PendingMessages {
                rank: self.rank,
                detail: self.pending_summary(),
            });
        }
        if !self.phases_balanced() {
            return Err(RunError::UnbalancedPhases { rank: self.rank });
        }
        Ok(())
    }

    /// True if no unconsumed messages remain (stash and channel empty).
    /// Used by the machine's end-of-run protocol check.
    pub(crate) fn no_pending_messages(&self) -> bool {
        self.stash.is_empty()
            && match &self.link {
                Link::Local { rx, .. } => rx.is_empty(),
                Link::Fabric { link, .. } => link.pending() == 0,
            }
    }

    pub(crate) fn pending_summary(&mut self) -> String {
        let mut parts: Vec<String> = self
            .stash
            .iter()
            .map(|e| format!("stashed (src={}, tag={:#x})", e.src, e.tag))
            .collect();
        match &mut self.link {
            Link::Local { rx, .. } => {
                while let Ok(e) = rx.try_recv() {
                    parts.push(format!("queued (src={}, tag={:#x})", e.src, e.tag));
                }
            }
            Link::Fabric { link, .. } => {
                for (src, tag) in link.drain_pending() {
                    parts.push(format!("queued (src={src}, tag={tag:#x})"));
                }
            }
        }
        parts.join(", ")
    }

    // ------------------------------------------------------------------
    // Phase timing
    // ------------------------------------------------------------------

    /// Opens a named phase at the current virtual time. Phases may nest;
    /// accumulated times are inclusive.
    pub fn phase_begin(&mut self, label: &'static str) {
        let now = self.now;
        self.phases.begin(label, now);
        self.trace_event(TraceEventKind::PhaseBegin(label));
    }

    /// Closes the innermost phase, which must be `label`.
    pub fn phase_end(&mut self, label: &'static str) {
        let now = self.now;
        self.phases.end(label, now);
        self.trace_event(TraceEventKind::PhaseEnd(label));
    }

    /// Accumulated virtual seconds spent in `label` so far.
    pub fn phase_time(&self, label: &str) -> f64 {
        self.phases.get(label)
    }

    /// All phase totals recorded so far.
    pub fn phase_times(&self) -> &[(&'static str, f64)] {
        self.phases.all()
    }

    pub(crate) fn phases_balanced(&self) -> bool {
        self.phases.balanced()
    }
}

fn panic_recv_timeout(
    rank: usize,
    src: usize,
    tag: u64,
    timeout: Duration,
    now: f64,
    stash: &[Envelope],
) -> ! {
    let stashed: Vec<String> =
        stash.iter().map(|e| format!("(src={}, tag={:#x})", e.src, e.tag)).collect();
    panic!(
        "proc {rank} timed out after {timeout:?} waiting for (src={src}, tag={tag:#x}); \
         virtual time {now:.6}s; stashed messages: [{}] — this usually means \
         mismatched SPMD communication (a peer never sent, or sent under a \
         different tag)",
        stashed.join(", ")
    );
}

fn panic_recv_disconnected(rank: usize, src: usize, tag: u64) -> ! {
    panic!(
        "proc {rank} waiting for (src={src}, tag={tag:#x}) but all senders \
         disconnected (a peer likely panicked)"
    );
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("rank", &self.rank)
            .field("p", &self.p)
            .field("now", &self.now)
            .field("ops", &self.ops)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}
