//! Public entry points: in-SPMD selection and whole-machine convenience.

use cgselect_runtime::{
    Key, Machine, MachineModel, Proc, RunError, PHASE_FINISH, PHASE_LOAD_BALANCE, PHASE_SORT,
};
use cgselect_seqsel::median_rank;

use crate::{
    bucket, fast_randomized, median_of_medians, randomized, Algorithm, MachineSelection,
    SelectionConfig, SelectionOutcome,
};

/// Selects the element of 0-based global rank `k` from the distributed
/// multiset whose local part on this processor is `data`.
///
/// Must be called collectively (SPMD) by every processor of the machine
/// with the same `k`, `algorithm` and `cfg`. Returns the selected element
/// (identical on every processor) together with this processor's
/// instrumentation.
///
/// # Panics
/// Panics if the distributed set is empty or `k` is out of range (the
/// check is collective, so every processor fails identically), or if the
/// configuration is invalid.
pub fn parallel_select<T: Key>(
    proc: &mut Proc,
    data: Vec<T>,
    k: u64,
    algorithm: Algorithm,
    cfg: &SelectionConfig,
) -> SelectionOutcome<T> {
    cfg.validate();
    proc.barrier(); // synchronize clocks so total_seconds is a makespan
    let n0 = proc.combine(data.len() as u64, |a, b| a + b);
    assert!(n0 > 0, "parallel_select on an empty distributed set");
    assert!(k < n0, "rank {k} out of range for {n0} elements");

    let t0 = proc.now();
    let ops0 = proc.ops_charged();
    let comm0 = proc.comm_stats();
    let lb0 = proc.phase_time(PHASE_LOAD_BALANCE);
    let sort0 = proc.phase_time(PHASE_SORT);
    let fin0 = proc.phase_time(PHASE_FINISH);

    let res = match algorithm {
        Algorithm::MedianOfMedians => median_of_medians::run(proc, data, k, n0, cfg),
        Algorithm::BucketBased => bucket::run(proc, data, k, n0, cfg),
        Algorithm::Randomized => randomized::run(proc, data, k, n0, cfg),
        Algorithm::FastRandomized => fast_randomized::run(proc, data, k, n0, cfg),
    };

    SelectionOutcome {
        value: res.value,
        iterations: res.iterations,
        unsuccessful_iterations: res.unsuccessful,
        total_seconds: proc.now() - t0,
        lb_seconds: proc.phase_time(PHASE_LOAD_BALANCE) - lb0,
        sort_seconds: proc.phase_time(PHASE_SORT) - sort0,
        finish_seconds: proc.phase_time(PHASE_FINISH) - fin0,
        comm: proc.comm_stats().since(&comm0),
        ops: proc.ops_charged() - ops0,
        balance: res.balance,
        survivors: res.survivors,
    }
}

/// Selects the median (the paper's definition: 1-based rank ⌈N/2⌉).
pub fn parallel_median<T: Key>(
    proc: &mut Proc,
    data: Vec<T>,
    algorithm: Algorithm,
    cfg: &SelectionConfig,
) -> SelectionOutcome<T> {
    let n = proc.combine(data.len() as u64, |a, b| a + b);
    assert!(n > 0, "median of an empty distributed set");
    parallel_select(proc, data, median_rank(n as usize) as u64, algorithm, cfg)
}

/// Spins up a whole machine, distributes `parts` (one vector per
/// processor), runs one parallel selection, and returns the value plus
/// per-processor instrumentation. This is the entry point used by the
/// examples and the experiment harness.
///
/// # Panics
/// Panics if `parts.len() != p`.
pub fn select_on_machine<T: Key>(
    p: usize,
    model: MachineModel,
    parts: &[Vec<T>],
    k: u64,
    algorithm: Algorithm,
    cfg: &SelectionConfig,
) -> Result<MachineSelection<T>, RunError> {
    assert_eq!(parts.len(), p, "need exactly one data vector per processor");
    let outcomes = Machine::with_model(p, model)
        .run(|proc| parallel_select(proc, parts[proc.rank()].clone(), k, algorithm, cfg))?;
    let value = outcomes[0].value;
    debug_assert!(
        outcomes.iter().all(|o| o.value == value),
        "processors disagree on the selected value"
    );
    Ok(MachineSelection { value, per_proc: outcomes })
}

/// Like [`select_on_machine`] but for the median.
pub fn median_on_machine<T: Key>(
    p: usize,
    model: MachineModel,
    parts: &[Vec<T>],
    algorithm: Algorithm,
    cfg: &SelectionConfig,
) -> Result<MachineSelection<T>, RunError> {
    let n: usize = parts.iter().map(Vec::len).sum();
    assert!(n > 0, "median of an empty distributed set");
    select_on_machine(p, model, parts, median_rank(n) as u64, algorithm, cfg)
}
