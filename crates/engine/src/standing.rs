//! Standing queries: long-lived subscriptions that re-evaluate a [`Request`]
//! whenever the engine's resident data moves, streaming stamped [`Outcome`]s
//! to a [`StandingHandle`].
//!
//! A standing query is registered once with [`crate::Engine::subscribe`] and a
//! [`RefreshPolicy`] that controls *when* the answer is recomputed:
//!
//! * [`RefreshPolicy::EveryBatch`] — refresh whenever the mutation version has
//!   advanced since the last delivered update (every ingest/delete).
//! * [`RefreshPolicy::OnDelta`] — refresh once the number of mutated elements
//!   since the last update reaches the given fraction of the resident
//!   population. Coarser than `EveryBatch`; a dashboard that tolerates 1%
//!   staleness uses `OnDelta(0.01)`.
//! * [`RefreshPolicy::Deadline`] — refresh at least every `ms` milliseconds of
//!   wall time, even if nothing changed. The only wall-clock-driven policy;
//!   the other two are deterministic functions of the mutation history.
//!
//! Refreshes ride the engine's ordinary batch pipeline: due subscriptions are
//! appended to the next [`crate::Engine::run`] batch (or flushed explicitly
//! with [`crate::Engine::refresh_standing`]), so they share splitter probes,
//! collective rounds, and index refinement with foreground queries. Because
//! the global index rebases its bucket histograms over the pending delta run,
//! most refreshes after small ingests re-serve from the host-side histogram
//! at **zero collective operations** — the subscription only pays
//! communication when its candidate window actually moved.
//!
//! Every update carries a gap-free, monotonically increasing sequence number
//! (starting at 0) and the [`crate::Freshness`] stamp of the batch that
//! produced it. Dropping the handle (receiver) auto-unsubscribes on the next
//! delivery attempt.

use std::time::Instant;

use cgselect_runtime::Key;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::request::{Outcome, Request};

/// Opaque identity of a registered standing query.
///
/// Returned by [`crate::Engine::subscribe`] (via [`StandingHandle::id`]) and
/// consumed by [`crate::Engine::unsubscribe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// When a standing query is re-evaluated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RefreshPolicy {
    /// Refresh whenever the engine's mutation version advanced since the last
    /// delivered update. Every ingest or delete triggers a refresh.
    EveryBatch,
    /// Refresh once the elements mutated since the last update reach this
    /// fraction of the resident population (`0.01` = 1% churn).
    OnDelta(f64),
    /// Refresh at least every `ms` milliseconds of wall time, whether or not
    /// the data moved. Also refreshes immediately when invalidated by a
    /// membership change.
    Deadline(u64),
}

/// One update streamed to a [`StandingHandle`].
#[derive(Clone, Debug)]
pub struct StandingUpdate<T> {
    /// Gap-free sequence number, starting at 0 for the first update.
    pub seq: u64,
    /// The freshly computed outcome, freshness-stamped like any batch answer.
    pub outcome: Outcome<T>,
}

/// Receiving end of a standing query: a typed stream of [`StandingUpdate`]s.
///
/// Dropping the handle unsubscribes implicitly — the engine removes the
/// subscription the next time it tries to deliver to the closed channel.
pub struct StandingHandle<T: Key> {
    id: SubscriptionId,
    rx: Receiver<StandingUpdate<T>>,
}

impl<T: Key> std::fmt::Debug for StandingHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandingHandle").field("id", &self.id).finish_non_exhaustive()
    }
}

impl<T: Key> StandingHandle<T> {
    /// The subscription's identity, for [`crate::Engine::unsubscribe`].
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Block until the next update arrives, or `None` once the engine side
    /// has dropped the subscription (unsubscribe or engine shutdown).
    pub fn recv(&self) -> Option<StandingUpdate<T>> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll: `Ok(Some(_))` if an update is queued, `Ok(None)` if
    /// the stream is empty but live, `Err(())` if the engine side is gone.
    #[allow(clippy::result_unit_err)]
    pub fn try_recv(&self) -> Result<Option<StandingUpdate<T>>, ()> {
        match self.rx.try_recv() {
            Ok(u) => Ok(Some(u)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(()),
        }
    }

    /// Block up to `timeout` for the next update.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<StandingUpdate<T>> {
        match self.rx.recv_timeout(timeout) {
            Ok(u) => Some(u),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drain every update currently queued without blocking.
    pub fn drain(&self) -> Vec<StandingUpdate<T>> {
        let mut out = Vec::new();
        while let Ok(u) = self.rx.try_recv() {
            out.push(u);
        }
        out
    }
}

/// Engine-side record of one subscription.
struct Subscription<T: Key> {
    id: SubscriptionId,
    request: Request<T>,
    policy: RefreshPolicy,
    tx: Sender<StandingUpdate<T>>,
    /// Next sequence number to assign (== updates delivered so far).
    seq: u64,
    /// Mutation version reflected by the last delivered update.
    last_version: Option<u64>,
    /// `Engine::mutated` at the last delivered update.
    last_mutated: u64,
    /// Wall-clock instant of the last delivered update (Deadline policy).
    last_refresh: Option<Instant>,
    /// Set by membership changes (migrate/join/retire/recover): the next
    /// refresh must fully re-resolve regardless of policy.
    invalidated: bool,
}

impl<T: Key> Subscription<T> {
    fn is_due(&self, version: u64, mutated: u64, total: u64) -> bool {
        if self.invalidated {
            return true;
        }
        let last_version = match self.last_version {
            // Never refreshed: due as soon as there is anything to answer.
            None => return true,
            Some(v) => v,
        };
        match self.policy {
            RefreshPolicy::EveryBatch => version != last_version,
            RefreshPolicy::OnDelta(frac) => {
                let delta = mutated.saturating_sub(self.last_mutated);
                delta > 0 && (delta as f64) >= frac * (total.max(1) as f64)
            }
            RefreshPolicy::Deadline(ms) => match self.last_refresh {
                None => true,
                Some(t) => t.elapsed().as_millis() as u64 >= ms,
            },
        }
    }
}

/// The engine's registry of live subscriptions.
pub(crate) struct StandingRegistry<T: Key> {
    subs: Vec<Subscription<T>>,
    next_id: u64,
}

impl<T: Key> Default for StandingRegistry<T> {
    fn default() -> Self {
        StandingRegistry { subs: Vec::new(), next_id: 0 }
    }
}

impl<T: Key> StandingRegistry<T> {
    pub(crate) fn subscribe(
        &mut self,
        request: Request<T>,
        policy: RefreshPolicy,
    ) -> StandingHandle<T> {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        let (tx, rx) = unbounded();
        self.subs.push(Subscription {
            id,
            request,
            policy,
            tx,
            seq: 0,
            last_version: None,
            last_mutated: 0,
            last_refresh: None,
            invalidated: false,
        });
        StandingHandle { id, rx }
    }

    pub(crate) fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|s| s.id != id);
        self.subs.len() != before
    }

    pub(crate) fn len(&self) -> usize {
        self.subs.len()
    }

    /// Membership changed (shard migrated, worker joined/retired, recovery):
    /// every cached answer window is suspect; force full re-resolution.
    pub(crate) fn invalidate_all(&mut self) {
        for s in &mut self.subs {
            s.invalidated = true;
        }
    }

    /// Subscriptions due for a refresh under the current mutation state,
    /// in registration order. Pure: does not mark anything refreshed.
    pub(crate) fn due_requests(
        &self,
        version: u64,
        mutated: u64,
        total: u64,
    ) -> Vec<(SubscriptionId, Request<T>)> {
        self.subs
            .iter()
            .filter(|s| s.is_due(version, mutated, total))
            .map(|s| (s.id, s.request.clone()))
            .collect()
    }

    /// True if any subscription would refresh right now. Cheap guard so idle
    /// pollers can skip running an empty batch.
    #[cfg(test)]
    pub(crate) fn any_due(&self, version: u64, mutated: u64, total: u64) -> bool {
        self.subs.iter().any(|s| s.is_due(version, mutated, total))
    }

    /// Deliver one update to subscription `id`, stamping the next sequence
    /// number and recording the refresh point. Returns `false` (and removes
    /// the subscription) if the receiver was dropped.
    pub(crate) fn deliver(
        &mut self,
        id: SubscriptionId,
        outcome: Outcome<T>,
        version: u64,
        mutated: u64,
    ) -> bool {
        let Some(pos) = self.subs.iter().position(|s| s.id == id) else {
            return false;
        };
        let sub = &mut self.subs[pos];
        let update = StandingUpdate { seq: sub.seq, outcome };
        if sub.tx.send(update).is_err() {
            // Handle dropped: auto-unsubscribe.
            self.subs.remove(pos);
            return false;
        }
        sub.seq += 1;
        sub.last_version = Some(version);
        sub.last_mutated = mutated;
        sub.last_refresh = Some(Instant::now());
        sub.invalidated = false;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, Response, Served};

    fn dummy_outcome() -> Outcome<u64> {
        Outcome {
            response: Response::Element(7),
            served: Served::Index,
            cost: crate::request::CostAttribution { collective_ops: 0.0 },
            freshness: crate::request::Freshness { version: 1, elements: 1 },
        }
    }

    #[test]
    fn every_batch_due_only_on_version_change() {
        let mut reg: StandingRegistry<u64> = StandingRegistry::default();
        let h = reg.subscribe(Request::median(), RefreshPolicy::EveryBatch);
        // Never refreshed: due immediately.
        assert!(reg.any_due(0, 0, 10));
        assert!(reg.deliver(h.id(), dummy_outcome(), 3, 5));
        assert!(!reg.any_due(3, 5, 10), "same version: not due");
        assert!(reg.any_due(4, 6, 10), "version moved: due");
        let got = h.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 0);
    }

    #[test]
    fn on_delta_needs_fractional_churn() {
        let mut reg: StandingRegistry<u64> = StandingRegistry::default();
        let h = reg.subscribe(Request::median(), RefreshPolicy::OnDelta(0.10));
        assert!(reg.deliver(h.id(), dummy_outcome(), 1, 0));
        // 5 mutated out of 100 resident: below 10%.
        assert!(!reg.any_due(2, 5, 100));
        // 10 mutated out of 100: at threshold.
        assert!(reg.any_due(3, 10, 100));
    }

    #[test]
    fn sequence_numbers_are_gap_free() {
        let mut reg: StandingRegistry<u64> = StandingRegistry::default();
        let h = reg.subscribe(Request::median(), RefreshPolicy::EveryBatch);
        for v in 1..=5 {
            assert!(reg.deliver(h.id(), dummy_outcome(), v, v));
        }
        let seqs: Vec<u64> = h.drain().into_iter().map(|u| u.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dropped_handle_auto_unsubscribes() {
        let mut reg: StandingRegistry<u64> = StandingRegistry::default();
        let h = reg.subscribe(Request::median(), RefreshPolicy::EveryBatch);
        let id = h.id();
        drop(h);
        assert_eq!(reg.len(), 1);
        assert!(!reg.deliver(id, dummy_outcome(), 1, 1));
        assert_eq!(reg.len(), 0, "closed channel removes the subscription");
    }

    #[test]
    fn invalidation_overrides_policy() {
        let mut reg: StandingRegistry<u64> = StandingRegistry::default();
        let h = reg.subscribe(Request::median(), RefreshPolicy::OnDelta(0.5));
        assert!(reg.deliver(h.id(), dummy_outcome(), 1, 0));
        assert!(!reg.any_due(1, 0, 100));
        reg.invalidate_all();
        assert!(reg.any_due(1, 0, 100), "invalidated subs are always due");
        // Delivering clears the invalidation.
        assert!(reg.deliver(h.id(), dummy_outcome(), 1, 0));
        assert!(!reg.any_due(1, 0, 100));
    }
}
