//! Repository-level integration tests: the full stack (workload generator →
//! machine → selection algorithm → oracle check) across the experiment grid.

use cgselect::{
    select_on_machine, Algorithm, Balancer, Distribution, MachineModel, SelectionConfig,
};

fn oracle(parts: &[Vec<u64>], k: u64) -> u64 {
    let mut all: Vec<u64> = parts.iter().flatten().copied().collect();
    all.sort_unstable();
    all[k as usize]
}

#[test]
fn paper_grid_slice_matches_oracle() {
    // A miniature of the paper's full grid: every algorithm, both paper
    // distributions, several machine sizes.
    for p in [2usize, 8, 16] {
        for dist in Distribution::PAPER {
            let n = 4096 * p;
            let parts = cgselect::generate(dist, n, p, 31);
            for algo in Algorithm::ALL {
                for k in [0u64, (n / 2) as u64, (n - 1) as u64] {
                    let bal = if algo == Algorithm::MedianOfMedians {
                        Balancer::GlobalExchange
                    } else {
                        Balancer::None
                    };
                    let cfg = SelectionConfig::with_seed(7).balancer(bal);
                    let sel =
                        select_on_machine(p, MachineModel::cm5(), &parts, k, algo, &cfg).unwrap();
                    assert_eq!(
                        sel.value,
                        oracle(&parts, k),
                        "p={p} dist={} algo={algo:?} k={k}",
                        dist.name()
                    );
                }
            }
        }
    }
}

#[test]
fn extended_distributions_match_oracle() {
    let p = 6;
    let n = 3000;
    for dist in [
        Distribution::ReverseSorted,
        Distribution::FewDistinct(5),
        Distribution::Gaussian,
        Distribution::Zipf,
        Distribution::OrganPipe,
        Distribution::AllEqual,
    ] {
        let parts = cgselect::generate(dist, n, p, 17);
        for algo in Algorithm::ALL {
            let k = (n / 3) as u64;
            let cfg = SelectionConfig { min_sequential: 64, ..SelectionConfig::with_seed(23) };
            let sel = select_on_machine(p, MachineModel::free(), &parts, k, algo, &cfg).unwrap();
            assert_eq!(sel.value, oracle(&parts, k), "dist={} algo={algo:?}", dist.name());
        }
    }
}

#[test]
fn imbalanced_initial_layouts_match_oracle() {
    use cgselect::Layout;
    let p = 5;
    let n = 2500;
    for layout in [Layout::Hoarded, Layout::Staircase] {
        let parts = cgselect::generate_with_layout(Distribution::Random, layout, n, p, 3);
        for algo in Algorithm::ALL {
            for bal in [Balancer::None, Balancer::ModOmlb] {
                let cfg = SelectionConfig {
                    min_sequential: 64,
                    balancer: bal,
                    ..SelectionConfig::with_seed(5)
                };
                let sel =
                    select_on_machine(p, MachineModel::free(), &parts, 1250, algo, &cfg).unwrap();
                assert_eq!(
                    sel.value,
                    oracle(&parts, 1250),
                    "layout={layout:?} algo={algo:?} bal={bal:?}"
                );
            }
        }
    }
}

#[test]
fn float_keys_work_end_to_end() {
    use cgselect::OrdF64;
    let p = 4;
    let parts: Vec<Vec<OrdF64>> = (0..p)
        .map(|r| (0..500).map(|i| OrdF64((i * p + r) as f64 * 0.5 - 300.0)).collect())
        .collect();
    let n = 500 * p;
    let k = (n / 2) as u64;
    let cfg = SelectionConfig { min_sequential: 64, ..SelectionConfig::with_seed(2) };
    let sel =
        select_on_machine(p, MachineModel::free(), &parts, k, Algorithm::FastRandomized, &cfg)
            .unwrap();
    let mut all: Vec<OrdF64> = parts.iter().flatten().copied().collect();
    all.sort_unstable();
    assert_eq!(sel.value, all[k as usize]);
}

#[test]
fn virtual_time_reproducible_across_full_stack() {
    let p = 8;
    let parts = cgselect::generate(Distribution::Sorted, 32 * 1024, p, 0);
    let cfg = SelectionConfig::with_seed(99).balancer(Balancer::DimExchange);
    let run = || {
        select_on_machine(p, MachineModel::cm5(), &parts, 9999, Algorithm::FastRandomized, &cfg)
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.value, b.value);
    for (x, y) in a.per_proc.iter().zip(&b.per_proc) {
        assert_eq!(x.total_seconds.to_bits(), y.total_seconds.to_bits());
        assert_eq!(x.lb_seconds.to_bits(), y.lb_seconds.to_bits());
        assert_eq!(x.ops, y.ops);
    }
}

#[test]
fn makespan_scales_down_with_processors() {
    // Strong scaling sanity on the virtual CM-5: for large n, doubling p
    // from 2 to 16 must shrink the randomized algorithm's makespan.
    let n = 1 << 20;
    let mut times = Vec::new();
    for p in [2usize, 16] {
        let parts = cgselect::generate(Distribution::Random, n, p, 8);
        let cfg = SelectionConfig::with_seed(6);
        let sel = select_on_machine(
            p,
            MachineModel::cm5(),
            &parts,
            (n / 2) as u64,
            Algorithm::Randomized,
            &cfg,
        )
        .unwrap();
        times.push(sel.makespan());
    }
    assert!(
        times[1] < times[0] / 2.0,
        "expected near-linear speedup: p=2 {:.4}s vs p=16 {:.4}s",
        times[0],
        times[1]
    );
}

#[test]
fn deterministic_algorithms_are_seed_invariant() {
    // The value AND the virtual time of the deterministic algorithms must
    // not depend on the config seed (their kernels ignore randomness).
    let p = 4;
    let parts = cgselect::generate(Distribution::Random, 1 << 14, p, 12);
    let run = |seed: u64| {
        select_on_machine(
            p,
            MachineModel::cm5(),
            &parts,
            4321,
            Algorithm::MedianOfMedians,
            &SelectionConfig::with_seed(seed).balancer(Balancer::ModOmlb),
        )
        .unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.value, b.value);
    assert_eq!(a.makespan(), b.makespan(), "deterministic time must be seed-independent");
}
