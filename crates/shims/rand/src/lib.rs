//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships the
//! slice of rand's 0.9-style API that the experiment-input generators use:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`]. The generator core is xoshiro256** seeded through
//! SplitMix64 — deterministic, high quality for experiment inputs, and *not*
//! cryptographic (neither is what the real workloads crate needs).
//!
//! Determinism contract: the exact output stream is part of this shim, so
//! workload generation stays reproducible in `(distribution, n, p, seed)`
//! as `cgselect-workloads` promises.
//!
//! **Registry swap note.** Mirrors `rand` 0.9: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random`/`random_range`. Swapping in
//! the real crate changes the generated streams (real `StdRng` is ChaCha12,
//! not xoshiro256**), so seed-pinned experiment fixtures must be
//! regenerated at that point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as rand_core does for small seeds.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s.iter().all(|&w| w == 0) {
            s[0] = 1; // xoshiro must not start at the all-zero state
        }
        rngs::StdRng { s }
    }
}

/// Types that can be drawn uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> u64 {
        rng.next_raw()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_raw() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> f64 {
        (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut rngs::StdRng) -> bool {
        rng.next_raw() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo draw; the bias is < 2^-40 for every span the
                // workloads use, far below experimental noise.
                self.start + (rng.next_raw() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_raw() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T;
    /// Draws uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl Rng for rngs::StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        let mut c = rngs::StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f: f64 = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            buckets[(f * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
