//! The shared experiment runner: one (algorithm, balancer, distribution,
//! n, p) point, averaged over seeds like the paper (five random data sets
//! per point).

use cgselect_core::{median_on_machine, Algorithm, Balancer, SelectionConfig};
use cgselect_runtime::MachineModel;
use cgselect_workloads::{generate, Distribution, Stats};

/// One data point of a sweep.
#[derive(Clone, Debug)]
pub struct Spec {
    /// Which selection algorithm.
    pub algo: Algorithm,
    /// Which load balancer (the paper's N/O/D/G axis).
    pub balancer: Balancer,
    /// Input distribution (random / sorted / …).
    pub dist: Distribution,
    /// Total elements.
    pub n: usize,
    /// Processors.
    pub p: usize,
    /// Seeds to average over (the paper uses five for random inputs and a
    /// single run for the deterministic sorted input).
    pub seeds: Vec<u64>,
    /// Machine cost model.
    pub model: MachineModel,
}

impl Spec {
    /// The paper's standard configuration for a sweep point: CM-5 model,
    /// five seeds on random data, one on deterministic inputs.
    pub fn paper(
        algo: Algorithm,
        balancer: Balancer,
        dist: Distribution,
        n: usize,
        p: usize,
    ) -> Spec {
        let seeds = if dist == Distribution::Random { vec![11, 22, 33, 44, 55] } else { vec![11] };
        Spec { algo, balancer, dist, n, p, seeds, model: MachineModel::cm5() }
    }

    /// Reduces the seed list for `--quick` runs.
    pub fn quick(mut self) -> Spec {
        self.seeds.truncate(1);
        self
    }
}

/// Aggregated measurements for one [`Spec`].
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Makespan (max total virtual seconds over processors), across seeds.
    pub seconds: Stats,
    /// Load-balancing makespan across seeds.
    pub lb_seconds: Stats,
    /// Sample-sort makespan across seeds (fast randomized only).
    pub sort_seconds: Stats,
    /// Mean parallel iterations.
    pub iterations: f64,
    /// Mean unsuccessful iterations (fast randomized).
    pub unsuccessful: f64,
    /// Mean total elementary operations over the whole machine.
    pub total_ops: f64,
    /// Mean total messages over the whole machine.
    pub total_messages: f64,
}

/// Runs one sweep point: median selection over the generated input, once
/// per seed, aggregating the paper's reporting quantities.
pub fn run_point(spec: &Spec) -> Measurement {
    let mut secs = Vec::new();
    let mut lbs = Vec::new();
    let mut sorts = Vec::new();
    let mut iters = Vec::new();
    let mut unsucc = Vec::new();
    let mut ops = Vec::new();
    let mut msgs = Vec::new();
    for &seed in &spec.seeds {
        let parts = generate(spec.dist, spec.n, spec.p, seed);
        let cfg = SelectionConfig::with_seed(seed ^ 0xA5A5).balancer(spec.balancer);
        let sel = median_on_machine(spec.p, spec.model, &parts, spec.algo, &cfg)
            .expect("experiment run failed");
        secs.push(sel.makespan());
        lbs.push(sel.lb_makespan());
        sorts.push(sel.per_proc.iter().map(|o| o.sort_seconds).fold(0.0, f64::max));
        iters.push(sel.iterations() as f64);
        unsucc.push(sel.per_proc[0].unsuccessful_iterations as f64);
        ops.push(sel.total_ops() as f64);
        msgs.push(sel.total_messages() as f64);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Measurement {
        seconds: Stats::from(&secs),
        lb_seconds: Stats::from(&lbs),
        sort_seconds: Stats::from(&sorts),
        iterations: mean(&iters),
        unsuccessful: mean(&unsucc),
        total_ops: mean(&ops),
        total_messages: mean(&msgs),
    }
}

/// The processor counts of the paper's sweeps.
pub fn paper_procs(quick: bool) -> Vec<usize> {
    if quick {
        vec![4, 16, 64]
    } else {
        vec![2, 4, 8, 16, 32, 64, 128]
    }
}

/// The `n` values of a figure, possibly reduced for `--quick`.
pub fn paper_sizes(full: &[usize], quick: bool) -> Vec<usize> {
    if quick {
        vec![full[0]]
    } else {
        full.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_point_produces_sane_numbers() {
        let spec = Spec {
            algo: Algorithm::Randomized,
            balancer: Balancer::None,
            dist: Distribution::Random,
            n: 1 << 14,
            p: 4,
            seeds: vec![1, 2],
            model: MachineModel::cm5(),
        };
        let m = run_point(&spec);
        assert!(m.seconds.mean > 0.0);
        assert!(m.seconds.min <= m.seconds.mean && m.seconds.mean <= m.seconds.max);
        assert!(m.iterations >= 1.0);
        assert!(m.total_ops > 0.0);
    }

    #[test]
    fn paper_spec_uses_five_seeds_on_random_only() {
        let s = Spec::paper(Algorithm::Randomized, Balancer::None, Distribution::Random, 1024, 2);
        assert_eq!(s.seeds.len(), 5);
        let s = Spec::paper(Algorithm::Randomized, Balancer::None, Distribution::Sorted, 1024, 2);
        assert_eq!(s.seeds.len(), 1);
        assert_eq!(s.quick().seeds.len(), 1);
    }
}
