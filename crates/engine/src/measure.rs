//! Collective-round accounting shared by tests and benchmarks.
//!
//! The engine's core claim — a batch of `R` rank-type queries costs
//! `O(log n + R)` collective rounds instead of `O(R·log n)` — is asserted
//! by `tests/engine.rs` and measured by the `engine` bench binary. Both
//! must count rounds *identically* or the test proves something the bench
//! does not report; this module is the single implementation they share.

use cgselect_runtime::Key;

use crate::{Engine, EngineError, Query};

/// How [`measure_rounds`] executes a query set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionMode {
    /// The whole set as one coalesced [`Engine::execute`] batch.
    Batched,
    /// Each query as its own single-element batch (the baseline the
    /// micro-batcher exists to beat).
    PerQuery,
}

/// What one [`measure_rounds`] run observed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RoundsMeasurement {
    /// Queries executed.
    pub queries: usize,
    /// Collective operations started, per processor (summed across the
    /// per-query executions in [`ExecutionMode::PerQuery`] mode).
    pub collective_ops: u64,
    /// Virtual-time makespan (summed across per-query executions).
    pub makespan: f64,
    /// Messages sent (summed across per-query executions).
    pub msgs_sent: u64,
}

impl RoundsMeasurement {
    /// Collective rounds paid per query — the figure of merit batching
    /// amortizes. Zero when no queries were measured.
    pub fn rounds_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.collective_ops as f64 / self.queries as f64
        }
    }
}

/// Executes `queries` on `engine` in the given mode and returns the
/// collective-round accounting. This is THE definition of "collective
/// rounds per query" — `tests/engine.rs` asserts on it and the `engine`
/// bench binary reports it, so the two cannot drift apart.
pub fn measure_rounds<T: Key>(
    engine: &mut Engine<T>,
    queries: &[Query],
    mode: ExecutionMode,
) -> Result<RoundsMeasurement, EngineError> {
    let mut m = RoundsMeasurement { queries: queries.len(), ..Default::default() };
    match mode {
        ExecutionMode::Batched => {
            let report = engine.execute(queries)?;
            m.collective_ops = report.collective_ops;
            m.makespan = report.makespan;
            m.msgs_sent = report.comm.msgs_sent;
        }
        ExecutionMode::PerQuery => {
            for q in queries {
                let report = engine.execute(std::slice::from_ref(q))?;
                m.collective_ops += report.collective_ops;
                m.makespan += report.makespan;
                m.msgs_sent += report.comm.msgs_sent;
            }
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use cgselect_runtime::MachineModel;

    #[test]
    fn batched_mode_beats_per_query_mode() {
        // Baseline path (index off): with the resident index, the per-query
        // repeats would be served from the histogram and this would measure
        // the cache instead of batching.
        let mut engine: Engine<u64> =
            Engine::new(EngineConfig::new(4).model(MachineModel::free()).index_buckets(0)).unwrap();
        engine.ingest((0..20_000u64).rev().collect()).unwrap();
        let queries: Vec<Query> = (1..=10u64).map(|i| Query::Rank(i * 1500)).collect();
        let batched = measure_rounds(&mut engine, &queries, ExecutionMode::Batched).unwrap();
        let single = measure_rounds(&mut engine, &queries, ExecutionMode::PerQuery).unwrap();
        assert_eq!(batched.queries, single.queries);
        assert!(batched.collective_ops > 0);
        assert!(
            batched.rounds_per_query() < single.rounds_per_query(),
            "batched {} vs per-query {} rounds/query",
            batched.rounds_per_query(),
            single.rounds_per_query()
        );
    }

    #[test]
    fn empty_query_set_measures_zero() {
        let mut engine: Engine<u64> =
            Engine::new(EngineConfig::new(2).model(MachineModel::free())).unwrap();
        engine.ingest(vec![1, 2, 3]).unwrap();
        let m = measure_rounds(&mut engine, &[], ExecutionMode::PerQuery).unwrap();
        assert_eq!(m.rounds_per_query(), 0.0);
    }
}
