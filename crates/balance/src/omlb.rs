//! Order-maintaining load balance (§4.1) and its modified variant
//! (Algorithm 5).

use cgselect_runtime::{Key, Proc};

use crate::schedule::{execute_transfers, transfer_schedule};
use crate::{target_for, BalanceReport};

/// Order-maintaining load balance (paper §4.1, unmodified).
///
/// Views the data as globally ordered by (processor, local index) and
/// redistributes so processor `i` ends up with the elements at global
/// positions `[Tᵢ, Tᵢ₊₁)` of that order — i.e. the global concatenation
/// order is **preserved**. One parallel-prefix (here: an all-gather of the
/// counts, same `O(τ log p + μp)` cost) suffices for every processor to
/// compute exactly which intervals it sends and receives.
///
/// Worst-case cost `O(μ·n_avg + τ·(n_max/n_avg) + μ·n_max)`. As the paper
/// points out, this can move far more data than necessary (a one-element
/// imbalance between the first and last processor makes *every* processor
/// ship one element), which motivates the modified variant below.
pub fn order_maintaining<T: Key>(proc: &mut Proc, data: &mut Vec<T>) -> BalanceReport {
    let p = proc.nprocs();
    let rank = proc.rank();
    let counts: Vec<u64> = proc.all_gather(data.len() as u64);
    let n: u64 = counts.iter().sum();
    proc.charge_ops(2 * p as u64); // prefix computations over the counts

    let mut starts = vec![0u64; p + 1];
    let mut tstarts = vec![0u64; p + 1];
    for i in 0..p {
        starts[i + 1] = starts[i] + counts[i];
        tstarts[i + 1] = tstarts[i] + target_for(n, p, i);
    }

    let tag = proc.fresh_tag();
    let mut report = BalanceReport::default();
    let my_lo = starts[rank];
    let my_hi = starts[rank + 1];
    let old = std::mem::take(data);

    // Ship each overlap of my current interval with a target interval.
    let mut kept: Vec<T> = Vec::new();
    for j in 0..p {
        let lo = my_lo.max(tstarts[j]);
        let hi = my_hi.min(tstarts[j + 1]);
        if lo >= hi {
            continue;
        }
        let slice = &old[(lo - my_lo) as usize..(hi - my_lo) as usize];
        proc.charge_ops(slice.len() as u64);
        if j == rank {
            kept = slice.to_vec();
        } else {
            proc.send_vec_tagged(j, tag, slice.to_vec());
            report.elements_sent += slice.len() as u64;
            report.messages_sent += 1;
        }
    }

    // Assemble my target interval from the overlapping senders, in rank
    // order — which is exactly global order.
    let t_lo = tstarts[rank];
    let t_hi = tstarts[rank + 1];
    let mut assembled = Vec::with_capacity((t_hi - t_lo) as usize);
    for i in 0..p {
        let lo = t_lo.max(starts[i]);
        let hi = t_hi.min(starts[i + 1]);
        if lo >= hi {
            continue;
        }
        if i == rank {
            proc.charge_ops(kept.len() as u64);
            assembled.append(&mut kept);
        } else {
            let part: Vec<T> = proc.recv_vec_tagged(i, tag);
            proc.charge_ops(part.len() as u64);
            report.elements_recv += part.len() as u64;
            assembled.extend(part);
        }
    }
    *data = assembled;
    report
}

/// Modified order-maintaining load balance (Algorithm 5).
///
/// Every processor keeps `min(nᵢ, targetᵢ)` of its own elements; only the
/// excesses move. Processors above their target are *sources*, those below
/// are *sinks*; the excess units and deficit units are ranked by two prefix
/// sums (computed here from the same gathered counts) and matched interval
/// against interval, exactly as the paper's binary-search formulation.
///
/// Worst-case cost `O(μ·n_avg + τ·p + μ·(n_max − n_avg))`.
pub fn modified_order_maintaining<T: Key>(proc: &mut Proc, data: &mut Vec<T>) -> BalanceReport {
    let p = proc.nprocs();
    let counts: Vec<u64> = proc.all_gather(data.len() as u64);
    let n: u64 = counts.iter().sum();
    proc.charge_ops(2 * p as u64); // diff/prefix computations

    let mut sources = Vec::new();
    let mut sinks = Vec::new();
    for (r, &c) in counts.iter().enumerate() {
        let t = target_for(n, p, r);
        if c > t {
            sources.push((r, c - t));
        } else if c < t {
            sinks.push((r, t - c));
        }
    }
    let schedule = transfer_schedule(&sources, &sinks);
    let tag = proc.fresh_tag();
    execute_transfers(proc, data, &schedule, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgselect_runtime::{Machine, MachineModel};

    /// Runs a balancer on explicit per-processor inputs and returns the
    /// resulting per-processor outputs.
    fn run<F>(parts: Vec<Vec<u64>>, f: F) -> Vec<Vec<u64>>
    where
        F: Fn(&mut Proc, &mut Vec<u64>) -> BalanceReport + Send + Sync,
    {
        let p = parts.len();
        Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut mine = parts[proc.rank()].clone();
                f(proc, &mut mine);
                mine
            })
            .unwrap()
    }

    fn balanced_exactly(out: &[Vec<u64>]) -> bool {
        let n: u64 = out.iter().map(|v| v.len() as u64).sum();
        out.iter().enumerate().all(|(r, v)| v.len() as u64 == target_for(n, out.len(), r))
    }

    fn same_multiset(parts: &[Vec<u64>], out: &[Vec<u64>]) -> bool {
        let mut a: Vec<u64> = parts.iter().flatten().copied().collect();
        let mut b: Vec<u64> = out.iter().flatten().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    fn profiles() -> Vec<Vec<Vec<u64>>> {
        vec![
            // All data on one processor.
            vec![(0..40).collect(), vec![], vec![], vec![]],
            // Staircase.
            vec![(0..1).collect(), (10..14).collect(), (20..29).collect(), (30..46).collect()],
            // Already balanced.
            vec![(0..5).collect(), (5..10).collect(), (10..15).collect(), (15..20).collect()],
            // Everything empty.
            vec![vec![], vec![], vec![], vec![]],
            // n < p.
            vec![vec![7], vec![], vec![9], vec![]],
        ]
    }

    #[test]
    fn omlb_balances_and_preserves_multiset() {
        for parts in profiles() {
            let out = run(parts.clone(), order_maintaining);
            assert!(balanced_exactly(&out), "{out:?}");
            assert!(same_multiset(&parts, &out));
        }
    }

    #[test]
    fn omlb_preserves_global_order() {
        // Input is globally sorted across processors; output must be too.
        let parts: Vec<Vec<u64>> =
            vec![(0..33).collect(), (33..34).collect(), vec![], (34..64).collect()];
        let out = run(parts, order_maintaining);
        let flat: Vec<u64> = out.iter().flatten().copied().collect();
        assert_eq!(flat, (0..64).collect::<Vec<_>>());
        assert!(balanced_exactly(&out));
    }

    #[test]
    fn mod_omlb_balances_and_preserves_multiset() {
        for parts in profiles() {
            let out = run(parts.clone(), modified_order_maintaining);
            assert!(balanced_exactly(&out), "{out:?}");
            assert!(same_multiset(&parts, &out));
        }
    }

    #[test]
    fn mod_omlb_keeps_local_elements_when_possible() {
        // A sink keeps everything it had; a balanced processor moves nothing.
        let parts: Vec<Vec<u64>> = vec![(100..120).collect(), vec![1, 2], (200..205).collect()];
        let out = run(parts, modified_order_maintaining);
        // Processor 1 was a sink: its original elements must still be there.
        assert!(out[1].contains(&1) && out[1].contains(&2));
        // Processor 2 had 5 < target 9: keeps all five.
        for v in 200..205 {
            assert!(out[2].contains(&v));
        }
    }

    #[test]
    fn mod_omlb_single_processor_is_noop() {
        let out = run(vec![(0..7).collect()], modified_order_maintaining);
        assert_eq!(out[0], (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn reports_are_consistent() {
        let parts: Vec<Vec<u64>> = vec![(0..40).collect(), vec![], vec![], vec![]];
        let p = parts.len();
        let reports = Machine::with_model(p, MachineModel::free())
            .run(|proc| {
                let mut mine = parts[proc.rank()].clone();
                modified_order_maintaining(proc, &mut mine)
            })
            .unwrap();
        let sent: u64 = reports.iter().map(|r| r.elements_sent).sum();
        let recv: u64 = reports.iter().map(|r| r.elements_recv).sum();
        assert_eq!(sent, recv);
        assert_eq!(sent, 30); // 40 -> 10 each: 30 elements move
        assert_eq!(reports[0].messages_sent, 3);
    }

    #[test]
    fn omlb_moves_more_than_necessary_on_shifted_input() {
        // The pathology the paper describes: OMLB ripples one element
        // through every processor while modified OMLB sends one message.
        let p = 6;
        let mut parts: Vec<Vec<u64>> = (0..p as u64).map(|i| vec![i; 10]).collect();
        parts[0].pop(); // first has 9
        parts[p - 1].push(99); // last has 11

        let omlb_msgs: u64 = {
            let parts = parts.clone();
            Machine::with_model(p, MachineModel::free())
                .run(|proc| {
                    let mut mine = parts[proc.rank()].clone();
                    order_maintaining(proc, &mut mine).messages_sent
                })
                .unwrap()
                .iter()
                .sum()
        };
        let mod_msgs: u64 = {
            Machine::with_model(p, MachineModel::free())
                .run(|proc| {
                    let mut mine = parts[proc.rank()].clone();
                    modified_order_maintaining(proc, &mut mine).messages_sent
                })
                .unwrap()
                .iter()
                .sum()
        };
        assert_eq!(mod_msgs, 1, "modified OMLB: single direct transfer");
        assert!(omlb_msgs >= (p - 1) as u64, "OMLB ripples: {omlb_msgs} msgs");
    }
}
